//! Report-digest regression test: `run_paper` on saw2018 must produce a
//! **byte-identical** canonical-JSON [`PaperReport`] across refactors of the
//! numeric substrate. The fixture stores only the FNV-1a digest of the
//! canonical encoding (the full document is a few hundred KB), which is
//! enough to pin every float bit in every cell.
//!
//! The digest was generated *before* the stride-kernel rewrite of
//! `synrd-pgm`, so a passing run proves the rewritten factor algebra is
//! bit-identical to the naive implementation over a full paper pipeline
//! (data generation → DP measurement → mirror descent → sampling → parity).
//!
//! Regenerated once since: the fit-cache PR re-keyed fit seeds by dataset
//! content digest instead of paper id (so papers sharing a dataset share
//! fits), which intentionally changed every cell's draws.
//!
//! To regenerate after an *intentional* numeric or schema change:
//!
//! ```text
//! SYNRD_GOLDEN_REGEN=1 cargo test --test integration_report_digest
//! ```

use std::path::PathBuf;
use synrd::benchmark::{run_paper, BenchmarkConfig};
use synrd::publication::publication_by_id;
use synrd_store::{fnv1a64, hex16, JsonCodec};
use synrd_synth::SynthKind;

fn digest_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/saw2018_report.digest")
}

/// Small-but-real configuration: both ε values the PGM family cares about,
/// two seeds so the seed-variance path is exercised, no fit timeout so the
/// outcome cannot depend on machine speed.
fn digest_config() -> BenchmarkConfig {
    BenchmarkConfig {
        epsilons: vec![1.0, std::f64::consts::E],
        seeds: 2,
        bootstraps: 2,
        data_scale: 0.05,
        min_rows: 1_500,
        data_seed: 99,
        threads: 4,
        fit_threads: None,
        fit_timeout: None,
        restrict_privmrf: true,
        synthesizers: vec![SynthKind::Mst, SynthKind::Aim],
    }
}

#[test]
fn saw2018_report_digest_is_stable() {
    let paper = publication_by_id("saw2018").expect("registered paper");
    let mut report = run_paper(paper.as_ref(), &digest_config()).expect("grid runs");
    // `fit_seconds` is wall-clock time — the one legitimately
    // nondeterministic field. Zero it so the digest pins every *numeric*
    // output bit (parity, seed variance, statuses, control row) only.
    for row in &mut report.cells {
        for cell in row {
            cell.fit_seconds = 0.0;
        }
    }
    let text = report.to_json_text();
    let digest = format!("{} {} bytes\n", hex16(fnv1a64(text.as_bytes())), text.len());

    let path = digest_path();
    if std::env::var_os("SYNRD_GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &digest).unwrap();
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden digest {} ({e}); run with SYNRD_GOLDEN_REGEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        digest, expected,
        "canonical PaperReport bytes drifted from the pre-rewrite baseline; \
         the factor kernels are no longer bit-identical (or the schema changed \
         intentionally — then regenerate with SYNRD_GOLDEN_REGEN=1)"
    );
}
