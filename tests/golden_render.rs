//! Golden snapshot tests for the text renderers: `render_fig3_block`,
//! `render_fig4`, `render_table1` and `render_table2` over fixed,
//! hand-constructed inputs must match the checked-in fixtures
//! byte-for-byte, so rendering refactors cannot silently drift from the
//! paper's figure and table layouts.
//!
//! The fixture inputs are literal values (no synthesizer runs), so the
//! snapshots are platform-independent. To regenerate after an intentional
//! rendering change:
//!
//! ```text
//! SYNRD_GOLDEN_REGEN=1 cargo test --test golden_render
//! ```
//!
//! then review the fixture diff like any other code change.

use std::path::PathBuf;
use synrd::benchmark::{CellOutcome, CellStatus, PaperReport};
use synrd::finding::FindingType;
use synrd::parity::aggregate;
use synrd::report::{
    finding_type_counts, render_fig3_block, render_fig4, render_table1, render_table2,
};
use synrd_data::{MeanStd, MetaFeatures};
use synrd_synth::SynthKind;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compare `rendered` against the fixture, or rewrite the fixture when
/// `SYNRD_GOLDEN_REGEN` is set.
fn assert_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var_os("SYNRD_GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run with SYNRD_GOLDEN_REGEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        expected,
        "rendered output drifted from {}; if the change is intentional, \
         regenerate with SYNRD_GOLDEN_REGEN=1 and review the diff",
        path.display()
    );
}

fn ok_cell(parity: Vec<f64>, variance: Vec<f64>, fit_seconds: f64) -> CellOutcome {
    CellOutcome {
        parity,
        seed_variance: variance,
        status: CellStatus::Ok,
        fit_seconds,
    }
}

fn unavailable(status: CellStatus, findings: usize) -> CellOutcome {
    CellOutcome {
        parity: vec![f64::NAN; findings],
        seed_variance: vec![f64::NAN; findings],
        status,
        fit_seconds: 0.0,
    }
}

/// A fixed report exercising every rendering path: the full shade ramp,
/// NaN parity inside an Ok cell, crosshatched (infeasible + timed-out)
/// rows, a skipped PrivMRF-style cell, and the bootstrap control row.
fn fixed_report() -> PaperReport {
    let findings = vec![
        (1, "mean shift", FindingType::DescriptiveStatistics),
        (2, "odds ratio sign", FindingType::FixedCoefficientSign),
        (3, "pearson r", FindingType::CorrelationPearson),
        (4, "accuracy parity", FindingType::LogisticAccuracy),
    ];
    let epsilons = vec![0.5, 1.0, std::f64::consts::E];
    let cells = vec![
        // MST: a clean gradient across ε plus one NaN finding.
        vec![
            ok_cell(vec![0.0, 0.25, 0.5, 0.75], vec![0.0, 0.01, 0.02, 0.03], 1.5),
            ok_cell(vec![0.1, 0.4, 0.6, 0.9], vec![0.0, 0.0, 0.0, 0.0], 1.25),
            ok_cell(
                vec![1.0, 1.0, f64::NAN, 0.875],
                vec![0.0, 0.0, f64::NAN, 0.25],
                1.0,
            ),
        ],
        // PrivMRF: skipped off ε = e⁰ (the paper's restriction), ok at e⁰.
        vec![
            unavailable(CellStatus::Skipped, 4),
            ok_cell(vec![0.5, 0.5, 0.5, 0.5], vec![0.1, 0.1, 0.1, 0.1], 30.0),
            unavailable(CellStatus::Skipped, 4),
        ],
        // GEM: infeasible at low ε, timed out at high ε.
        vec![
            unavailable(CellStatus::Infeasible("domain too large".to_string()), 4),
            ok_cell(vec![0.33, 0.66, 0.99, 0.0], vec![0.2, 0.1, 0.0, 0.0], 2.5),
            unavailable(CellStatus::TimedOut, 4),
        ],
    ];
    PaperReport {
        paper_id: "golden",
        paper_name: "Golden et al. 2026",
        findings,
        epsilons,
        synthesizers: vec![SynthKind::Mst, SynthKind::PrivMrf, SynthKind::Gem],
        cells,
        control: vec![1.0, 1.0, 0.96, 1.0],
        n_rows: 2_500,
    }
}

/// A second report on the same grid so Figure 4 averages over papers.
fn second_report() -> PaperReport {
    let mut report = fixed_report();
    report.paper_id = "golden2";
    report.paper_name = "Golden & Silver 2026";
    for row in &mut report.cells {
        for cell in row {
            if cell.status == CellStatus::Ok {
                for p in &mut cell.parity {
                    *p = (*p * 0.5).min(1.0);
                }
            }
        }
    }
    report
}

#[test]
fn fig3_block_matches_golden_fixture() {
    assert_golden("fig3_block.txt", &render_fig3_block(&fixed_report()));
}

#[test]
fn fig4_series_matches_golden_fixture() {
    let agg = aggregate(&[fixed_report(), second_report()]).unwrap();
    assert_golden("fig4_series.txt", &render_fig4(&agg));
}

/// Literal meta-feature rows exercising every Table 1 formatting path:
/// large/small scientific domain sizes, a NaN mean/std pair (datasets with
/// no numeric attributes), and zero counts.
fn fixed_table1_rows() -> Vec<(&'static str, MetaFeatures)> {
    let ms = |mean: f64, std: f64| MeanStd { mean, std };
    vec![
        (
            "Golden et al. 2026",
            MetaFeatures {
                sample_size: 20_242,
                n_variables: 11,
                domain_size: 3.2e9,
                outliers: 17,
                mutual_information: ms(0.0425, 0.0611),
                skewness: ms(-0.375, 1.125),
                sparsity: ms(0.25, 0.125),
            },
        ),
        (
            "Golden & Silver 2026",
            MetaFeatures {
                sample_size: 1_500,
                n_variables: 4,
                domain_size: 96.0,
                outliers: 0,
                mutual_information: ms(0.5, 0.0),
                skewness: ms(f64::NAN, f64::NAN),
                sparsity: ms(0.0, 0.0),
            },
        ),
    ]
}

#[test]
fn table1_matches_golden_fixture() {
    assert_golden("table1.txt", &render_table1(&fixed_table1_rows()));
}

#[test]
fn table2_matches_golden_fixture() {
    // Table 2 is fully determined by the publication registry (integer
    // counts, no floats), so the live counts are themselves a fixed input.
    assert_golden("table2.txt", &render_table2(&finding_type_counts()));
}
