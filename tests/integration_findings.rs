//! Ground-truth calibration: every publication's findings must be
//! well-defined and self-consistent on the generated "real" data, across
//! seeds — otherwise the parity benchmark would be vacuous.

use synrd::finding::Check;
use synrd::publication::all_publications;

/// Quick-scale sample size for a paper.
fn quick_n(paper_n: usize) -> usize {
    ((paper_n as f64 * 0.1) as usize).max(2_000)
}

#[test]
fn all_findings_evaluate_finite_on_real_data() {
    for paper in all_publications() {
        let n = quick_n(paper.dataset().paper_n());
        for seed in [11u64, 77u64] {
            let data = paper.generate(n, seed);
            for finding in paper.findings() {
                let stats = finding
                    .evaluate(&data)
                    .unwrap_or_else(|e| panic!("{} #{}: {e}", paper.name(), finding.id));
                assert!(
                    stats.iter().all(|v| v.is_finite()),
                    "{} #{} produced non-finite stats {stats:?} (seed {seed})",
                    paper.name(),
                    finding.id
                );
            }
        }
    }
}

#[test]
fn findings_self_reproduce() {
    // A finding evaluated twice on the same data must always reproduce
    // itself; this validates the check semantics.
    for paper in all_publications() {
        let data = paper.generate(quick_n(paper.dataset().paper_n()), 5);
        for finding in paper.findings() {
            let stats = finding.evaluate(&data).unwrap();
            assert!(
                finding.reproduced(&stats, &stats),
                "{} #{} does not self-reproduce",
                paper.name(),
                finding.id
            );
        }
    }
}

#[test]
fn order_findings_are_strict_on_real_data() {
    // Order/sign findings must not sit on a knife's edge: the claimed order
    // should be strict on real data, otherwise parity would be a coin flip.
    for paper in all_publications() {
        let data = paper.generate(quick_n(paper.dataset().paper_n()), 21);
        for finding in paper.findings() {
            let stats = finding.evaluate(&data).unwrap();
            match finding.check {
                Check::Order => {
                    // All pairwise gaps distinct (no exact ties).
                    for i in 0..stats.len() {
                        for j in (i + 1)..stats.len() {
                            assert!(
                                (stats[i] - stats[j]).abs() > 1e-12,
                                "{} #{}: tie in order stats {stats:?}",
                                paper.name(),
                                finding.id
                            );
                        }
                    }
                }
                Check::Sign => {
                    for v in &stats {
                        assert!(
                            v.abs() > 1e-9,
                            "{} #{}: zero-sign statistic {stats:?}",
                            paper.name(),
                            finding.id
                        );
                    }
                }
                Check::Tolerance { .. } => {}
            }
        }
    }
}

#[test]
fn planted_directions_match_published_claims() {
    // Spot-check the directional claims that define each paper's headline
    // conclusion (the generator must plant them, every seed).
    let by_id = |id: &str| synrd::publication::publication_by_id(id).unwrap();

    // Saw: boys > girls in 9th-grade aspiration (finding 90, descending).
    let saw = by_id("saw2018");
    let data = saw.generate(20_000, 9);
    let f90 = saw.findings().into_iter().find(|f| f.id == 90).unwrap();
    let stats = f90.evaluate(&data).unwrap();
    assert!(stats[0] > stats[1], "Saw gender gap: {stats:?}");

    // Fairman: Black > White marijuana-first (finding 20, descending).
    let fairman = by_id("fairman2019");
    let data = fairman.generate(50_000, 9);
    let f20 = fairman.findings().into_iter().find(|f| f.id == 20).unwrap();
    let stats = f20.evaluate(&data).unwrap();
    assert!(stats[0] > stats[1], "Fairman race gap: {stats:?}");

    // Iverson: football null effect within tolerance (finding 38).
    let iverson = by_id("iverson2021");
    let data = iverson.generate(20_000, 9);
    let f38 = iverson.findings().into_iter().find(|f| f.id == 38).unwrap();
    let stats = f38.evaluate(&data).unwrap();
    assert!(stats[0].abs() < 0.03, "Iverson football effect: {stats:?}");

    // Fruiht: negative mentor × parent-college interaction (finding 53).
    let fruiht = by_id("fruiht2018");
    let data = fruiht.generate(20_000, 9);
    let f53 = fruiht.findings().into_iter().find(|f| f.id == 53).unwrap();
    let stats = f53.evaluate(&data).unwrap();
    assert!(stats[0] < 0.0, "Fruiht interaction: {stats:?}");

    // Lee: strong math9-math11 correlation (finding 64: r - 0.7 > 0).
    let lee = by_id("lee2021");
    let data = lee.generate(10_000, 9);
    let f64_ = lee.findings().into_iter().find(|f| f.id == 64).unwrap();
    let stats = f64_.evaluate(&data).unwrap();
    assert!(stats[0] > 0.0, "Lee strong correlation: {stats:?}");

    // Jeong: FPR privileged > disadvantaged under the logistic model
    // (finding 58, descending).
    let jeong = by_id("jeong2021");
    let data = jeong.generate(8_000, 9);
    let f58 = jeong.findings().into_iter().find(|f| f.id == 58).unwrap();
    let stats = f58.evaluate(&data).unwrap();
    assert!(stats[0] > stats[1], "Jeong FPR gap: {stats:?}");

    // Pierce: spousal support beats friend support (finding 79).
    let pierce = by_id("pierce2019");
    let data = pierce.generate(10_000, 9);
    let f79 = pierce.findings().into_iter().find(|f| f.id == 79).unwrap();
    let stats = f79.evaluate(&data).unwrap();
    assert!(stats[0] > stats[1], "Pierce coefficients: {stats:?}");

    // Assari: pooled obesity-death null, Black-specific positive
    // (findings 5 and 7).
    let assari = by_id("assari2019");
    let data = assari.generate(30_000, 9);
    let f5 = assari.findings().into_iter().find(|f| f.id == 5).unwrap();
    assert!(f5.evaluate(&data).unwrap()[0].abs() < 0.045);
    let f7 = assari.findings().into_iter().find(|f| f.id == 7).unwrap();
    assert!(f7.evaluate(&data).unwrap()[0] > 0.0);
}

#[test]
fn visual_finding_is_registered_for_fairman() {
    let fairman = synrd::publication::publication_by_id("fairman2019").unwrap();
    assert!(fairman.visual().is_some());
    for other in ["saw2018", "lee2021", "assari2019"] {
        assert!(synrd::publication::publication_by_id(other)
            .unwrap()
            .visual()
            .is_none());
    }
}
