//! Cross-crate synthesizer integration: every synthesizer must round-trip
//! on real benchmark data, and the PGM-based ones must preserve the low-
//! dimensional structure the findings consume.

use synrd_data::{BenchmarkDataset, Marginal};
use synrd_synth::{SynthError, SynthKind};

const EPS_E: f64 = std::f64::consts::E;

#[test]
fn every_synthesizer_handles_saw_data() {
    // Saw et al. is the smallest-domain paper: everything must fit it.
    let data = BenchmarkDataset::Saw2018.generate(3_000, 42);
    for kind in SynthKind::ALL {
        let mut synth = kind.build();
        synth
            .fit(&data, kind.native_privacy(EPS_E, data.n_rows()), 1)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        let sample = synth.sample(3_000, 2).unwrap();
        assert_eq!(sample.domain(), data.domain());
        // 1-way marginal of stem aspiration must be in the right ballpark.
        let attr = data.domain().index_of("stem_asp_9").unwrap();
        let real_p = data.mean_of(attr).unwrap();
        let synth_p = sample.mean_of(attr).unwrap();
        assert!(
            (real_p - synth_p).abs() < 0.12,
            "{}: aspiration rate {synth_p:.3} vs real {real_p:.3}",
            kind.name()
        );
    }
}

#[test]
fn pgm_methods_crosshatch_jeong() {
    // Jeong et al.'s 1e43 domain must be infeasible for PGM-based methods
    // (Figure 3's crosshatch) while GEM and PATECTGAN fit it.
    let data = BenchmarkDataset::Jeong2021.generate(1_000, 7);
    for kind in SynthKind::ALL {
        let mut synth = kind.build();
        let result = synth.fit(&data, kind.native_privacy(EPS_E, data.n_rows()), 3);
        if kind.is_pgm_based() {
            assert!(
                matches!(result, Err(SynthError::Infeasible { .. })),
                "{} should refuse Jeong",
                kind.name()
            );
        } else {
            result.unwrap_or_else(|e| panic!("{} should fit Jeong: {e}", kind.name()));
            let sample = synth.sample(500, 5).unwrap();
            assert_eq!(sample.n_rows(), 500);
        }
    }
}

#[test]
fn mst_preserves_pairwise_structure_on_fruiht() {
    let data = BenchmarkDataset::Fruiht2018.generate(4_173, 11);
    let mut synth = SynthKind::Mst.build();
    synth
        .fit(
            &data,
            SynthKind::Mst.native_privacy(EPS_E, data.n_rows()),
            5,
        )
        .unwrap();
    let sample = synth.sample(data.n_rows(), 7).unwrap();
    // mentor × edu_attain: synthetic must keep the mentorship gap direction.
    let edu = data.domain().index_of("edu_attain").unwrap();
    let mentor = data.domain().index_of("mentor").unwrap();
    let gap = |ds: &synrd_data::Dataset| {
        let m = ds.filter_rows(|r| r.get(mentor) == 1).mean_of(edu).unwrap();
        let n = ds.filter_rows(|r| r.get(mentor) == 0).mean_of(edu).unwrap();
        m - n
    };
    assert!(gap(&data) > 0.5);
    assert!(gap(&sample) > 0.0, "synthetic gap = {:.3}", gap(&sample));
}

#[test]
fn epsilon_scales_noise_for_marginal_methods() {
    // At tiny ε the 1-way marginal error of MST must exceed the error at
    // large ε (sanity of the budget plumbing).
    let data = BenchmarkDataset::Saw2018.generate(5_000, 13);
    let err_at = |eps: f64| {
        let mut synth = SynthKind::Mst.build();
        synth
            .fit(&data, SynthKind::Mst.native_privacy(eps, data.n_rows()), 17)
            .unwrap();
        let sample = synth.sample(data.n_rows(), 19).unwrap();
        let real = Marginal::count(&data, &[0, 1]).unwrap();
        let fake = Marginal::count(&sample, &[0, 1]).unwrap();
        real.l1_distance(&fake).unwrap()
    };
    let low = err_at((-3.0f64).exp());
    let high = err_at((2.0f64).exp());
    assert!(
        low > high,
        "L1 at eps=e^-3 ({low:.4}) should exceed L1 at eps=e^2 ({high:.4})"
    );
}

#[test]
fn synthesizers_are_reusable_after_refit() {
    let a = BenchmarkDataset::Saw2018.generate(2_000, 1);
    let b = BenchmarkDataset::Pierce2019.generate(1_585, 1);
    let mut synth = SynthKind::PrivBayes.build();
    synth
        .fit(&a, SynthKind::PrivBayes.native_privacy(1.0, a.n_rows()), 3)
        .unwrap();
    let sample_a = synth.sample(100, 4).unwrap();
    assert_eq!(sample_a.domain(), a.domain());
    // Refit on a different domain: the old model must be replaced.
    synth
        .fit(&b, SynthKind::PrivBayes.native_privacy(1.0, b.n_rows()), 3)
        .unwrap();
    let sample_b = synth.sample(100, 4).unwrap();
    assert_eq!(sample_b.domain(), b.domain());
}
