//! Smoke tests for the paper registry (§5.2): the benchmark is only as
//! meaningful as its catalogue of publications, so the registry must be
//! complete, stable under lookup, and evaluable end to end.

use std::collections::HashSet;
use synrd::publication::{all_publications, publication_by_id};

/// The eight benchmark papers of Table 1, alphabetical by first author.
const EXPECTED_IDS: [&str; 8] = [
    "assari2019",
    "fairman2019",
    "iverson2021",
    "fruiht2018",
    "jeong2021",
    "lee2021",
    "pierce2019",
    "saw2018",
];

#[test]
fn registry_contains_exactly_the_eight_papers() {
    let papers = all_publications();
    assert_eq!(papers.len(), 8, "§5.2: the benchmark has eight papers");
    let ids: Vec<&str> = papers.iter().map(|p| p.dataset().id()).collect();
    assert_eq!(ids, EXPECTED_IDS, "registry order must match Table 1");
    let unique: HashSet<&str> = ids.iter().copied().collect();
    assert_eq!(unique.len(), 8, "paper ids must be unique");
}

#[test]
fn publication_by_id_round_trips() {
    for paper in all_publications() {
        let id = paper.dataset().id();
        let looked_up = publication_by_id(id)
            .unwrap_or_else(|| panic!("registered paper {id} must be retrievable"));
        assert_eq!(looked_up.dataset().id(), id);
        assert_eq!(looked_up.name(), paper.name());
        assert_eq!(
            looked_up.findings().len(),
            paper.findings().len(),
            "{id}: lookup must yield the same findings"
        );
    }
    assert!(publication_by_id("nosuchpaper2099").is_none());
    assert!(publication_by_id("").is_none());
}

#[test]
fn every_paper_has_nonempty_findings_with_unique_ids() {
    let mut global_ids = HashSet::new();
    for paper in all_publications() {
        let findings = paper.findings();
        assert!(
            !findings.is_empty(),
            "{}: a paper without findings cannot score parity",
            paper.name()
        );
        for finding in &findings {
            assert!(
                global_ids.insert(finding.id),
                "{}: finding id {} reused across the registry",
                paper.name(),
                finding.id
            );
        }
    }
}

#[test]
fn every_finding_evaluates_on_generated_data() {
    for paper in all_publications() {
        // Small-but-stable sample: enough rows for rare outcomes (e.g.
        // Assari's 4% mortality) without slowing the smoke test down.
        let n = paper.dataset().paper_n().min(4_000);
        let data = paper.generate(n, 20230531);
        assert_eq!(data.n_rows(), n);
        for finding in paper.findings() {
            let stats = finding.evaluate(&data).unwrap_or_else(|e| {
                panic!("{} #{}: evaluate failed: {e}", paper.name(), finding.id)
            });
            assert!(
                !stats.is_empty(),
                "{} #{}: a finding must produce at least one statistic",
                paper.name(),
                finding.id
            );
        }
    }
}
