//! End-to-end epistemic-parity runs on a reduced grid: the full pipeline
//! from data generation through synthesis to parity scoring and reporting.

use std::time::Duration;
use synrd::benchmark::{run_paper, BenchmarkConfig, CellStatus};
use synrd::parity::{aggregate, paper_summary};
use synrd::publication::publication_by_id;
use synrd::report::render_fig3_block;
use synrd_synth::SynthKind;

/// A tiny-but-real configuration: 2 ε values, 2 seeds, 2 draws, 2 synths.
fn mini_config() -> BenchmarkConfig {
    BenchmarkConfig {
        epsilons: vec![1.0, std::f64::consts::E],
        seeds: 2,
        bootstraps: 2,
        data_scale: 0.05,
        min_rows: 1_500,
        data_seed: 99,
        threads: 4,
        fit_threads: None,
        fit_timeout: Some(Duration::from_secs(300)),
        restrict_privmrf: true,
        synthesizers: vec![SynthKind::Mst, SynthKind::Gem],
    }
}

#[test]
fn parity_pipeline_on_fruiht() {
    let paper = publication_by_id("fruiht2018").unwrap();
    let config = mini_config();
    let report = run_paper(paper.as_ref(), &config).unwrap();

    assert_eq!(report.cells.len(), 2); // 2 synthesizers
    assert_eq!(report.cells[0].len(), 2); // 2 epsilons
    assert_eq!(report.findings.len(), 6);

    for row in &report.cells {
        for cell in row {
            assert_eq!(cell.status, CellStatus::Ok);
            for &p in &cell.parity {
                assert!((0.0..=1.0).contains(&p), "parity out of range: {p}");
            }
        }
    }
    // Fruiht is one of the papers where every synthesizer achieves high
    // parity in the paper; MST at ε=e should be near-perfect here too.
    let mst_cell = &report.cells[0][1];
    assert!(
        mst_cell.mean_parity() > 0.7,
        "MST parity on Fruiht = {:.3}",
        mst_cell.mean_parity()
    );

    // Control row: resampling the real data must reproduce nearly all
    // findings (the paper reports >97% of findings at 100%).
    let control_mean: f64 = report.control.iter().sum::<f64>() / report.control.len() as f64;
    assert!(control_mean > 0.8, "control mean = {control_mean:.3}");

    // Rendering must include every row and the control.
    let text = render_fig3_block(&report);
    assert!(text.contains("MST"));
    assert!(text.contains("GEM"));
    assert!(text.contains("bootstrap"));
}

#[test]
fn aggregation_produces_fig4_series() {
    let config = mini_config();
    let reports: Vec<_> = ["fruiht2018", "pierce2019"]
        .iter()
        .map(|id| {
            let paper = publication_by_id(id).unwrap();
            run_paper(paper.as_ref(), &config).unwrap()
        })
        .collect();
    let agg = aggregate(&reports).unwrap();
    assert_eq!(agg.epsilons.len(), 2);
    assert_eq!(agg.parity.len(), 2); // 2 synthesizers
    for (_, series) in &agg.parity {
        for v in series {
            assert!(v.is_finite());
            assert!((0.0..=1.0).contains(v));
        }
    }
    let summary = paper_summary(&reports[0]);
    assert_eq!(summary.len(), 2);
}

#[test]
fn parallel_grid_is_bitwise_identical_to_sequential() {
    // The tentpole determinism guarantee: every trial seed is a word of the
    // cell's (master, paper, synth, ε) ChaCha8 keystream, so the rayon grid
    // must reproduce the sequential grid bit-for-bit, regardless of worker
    // count or scheduling. `threads: 4` builds a 4-worker pool inside
    // run_paper, so the parallel path genuinely multi-threads even on a
    // single-CPU machine.
    let paper = publication_by_id("fruiht2018").unwrap();
    let config = BenchmarkConfig {
        seeds: 1,
        bootstraps: 2,
        min_rows: 1_000,
        ..mini_config()
    };
    let sequential = run_paper(
        paper.as_ref(),
        &BenchmarkConfig {
            threads: 1,
            ..config.clone()
        },
    )
    .unwrap();
    let parallel = run_paper(
        paper.as_ref(),
        &BenchmarkConfig {
            threads: 4,
            ..config.clone()
        },
    )
    .unwrap();
    assert!(
        parallel.bitwise_eq(&sequential),
        "parallel grid diverged from sequential:\n  sequential: {:?}\n  parallel: {:?}",
        sequential.cells,
        parallel.cells,
    );
    // And a second parallel run reproduces the first exactly (no hidden
    // entropy anywhere in the pipeline).
    let again = run_paper(
        paper.as_ref(),
        &BenchmarkConfig {
            threads: 4,
            ..config
        },
    )
    .unwrap();
    assert!(again.bitwise_eq(&parallel));
}

#[test]
fn cells_use_distinct_seed_streams() {
    // Regression test for the seed-sharing bug where every (synth, ε) cell
    // reused the same fit seed: the keystreams of two different cells must
    // differ in their first trial seed.
    use synrd_dp::grid_seed;
    let a = grid_seed(99, "fruiht2018", "MST", 1.0, 0);
    let b = grid_seed(99, "fruiht2018", "MST", std::f64::consts::E, 0);
    let c = grid_seed(99, "fruiht2018", "GEM", 1.0, 0);
    let d = grid_seed(99, "saw2018", "MST", 1.0, 0);
    assert_ne!(a, b, "epsilon must decorrelate cell seeds");
    assert_ne!(a, c, "synthesizer must decorrelate cell seeds");
    assert_ne!(a, d, "paper must decorrelate cell seeds");
}

#[test]
fn privmrf_restriction_skips_off_epsilon_cells() {
    let paper = publication_by_id("saw2018").unwrap();
    let config = BenchmarkConfig {
        synthesizers: vec![SynthKind::PrivMrf],
        epsilons: vec![(-2.0f64).exp(), 1.0],
        seeds: 1,
        bootstraps: 1,
        data_scale: 0.05,
        min_rows: 1_000,
        ..mini_config()
    };
    let report = run_paper(paper.as_ref(), &config).unwrap();
    assert_eq!(report.cells[0][0].status, CellStatus::Skipped);
    assert_eq!(report.cells[0][1].status, CellStatus::Ok);
}

#[test]
fn infeasible_cells_are_crosshatched_not_fatal() {
    let paper = publication_by_id("jeong2021").unwrap();
    let config = BenchmarkConfig {
        synthesizers: vec![SynthKind::Mst],
        epsilons: vec![1.0],
        seeds: 1,
        bootstraps: 1,
        data_scale: 0.05,
        min_rows: 800,
        ..mini_config()
    };
    let report = run_paper(paper.as_ref(), &config).unwrap();
    assert!(matches!(
        report.cells[0][0].status,
        CellStatus::Infeasible(_)
    ));
    let text = render_fig3_block(&report);
    assert!(text.contains('/'), "crosshatch missing:\n{text}");
}
