//! Workspace umbrella for the SynRD epistemic-parity reproduction.
//!
//! The real functionality lives in the `crates/` workspace members; this
//! crate exists to host the workspace-level integration tests in `tests/`
//! and the runnable walkthroughs in `examples/`, and re-exports the member
//! crates under one roof for convenience:
//!
//! ```no_run
//! use synrd_repro::synrd::{run_paper, BenchmarkConfig};
//! use synrd_repro::synrd::publication_by_id;
//!
//! let paper = publication_by_id("saw2018").expect("registered paper");
//! let report = run_paper(paper.as_ref(), &BenchmarkConfig::quick()).expect("run");
//! assert_eq!(report.paper_id, "saw2018");
//! ```

pub use synrd;
pub use synrd_data;
pub use synrd_dp;
pub use synrd_stats;
pub use synrd_synth;
