//! Offline stand-in for the subset of `criterion` that synrd's benches use.
//!
//! Provides `criterion_group!` / `criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter` and `black_box`.
//! Instead of criterion's statistical analysis it runs a short warmup, then
//! `sample_size` timed samples, and prints mean / min / max wall-clock time
//! per sample. Good enough to rank implementations and catch order-of-
//! magnitude regressions offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identify a case by its parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    /// Identify a case by function name and parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// Runs one benchmark body repeatedly.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Time `body`, once per sample, after one untimed warmup call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        black_box(body()); // warmup
        for _ in 0..self.samples {
            let started = Instant::now();
            black_box(body());
            self.timings.push(started.elapsed());
        }
    }
}

fn run_one(group: Option<&str>, name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        timings: Vec::new(),
    };
    f(&mut bencher);
    let full_name = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    if bencher.timings.is_empty() {
        println!("{full_name:<60} (no samples)");
        return;
    }
    let total: Duration = bencher.timings.iter().sum();
    let mean = total / bencher.timings.len() as u32;
    let min = bencher.timings.iter().min().expect("nonempty");
    let max = bencher.timings.iter().max().expect("nonempty");
    println!(
        "{full_name:<60} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  ({} samples)",
        bencher.timings.len()
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(None, name, self.default_samples, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.default_samples;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            samples,
        }
    }
}

/// A named group of benchmarks with a shared sample size.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(Some(&self.name), name, self.samples, &mut f);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut adapted = |b: &mut Bencher| f(b, input);
        run_one(Some(&self.name), &id.label, self.samples, &mut adapted);
        self
    }

    /// Finish the group (printing is immediate; this is a no-op for
    /// criterion API compatibility).
    pub fn finish(self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter(7usize), &7usize, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut criterion = Criterion::default();
        demo(&mut criterion);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(10).label, "10");
        assert_eq!(BenchmarkId::new("fit", "MST").label, "fit/MST");
    }
}
