//! Offline stand-in for the subset of the `rand` 0.8 API that synrd uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! this minimal, API-compatible implementation instead of the real crate:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] with `gen`, `gen_range`,
//!   `gen_bool` and splitmix64-based `seed_from_u64`;
//! * [`rngs::StdRng`] — a xoshiro256++ generator (not the upstream ChaCha12;
//!   streams are deterministic but not bit-compatible with crates.io rand);
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`;
//! * [`distributions::Standard`] / [`distributions::Distribution`].
//!
//! Everything is deterministic: there is intentionally **no** `thread_rng`
//! or `from_entropy`, so code cannot accidentally seed from the OS.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from the full raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded to the full seed via splitmix64 (the
    /// same scheme rand 0.8 documents for this method).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            let bytes = (z ^ (z >> 31)).to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A random value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded uniform integer in `[0, span)`; the modulo bias is
/// below 2⁻⁶⁴ × span, negligible for benchmark workloads.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let unit: f64 = Standard.sample(rng);
                self.start + (unit as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let unit: f64 = Standard.sample(rng);
                lo + (unit as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            let v = rng.gen_range(0..6usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all bucket values reachable");
        for _ in 0..1_000 {
            let v = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&v));
            let f = rng.gen_range(2.0f64..5.0);
            assert!((2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - 0.25).abs() < 0.02, "freq = {freq}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
