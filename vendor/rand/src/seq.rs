//! Sequence helpers (`shuffle`, `choose`).

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_handles_empty_and_nonempty() {
        let mut rng = StdRng::seed_from_u64(9);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [1u32, 2, 3];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
    }
}
