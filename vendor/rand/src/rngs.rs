//! Named generator types.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++ (Blackman
/// & Vigna). Not bit-compatible with crates.io rand's ChaCha12-based
/// `StdRng`, but a high-quality, fast, pure-Rust generator with the same
/// seeding interface.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [
                0x9e37_79b9_7f4a_7c15,
                0xbf58_476d_1ce4_e5b9,
                0x94d0_49bb_1331_11eb,
                0x2545_f491_4f6c_dd1d,
            ];
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_remapped() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), 0);
    }
}
