//! Offline stand-in for `rand_chacha`, providing [`ChaCha8Rng`].
//!
//! This is a genuine ChaCha8 keystream generator (Bernstein's ChaCha with 8
//! rounds, the standard RFC 8439 quarter-round on a 16-word state), exposed
//! through the vendored [`rand`] traits. Given the same 32-byte key it
//! produces the standard ChaCha8 keystream with the 64-bit counter / 64-bit
//! nonce layout, consumed as little-endian `u32` words.

use rand::{RngCore, SeedableRng};

/// Number of ChaCha double-rounds (8 rounds total).
const DOUBLE_ROUNDS: usize = 4;

/// A ChaCha8 random number generator, seeded from a 32-byte key.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words 4..12 of the initial state.
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// "expand 32-byte k" — the standard ChaCha constants.
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    /// Seek the keystream to an absolute 32-bit-word position (ChaCha is a
    /// counter-mode cipher, so seeking is O(1) plus one block computation).
    pub fn set_word_pos(&mut self, word_offset: u64) {
        self.counter = word_offset / 16;
        self.refill();
        self.index = (word_offset % 16) as usize;
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&Self::SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14..16]: nonce, fixed to zero.
        let initial = state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            let mut bytes = [0u8; 4];
            bytes.copy_from_slice(&seed[i * 4..(i + 1) * 4]);
            *word = u32::from_le_bytes(bytes);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_key_sensitive() {
        let mut a = ChaCha8Rng::from_seed([1u8; 32]);
        let mut b = ChaCha8Rng::from_seed([1u8; 32]);
        let mut c = ChaCha8Rng::from_seed([2u8; 32]);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn seed_from_u64_works() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn keystream_spans_blocks() {
        // 16 words per block: word 17 must come from the second block.
        let mut rng = ChaCha8Rng::from_seed([7u8; 32]);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let beyond = rng.next_u32();
        assert_eq!(first_block.len(), 16);
        // Not a strong statement, but the state must have advanced.
        assert_ne!(first_block[0], beyond);
    }

    #[test]
    fn set_word_pos_matches_sequential_stream() {
        let mut seq = ChaCha8Rng::from_seed([9u8; 32]);
        let words: Vec<u32> = (0..40).map(|_| seq.next_u32()).collect();
        for pos in [0u64, 1, 15, 16, 17, 39] {
            let mut seek = ChaCha8Rng::from_seed([9u8; 32]);
            seek.set_word_pos(pos);
            assert_eq!(seek.next_u32(), words[pos as usize], "word {pos}");
        }
    }

    #[test]
    fn bits_look_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        let freq = f64::from(ones) / 64_000.0;
        assert!((freq - 0.5).abs() < 0.01, "bit frequency {freq}");
    }
}
