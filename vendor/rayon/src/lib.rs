//! Offline stand-in for the subset of `rayon` that synrd uses.
//!
//! Provides `par_iter()` / `into_par_iter()` with `map`, `for_each` and
//! `collect`, executed on scoped `std::thread` workers pulling items from a
//! shared atomic cursor (dynamic scheduling, like rayon's work stealing at
//! whole-item granularity). Results preserve input order regardless of
//! completion order, and a panicking item propagates the panic to the
//! caller, as with real rayon.
//!
//! Differences from real rayon: iterators are eager (items are collected
//! into a `Vec` up front), pools don't own persistent workers (threads are
//! spawned per call — fine for the coarse-grained cells this workspace
//! parallelizes), and only the combinators listed above exist. The worker
//! count is, in precedence order: the innermost [`ThreadPool::install`]
//! scope, `RAYON_NUM_THREADS`, available parallelism.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`] (0 = none).
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads a parallel call will use.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(Cell::get);
    if installed > 0 {
        return installed;
    }
    if let Some(n) = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Builder for a worker pool with an explicit thread count.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error from [`ThreadPoolBuilder::build`] (this shim cannot actually fail;
/// the type exists for rayon API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Start building (0 threads = use the default count).
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Set the worker count for parallel calls made inside this pool.
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    /// Finish building.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A worker pool: parallel calls made inside [`install`](ThreadPool::install)
/// use its thread count instead of the default.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's worker count governing any parallel calls
    /// it makes (on this thread). The previous count is restored on exit,
    /// including on panic.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(INSTALLED_THREADS.with(Cell::get));
        INSTALLED_THREADS.with(|c| c.set(self.num_threads));
        op()
    }
}

/// Order-preserving dynamic-scheduled parallel map.
fn parallel_map<I, R, F>(items: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let n = items.len();
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let slots = &slots;
    let results = &results;
    let cursor = &cursor;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("item slot poisoned")
                    .take()
                    .expect("item taken twice");
                let out = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .iter()
        .map(|m| {
            m.lock()
                .expect("result slot poisoned")
                .take()
                .expect("worker completed every claimed item")
        })
        .collect()
}

/// An eager "parallel iterator": the not-yet-mapped item buffer.
pub struct ParIter<I> {
    items: Vec<I>,
}

/// A parallel iterator with a pending `map`.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// Item yielded by the parallel iterator.
    type Item: Send;
    /// Begin a parallel pipeline over `self`.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// Conversion into a parallel iterator over references (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Reference item type.
    type Item: Send + 'a;
    /// Begin a parallel pipeline over `&self`'s elements.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for std::ops::RangeInclusive<T>
where
    std::ops::RangeInclusive<T>: Iterator<Item = T>,
{
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The combinators shared by every stage of the pipeline.
pub trait ParallelIterator: Sized {
    /// Item type flowing out of this stage.
    type Item: Send;

    /// Run the pipeline, yielding results in input order.
    fn run(self) -> Vec<Self::Item>;

    /// Map each item through `f` in parallel.
    fn map<R, F>(self, f: F) -> ParMap<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        ParMap {
            items: vec![self],
            f,
        }
    }

    /// Apply `f` to every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let staged = self.run();
        parallel_map(staged, f);
    }

    /// Collect results (in input order) into any `FromIterator` collection.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.run().into_iter().collect()
    }
}

impl<I: Send> ParallelIterator for ParIter<I> {
    type Item = I;
    fn run(self) -> Vec<I> {
        self.items
    }
}

impl<P, R, F> ParallelIterator for ParMap<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync,
{
    type Item = R;
    fn run(self) -> Vec<R> {
        let ParMap { items, f } = self;
        let staged: Vec<P::Item> = items.into_iter().flat_map(ParallelIterator::run).collect();
        parallel_map(staged, f)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..100usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice_refs() {
        let data = vec![1u64, 2, 3, 4];
        let out: Vec<u64> = data.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4, 5]);
        assert_eq!(data.len(), 4); // still owned by caller
    }

    #[test]
    fn chained_maps_compose() {
        let out: Vec<String> = (0..5usize)
            .into_par_iter()
            .map(|i| i + 10)
            .map(|i| i.to_string())
            .collect();
        assert_eq!(out, vec!["10", "11", "12", "13", "14"]);
    }

    #[test]
    fn for_each_touches_every_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sum = AtomicUsize::new(0);
        (1..=100usize).into_par_iter().for_each(|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn installed_pool_overrides_thread_count() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        let (inside, nested, outside) = {
            let inside = pool.install(crate::current_num_threads);
            let inner_pool = crate::ThreadPoolBuilder::new()
                .num_threads(2)
                .build()
                .unwrap();
            let nested = pool.install(|| inner_pool.install(crate::current_num_threads));
            (inside, nested, crate::current_num_threads())
        };
        assert_eq!(inside, 3);
        assert_eq!(nested, 2);
        assert_ne!(outside, 0); // default restored after install
                                // Work still completes (and in order) inside a pool.
        let out: Vec<usize> =
            pool.install(|| (0..20usize).into_par_iter().map(|i| i + 1).collect());
        assert_eq!(out, (1..=20).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        (0..8usize)
            .into_par_iter()
            .map(|i| {
                if i == 3 {
                    panic!("boom");
                }
                i
            })
            .collect::<Vec<_>>();
    }
}
