//! Value-generation strategies.

use crate::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Each element drawn from the strategy at the same position (used by the
/// data proptests to build per-column code ranges).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_vecs_generate() {
        let mut rng = TestRng::seed_from_u64(5);
        let strategy = (0usize..10, -1.0f64..1.0).prop_map(|(a, b)| (a, b.abs()));
        for _ in 0..100 {
            let (a, b) = strategy.generate(&mut rng);
            assert!(a < 10);
            assert!((0.0..1.0).contains(&b));
        }
        let per_column = vec![0u32..2, 0u32..5, 0u32..7];
        let row = per_column.generate(&mut rng);
        assert_eq!(row.len(), 3);
        assert!(row[0] < 2 && row[1] < 5 && row[2] < 7);
    }

    #[test]
    fn flat_map_threads_dependencies() {
        let mut rng = TestRng::seed_from_u64(6);
        let strategy = (1usize..=4).prop_flat_map(|n| (Just(n), n..n + 1));
        for _ in 0..50 {
            let (n, m) = strategy.generate(&mut rng);
            assert_eq!(n, m);
        }
    }
}
