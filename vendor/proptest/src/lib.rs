//! Offline stand-in for the subset of `proptest` that synrd's property
//! tests use.
//!
//! Implements the [`Strategy`] trait (ranges, tuples, `Just`, vectors,
//! `prop_map` / `prop_flat_map`), the [`proptest!`] test macro and the
//! `prop_assert*` / `prop_assume!` macros. Differences from real proptest:
//! cases are generated from a *deterministic* per-test seed (reported on
//! failure, overridable via `PROPTEST_SEED`; case count via
//! `PROPTEST_CASES`, default 64), and failing inputs are not shrunk.

use rand::rngs::StdRng;
pub use rand::SeedableRng;

pub mod collection;
pub mod strategy;

pub use strategy::{Just, Strategy};

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, TestCaseError,
    };
}

/// RNG used to drive strategies.
pub type TestRng = StdRng;

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped, not failed.
    Reject(String),
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(message.into())
    }

    /// Build a rejection with a message.
    pub fn reject(message: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(message.into())
    }
}

/// Number of cases to run per property (`PROPTEST_CASES`, default 64).
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// Deterministic master seed for a property test: FNV-1a of the test path,
/// overridable via `PROPTEST_SEED` for replaying a reported failure.
pub fn master_seed(test_path: &str) -> u64 {
    if let Some(seed) = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        return seed;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The per-test driver behind [`proptest!`]; not public API.
pub fn run_property<F>(test_path: &str, body: F)
where
    F: Fn(&mut TestRng) -> Result<(), TestCaseError>,
{
    let cases = case_count();
    let master = master_seed(test_path);
    let mut rejected = 0u64;
    let max_rejects = cases.saturating_mul(16).max(1024);
    let mut case = 0u64;
    let mut stream = 0u64;
    while case < cases {
        let seed = master ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        stream += 1;
        let mut rng = TestRng::seed_from_u64(seed);
        match body(&mut rng) {
            Ok(()) => case += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "{test_path}: too many prop_assume! rejections ({rejected})"
                );
            }
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "{test_path}: property failed on case {case}: {message}\n\
                     (replay with PROPTEST_SEED={master})"
                );
            }
        }
    }
}

/// Defines property tests. Each function parameter is drawn from the
/// strategy to the right of its `in` keyword; the body may use the
/// `prop_assert*` and `prop_assume!` macros.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_property(concat!(module_path!(), "::", stringify!($name)), |rng| {
                    $(let $pat = $crate::Strategy::generate(&($strategy), rng);)+
                    #[allow(unreachable_code)]
                    {
                        $body
                        Ok(())
                    }
                });
            }
        )*
    };
}

/// Like `assert!`, but reports the failing case and replay seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Like `assert_eq!`, but reports the failing case and replay seed.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {left:?}, right: {right:?})",
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
}

/// Like `assert_ne!`, but reports the failing case and replay seed.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left != right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {left:?})",
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
}

/// Skip the current case (without failing) when a precondition is unmet.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Addition commutes (sanity of macro plumbing + int strategies).
        #[test]
        fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        /// Tuples, maps and vec strategies compose.
        #[test]
        fn composed_strategies(
            (len, xs) in (1usize..=8).prop_flat_map(|len| {
                (Just(len), crate::collection::vec(-1.0f64..1.0, len..=len))
            }),
        ) {
            prop_assert_eq!(xs.len(), len);
            for x in &xs {
                prop_assert!((-1.0..1.0).contains(x), "out of range: {x}");
            }
        }

        /// prop_assume rejects without failing.
        #[test]
        fn assume_filters(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn master_seed_is_stable_per_path() {
        assert_eq!(crate::master_seed("a::b"), crate::master_seed("a::b"));
        assert_ne!(crate::master_seed("a::b"), crate::master_seed("a::c"));
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_report_seed() {
        crate::run_property("demo", |_| Err(crate::TestCaseError::fail("nope")));
    }
}
