//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng;

/// Admissible length range for [`vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

/// Strategy for vectors whose elements come from `element` and whose length
/// lies in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = TestRng::seed_from_u64(8);
        let s = vec(0u32..10, 2..=5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let fixed = vec(0u32..3, 4usize..5);
        assert_eq!(fixed.generate(&mut rng).len(), 4);
    }
}
