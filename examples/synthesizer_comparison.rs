//! Compare all six synthesizers on one paper: parity, fit time, and
//! 1-way marginal fidelity — the trade-off surface of §7.
//!
//! ```text
//! cargo run --release --example synthesizer_comparison
//! ```

use std::time::Instant;
use synrd::publication_by_id;
use synrd_data::Marginal;
use synrd_synth::{SynthError, SynthKind};

fn main() {
    let paper = publication_by_id("fruiht2018").expect("registered paper");
    let data = paper.generate(4_173, 42); // the paper's sample size
    let findings = paper.findings();
    let real_stats: Vec<Vec<f64>> = findings
        .iter()
        .map(|f| f.evaluate(&data).expect("real stats"))
        .collect();
    let eps = std::f64::consts::E;

    println!("paper: {} at eps = e\n", paper.name());
    println!(
        "{:<12} {:>9} {:>10} {:>12}",
        "synthesizer", "parity", "fit (s)", "1-way L1"
    );
    for kind in SynthKind::ALL {
        let mut synth = kind.build();
        let started = Instant::now();
        match synth.fit(&data, kind.native_privacy(eps, data.n_rows()), 3) {
            Ok(()) => {}
            Err(SynthError::Infeasible { .. }) => {
                println!(
                    "{:<12} {:>9} {:>10} {:>12}",
                    kind.name(),
                    "infeas.",
                    "-",
                    "-"
                );
                continue;
            }
            Err(e) => {
                println!("{:<12} failed: {e}", kind.name());
                continue;
            }
        }
        let fit_s = started.elapsed().as_secs_f64();
        let synthetic = synth.sample(data.n_rows(), 5).expect("sampling");

        let reproduced = findings
            .iter()
            .zip(&real_stats)
            .filter(|(f, real)| {
                f.evaluate(&synthetic)
                    .map(|s| f.reproduced(real, &s))
                    .unwrap_or(false)
            })
            .count();
        let parity = reproduced as f64 / findings.len() as f64;

        // Mean 1-way marginal L1 distance.
        let mut l1 = 0.0;
        for a in 0..data.n_attrs() {
            let real_m = Marginal::count(&data, &[a]).expect("marginal");
            let synth_m = Marginal::count(&synthetic, &[a]).expect("marginal");
            l1 += real_m.l1_distance(&synth_m).expect("same shape");
        }
        l1 /= data.n_attrs() as f64;

        println!(
            "{:<12} {:>9.3} {:>10.2} {:>12.4}",
            kind.name(),
            parity,
            fit_s,
            l1
        );
    }
}
