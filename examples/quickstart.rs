//! Quickstart: measure the epistemic parity of one synthesizer on one paper.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Mirrors the SynRD usage example in §6 of the paper: pick a publication,
//! fit a synthesizer on its (generated) real data, sample synthetic data,
//! and check each finding on both sides.

use synrd::publication_by_id;
use synrd_synth::SynthKind;

fn main() {
    // 1. A publication from the benchmark: Saw et al. 2018 (STEM
    //    aspirations, HSLS:09).
    let paper = publication_by_id("saw2018").expect("registered paper");
    let data = paper.generate(5_000, 42);
    println!(
        "paper: {} ({} rows, {} variables)",
        paper.name(),
        data.n_rows(),
        data.n_attrs()
    );

    // 2. Fit MST at the paper's preferred privacy level eps = e.
    let eps = std::f64::consts::E;
    let mut synth = SynthKind::Mst.build();
    synth
        .fit(&data, SynthKind::Mst.native_privacy(eps, data.n_rows()), 7)
        .expect("MST fit");
    let synthetic = synth.sample(data.n_rows(), 11).expect("sampling");

    // 3. Re-run every finding on real and synthetic data.
    let mut reproduced = 0usize;
    let findings = paper.findings();
    println!("\n{:<4} {:<55} {:>10}", "id", "finding", "reproduced");
    for finding in &findings {
        let real_stats = finding.evaluate(&data).expect("real stats");
        let holds = match finding.evaluate(&synthetic) {
            Ok(synth_stats) => finding.reproduced(&real_stats, &synth_stats),
            Err(_) => false,
        };
        reproduced += usize::from(holds);
        println!(
            "#{:<3} {:<55} {:>10}",
            finding.id,
            finding.name,
            if holds { "yes" } else { "NO" }
        );
    }
    println!(
        "\nepistemic parity (single draw): {reproduced}/{} = {:.2}",
        findings.len(),
        reproduced as f64 / findings.len() as f64
    );
}
