//! Compute the Table 1 meta-features for any benchmark dataset — the
//! dataset-characterization lens (§5.3) that explains which papers are hard
//! for DP synthesis (large n, large domain, low mutual information).
//!
//! ```text
//! cargo run --release --example metafeatures [dataset_id ...]
//! ```

use synrd_data::{meta_features, BenchmarkDataset};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selected: Vec<BenchmarkDataset> = if args.is_empty() {
        vec![
            BenchmarkDataset::Saw2018,
            BenchmarkDataset::Iverson2021,
            BenchmarkDataset::Lee2021,
            BenchmarkDataset::Adult,
        ]
    } else {
        BenchmarkDataset::ALL
            .into_iter()
            .filter(|d| args.iter().any(|a| a == d.id()))
            .collect()
    };

    let mut rows = Vec::new();
    for ds in selected {
        let n = (ds.paper_n() / 10).max(2_000);
        let data = ds.generate(n, 1);
        rows.push((ds.name(), meta_features(&data).expect("meta-features")));
    }
    print!("{}", synrd::report::render_table1(&rows));
    println!("\nInterpretation: low mutual information (Iverson) starves marginal");
    println!("selection; high skew (Adult) challenges binning; large domains (Lee)");
    println!("stress junction-tree size limits.");
}
