//! False-discovery extension (§8 "Future work: Characterizing false
//! discoveries"): the paper proposes extending epistemic parity to quantify
//! how often DP noise *creates* findings that do not exist in the real data
//! — the file-drawer problem in reverse.
//!
//! This example instantiates that proposal on Iverson & Terry's null
//! relationships: football participation is, by construction, unrelated to
//! adult depression and suicidality. We synthesize many datasets per
//! synthesizer and count how often a researcher applying a conventional
//! two-proportion z-test (α = 0.05) to the synthetic data would "discover" a
//! football effect that the real data does not contain.
//!
//! ```text
//! cargo run --release --example false_discovery
//! ```

use synrd_data::BenchmarkDataset;
use synrd_stats::two_proportion_z;
use synrd_synth::SynthKind;

/// Two-sided significance test of a group gap on one dataset.
fn spurious_discovery(ds: &synrd_data::Dataset, outcome: &str) -> bool {
    let football = ds.domain().index_of("football").expect("schema");
    let attr = ds.domain().index_of(outcome).expect("schema");
    let fb = ds.filter_rows(|r| r.get(football) == 1);
    let no = ds.filter_rows(|r| r.get(football) == 0);
    if fb.is_empty() || no.is_empty() {
        return false;
    }
    let p1 = fb.mean_of(attr).expect("binary outcome");
    let p2 = no.mean_of(attr).expect("binary outcome");
    two_proportion_z(p1, fb.n_rows(), p2, no.n_rows())
        .map(|t| t.significant(0.05))
        .unwrap_or(false)
}

fn main() {
    let n = BenchmarkDataset::Iverson2021.paper_n();
    let real = BenchmarkDataset::Iverson2021.generate(n, 77);
    let eps = std::f64::consts::E;
    let draws = 20;

    println!("False-discovery rates on planted-null relationships");
    println!("(football -> depression / suicidality; {draws} draws per synthesizer, eps = e)\n");

    // Baseline: the real data should not discover anything (alpha = 5%).
    let real_dep = spurious_discovery(&real, "dep_adult");
    let real_suic = spurious_discovery(&real, "suicidality_adult");
    println!(
        "{:<12} depression: {:<8} suicidality: {:<8}",
        "real data",
        if real_dep { "FALSE+" } else { "null ok" },
        if real_suic { "FALSE+" } else { "null ok" }
    );

    for kind in [
        SynthKind::Mst,
        SynthKind::PrivBayes,
        SynthKind::PateCtgan,
        SynthKind::Gem,
    ] {
        let mut synth = kind.build();
        if synth.fit(&real, kind.native_privacy(eps, n), 13).is_err() {
            println!("{:<12} infeasible", kind.name());
            continue;
        }
        let mut dep_hits = 0usize;
        let mut suic_hits = 0usize;
        for draw in 0..draws {
            let sample = synth.sample(n, 1000 + draw as u64).expect("sampling");
            dep_hits += usize::from(spurious_discovery(&sample, "dep_adult"));
            suic_hits += usize::from(spurious_discovery(&sample, "suicidality_adult"));
        }
        println!(
            "{:<12} depression: {:>5.1}%   suicidality: {:>5.1}%",
            kind.name(),
            100.0 * dep_hits as f64 / draws as f64,
            100.0 * suic_hits as f64 / draws as f64,
        );
    }
    println!("\nRates far above the 5% test level would mean DP noise manufactures");
    println!("publishable-looking effects — the paper's proposed extension metric.");
}
