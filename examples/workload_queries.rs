//! Workload-error evaluation in the style of Tao et al. (2021): how well do
//! the synthesizers answer random range/point query workloads over pairs?
//! This is the *proxy-task* evaluation the epistemic-parity paper argues is
//! not enough — included here so both methodologies can be compared on the
//! same synthetic data.
//!
//! ```text
//! cargo run --release --example workload_queries
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use synrd_data::{BenchmarkDataset, Marginal};
use synrd_synth::{all_pairs, SynthKind};

fn main() {
    let data = BenchmarkDataset::Saw2018.generate(10_000, 9);
    let workload = all_pairs(data.domain());
    let eps = std::f64::consts::E;
    let mut rng = StdRng::seed_from_u64(17);

    // 60 random pair queries: total-variation error of the pair marginal.
    let queries: Vec<&synrd_synth::WorkloadQuery> = (0..60)
        .map(|_| &workload[rng.gen_range(0..workload.len())])
        .collect();

    println!(
        "random pair-marginal workload over {} ({} queries)\n",
        data.domain().size(),
        queries.len()
    );
    println!("{:<12} {:>16}", "synthesizer", "mean TV error");
    for kind in [
        SynthKind::Mst,
        SynthKind::Aim,
        SynthKind::PrivBayes,
        SynthKind::Gem,
    ] {
        let mut synth = kind.build();
        synth
            .fit(&data, kind.native_privacy(eps, data.n_rows()), 23)
            .expect("fit");
        let synthetic = synth.sample(data.n_rows(), 29).expect("sample");
        let mut total = 0.0;
        for q in &queries {
            let real_m = Marginal::count(&data, &q.attrs).expect("marginal");
            let synth_m = Marginal::count(&synthetic, &q.attrs).expect("marginal");
            total += 0.5 * real_m.l1_distance(&synth_m).expect("same shape");
        }
        println!("{:<12} {:>16.4}", kind.name(), total / queries.len() as f64);
    }
    println!("\nAIM and MST are workload-aware / marginal-based and should lead here,");
    println!("even where epistemic parity (fig3) tells a more nuanced story.");
}
