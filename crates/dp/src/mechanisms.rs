//! The base DP mechanisms: Laplace, Gaussian, two-sided geometric, the
//! exponential mechanism, and report-noisy-max via the Gumbel trick.
//!
//! All samplers take an explicit RNG so callers control determinism; privacy
//! parameters are translated to noise scales by [`crate::budget`].

use crate::budget::{gaussian_sigma, laplace_scale};
use crate::error::{DpError, Result};
use rand::Rng;

/// One standard-normal draw (Box–Muller; `rand` core has no normal sampler
/// and we avoid the extra `rand_distr` dependency).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let mut u1: f64 = rng.gen();
    while u1 <= f64::MIN_POSITIVE {
        u1 = rng.gen();
    }
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// One standard Laplace draw (location 0, scale 1) via inverse CDF.
pub fn standard_laplace<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u uniform in (-0.5, 0.5]; sign(u) * ln(1 - 2|u|) inverts the CDF.
    let u: f64 = rng.gen::<f64>() - 0.5;
    let magnitude = -(1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE).ln();
    magnitude * u.signum()
}

/// One standard Gumbel draw (location 0, scale 1).
pub fn standard_gumbel<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let mut u: f64 = rng.gen();
    while u <= f64::MIN_POSITIVE {
        u = rng.gen();
    }
    -(-u.ln()).ln()
}

/// Add ε-DP Laplace noise (L1 sensitivity `sensitivity`) to every entry of
/// `values` in place.
pub fn laplace_mechanism<R: Rng + ?Sized>(
    values: &mut [f64],
    sensitivity: f64,
    epsilon: f64,
    rng: &mut R,
) -> Result<()> {
    let b = laplace_scale(sensitivity, epsilon)?;
    for v in values {
        *v += b * standard_laplace(rng);
    }
    Ok(())
}

/// Add ρ-zCDP Gaussian noise (L2 sensitivity `sensitivity`) to every entry of
/// `values` in place. Returns the σ used (the estimation code needs it to
/// weight measurements).
pub fn gaussian_mechanism<R: Rng + ?Sized>(
    values: &mut [f64],
    sensitivity: f64,
    rho: f64,
    rng: &mut R,
) -> Result<f64> {
    let sigma = gaussian_sigma(sensitivity, rho)?;
    for v in values {
        *v += sigma * standard_normal(rng);
    }
    Ok(sigma)
}

/// Two-sided geometric (discrete Laplace) mechanism for integer-valued
/// queries at ε-DP with sensitivity 1: P(k) ∝ exp(-ε·|k|).
pub fn geometric_mechanism<R: Rng + ?Sized>(value: i64, epsilon: f64, rng: &mut R) -> Result<i64> {
    if !(epsilon.is_finite() && epsilon > 0.0) {
        return Err(DpError::InvalidParameter {
            name: "epsilon",
            value: epsilon,
        });
    }
    let alpha = (-epsilon).exp();
    // Sample magnitude from a geometric distribution, sign uniformly;
    // handle the double-counted zero by rejection.
    loop {
        let u: f64 = rng.gen();
        let magnitude = if alpha <= 0.0 {
            0.0
        } else {
            (u.max(f64::MIN_POSITIVE).ln() / alpha.ln()).floor()
        };
        let negative = rng.gen::<bool>();
        if magnitude == 0.0 && negative {
            continue; // avoid double-weighting zero
        }
        let noise = if negative {
            -(magnitude as i64)
        } else {
            magnitude as i64
        };
        return Ok(value.saturating_add(noise));
    }
}

/// Exponential mechanism: select the index of one candidate with probability
/// ∝ exp(ε·score / (2·sensitivity)). Implemented with the Gumbel-max trick,
/// which is exactly equivalent and needs no normalization.
///
/// # Errors
/// [`DpError::EmptyCandidates`] if `scores` is empty, and parameter errors.
pub fn exponential_mechanism<R: Rng + ?Sized>(
    scores: &[f64],
    sensitivity: f64,
    epsilon: f64,
    rng: &mut R,
) -> Result<usize> {
    if scores.is_empty() {
        return Err(DpError::EmptyCandidates);
    }
    if !(epsilon.is_finite() && epsilon > 0.0) {
        return Err(DpError::InvalidParameter {
            name: "epsilon",
            value: epsilon,
        });
    }
    if !(sensitivity.is_finite() && sensitivity > 0.0) {
        return Err(DpError::InvalidParameter {
            name: "sensitivity",
            value: sensitivity,
        });
    }
    let scale = epsilon / (2.0 * sensitivity);
    let mut best = 0usize;
    let mut best_value = f64::NEG_INFINITY;
    for (i, &s) in scores.iter().enumerate() {
        let value = s * scale + standard_gumbel(rng);
        if value > best_value {
            best_value = value;
            best = i;
        }
    }
    Ok(best)
}

/// Report-noisy-max with Laplace noise: ε-DP selection of the highest-scoring
/// candidate (sensitivity-1 scores).
pub fn report_noisy_max<R: Rng + ?Sized>(
    scores: &[f64],
    sensitivity: f64,
    epsilon: f64,
    rng: &mut R,
) -> Result<usize> {
    if scores.is_empty() {
        return Err(DpError::EmptyCandidates);
    }
    let b = laplace_scale(2.0 * sensitivity, epsilon)?;
    let mut best = 0usize;
    let mut best_value = f64::NEG_INFINITY;
    for (i, &s) in scores.iter().enumerate() {
        let value = s + b * standard_laplace(rng);
        if value > best_value {
            best_value = value;
            best = i;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn laplace_noise_is_centered_with_correct_scale() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let draws: Vec<f64> = (0..n).map(|_| standard_laplace(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 2.0).abs() < 0.1, "var = {var}"); // Var(Lap(1)) = 2
    }

    #[test]
    fn gaussian_mechanism_reports_sigma() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut values = vec![100.0; 10_000];
        let sigma = gaussian_mechanism(&mut values, 1.0, 0.5, &mut rng).unwrap();
        assert!((sigma - 1.0).abs() < 1e-12);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!((mean - 100.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn geometric_is_integer_and_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 40_000;
        let sum: i64 = (0..n)
            .map(|_| geometric_mechanism(10, 1.0, &mut rng).unwrap())
            .sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn exponential_mechanism_prefers_high_scores() {
        let mut rng = StdRng::seed_from_u64(4);
        let scores = [0.0, 0.0, 10.0, 0.0];
        let mut hits = 0;
        for _ in 0..1000 {
            if exponential_mechanism(&scores, 1.0, 2.0, &mut rng).unwrap() == 2 {
                hits += 1;
            }
        }
        assert!(hits > 950, "hits = {hits}");
    }

    #[test]
    fn exponential_mechanism_is_random_at_tiny_epsilon() {
        let mut rng = StdRng::seed_from_u64(5);
        let scores = [0.0, 0.0, 10.0, 0.0];
        let mut hits = 0;
        for _ in 0..4000 {
            if exponential_mechanism(&scores, 1.0, 1e-6, &mut rng).unwrap() == 2 {
                hits += 1;
            }
        }
        // Near-uniform: expect ~1000 of 4000.
        assert!((800..1200).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn noisy_max_prefers_high_scores() {
        let mut rng = StdRng::seed_from_u64(6);
        let scores = [1.0, 5.0, 2.0];
        let mut hits = 0;
        for _ in 0..1000 {
            if report_noisy_max(&scores, 1.0, 4.0, &mut rng).unwrap() == 1 {
                hits += 1;
            }
        }
        assert!(hits > 900, "hits = {hits}");
    }

    #[test]
    fn empty_candidates_error() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(matches!(
            exponential_mechanism(&[], 1.0, 1.0, &mut rng),
            Err(DpError::EmptyCandidates)
        ));
        assert!(matches!(
            report_noisy_max(&[], 1.0, 1.0, &mut rng),
            Err(DpError::EmptyCandidates)
        ));
    }
}
