//! # synrd-dp — differential privacy primitives
//!
//! The privacy substrate shared by all six synthesizers:
//!
//! * [`budget`] — (ε,δ)-DP / ρ-zCDP accounting with the Bun–Steinke
//!   conversions the paper uses to put all mechanisms on one ε axis;
//! * [`mechanisms`] — Laplace, Gaussian, two-sided geometric, exponential
//!   mechanism (Gumbel trick) and report-noisy-max;
//! * [`rng`] — deterministic seed derivation so every experiment is
//!   reproducible bit-for-bit from a single master seed.

pub mod budget;
pub mod error;
pub mod mechanisms;
pub mod rng;

pub use budget::{
    delta_for_n, exponential_epsilon, exponential_rho, gaussian_sigma, laplace_scale, Accountant,
    Privacy,
};
pub use error::{DpError, Result};
pub use mechanisms::{
    exponential_mechanism, gaussian_mechanism, geometric_mechanism, laplace_mechanism,
    report_noisy_max, standard_gumbel, standard_laplace, standard_normal,
};
pub use rng::{derive_seed, derive_seed_indexed, grid_rng, grid_seed, rng_for, rng_for_indexed};
