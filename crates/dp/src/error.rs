//! Error taxonomy for DP primitives.

use std::fmt;

/// Errors produced by mechanisms and budget accounting.
#[derive(Debug, Clone, PartialEq)]
pub enum DpError {
    /// A privacy parameter was non-positive or non-finite.
    InvalidParameter { name: &'static str, value: f64 },
    /// A budget spend would exceed the remaining budget.
    BudgetExhausted { requested: f64, remaining: f64 },
    /// The candidate set of a selection mechanism was empty.
    EmptyCandidates,
}

impl fmt::Display for DpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpError::InvalidParameter { name, value } => {
                write!(f, "invalid privacy parameter {name} = {value}")
            }
            DpError::BudgetExhausted {
                requested,
                remaining,
            } => write!(
                f,
                "budget exhausted: requested rho = {requested}, remaining = {remaining}"
            ),
            DpError::EmptyCandidates => write!(f, "selection mechanism given no candidates"),
        }
    }
}

impl std::error::Error for DpError {}

/// Convenience alias used throughout the DP crate.
pub type Result<T> = std::result::Result<T, DpError>;
