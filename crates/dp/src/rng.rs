//! Deterministic seed derivation.
//!
//! Every stochastic component of the benchmark takes an explicit `u64` seed.
//! To keep independent components decorrelated while reproducible, child
//! seeds are derived from a master seed and a string tag via splitmix64 over
//! an FNV-1a hash of the tag — the same scheme regardless of platform.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// splitmix64 step (the canonical constants from Steele et al.).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a hash of a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic child seed for `(master, tag)`.
pub fn derive_seed(master: u64, tag: &str) -> u64 {
    splitmix64(master ^ fnv1a(tag.as_bytes()))
}

/// Deterministic child seed for `(master, tag, index)` — for per-trial or
/// per-round streams.
pub fn derive_seed_indexed(master: u64, tag: &str, index: u64) -> u64 {
    splitmix64(derive_seed(master, tag) ^ splitmix64(index))
}

/// A seeded RNG for `(master, tag)`.
pub fn rng_for(master: u64, tag: &str) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, tag))
}

/// A seeded RNG for `(master, tag, index)`.
pub fn rng_for_indexed(master: u64, tag: &str, index: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed_indexed(master, tag, index))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic_and_tag_sensitive() {
        assert_eq!(derive_seed(1, "fit"), derive_seed(1, "fit"));
        assert_ne!(derive_seed(1, "fit"), derive_seed(1, "sample"));
        assert_ne!(derive_seed(1, "fit"), derive_seed(2, "fit"));
    }

    #[test]
    fn indexed_streams_differ() {
        let a = derive_seed_indexed(7, "trial", 0);
        let b = derive_seed_indexed(7, "trial", 1);
        assert_ne!(a, b);
        assert_eq!(a, derive_seed_indexed(7, "trial", 0));
    }

    #[test]
    fn splitmix_avalanches_small_inputs() {
        // Consecutive indices must map to very different seeds.
        let s0 = splitmix64(0);
        let s1 = splitmix64(1);
        assert!((s0 ^ s1).count_ones() > 10);
    }
}
