//! Deterministic seed derivation.
//!
//! Every stochastic component of the benchmark takes an explicit `u64` seed.
//! To keep independent components decorrelated while reproducible, child
//! seeds are derived from a master seed and a string tag via splitmix64 over
//! an FNV-1a hash of the tag — the same scheme regardless of platform.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// splitmix64 step (the canonical constants from Steele et al.).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a hash of a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic child seed for `(master, tag)`.
pub fn derive_seed(master: u64, tag: &str) -> u64 {
    splitmix64(master ^ fnv1a(tag.as_bytes()))
}

/// Deterministic child seed for `(master, tag, index)` — for per-trial or
/// per-round streams.
pub fn derive_seed_indexed(master: u64, tag: &str, index: u64) -> u64 {
    splitmix64(derive_seed(master, tag) ^ splitmix64(index))
}

/// A seeded RNG for `(master, tag)`.
pub fn rng_for(master: u64, tag: &str) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, tag))
}

/// A seeded RNG for `(master, tag, index)`.
pub fn rng_for_indexed(master: u64, tag: &str, index: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed_indexed(master, tag, index))
}

/// 32-byte ChaCha8 key identifying one benchmark grid cell: the master seed,
/// the paper, the synthesizer and the (bit-exact) ε value each occupy eight
/// bytes, so any change to any coordinate yields an unrelated keystream.
fn grid_key(master: u64, paper_id: &str, synthesizer: &str, epsilon: f64) -> [u8; 32] {
    let mut key = [0u8; 32];
    key[0..8].copy_from_slice(&splitmix64(master).to_le_bytes());
    key[8..16].copy_from_slice(&fnv1a(paper_id.as_bytes()).to_le_bytes());
    key[16..24].copy_from_slice(&fnv1a(synthesizer.as_bytes()).to_le_bytes());
    key[24..32].copy_from_slice(&epsilon.to_bits().to_le_bytes());
    key
}

/// The ChaCha8 keystream of one benchmark grid cell
/// `(master, paper, synthesizer, ε)`. Every trial seed of the cell is a
/// word of this stream, so cell results are a pure function of the cell's
/// identity — independent of worker-thread scheduling, of which other cells
/// run, and of their order.
pub fn grid_rng(master: u64, paper_id: &str, synthesizer: &str, epsilon: f64) -> ChaCha8Rng {
    ChaCha8Rng::from_seed(grid_key(master, paper_id, synthesizer, epsilon))
}

/// Deterministic seed for trial `trial` of a benchmark grid cell: the
/// `trial`-th 64-bit word of the cell's ChaCha8 keystream (an O(1) seek —
/// ChaCha is a counter-mode cipher).
pub fn grid_seed(master: u64, paper_id: &str, synthesizer: &str, epsilon: f64, trial: u64) -> u64 {
    let mut rng = grid_rng(master, paper_id, synthesizer, epsilon);
    rng.set_word_pos(trial * 2);
    rng.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic_and_tag_sensitive() {
        assert_eq!(derive_seed(1, "fit"), derive_seed(1, "fit"));
        assert_ne!(derive_seed(1, "fit"), derive_seed(1, "sample"));
        assert_ne!(derive_seed(1, "fit"), derive_seed(2, "fit"));
    }

    #[test]
    fn indexed_streams_differ() {
        let a = derive_seed_indexed(7, "trial", 0);
        let b = derive_seed_indexed(7, "trial", 1);
        assert_ne!(a, b);
        assert_eq!(a, derive_seed_indexed(7, "trial", 0));
    }

    #[test]
    fn grid_seed_is_deterministic_and_coordinate_sensitive() {
        let base = grid_seed(1, "saw2018", "MST", 1.0, 0);
        assert_eq!(base, grid_seed(1, "saw2018", "MST", 1.0, 0));
        assert_ne!(base, grid_seed(2, "saw2018", "MST", 1.0, 0), "master");
        assert_ne!(base, grid_seed(1, "lee2021", "MST", 1.0, 0), "paper");
        assert_ne!(base, grid_seed(1, "saw2018", "GEM", 1.0, 0), "synth");
        assert_ne!(base, grid_seed(1, "saw2018", "MST", 2.0, 0), "epsilon");
        assert_ne!(base, grid_seed(1, "saw2018", "MST", 1.0, 1), "trial");
    }

    #[test]
    fn grid_seed_matches_cell_keystream() {
        // grid_seed(…, t) must be the t-th u64 of the cell's grid_rng
        // stream: the seekable and sequential views agree.
        let mut stream = grid_rng(7, "fruiht2018", "AIM", 0.5);
        for trial in 0..20u64 {
            assert_eq!(
                stream.next_u64(),
                grid_seed(7, "fruiht2018", "AIM", 0.5, trial),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn splitmix_avalanches_small_inputs() {
        // Consecutive indices must map to very different seeds.
        let s0 = splitmix64(0);
        let s1 = splitmix64(1);
        assert!((s0 ^ s1).count_ones() > 10);
    }
}
