//! Privacy accounting: (ε,δ)-DP, ρ-zCDP, and the conversions between them.
//!
//! The paper compares synthesizers with different native guarantees — AIM and
//! GEM give ρ-zCDP, MST/PATECTGAN/PrivMRF give (ε,δ)-DP, PrivBayes gives
//! pure (ε,0)-DP — and translates all of them onto a common ε axis using the
//! Bun–Steinke relations (§3):
//!
//! * an (ε,0)-DP mechanism satisfies (ε²/2)-zCDP;
//! * a ρ-zCDP mechanism satisfies (ρ + 2√(ρ·ln(1/δ)), δ)-DP for every δ>0.
//!
//! Internally every synthesizer in this workspace accounts in ρ-zCDP, which
//! composes additively, and converts at its boundary.

use crate::error::{DpError, Result};

/// A privacy guarantee in one of the three currencies used by the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Privacy {
    /// Pure (ε,0)-differential privacy.
    Pure { epsilon: f64 },
    /// Approximate (ε,δ)-differential privacy.
    Approx { epsilon: f64, delta: f64 },
    /// ρ-zero-concentrated differential privacy.
    Zcdp { rho: f64 },
}

fn check_pos(name: &'static str, value: f64) -> Result<()> {
    if !(value.is_finite() && value > 0.0) {
        return Err(DpError::InvalidParameter { name, value });
    }
    Ok(())
}

impl Privacy {
    /// Pure ε-DP.
    pub fn pure(epsilon: f64) -> Result<Privacy> {
        check_pos("epsilon", epsilon)?;
        Ok(Privacy::Pure { epsilon })
    }

    /// Approximate (ε,δ)-DP. δ must lie in (0,1).
    pub fn approx(epsilon: f64, delta: f64) -> Result<Privacy> {
        check_pos("epsilon", epsilon)?;
        if !(delta.is_finite() && delta > 0.0 && delta < 1.0) {
            return Err(DpError::InvalidParameter {
                name: "delta",
                value: delta,
            });
        }
        Ok(Privacy::Approx { epsilon, delta })
    }

    /// ρ-zCDP.
    pub fn zcdp(rho: f64) -> Result<Privacy> {
        check_pos("rho", rho)?;
        Ok(Privacy::Zcdp { rho })
    }

    /// Tightest ρ-zCDP guarantee implied by this privacy statement.
    ///
    /// * Pure ε-DP ⇒ ε²/2-zCDP (Bun–Steinke Prop. 1.4).
    /// * (ε,δ)-DP ⇒ the ρ whose standard conversion back to (ε',δ) gives
    ///   ε' = ε, i.e. ρ = (√(ln(1/δ)+ε) − √(ln(1/δ)))² — this is how the
    ///   paper places zCDP mechanisms on its common ε axis.
    pub fn to_zcdp_rho(self) -> f64 {
        match self {
            Privacy::Pure { epsilon } => epsilon * epsilon / 2.0,
            Privacy::Zcdp { rho } => rho,
            Privacy::Approx { epsilon, delta } => {
                let l = (1.0 / delta).ln();
                let root = (l + epsilon).sqrt() - l.sqrt();
                root * root
            }
        }
    }

    /// (ε,δ)-DP statement implied by this guarantee at a chosen δ.
    /// For ρ-zCDP: ε = ρ + 2√(ρ·ln(1/δ)).
    pub fn to_approx_epsilon(self, delta: f64) -> Result<f64> {
        if !(delta.is_finite() && delta > 0.0 && delta < 1.0) {
            return Err(DpError::InvalidParameter {
                name: "delta",
                value: delta,
            });
        }
        Ok(match self {
            Privacy::Pure { epsilon } => epsilon,
            Privacy::Approx { epsilon, .. } => epsilon,
            Privacy::Zcdp { rho } => rho + 2.0 * (rho * (1.0 / delta).ln()).sqrt(),
        })
    }
}

/// The paper's convention for δ: "cryptographically small, at the very most
/// 1/n, but usually much smaller". We use δ = 1/(n²·10), capped at 1e-5.
pub fn delta_for_n(n: usize) -> f64 {
    let n = n.max(2) as f64;
    (1.0 / (n * n * 10.0)).min(1e-5)
}

/// Additive ρ-zCDP budget accountant.
///
/// Mechanisms draw portions of the total budget with [`Accountant::spend`];
/// overdrafts are errors rather than silent privacy violations.
#[derive(Debug, Clone)]
pub struct Accountant {
    total_rho: f64,
    spent_rho: f64,
}

impl Accountant {
    /// Accountant for a total guarantee.
    pub fn new(privacy: Privacy) -> Accountant {
        Accountant {
            total_rho: privacy.to_zcdp_rho(),
            spent_rho: 0.0,
        }
    }

    /// Total budget in ρ.
    pub fn total(&self) -> f64 {
        self.total_rho
    }

    /// Remaining budget in ρ.
    pub fn remaining(&self) -> f64 {
        (self.total_rho - self.spent_rho).max(0.0)
    }

    /// Spend `rho`, failing on overdraft. A relative tolerance of 1e-9
    /// absorbs floating-point dust from repeated splits.
    pub fn spend(&mut self, rho: f64) -> Result<()> {
        check_pos("rho", rho)?;
        let tolerance = 1e-9 * self.total_rho.max(1.0);
        if rho > self.remaining() + tolerance {
            return Err(DpError::BudgetExhausted {
                requested: rho,
                remaining: self.remaining(),
            });
        }
        self.spent_rho += rho;
        Ok(())
    }

    /// Spend everything that is left, returning the amount.
    pub fn spend_all(&mut self) -> f64 {
        let rho = self.remaining();
        self.spent_rho = self.total_rho;
        rho
    }
}

/// Noise scale σ of the Gaussian mechanism with L2 sensitivity `sensitivity`
/// satisfying ρ-zCDP: ρ = Δ²/(2σ²)  ⇒  σ = Δ·√(1/(2ρ)).
pub fn gaussian_sigma(sensitivity: f64, rho: f64) -> Result<f64> {
    check_pos("sensitivity", sensitivity)?;
    check_pos("rho", rho)?;
    Ok(sensitivity * (1.0 / (2.0 * rho)).sqrt())
}

/// Scale b of the Laplace mechanism with L1 sensitivity `sensitivity`
/// satisfying ε-DP: b = Δ/ε.
pub fn laplace_scale(sensitivity: f64, epsilon: f64) -> Result<f64> {
    check_pos("sensitivity", sensitivity)?;
    check_pos("epsilon", epsilon)?;
    Ok(sensitivity / epsilon)
}

/// zCDP cost of one ε-DP exponential-mechanism invocation: ρ = ε²/8
/// (Cesar & Rogers bound for bounded-range mechanisms; this is what MST and
/// AIM charge for their private selection steps).
pub fn exponential_rho(epsilon: f64) -> Result<f64> {
    check_pos("epsilon", epsilon)?;
    Ok(epsilon * epsilon / 8.0)
}

/// Inverse of [`exponential_rho`]: the selection ε affordable at cost ρ.
pub fn exponential_epsilon(rho: f64) -> Result<f64> {
    check_pos("rho", rho)?;
    Ok((8.0 * rho).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_to_zcdp_matches_bun_steinke() {
        let p = Privacy::pure(2.0).unwrap();
        assert!((p.to_zcdp_rho() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zcdp_epsilon_round_trip() {
        // rho -> epsilon at delta, then epsilon -> rho must return rho.
        let delta = 1e-9;
        for &rho in &[0.001, 0.05, 0.5, 3.0] {
            let eps = Privacy::Zcdp { rho }.to_approx_epsilon(delta).unwrap();
            let back = Privacy::approx(eps, delta).unwrap().to_zcdp_rho();
            assert!(
                (back - rho).abs() < 1e-9 * rho.max(1.0),
                "rho {rho} -> eps {eps} -> {back}"
            );
        }
    }

    #[test]
    fn accountant_rejects_overdraft() {
        let mut acc = Accountant::new(Privacy::zcdp(1.0).unwrap());
        acc.spend(0.6).unwrap();
        assert!(matches!(
            acc.spend(0.6),
            Err(DpError::BudgetExhausted { .. })
        ));
        assert!((acc.remaining() - 0.4).abs() < 1e-12);
        assert!((acc.spend_all() - 0.4).abs() < 1e-12);
        assert_eq!(acc.remaining(), 0.0);
    }

    #[test]
    fn sigma_shrinks_with_budget() {
        let small = gaussian_sigma(1.0, 0.01).unwrap();
        let large = gaussian_sigma(1.0, 1.0).unwrap();
        assert!(small > large);
        // rho = 0.5 => sigma = 1.
        assert!((gaussian_sigma(1.0, 0.5).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_parameters_error() {
        assert!(Privacy::pure(0.0).is_err());
        assert!(Privacy::approx(1.0, 1.5).is_err());
        assert!(Privacy::zcdp(f64::NAN).is_err());
        assert!(gaussian_sigma(-1.0, 0.5).is_err());
        assert!(laplace_scale(1.0, 0.0).is_err());
    }

    #[test]
    fn delta_is_cryptographically_small() {
        assert!(delta_for_n(10_000) <= 1e-5);
        assert!(delta_for_n(10_000) > 0.0);
        assert!(delta_for_n(100) < 1.0 / 100.0);
    }

    #[test]
    fn exponential_rho_round_trip() {
        let rho = exponential_rho(0.8).unwrap();
        assert!((exponential_epsilon(rho).unwrap() - 0.8).abs() < 1e-12);
    }
}
