//! Property-based tests for privacy accounting and mechanism invariants.

use proptest::prelude::*;
use synrd_dp::{exponential_mechanism, gaussian_sigma, rng_for, Accountant, Privacy};

proptest! {
    /// zCDP → (ε,δ) → zCDP round-trips for any positive ρ and small δ.
    #[test]
    fn zcdp_conversion_round_trip(rho in 1e-4f64..50.0, log_delta in -30.0f64..-3.0) {
        let delta = log_delta.exp();
        let eps = Privacy::Zcdp { rho }.to_approx_epsilon(delta).unwrap();
        let back = Privacy::approx(eps, delta).unwrap().to_zcdp_rho();
        prop_assert!((back - rho).abs() < 1e-6 * rho.max(1.0), "{rho} -> {eps} -> {back}");
    }

    /// Larger ε always implies larger ρ at fixed δ (monotonicity).
    #[test]
    fn rho_monotone_in_epsilon(eps in 0.01f64..20.0, bump in 0.01f64..5.0) {
        let delta = 1e-9;
        let lo = Privacy::approx(eps, delta).unwrap().to_zcdp_rho();
        let hi = Privacy::approx(eps + bump, delta).unwrap().to_zcdp_rho();
        prop_assert!(hi > lo);
    }

    /// Gaussian σ decreases monotonically with budget.
    #[test]
    fn sigma_monotone(rho in 1e-4f64..10.0, bump in 1e-4f64..10.0) {
        let lo = gaussian_sigma(1.0, rho).unwrap();
        let hi = gaussian_sigma(1.0, rho + bump).unwrap();
        prop_assert!(hi < lo);
    }

    /// The accountant never lets total spend exceed the budget.
    #[test]
    fn accountant_conserves_budget(
        total in 0.01f64..10.0,
        spends in proptest::collection::vec(0.001f64..1.0, 1..20),
    ) {
        let mut acc = Accountant::new(Privacy::zcdp(total).unwrap());
        let mut spent = 0.0;
        for s in spends {
            if acc.spend(s).is_ok() {
                spent += s;
            }
        }
        prop_assert!(spent <= total * (1.0 + 1e-9));
        prop_assert!(acc.remaining() >= -1e-9);
    }

    /// The exponential mechanism always returns a valid index.
    #[test]
    fn exponential_mechanism_in_range(
        scores in proptest::collection::vec(-100.0f64..100.0, 1..20),
        eps in 0.01f64..10.0,
        seed in 0u64..1000,
    ) {
        let mut rng = rng_for(seed, "proptest");
        let idx = exponential_mechanism(&scores, 1.0, eps, &mut rng).unwrap();
        prop_assert!(idx < scores.len());
    }

    /// Seed derivation: distinct tags give distinct streams (no collisions
    /// across a modest sample).
    #[test]
    fn derive_seed_no_trivial_collisions(master in 0u64..u64::MAX) {
        let a = synrd_dp::derive_seed(master, "alpha");
        let b = synrd_dp::derive_seed(master, "beta");
        prop_assert_ne!(a, b);
    }
}
