//! # synrd-bench — harness regenerating every table and figure
//!
//! One binary per artifact:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table 1 — dataset meta-features |
//! | `table2` | Table 2 — finding counts per type |
//! | `fig1`   | Figure 1 — Fairman visual finding, real vs MST at ε = e |
//! | `fig3`   | Figure 3 — parity heatmap per finding × synthesizer × ε |
//! | `fig4`   | Figure 4 — mean parity / parity variance vs ε |
//!
//! All binaries run at laptop scale by default and accept `--paper-scale`
//! for the full protocol (k = 10, B = 25, paper sample sizes). Criterion
//! benches in `benches/` cover the §7 "computational resources" comparison
//! and our ablations.

use synrd::benchmark::BenchmarkConfig;

/// Parse common CLI flags shared by the figure binaries.
///
/// Supported flags:
/// * `--paper-scale` — full protocol (expect hours of compute);
/// * `--papers a,b,c` — restrict to specific paper ids;
/// * `--seeds K` / `--bootstraps B` / `--scale F` — override grid knobs;
/// * `--threads N` — worker threads for the grid (1 = sequential; results
///   are bit-identical either way).
pub fn config_from_args() -> (BenchmarkConfig, Vec<String>) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = if args.iter().any(|a| a == "--paper-scale") {
        BenchmarkConfig::paper()
    } else {
        BenchmarkConfig::quick()
    };
    let mut papers: Vec<String> = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--papers" => {
                if let Some(list) = it.next() {
                    papers = list.split(',').map(|s| s.trim().to_string()).collect();
                }
            }
            "--seeds" => {
                if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                    config.seeds = v;
                }
            }
            "--bootstraps" => {
                if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                    config.bootstraps = v;
                }
            }
            "--scale" => {
                if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                    config.data_scale = v;
                }
            }
            "--threads" => {
                if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                    config.threads = v;
                }
            }
            _ => {}
        }
    }
    (config, papers)
}

/// The publications selected by `--papers` (all eight when empty).
pub fn selected_publications(papers: &[String]) -> Vec<Box<dyn synrd::Publication>> {
    if papers.is_empty() {
        synrd::all_publications()
    } else {
        papers
            .iter()
            .filter_map(|id| synrd::publication_by_id(id))
            .collect()
    }
}
