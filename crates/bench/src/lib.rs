//! # synrd-bench — harness regenerating every table and figure
//!
//! One binary per artifact:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table 1 — dataset meta-features |
//! | `table2` | Table 2 — finding counts per type |
//! | `fig1`   | Figure 1 — Fairman visual finding, real vs MST at ε = e |
//! | `fig3`   | Figure 3 — parity heatmap per finding × synthesizer × ε |
//! | `fig4`   | Figure 4 — mean parity / parity variance vs ε |
//!
//! All binaries run at laptop scale by default and accept `--paper-scale`
//! for the full protocol (k = 10, B = 25, paper sample sizes). Criterion
//! benches in `benches/` cover the §7 "computational resources" comparison
//! and our ablations.

use std::path::PathBuf;
use synrd::benchmark::{
    assemble_report, run_grid_sharded_with_stores, BenchmarkConfig, CellStore, FitStore,
    PaperReport, Shard,
};
use synrd::Publication;
use synrd_store::{merge_shard_dirs, DiskCellCache, DiskFitCache, SessionFits, WriteOnly};

/// Result-store flags shared by the grid binaries (`fig3`, `fig4`).
#[derive(Debug, Default)]
pub struct StoreOptions {
    /// `--out-dir DIR`: root of the persistent result store.
    pub out_dir: Option<PathBuf>,
    /// `--resume`: serve cached cells instead of recomputing them.
    pub resume: bool,
    /// `--shard i/n`: compute only this shard of the global cell list.
    pub shard: Option<Shard>,
    /// `--merge-shards a,b,c`: union these shard stores into `--out-dir`.
    pub merge_shards: Vec<PathBuf>,
}

impl StoreOptions {
    /// Open the store at `--out-dir` (if given) for `config`, exiting with
    /// a message on I/O failure.
    pub fn open_cache(&self, config: &BenchmarkConfig) -> Option<DiskCellCache> {
        let dir = self.out_dir.as_ref()?;
        match DiskCellCache::open(dir, config) {
            Ok(cache) => Some(cache),
            Err(e) => {
                eprintln!("cannot open result store {}: {e}", dir.display());
                std::process::exit(2);
            }
        }
    }

    /// Open the fit cache sharing `--out-dir` with the cell store, exiting
    /// with a message on I/O failure. Fits live under `fits/`, cells under
    /// `cells/` — one directory serves both, and `synrd serve` later
    /// answers sampling requests from the same tree.
    pub fn open_fit_cache(&self, config: &BenchmarkConfig) -> Option<DiskFitCache> {
        let dir = self.out_dir.as_ref()?;
        match DiskFitCache::open(dir, config) {
            Ok(cache) => Some(cache),
            Err(e) => {
                eprintln!("cannot open fit cache {}: {e}", dir.display());
                std::process::exit(2);
            }
        }
    }
}

/// Run `body` with the store viewed through `--resume` semantics: with the
/// flag, cells are served from disk; without it, the cache is write-only
/// (cells are recomputed and rewritten).
pub fn with_cell_store<R>(
    cache: &DiskCellCache,
    resume: bool,
    body: impl FnOnce(&dyn CellStore) -> R,
) -> R {
    if resume {
        body(cache)
    } else {
        body(&WriteOnly(cache))
    }
}

/// The fit-cache twin of [`with_cell_store`]. `--resume` serves every
/// stored fit; a fresh run distrusts prior on-disk state but still shares
/// fits *within* the run (papers whose generators produce the same dataset
/// fit each `(synthesizer, ε, seed)` once — the redundant-refit fix),
/// repopulating the cache as it goes. Fits are keyed by dataset content,
/// so loads are bit-identical to refitting either way.
pub fn with_fit_store<R>(
    cache: &DiskFitCache,
    resume: bool,
    body: impl FnOnce(&dyn FitStore) -> R,
) -> R {
    if resume {
        body(cache)
    } else {
        body(&SessionFits::new(cache))
    }
}

/// Everything the figure binaries take from the command line.
#[derive(Debug)]
pub struct CliOptions {
    /// Grid configuration after flag overrides.
    pub config: BenchmarkConfig,
    /// `--papers` filter (empty = all eight).
    pub papers: Vec<String>,
    /// Result-store options.
    pub store: StoreOptions,
}

/// Parse common CLI flags shared by the figure binaries.
///
/// Supported flags:
/// * `--paper-scale` — full protocol (expect hours of compute);
/// * `--papers a,b,c` — restrict to specific paper ids;
/// * `--seeds K` / `--bootstraps B` / `--scale F` — override grid knobs;
/// * `--threads N` — worker threads for the grid (1 = sequential; results
///   are bit-identical either way);
/// * `--out-dir DIR` — persist cells/reports into a result store;
/// * `--resume` — serve already-stored cells instead of refitting;
/// * `--shard i/n` — compute only shard `i` of `n` (requires `--out-dir`);
/// * `--merge-shards a,b,c` — union shard stores into `--out-dir` and
///   assemble reports purely from cached cells;
/// * `--ml-backend auto|cpu|simd` — execution backend for the batched ML
///   kernels (PATE-CTGAN training). Every backend is bit-identical, so this
///   changes throughput only: results, fingerprints and cached fits are
///   unaffected. Defaults to the `SYNRD_ML_BACKEND` env var, then `auto`;
/// * `--fit-threads auto|N` — intra-fit thread allowance per cell. `auto`
///   (the default) derives it from the core budget (`threads / live cells`,
///   floored at 1); `N` pins it. Fits are bit-identical at any thread
///   count, so this too changes throughput only.
pub fn config_from_args() -> (BenchmarkConfig, Vec<String>) {
    let cli = cli_from_args();
    (cli.config, cli.papers)
}

/// Full CLI parse, including the result-store flags (see
/// [`config_from_args`] for the flag list).
pub fn cli_from_args() -> CliOptions {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = if args.iter().any(|a| a == "--paper-scale") {
        BenchmarkConfig::paper()
    } else {
        BenchmarkConfig::quick()
    };
    let mut papers: Vec<String> = Vec::new();
    let mut store = StoreOptions::default();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--papers" => {
                if let Some(list) = it.next() {
                    papers = list.split(',').map(|s| s.trim().to_string()).collect();
                }
            }
            "--seeds" => {
                if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                    config.seeds = v;
                }
            }
            "--bootstraps" => {
                if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                    config.bootstraps = v;
                }
            }
            "--scale" => {
                if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                    config.data_scale = v;
                }
            }
            "--threads" => {
                if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                    config.threads = v;
                }
            }
            "--out-dir" => {
                store.out_dir = Some(PathBuf::from(flag_value("--out-dir", it.next())));
            }
            "--resume" => {
                store.resume = true;
            }
            "--shard" => {
                let spec = flag_value("--shard", it.next());
                store.shard = Some(parse_shard(&spec).unwrap_or_else(|msg| {
                    eprintln!("bad --shard '{spec}': {msg}");
                    std::process::exit(2);
                }));
            }
            "--merge-shards" => {
                store.merge_shards = flag_value("--merge-shards", it.next())
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(PathBuf::from)
                    .collect();
            }
            "--fit-threads" => {
                let spec = flag_value("--fit-threads", it.next());
                config.fit_threads = match spec.as_str() {
                    "auto" => None,
                    n => match n.parse::<usize>() {
                        Ok(v) if v >= 1 => Some(v),
                        _ => {
                            eprintln!("bad --fit-threads '{spec}': expected 'auto' or a positive thread count");
                            std::process::exit(2);
                        }
                    },
                };
            }
            "--ml-backend" => {
                let name = flag_value("--ml-backend", it.next());
                // Applied immediately to the process-global selection: the
                // grid's worker threads pick it up through every
                // `BatchWorkspace` they construct.
                if let Err(e) = synrd_synth::ml_backend::set_global(Some(&name)) {
                    eprintln!("bad --ml-backend '{name}': {e}");
                    std::process::exit(2);
                }
            }
            _ => {}
        }
    }
    if (store.shard.is_some() || !store.merge_shards.is_empty()) && store.out_dir.is_none() {
        eprintln!("--shard and --merge-shards require --out-dir");
        std::process::exit(2);
    }
    CliOptions {
        config,
        papers,
        store,
    }
}

/// `--shard i/n` mode, shared by the grid binaries: open the store, compute
/// the owned slice of the global cell list, print the partition summary,
/// and hand back the cache for the final `[store]` line. Exits on failure.
pub fn run_shard_mode(
    cli: &CliOptions,
    papers: &[Box<dyn Publication>],
    shard: Shard,
) -> (DiskCellCache, DiskFitCache) {
    let cache = cli
        .store
        .open_cache(&cli.config)
        .expect("--shard requires --out-dir");
    let fit_cache = cli
        .store
        .open_fit_cache(&cli.config)
        .expect("--shard requires --out-dir");
    match with_cell_store(&cache, cli.store.resume, |store| {
        with_fit_store(&fit_cache, cli.store.resume, |fits| {
            run_grid_sharded_with_stores(papers, &cli.config, store, Some(fits), shard)
        })
    }) {
        Ok(s) => println!(
            "shard {}/{}: owned {} of {} cells ({} computed, {} already stored)",
            shard.index(),
            shard.count(),
            s.cells_owned,
            s.cells_total,
            s.cells_computed,
            s.cells_cached
        ),
        Err(e) => {
            eprintln!("shard run failed: {e}");
            std::process::exit(1);
        }
    }
    (cache, fit_cache)
}

/// `--merge-shards` mode, shared by the grid binaries: union the shard
/// stores into `--out-dir`, then assemble every report purely from cached
/// cells (no fits), persisting each under `reports/`. Results are paired
/// with paper names so callers can print-and-continue. Exits when the
/// merge itself fails.
#[allow(clippy::type_complexity)] // (name, Result) pairs mirror run_grid's shape
pub fn assemble_from_shards(
    cli: &CliOptions,
    papers: &[Box<dyn Publication>],
) -> (
    DiskCellCache,
    Vec<(&'static str, synrd::Result<PaperReport>)>,
) {
    let dest = cli
        .store
        .out_dir
        .clone()
        .expect("--merge-shards requires --out-dir");
    let cache = match merge_shard_dirs(&cli.store.merge_shards, &dest, &cli.config) {
        Ok(cache) => cache,
        Err(e) => {
            eprintln!("merging shard stores failed: {e}");
            std::process::exit(1);
        }
    };
    // Union the shards' fit caches too, so the merged store can feed
    // `synrd serve` (report assembly itself never fits).
    if let Some(fit_cache) = cli.store.open_fit_cache(&cli.config) {
        for shard in &cli.store.merge_shards {
            if let Err(e) = fit_cache.merge_from(shard) {
                eprintln!("merging fits from {} failed: {e}", shard.display());
                std::process::exit(1);
            }
        }
    }
    let results = papers
        .iter()
        .map(|paper| {
            let result = assemble_report(paper.as_ref(), &cli.config, &cache);
            if let Ok(report) = &result {
                let _ = cache.write_report(report);
            }
            (paper.name(), result)
        })
        .collect();
    (cache, results)
}

/// One-line store/run telemetry: cache counters plus the process-wide grid
/// fit count. CI's cache end-to-end job greps this for `misses=0` and
/// `fits=0` on a warm rerun.
pub fn print_store_summary(cache: &DiskCellCache) {
    let stats = cache.stats();
    println!(
        "[store] dir={} fingerprint={} hits={} misses={} stores={} errors={} fits={} \
         sampled_rows={}",
        cache.root().display(),
        synrd_store::hex16(cache.fingerprint()),
        stats.hits,
        stats.misses,
        stats.stores,
        stats.errors,
        synrd::benchmark::fits_performed(),
        synrd::benchmark::rows_sampled(),
    );
}

/// One-line fit-cache telemetry, printed next to the `[store]` line. CI's
/// end-to-end job greps `hits=` here to prove a warm rerun loaded every
/// fit instead of recomputing it.
pub fn print_fit_summary(cache: &DiskFitCache) {
    let stats = cache.stats();
    println!(
        "[fits] dir={} fingerprint={} hits={} misses={} stores={} errors={}",
        cache.root().display(),
        synrd_store::hex16(cache.fingerprint()),
        stats.hits,
        stats.misses,
        stats.stores,
        stats.errors,
    );
}

/// The value for a store flag that requires one: missing values and values
/// that look like another flag are user errors, not directory names — both
/// would otherwise silently disable or misdirect persistence.
fn flag_value(flag: &str, next: Option<&String>) -> String {
    match next {
        Some(v) if !v.starts_with("--") => v.clone(),
        Some(v) => {
            eprintln!("{flag} requires a value, but got the flag '{v}'");
            std::process::exit(2);
        }
        None => {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        }
    }
}

/// Parse `i/n` into a [`Shard`].
///
/// # Errors
/// A human-readable message for malformed specs.
pub fn parse_shard(spec: &str) -> Result<Shard, String> {
    let (i, n) = spec
        .split_once('/')
        .ok_or_else(|| "expected the form i/n, e.g. 0/3".to_string())?;
    let index: usize = i.trim().parse().map_err(|_| format!("bad index '{i}'"))?;
    let count: usize = n.trim().parse().map_err(|_| format!("bad count '{n}'"))?;
    Shard::new(index, count).map_err(|e| e.to_string())
}

/// The publications selected by `--papers` (all eight when empty).
pub fn selected_publications(papers: &[String]) -> Vec<Box<dyn synrd::Publication>> {
    if papers.is_empty() {
        synrd::all_publications()
    } else {
        papers
            .iter()
            .filter_map(|id| synrd::publication_by_id(id))
            .collect()
    }
}

/// A benchmark calibration problem: a junction tree plus one deterministic
/// log-potential per clique. Shared by the criterion kernel benches
/// (`benches/pgm.rs`) and the `perfgrid` binary so both measure exactly the
/// same problems (the checked-in `BENCH_pgm.json` record stays comparable
/// to the interactive benches).
pub fn pgm_problem(
    shape: Vec<usize>,
    sets: Vec<Vec<usize>>,
) -> (synrd_pgm::JunctionTree, Vec<synrd_pgm::Factor>) {
    let tree =
        synrd_pgm::JunctionTree::build(&shape, &sets, 1 << 21).expect("tree fits cell limit");
    let pots = tree
        .cliques()
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let cshape: Vec<usize> = c.iter().map(|&a| shape[a]).collect();
            let cells: usize = cshape.iter().product();
            let vals: Vec<f64> = (0..cells)
                .map(|k| ((k as f64) * 0.37 + i as f64 * 0.11).sin())
                .collect();
            synrd_pgm::Factor::from_log_values(c.clone(), cshape, vals).expect("potential")
        })
        .collect();
    (tree, pots)
}

/// Chain of adjacent attribute pairs over `d` attributes of cardinality
/// `card` (the MST measurement shape).
pub fn pgm_chain_problem(
    d: usize,
    card: usize,
) -> (synrd_pgm::JunctionTree, Vec<synrd_pgm::Factor>) {
    pgm_problem(vec![card; d], (0..d - 1).map(|a| vec![a, a + 1]).collect())
}

/// Overlapping attribute triples (width-3 cliques) over `d` attributes.
pub fn pgm_triples_problem(
    d: usize,
    card: usize,
) -> (synrd_pgm::JunctionTree, Vec<synrd_pgm::Factor>) {
    pgm_problem(
        vec![card; d],
        (0..d - 2).map(|a| vec![a, a + 1, a + 2]).collect(),
    )
}

/// Mixed-cardinality shape for the marginal-engine benches: `d` attributes
/// cycling through small-to-medium cardinalities (the regime of the paper's
/// social-science domains).
pub fn marginal_bench_shape(d: usize) -> Vec<usize> {
    const CARDS: [usize; 6] = [2, 3, 5, 7, 4, 9];
    (0..d).map(|a| CARDS[a % CARDS.len()]).collect()
}

/// Deterministic synthetic dataset for the marginal-engine benches, shared
/// by the criterion benches (`benches/marginal.rs`) and `perfgrid` so the
/// checked-in `BENCH_marginal.json` record stays comparable to the
/// interactive benches. Codes come from a SplitMix64 stream (no `rand`
/// dependency in the bench library), mildly correlated across adjacent
/// attributes so counting hits realistic cell distributions.
pub fn marginal_bench_dataset(rows: usize, shape: &[usize]) -> synrd_data::Dataset {
    let mut state = 0x243f_6a88_85a3_08d3u64; // pi digits; any fixed seed works
    let mut next = move || -> u64 {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut columns: Vec<Vec<u32>> = Vec::with_capacity(shape.len());
    for (a, &card) in shape.iter().enumerate() {
        let mut col = Vec::with_capacity(rows);
        if a == 0 {
            for _ in 0..rows {
                col.push((next() % card as u64) as u32);
            }
        } else {
            // Couple each attribute to its predecessor half the time.
            let prev = &columns[a - 1];
            for &p in prev.iter() {
                let fresh = (next() % card as u64) as u32;
                let code = if next() % 2 == 0 {
                    p.min(card as u32 - 1)
                } else {
                    fresh
                };
                col.push(code);
            }
        }
        columns.push(col);
    }
    let attrs = shape
        .iter()
        .enumerate()
        .map(|(i, &card)| synrd_data::Attribute::ordinal(format!("x{i}"), card))
        .collect();
    synrd_data::Dataset::new(synrd_data::Domain::new(attrs), columns)
        .expect("generated codes are in range")
}
