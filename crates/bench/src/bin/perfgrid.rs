//! Records the kernel performance trajectory to `BENCH_pgm.json` (factor
//! algebra), `BENCH_marginal.json` (marginal-counting engine),
//! `BENCH_sampling.json` (row-generation engine), `BENCH_dataset.json`
//! (bit-packed columnar storage) and `BENCH_ml.json` (batched MLP kernels).
//!
//! Times a small fixed grid of calibration problems through both factor
//! algebras — the stride kernels that power production and the retained
//! naive-reference oracle (`naive-reference` feature) — plus end-to-end
//! mirror descent and sampler construction; then the data side: the
//! synthesizer selection paths (AIM round loops, MST's all-pairs sweep)
//! through the `MarginalEngine` vs the naive per-row counter; then the
//! sampling side: batched clique-major `TreeSampler::sample_columns` vs
//! the retained per-row oracle, with batched-vs-naive and
//! parallel-vs-sequential bit-identity asserted on every problem; and
//! finally the storage side: the packed-word counting kernels vs the
//! retained `u32`-slice kernel on the same fused sweeps, decode throughput,
//! and packed-vs-unpacked bytes per row across the ten registry datasets.
//! Results are written as canonical JSON (via `synrd-store`) so the repo
//! carries a comparable perf record from PR to PR.
//!
//! ```text
//! cargo run --release -p synrd-bench --bin perfgrid \
//!     [--quick] [--out PATH] [--marginal-out PATH] [--sampling-out PATH] \
//!     [--dataset-out PATH] [--ml-out PATH] [--fit-out PATH]
//! ```
//!
//! `--quick` shrinks repetitions for CI smoke runs; the JSON schemas are
//! identical. Timings are medians over repeated runs; `speedup` is
//! `naive_ns / engine_ns` for the same problem.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;
use synrd_data::{Marginal, MarginalEngine};
use synrd_pgm::{
    calibrate_into, calibrate_naive, estimate, estimate_naive, factor_buffer_allocs,
    CalibratedTree, CalibrationWorkspace, EstimationOptions, Factor, FittedModel, JunctionTree,
    NoisyMeasurement, SamplingWorkspace, TreeSampler,
};
use synrd_store::JsonValue;

/// One calibration problem of the fixed grid.
struct Problem {
    name: String,
    tree: JunctionTree,
    pots: Vec<Factor>,
}

/// Chain of adjacent pairs over `d` attributes of cardinality `card`
/// (shared with the criterion benches via [`synrd_bench::pgm_chain_problem`]).
fn chain(d: usize, card: usize) -> Problem {
    let (tree, pots) = synrd_bench::pgm_chain_problem(d, card);
    Problem {
        name: format!("chain-d{d}-c{card}"),
        tree,
        pots,
    }
}

/// Overlapping triples (width-3 cliques) over `d` attributes.
fn triples(d: usize, card: usize) -> Problem {
    let (tree, pots) = synrd_bench::pgm_triples_problem(d, card);
    Problem {
        name: format!("triples-d{d}-c{card}"),
        tree,
        pots,
    }
}

/// Median wall time (ns) of `reps` timed runs of `body`.
fn median_ns(reps: usize, mut body: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            body();
            t.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// The marginal-engine half of the perf record: time the synthesizer
/// selection paths through the engine vs the naive counter and write
/// `BENCH_marginal.json`. Returns the minimum selection-path speedup.
fn marginal_section(quick: bool, out_path: &str) -> f64 {
    let rows = if quick { 40_000 } else { 120_000 };
    let d = 12usize;
    let shape = synrd_bench::marginal_bench_shape(d);
    let data = synrd_bench::marginal_bench_dataset(rows, &shape);
    let reps = if quick { 5 } else { 15 };
    let pairs: Vec<Vec<usize>> = (0..d)
        .flat_map(|a| ((a + 1)..d).map(move |b| vec![a, b]))
        .collect();
    let one_ways: Vec<Vec<usize>> = (0..d).map(|a| vec![a]).collect();
    let mut bench_rows = Vec::new();
    let mut selection_speedups = Vec::new();

    // Sweep benches: a batch of attribute sets counted once — naive loops
    // over per-set row scans, the engine answers the batch in fused sweeps.
    let sweeps: [(&str, &[Vec<usize>], bool); 2] = [
        ("one-way-sweep", &one_ways, false),
        ("mst-pairs", &pairs, true), // MST phase 2: all O(d²) joints
    ];
    for (name, sets, is_selection) in sweeps {
        let naive_ns = median_ns(reps, || {
            let mut sink = 0.0;
            for attrs in sets {
                sink += Marginal::count_naive(&data, attrs).expect("count").total();
            }
            black_box(sink);
        });
        let engine_ns = median_ns(reps, || {
            let mut engine = MarginalEngine::new(&data);
            let batch = engine.count_many(sets).expect("count");
            black_box(batch.iter().map(Marginal::total).sum::<f64>());
        });
        let speedup = naive_ns / engine_ns;
        if is_selection {
            selection_speedups.push(speedup);
        }
        println!(
            "marginal   {:<14} engine {:>10.0} ns   naive {:>10.0} ns   speedup {:>5.2}x",
            name, engine_ns, naive_ns, speedup
        );
        bench_rows.push(JsonValue::obj(vec![
            ("name", JsonValue::Str(name.to_string())),
            ("sets", JsonValue::Uint(sets.len() as u64)),
            ("engine_ns", JsonValue::Num(engine_ns)),
            ("naive_ns", JsonValue::Num(naive_ns)),
            ("speedup", JsonValue::Num(speedup)),
        ]));
    }

    // AIM round loop: every round re-scores the whole pair workload against
    // the (unchanged) true counts. The naive path recounts per round; the
    // engine counts once and serves rounds 2..R from the cache.
    let rounds = 5usize;
    let naive_ns = median_ns(reps, || {
        let mut sink = 0.0;
        for _ in 0..rounds {
            for attrs in &pairs {
                sink += Marginal::count_naive(&data, attrs).expect("count").total();
            }
        }
        black_box(sink);
    });
    let engine_ns = median_ns(reps, || {
        let mut engine = MarginalEngine::new(&data);
        let mut sink = 0.0;
        for _ in 0..rounds {
            for attrs in &pairs {
                sink += engine.count(attrs).expect("count").total();
            }
        }
        black_box(sink);
    });
    let aim_speedup = naive_ns / engine_ns;
    selection_speedups.push(aim_speedup);
    let aim_name = format!("aim-round-loop-x{rounds}");
    println!(
        "marginal   {:<14} engine {:>10.0} ns   naive {:>10.0} ns   speedup {:>5.2}x",
        aim_name, engine_ns, naive_ns, aim_speedup
    );
    bench_rows.push(JsonValue::obj(vec![
        ("name", JsonValue::Str(aim_name)),
        ("sets", JsonValue::Uint(pairs.len() as u64)),
        ("rounds", JsonValue::Uint(rounds as u64)),
        ("engine_ns", JsonValue::Num(engine_ns)),
        ("naive_ns", JsonValue::Num(naive_ns)),
        ("speedup", JsonValue::Num(aim_speedup)),
    ]));

    let selection_min = selection_speedups
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let doc = JsonValue::obj(vec![
        (
            "schema",
            JsonValue::Str("synrd-bench-marginal/1".to_string()),
        ),
        (
            "mode",
            JsonValue::Str(if quick { "quick" } else { "full" }.to_string()),
        ),
        ("rows", JsonValue::Uint(rows as u64)),
        ("attrs", JsonValue::Uint(d as u64)),
        (
            "threads",
            JsonValue::Uint(rayon::current_num_threads() as u64),
        ),
        ("benches", JsonValue::Arr(bench_rows)),
        (
            "summary",
            JsonValue::obj(vec![
                ("selection_speedup_min", JsonValue::Num(selection_min)),
                ("aim_round_loop_speedup", JsonValue::Num(aim_speedup)),
            ]),
        ),
    ]);
    std::fs::write(out_path, format!("{}\n", doc.to_text())).expect("write BENCH_marginal.json");
    println!("wrote {out_path} (min selection-path speedup {selection_min:.2}x)");
    selection_min
}

/// Mirror-descent fit of chain-pair measurements over `d` attributes of
/// cardinality `card` (the MST/AIM measurement shape).
fn fitted_chain(d: usize, card: usize) -> FittedModel {
    let domain = vec![card; d];
    let ms: Vec<NoisyMeasurement> = (0..d - 1)
        .map(|a| NoisyMeasurement {
            attrs: vec![a, a + 1],
            values: (0..card * card)
                .map(|k| 60.0 + 17.0 * (k as f64).sin())
                .collect(),
            sigma: 2.0,
        })
        .collect();
    fit(&domain, ms)
}

/// Same, with overlapping width-3 cliques (the PrivMRF triple shape).
fn fitted_triples(d: usize, card: usize) -> FittedModel {
    let domain = vec![card; d];
    let ms: Vec<NoisyMeasurement> = (0..d - 2)
        .map(|a| NoisyMeasurement {
            attrs: vec![a, a + 1, a + 2],
            values: (0..card * card * card)
                .map(|k| 45.0 + 11.0 * (k as f64 * 0.7).cos())
                .collect(),
            sigma: 2.0,
        })
        .collect();
    fit(&domain, ms)
}

fn fit(domain: &[usize], ms: Vec<NoisyMeasurement>) -> FittedModel {
    estimate(
        domain,
        &ms,
        EstimationOptions {
            iterations: 40,
            initial_step: 1.0,
            cell_limit: 1 << 21,
            fit_threads: 1,
        },
    )
    .expect("fit")
}

/// The sampling-engine third of the perf record: batched clique-major
/// `sample_columns` vs the retained per-row oracle on fitted models, with
/// bit-identity (batched vs naive, parallel vs sequential) asserted on
/// every problem. Writes `BENCH_sampling.json`; returns the minimum
/// `sample_columns` speedup.
fn sampling_section(quick: bool, out_path: &str) -> f64 {
    let rows = if quick { 30_000 } else { 100_000 };
    let reps = if quick { 5 } else { 11 };
    let problems: Vec<(String, FittedModel)> = vec![
        ("chain-d10-c4".to_string(), fitted_chain(10, 4)),
        ("chain-d6-c10".to_string(), fitted_chain(6, 10)),
        ("triples-d8-c4".to_string(), fitted_triples(8, 4)),
    ];
    let mut bench_rows = Vec::new();
    let mut speedups = Vec::new();
    for (name, model) in &problems {
        let sampler = TreeSampler::new(model).expect("sampler");
        // Bit-identity first (batched vs oracle, chunk-parallel vs
        // sequential), on the same seed the timings use.
        let batched = sampler.sample_columns(rows, &mut StdRng::seed_from_u64(17));
        let naive = sampler.sample_columns_naive(rows, &mut StdRng::seed_from_u64(17));
        assert_eq!(batched, naive, "{name}: batched != naive");
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .expect("pool");
        let chunked = pool.install(|| {
            sampler.sample_columns_chunked(rows, &mut StdRng::seed_from_u64(17), rows / 7 + 1)
        });
        assert_eq!(batched, chunked, "{name}: parallel != sequential");

        let mut ws = SamplingWorkspace::new();
        let engine_ns = median_ns(reps, || {
            let cols = sampler.sample_columns_with(rows, &mut StdRng::seed_from_u64(17), &mut ws);
            black_box(cols[0][rows - 1]);
        });
        let naive_ns = median_ns(reps, || {
            let cols = sampler.sample_columns_naive(rows, &mut StdRng::seed_from_u64(17));
            black_box(cols[0][rows - 1]);
        });
        let speedup = naive_ns / engine_ns;
        speedups.push(speedup);
        let rows_per_s = rows as f64 / (engine_ns * 1e-9);
        println!(
            "sampling   {:<14} engine {:>10.0} ns   naive {:>10.0} ns   speedup {:>5.2}x   \
             ({:.1}M rows/s)",
            name,
            engine_ns,
            naive_ns,
            speedup,
            rows_per_s / 1e6
        );
        bench_rows.push(JsonValue::obj(vec![
            ("name", JsonValue::Str(name.clone())),
            (
                "cliques",
                JsonValue::Uint(model.tree().cliques().len() as u64),
            ),
            ("rows", JsonValue::Uint(rows as u64)),
            ("engine_ns", JsonValue::Num(engine_ns)),
            ("naive_ns", JsonValue::Num(naive_ns)),
            ("speedup", JsonValue::Num(speedup)),
            ("rows_per_second", JsonValue::Num(rows_per_s)),
            ("bit_identical", JsonValue::Bool(true)),
            ("parallel_bit_identical", JsonValue::Bool(true)),
        ]));
    }
    let min_speedup = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    let doc = JsonValue::obj(vec![
        (
            "schema",
            JsonValue::Str("synrd-bench-sampling/1".to_string()),
        ),
        (
            "mode",
            JsonValue::Str(if quick { "quick" } else { "full" }.to_string()),
        ),
        ("rows", JsonValue::Uint(rows as u64)),
        (
            "threads",
            JsonValue::Uint(rayon::current_num_threads() as u64),
        ),
        ("benches", JsonValue::Arr(bench_rows)),
        (
            "summary",
            JsonValue::obj(vec![
                ("sample_columns_speedup_min", JsonValue::Num(min_speedup)),
                ("sample_columns_speedup_geomean", JsonValue::Num(geomean)),
            ]),
        ),
    ]);
    std::fs::write(out_path, format!("{}\n", doc.to_text())).expect("write BENCH_sampling.json");
    println!("wrote {out_path} (min sample_columns speedup {min_speedup:.2}x)");
    min_speedup
}

/// The dataset-storage quarter of the perf record: the packed block-decode
/// counting kernels vs the retained `u32`-slice kernel on the same fused
/// sweeps (bit-identity asserted first), bulk decode throughput, and
/// packed-vs-unpacked bytes per row across the ten registry datasets.
/// Writes `BENCH_dataset.json`; returns `(marginal sweep speedup, min
/// bytes-per-row compression ratio)`.
fn dataset_section(quick: bool, out_path: &str) -> (f64, f64) {
    use synrd_data::engine::unpacked::count_many_unpacked;
    use synrd_data::{BenchmarkDataset, ColumnAccess, DEFAULT_CELL_LIMIT};

    let rows = if quick { 40_000 } else { 120_000 };
    let d = 12usize;
    let shape = synrd_bench::marginal_bench_shape(d);
    let data = synrd_bench::marginal_bench_dataset(rows, &shape);
    let columns = data.to_columns();
    let reps = if quick { 5 } else { 15 };
    let one_ways: Vec<Vec<usize>> = (0..d).map(|a| vec![a]).collect();
    let pairs: Vec<Vec<usize>> = (0..d)
        .flat_map(|a| ((a + 1)..d).map(move |b| vec![a, b]))
        .collect();
    let mut bench_rows = Vec::new();
    let mut marginal_sweep_speedup = f64::INFINITY;

    // Packed kernels vs the retained u32-slice kernel, on the same fused
    // batches the synthesizers issue. Bit-identity first, then timings.
    // The marginal sweep is the gated metric: its bit-sliced counting is
    // the kernel shape packing enables. The pair sweep is recorded as
    // context — it is histogram-bump-bound, so packing trades decode cost
    // for smaller streams and lands near parity by construction.
    let sweeps: [(&str, &[Vec<usize>], bool); 2] = [
        ("marginal-sweep", &one_ways, true),
        ("pair-sweep", &pairs, false),
    ];
    for (name, sets, gated) in sweeps {
        let packed_tables = MarginalEngine::new(&data)
            .count_many(sets)
            .expect("packed count");
        let unpacked_tables =
            count_many_unpacked(data.domain(), &columns, sets, DEFAULT_CELL_LIMIT)
                .expect("unpacked count");
        assert_eq!(packed_tables, unpacked_tables, "{name}: packed != unpacked");

        let packed_ns = median_ns(reps, || {
            let mut engine = MarginalEngine::new(&data);
            let batch = engine.count_many(sets).expect("count");
            black_box(batch.iter().map(Marginal::total).sum::<f64>());
        });
        let unpacked_ns = median_ns(reps, || {
            let batch = count_many_unpacked(data.domain(), &columns, sets, DEFAULT_CELL_LIMIT)
                .expect("count");
            black_box(batch.iter().map(Marginal::total).sum::<f64>());
        });
        let speedup = unpacked_ns / packed_ns;
        if gated {
            marginal_sweep_speedup = marginal_sweep_speedup.min(speedup);
        }
        println!(
            "dataset    {:<14} packed {:>10.0} ns   u32 {:>12.0} ns   speedup {:>5.2}x",
            name, packed_ns, unpacked_ns, speedup
        );
        bench_rows.push(JsonValue::obj(vec![
            ("name", JsonValue::Str(name.to_string())),
            ("sets", JsonValue::Uint(sets.len() as u64)),
            ("packed_ns", JsonValue::Num(packed_ns)),
            ("unpacked_ns", JsonValue::Num(unpacked_ns)),
            ("speedup", JsonValue::Num(speedup)),
            ("bit_identical", JsonValue::Bool(true)),
        ]));
    }

    // Bulk decode throughput: unpack every column of the bench grid into a
    // reused scratch buffer (the consumer path for per-code readers).
    let mut scratch = Vec::new();
    let decode_ns = median_ns(reps, || {
        let mut sink = 0u64;
        for a in 0..d {
            data.decode_column_into(a, &mut scratch).expect("decode");
            sink = sink.wrapping_add(u64::from(scratch[rows - 1]));
        }
        black_box(sink);
    });
    let decoded_codes = (rows * d) as f64;
    let decode_rate = decoded_codes / (decode_ns * 1e-9);
    println!(
        "dataset    {:<14} decode {:>10.0} ns   ({:.0}M codes/s)",
        "decode-all",
        decode_ns,
        decode_rate / 1e6
    );

    // Storage footprint across the registry: packed words vs the 4-byte
    // codes the pre-packing Dataset stored, per dataset and per row.
    let reg_rows = if quick { 5_000 } else { 20_000 };
    let mut registry_rows = Vec::new();
    let mut min_ratio = f64::INFINITY;
    for bd in BenchmarkDataset::ALL {
        let ds = bd.generate(reg_rows, 11);
        let packed = ds.packed_bytes();
        let unpacked = ds.unpacked_bytes();
        let ratio = unpacked as f64 / packed as f64;
        min_ratio = min_ratio.min(ratio);
        let packed_per_row = packed as f64 / reg_rows as f64;
        // Aggregate code width across the domain, in bits per row.
        let bits_per_row: usize = (0..ds.n_attrs())
            .map(|a| ds.packed_column(a).expect("attr").width() as usize)
            .sum();
        println!(
            "dataset    {:<14} packed {:>6.1} B/row   u32 {:>5} B/row   ratio {:>5.2}x   \
             ({} bits)",
            bd.id(),
            packed_per_row,
            ds.n_attrs() * 4,
            ratio,
            bits_per_row
        );
        registry_rows.push(JsonValue::obj(vec![
            ("name", JsonValue::Str(bd.id().to_string())),
            ("attrs", JsonValue::Uint(ds.n_attrs() as u64)),
            ("rows", JsonValue::Uint(reg_rows as u64)),
            ("packed_bytes", JsonValue::Uint(packed as u64)),
            ("unpacked_bytes", JsonValue::Uint(unpacked as u64)),
            ("packed_bytes_per_row", JsonValue::Num(packed_per_row)),
            ("code_bits_per_row", JsonValue::Uint(bits_per_row as u64)),
            ("compression_ratio", JsonValue::Num(ratio)),
        ]));
    }

    let doc = JsonValue::obj(vec![
        (
            "schema",
            JsonValue::Str("synrd-bench-dataset/1".to_string()),
        ),
        (
            "mode",
            JsonValue::Str(if quick { "quick" } else { "full" }.to_string()),
        ),
        ("rows", JsonValue::Uint(rows as u64)),
        ("attrs", JsonValue::Uint(d as u64)),
        (
            "threads",
            JsonValue::Uint(rayon::current_num_threads() as u64),
        ),
        ("sweeps", JsonValue::Arr(bench_rows)),
        (
            "decode",
            JsonValue::obj(vec![
                ("decode_ns", JsonValue::Num(decode_ns)),
                ("codes", JsonValue::Num(decoded_codes)),
                ("codes_per_second", JsonValue::Num(decode_rate)),
            ]),
        ),
        ("registry", JsonValue::Arr(registry_rows)),
        (
            "summary",
            JsonValue::obj(vec![
                (
                    "marginal_sweep_speedup",
                    JsonValue::Num(marginal_sweep_speedup),
                ),
                ("compression_ratio_min", JsonValue::Num(min_ratio)),
            ]),
        ),
    ]);
    std::fs::write(out_path, format!("{}\n", doc.to_text())).expect("write BENCH_dataset.json");
    println!(
        "wrote {out_path} (marginal sweep speedup {marginal_sweep_speedup:.2}x, \
         min compression {min_ratio:.2}x)"
    );
    (marginal_sweep_speedup, min_ratio)
}

/// The ML-kernel fifth of the perf record: one PATECTGAN-shaped training
/// round (batched forward + one minibatch Adam step at batch 48) through
/// the batched `BatchWorkspace` kernels vs the retained per-example oracle,
/// plus `SimdBackend` vs `CpuBackend` on the same rounds, with bit-identity
/// of the fitted states asserted on every shape and every registered
/// backend before timing. Writes `BENCH_ml.json`; returns (minimum gated
/// round speedup over the oracle, minimum gated SimdBackend-over-CpuBackend
/// speedup — `+inf` when SIMD is unsupported on this CPU).
fn ml_section(quick: bool, out_path: &str) -> (f64, f64) {
    use synrd_ml::backend::{detected_cpu_features, registered_backends};
    use synrd_ml::{Activation, AnyBackend, BatchWorkspace, Mlp, SimdBackend};

    let batch = 48usize;
    let reps = if quick { 51 } else { 201 };
    let identity_rounds = 5usize;
    let simd = SimdBackend::supported();
    let features: Vec<String> = detected_cpu_features()
        .iter()
        .map(|(name, on)| format!("{}{}", if *on { "+" } else { "-" }, name))
        .collect();
    println!(
        "ml         cpu features [{}]   simd backend {}",
        features.join(" "),
        if simd { "supported" } else { "unsupported" }
    );
    // The two generator shapes bracket the one-hot widths the benchmark
    // grid produces (saw2018-scale and a wide domain); all three shapes
    // gate the batched-over-oracle speedup now that the student pass also
    // routes through the backend seam, while the SIMD-over-CPU gate binds
    // on the generator shapes only (the student's 1-wide output layer gives
    // SIMD little to chew on).
    let shapes: [(&str, Vec<usize>, Activation, bool); 3] = [
        ("generator-o96", vec![16, 64, 96], Activation::Linear, true),
        (
            "generator-o320",
            vec![16, 64, 320],
            Activation::Linear,
            true,
        ),
        ("student-o96", vec![96, 64, 1], Activation::Sigmoid, false),
    ];
    let mut bench_rows = Vec::new();
    let mut gated_speedups = Vec::new();
    let mut gated_simd_speedups = Vec::new();
    for (name, sizes, act, simd_gated) in shapes {
        let mut rng = StdRng::seed_from_u64(33);
        let net = Mlp::new(&sizes, act, &mut rng);
        let n_in = batch * sizes[0];
        let n_out = batch * sizes[sizes.len() - 1];
        let xs: Vec<f64> = (0..n_in).map(|i| (i as f64 * 0.137).sin()).collect();
        let grads: Vec<f64> = (0..n_out).map(|i| (i as f64 * 0.061).cos() * 0.1).collect();

        // Bit-identity first: N batched rounds on every registered backend
        // vs N per-example-oracle rounds from the same initial state must
        // land on the same weights, Adam moments and step counter, bit for
        // bit.
        let mut naive = net.clone();
        for _ in 0..identity_rounds {
            let caches = naive.forward_batch_naive(&xs, batch);
            naive.backward_apply_batch_naive(&caches, &grads);
        }
        for backend in registered_backends() {
            let mut batched = net.clone();
            let mut ws = BatchWorkspace::with_backend(backend);
            for _ in 0..identity_rounds {
                batched.forward_batch(&xs, batch, &mut ws);
                batched.backward_apply_batch(&mut ws, &grads);
            }
            assert_eq!(
                batched.export_state(),
                naive.export_state(),
                "{name}: {} batched round != per-example oracle",
                backend.name()
            );
        }

        // Timings: one full round per rep, workspace already warm. The
        // oracle comparison is pinned to CpuBackend so the record stays
        // comparable across machines with and without SIMD.
        let mut ws = BatchWorkspace::with_backend(AnyBackend::Cpu);
        let mut cpu_net = net.clone();
        let engine_ns = median_ns(reps, || {
            cpu_net.forward_batch(&xs, batch, &mut ws);
            cpu_net.backward_apply_batch(&mut ws, &grads);
            black_box(ws.output().len());
        });
        let simd_ns = simd.then(|| {
            let mut ws = BatchWorkspace::with_backend(AnyBackend::Simd);
            let mut simd_net = net.clone();
            median_ns(reps, || {
                simd_net.forward_batch(&xs, batch, &mut ws);
                simd_net.backward_apply_batch(&mut ws, &grads);
                black_box(ws.output().len());
            })
        });
        let mut naive_net = net;
        let naive_ns = median_ns(reps, || {
            let caches = naive_net.forward_batch_naive(&xs, batch);
            naive_net.backward_apply_batch_naive(&caches, &grads);
            black_box(caches.len());
        });
        let speedup = naive_ns / engine_ns;
        gated_speedups.push(speedup);
        let simd_speedup = simd_ns.map(|ns| engine_ns / ns);
        if simd_gated {
            if let Some(s) = simd_speedup {
                gated_simd_speedups.push(s);
            }
        }
        println!(
            "ml         {:<14} cpu {:>9.0} ns   naive {:>10.0} ns   speedup {:>5.2}x   \
             simd {}",
            name,
            engine_ns,
            naive_ns,
            speedup,
            match (simd_ns, simd_speedup) {
                (Some(ns), Some(s)) => format!("{ns:>9.0} ns ({s:.2}x over cpu)"),
                _ => "unsupported".to_string(),
            }
        );
        let mut row = vec![
            ("name", JsonValue::Str(name.to_string())),
            (
                "layers",
                JsonValue::Arr(sizes.iter().map(|&s| JsonValue::Uint(s as u64)).collect()),
            ),
            ("batch", JsonValue::Uint(batch as u64)),
            ("engine_ns", JsonValue::Num(engine_ns)),
            ("naive_ns", JsonValue::Num(naive_ns)),
            ("speedup", JsonValue::Num(speedup)),
            ("bit_identical", JsonValue::Bool(true)),
            ("gated", JsonValue::Bool(true)),
            ("simd_gated", JsonValue::Bool(simd_gated)),
        ];
        if let (Some(ns), Some(s)) = (simd_ns, simd_speedup) {
            row.push(("simd_ns", JsonValue::Num(ns)));
            row.push(("simd_speedup", JsonValue::Num(s)));
            row.push(("simd_bit_identical", JsonValue::Bool(true)));
        }
        bench_rows.push(JsonValue::obj(row));
    }
    let min_speedup = gated_speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    let geomean =
        (gated_speedups.iter().map(|s| s.ln()).sum::<f64>() / gated_speedups.len() as f64).exp();
    let simd_min = gated_simd_speedups
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let mut summary = vec![
        ("round_speedup_min", JsonValue::Num(min_speedup)),
        ("round_speedup_geomean", JsonValue::Num(geomean)),
        ("simd_supported", JsonValue::Bool(simd)),
    ];
    if !gated_simd_speedups.is_empty() {
        let simd_geomean = (gated_simd_speedups.iter().map(|s| s.ln()).sum::<f64>()
            / gated_simd_speedups.len() as f64)
            .exp();
        summary.push(("simd_over_cpu_min", JsonValue::Num(simd_min)));
        summary.push(("simd_over_cpu_geomean", JsonValue::Num(simd_geomean)));
    }
    let doc = JsonValue::obj(vec![
        ("schema", JsonValue::Str("synrd-bench-ml/2".to_string())),
        (
            "mode",
            JsonValue::Str(if quick { "quick" } else { "full" }.to_string()),
        ),
        ("batch", JsonValue::Uint(batch as u64)),
        ("benches", JsonValue::Arr(bench_rows)),
        ("summary", JsonValue::obj(summary)),
    ]);
    std::fs::write(out_path, format!("{}\n", doc.to_text())).expect("write BENCH_ml.json");
    println!(
        "wrote {out_path} (min round speedup {min_speedup:.2}x, min simd-over-cpu {simd_min:.2}x)"
    );
    (min_speedup, simd_min)
}

/// A descent-dominated calibration problem: overlapping triples where every
/// clique carries its triple marginal, all three pairs and all three
/// singletons (≈7 targets per clique, the AIM/MST regime in which
/// `loss_and_grad`'s per-measurement phases dominate the iteration).
fn rich_problem(d: usize, card: usize) -> (Vec<usize>, Vec<NoisyMeasurement>) {
    let domain = vec![card; d];
    let meas = |attrs: Vec<usize>| {
        let cells: usize = attrs.iter().map(|&a| domain[a]).product();
        NoisyMeasurement {
            values: (0..cells)
                .map(|k| 80.0 + 23.0 * ((k + attrs[0]) as f64).sin())
                .collect(),
            sigma: 2.0,
            attrs,
        }
    };
    let mut ms = Vec::new();
    for a in (0..d - 2).step_by(2) {
        ms.push(meas(vec![a, a + 1, a + 2]));
        ms.push(meas(vec![a, a + 1]));
        ms.push(meas(vec![a, a + 2]));
        ms.push(meas(vec![a + 1, a + 2]));
    }
    for a in 0..d {
        ms.push(meas(vec![a]));
    }
    (domain, ms)
}

/// Intra-fit parallelism: sequential vs 8-thread mirror descent on
/// descent-dominated shapes (bit-identity asserted before any timing), plus
/// the two-level core-budget grid leg; writes `BENCH_fit.json`. Returns
/// `(min single-cell speedup at 8 threads, grid plain/budget wall ratio)`.
fn fit_section(quick: bool, out_path: &str) -> (f64, f64) {
    use synrd::benchmark::{run_paper, BenchmarkConfig};
    use synrd::publication_by_id;
    use synrd_synth::SynthKind;

    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mt = 8usize;
    let est_reps = if quick { 3 } else { 7 };
    // Cardinalities are chosen so each parallel region carries millisecond-
    // scale marginalization work — enough to amortize the per-region thread
    // spawns the eager rayon shim pays.
    let shapes = [("rich-d8-c14", 8usize, 14usize), ("rich-d6-c16", 6, 16)];
    let mut bench_rows = Vec::new();
    let mut speedups = Vec::new();
    for (name, d, card) in shapes {
        let (domain, ms) = rich_problem(d, card);
        let opts = EstimationOptions {
            iterations: if quick { 25 } else { 80 },
            initial_step: 1.0,
            cell_limit: 1 << 21,
            fit_threads: 1,
        };
        let mt_opts = EstimationOptions {
            fit_threads: mt,
            ..opts
        };
        // Bit-identity first, always — the speedup gate may be host-gated,
        // the reduction-order contract never is.
        let seq_model = estimate(&domain, &ms, opts).expect("fit");
        let mt_model = estimate(&domain, &ms, mt_opts).expect("fit");
        assert_eq!(
            seq_model.calibrated().beliefs,
            mt_model.calibrated().beliefs,
            "{name}: {mt}-thread descent changed the fitted beliefs"
        );
        assert_eq!(
            seq_model.final_loss().to_bits(),
            mt_model.final_loss().to_bits(),
            "{name}: {mt}-thread descent changed the final loss"
        );
        let mut seq_ws = CalibrationWorkspace::new();
        let mut mt_ws = CalibrationWorkspace::new();
        // Warm both workspaces so timings reflect steady state.
        synrd_pgm::estimate_with(&domain, &ms, opts, &mut seq_ws).expect("fit");
        synrd_pgm::estimate_with(&domain, &ms, mt_opts, &mut mt_ws).expect("fit");
        let seq_ns = median_ns(est_reps, || {
            synrd_pgm::estimate_with(&domain, &ms, opts, &mut seq_ws).expect("fit");
        });
        let mt_ns = median_ns(est_reps, || {
            synrd_pgm::estimate_with(&domain, &ms, mt_opts, &mut mt_ws).expect("fit");
        });
        let speedup = seq_ns / mt_ns;
        speedups.push(speedup);
        println!(
            "fit        {name:<14} 1-thread {seq_ns:>10.0} ns   {mt}-thread {mt_ns:>10.0} ns   speedup {speedup:>5.2}x"
        );
        bench_rows.push(JsonValue::obj(vec![
            ("name", JsonValue::Str(name.to_string())),
            ("measurements", JsonValue::Uint(ms.len() as u64)),
            ("iterations", JsonValue::Uint(opts.iterations as u64)),
            ("seq_ns", JsonValue::Num(seq_ns)),
            ("mt_ns", JsonValue::Num(mt_ns)),
            ("speedup", JsonValue::Num(speedup)),
            ("bit_identical", JsonValue::Bool(true)),
        ]));
    }
    let fit_min = speedups.iter().cloned().fold(f64::INFINITY, f64::min);

    // Full-grid leg: the two-level core budget (grid workers + intra-fit
    // allowance from the same pool) must not lose to cells-only
    // parallelism. Reports are asserted bitwise equal first.
    let paper = publication_by_id("fruiht2018").expect("registered paper");
    let base = BenchmarkConfig {
        epsilons: vec![1.0, std::f64::consts::E],
        seeds: 1,
        bootstraps: 1,
        data_scale: 0.02,
        min_rows: 500,
        data_seed: 11,
        threads: host_threads.min(8),
        fit_threads: Some(1),
        fit_timeout: None,
        restrict_privmrf: true,
        synthesizers: vec![SynthKind::Mst, SynthKind::Gem],
    };
    let budget = BenchmarkConfig {
        fit_threads: None,
        ..base.clone()
    };
    let plain_report = run_paper(paper.as_ref(), &base).expect("grid");
    let budget_report = run_paper(paper.as_ref(), &budget).expect("grid");
    assert!(
        budget_report.bitwise_eq(&plain_report),
        "core-budget grid diverged from cells-only grid"
    );
    let grid_reps = if quick { 3 } else { 5 };
    let plain_ns = median_ns(grid_reps, || {
        run_paper(paper.as_ref(), &base).expect("grid");
    });
    let budget_ns = median_ns(grid_reps, || {
        run_paper(paper.as_ref(), &budget).expect("grid");
    });
    let grid_ratio = plain_ns / budget_ns;
    println!(
        "fit        grid-budget    cells-only {plain_ns:>10.0} ns   budgeted {budget_ns:>10.0} ns   ratio {grid_ratio:>5.2}x"
    );

    let doc = JsonValue::obj(vec![
        ("schema", JsonValue::Str("synrd-bench-fit/1".to_string())),
        (
            "mode",
            JsonValue::Str(if quick { "quick" } else { "full" }.to_string()),
        ),
        ("host_threads", JsonValue::Uint(host_threads as u64)),
        ("fit_threads", JsonValue::Uint(mt as u64)),
        ("benches", JsonValue::Arr(bench_rows)),
        (
            "grid",
            JsonValue::obj(vec![
                ("paper", JsonValue::Str("fruiht2018".to_string())),
                ("cells_only_ns", JsonValue::Num(plain_ns)),
                ("core_budget_ns", JsonValue::Num(budget_ns)),
                ("ratio", JsonValue::Num(grid_ratio)),
                ("report_bitwise_equal", JsonValue::Bool(true)),
            ]),
        ),
        (
            "summary",
            JsonValue::obj(vec![
                ("fit_speedup_min", JsonValue::Num(fit_min)),
                ("grid_budget_ratio", JsonValue::Num(grid_ratio)),
                ("speedup_gate_active", JsonValue::Bool(host_threads >= mt)),
            ]),
        ),
    ]);
    std::fs::write(out_path, format!("{}\n", doc.to_text())).expect("write BENCH_fit.json");
    println!("wrote {out_path} (min fit speedup {fit_min:.2}x, grid ratio {grid_ratio:.2}x)");
    (fit_min, grid_ratio)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_pgm.json".to_string());
    let marginal_out = args
        .iter()
        .position(|a| a == "--marginal-out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_marginal.json".to_string());
    let sampling_out = args
        .iter()
        .position(|a| a == "--sampling-out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sampling.json".to_string());
    let dataset_out = args
        .iter()
        .position(|a| a == "--dataset-out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_dataset.json".to_string());
    let ml_out = args
        .iter()
        .position(|a| a == "--ml-out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_ml.json".to_string());
    let fit_out = args
        .iter()
        .position(|a| a == "--fit-out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_fit.json".to_string());
    let reps = if quick { 7 } else { 31 };

    // --- Kernel grid: stride vs naive calibration -------------------------
    let problems = vec![chain(8, 4), chain(6, 10), triples(7, 4), triples(5, 8)];
    let mut kernel_rows = Vec::new();
    let mut speedups = Vec::new();
    for p in &problems {
        let mut ws = CalibrationWorkspace::new();
        let mut out = CalibratedTree::default();
        // Warm the workspace so the stride timing reflects steady state
        // (the mirror-descent loop's regime).
        calibrate_into(&p.tree, &p.pots, &mut ws, &mut out).expect("calibrate");
        let stride_ns = median_ns(reps, || {
            calibrate_into(&p.tree, &p.pots, &mut ws, &mut out).expect("calibrate");
        });
        let naive_ns = median_ns(reps, || {
            calibrate_naive(&p.tree, &p.pots).expect("calibrate");
        });
        let speedup = naive_ns / stride_ns;
        speedups.push(speedup);
        println!(
            "calibrate {:<14} stride {:>10.0} ns   naive {:>10.0} ns   speedup {:>5.2}x",
            p.name, stride_ns, naive_ns, speedup
        );
        kernel_rows.push(JsonValue::obj(vec![
            ("name", JsonValue::Str(p.name.clone())),
            ("cliques", JsonValue::Uint(p.tree.cliques().len() as u64)),
            (
                "max_clique_cells",
                JsonValue::Uint(p.tree.max_clique_cells() as u64),
            ),
            ("stride_ns", JsonValue::Num(stride_ns)),
            ("naive_ns", JsonValue::Num(naive_ns)),
            ("speedup", JsonValue::Num(speedup)),
        ]));
    }

    // --- End-to-end mirror descent ----------------------------------------
    let domain = vec![4usize; 8];
    let measurements: Vec<NoisyMeasurement> = (0..7)
        .map(|a| NoisyMeasurement {
            attrs: vec![a, a + 1],
            values: (0..16).map(|k| 60.0 + 17.0 * (k as f64).sin()).collect(),
            sigma: 2.0,
        })
        .collect();
    let opts = EstimationOptions {
        iterations: if quick { 30 } else { 120 },
        initial_step: 1.0,
        cell_limit: 1 << 21,
        fit_threads: 1,
    };
    let est_reps = if quick { 3 } else { 9 };
    let mut ws = CalibrationWorkspace::new();
    let stride_fit_ns = median_ns(est_reps, || {
        synrd_pgm::estimate_with(&domain, &measurements, opts, &mut ws).expect("fit");
    });
    let naive_fit_ns = median_ns(est_reps, || {
        estimate_naive(&domain, &measurements, opts).expect("fit");
    });
    let fit_speedup = naive_fit_ns / stride_fit_ns;
    println!(
        "estimate   {:<14} stride {:>10.0} ns   naive {:>10.0} ns   speedup {:>5.2}x",
        format!("chain-d8 x{}", opts.iterations),
        stride_fit_ns,
        naive_fit_ns,
        fit_speedup
    );

    // Allocation trajectory: factor buffers for a fit, and the marginal
    // cost of additional iterations (must be zero).
    let allocs_for = |iters: usize| -> u64 {
        let o = EstimationOptions {
            iterations: iters,
            ..opts
        };
        let before = factor_buffer_allocs();
        let model = estimate(&domain, &measurements, o).expect("fit");
        let mut ws = CalibrationWorkspace::new();
        TreeSampler::new_with_workspace(&model, &mut ws).expect("sampler");
        factor_buffer_allocs() - before
    };
    let allocs_30 = allocs_for(30);
    let allocs_120 = allocs_for(120);
    let allocs_per_iter = (allocs_120 as i64 - allocs_30 as i64) as f64 / 90.0;
    println!(
        "allocs     fit+sampler: {allocs_120} buffers; per extra iteration: {allocs_per_iter}"
    );

    let min_speedup = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();

    let doc = JsonValue::obj(vec![
        ("schema", JsonValue::Str("synrd-bench-pgm/1".to_string())),
        (
            "mode",
            JsonValue::Str(if quick { "quick" } else { "full" }.to_string()),
        ),
        ("calibrate_kernels", JsonValue::Arr(kernel_rows)),
        (
            "estimate",
            JsonValue::obj(vec![
                ("name", JsonValue::Str("chain-d8-c4".to_string())),
                ("iterations", JsonValue::Uint(opts.iterations as u64)),
                ("stride_ns", JsonValue::Num(stride_fit_ns)),
                ("naive_ns", JsonValue::Num(naive_fit_ns)),
                ("speedup", JsonValue::Num(fit_speedup)),
                (
                    "factor_buffer_allocs_fit_and_sampler",
                    JsonValue::Uint(allocs_120),
                ),
                (
                    "allocs_per_extra_iteration",
                    JsonValue::Num(allocs_per_iter),
                ),
            ]),
        ),
        (
            "summary",
            JsonValue::obj(vec![
                ("calibrate_speedup_min", JsonValue::Num(min_speedup)),
                ("calibrate_speedup_geomean", JsonValue::Num(geomean)),
                ("estimate_speedup", JsonValue::Num(fit_speedup)),
            ]),
        ),
    ]);
    let text = doc.to_text();
    std::fs::write(&out_path, format!("{text}\n")).expect("write BENCH_pgm.json");
    println!("wrote {out_path} (min calibrate speedup {min_speedup:.2}x, geomean {geomean:.2}x)");

    // --- Marginal engine: the synthesizer selection paths ------------------
    let selection_min = marginal_section(quick, &marginal_out);

    // --- Sampling engine: the row-generation path --------------------------
    let sampling_min = sampling_section(quick, &sampling_out);

    // --- Dataset storage: packed words vs u32 slices -----------------------
    let (dataset_min, compression_min) = dataset_section(quick, &dataset_out);

    // --- ML kernels: batched MLP round vs the per-example oracle -----------
    let (ml_min, ml_simd_min) = ml_section(quick, &ml_out);

    // --- Intra-fit parallelism: descent scaling + core-budget grid ---------
    let (fit_min, grid_ratio) = fit_section(quick, &fit_out);

    if min_speedup < 1.0 {
        eprintln!("warning: stride kernels slower than naive on some problem");
        std::process::exit(1);
    }
    // The record's target is 2x. selection_min is always set by the slowest
    // one-shot sweep (mst-pairs, ~2.3x on the checked-in record) — the
    // cached round-loop bench sits near 10x and never binds — so the hard
    // exit gate is softened in --quick mode, where short reps on noisy
    // shared CI runners can shave that sweep's ratio without any code
    // regression.
    let gate = if quick { 1.4 } else { 2.0 };
    if selection_min < gate {
        eprintln!(
            "warning: marginal engine under the {gate:.1}x selection-path gate \
             ({selection_min:.2}x)"
        );
        std::process::exit(1);
    }
    // Same 2x target for the sampling engine at 100k rows, softened in
    // --quick mode for the same CI-noise reason.
    let sampling_gate = if quick { 1.4 } else { 2.0 };
    if sampling_min < sampling_gate {
        eprintln!(
            "warning: sampling engine under the {sampling_gate:.1}x sample_columns gate \
             ({sampling_min:.2}x)"
        );
        std::process::exit(1);
    }
    // The packed marginal sweep (bit-sliced one-way counting) must beat the
    // retained u32-slice kernel by 1.25x on the full grid — the checked-in
    // record sits near 2x. Softened in --quick mode where short reps on
    // noisy CI runners can shave the ratio without any code regression.
    let dataset_gate = if quick { 1.05 } else { 1.25 };
    if dataset_min < dataset_gate {
        eprintln!(
            "warning: packed marginal sweep under the {dataset_gate:.2}x gate ({dataset_min:.2}x)"
        );
        std::process::exit(1);
    }
    // Storage compression is deterministic (no timing noise): every registry
    // dataset must pack at least 4x denser than 4-byte codes.
    if compression_min < 4.0 {
        eprintln!("warning: registry compression under the 4x gate ({compression_min:.2}x)");
        std::process::exit(1);
    }
    // Batched ML kernels: the PATECTGAN generator round through the
    // `BatchWorkspace` GEMM passes must beat the per-example oracle by 2x
    // (1.4x in --quick mode for the usual CI-noise reason).
    let ml_gate = if quick { 1.4 } else { 2.0 };
    if ml_min < ml_gate {
        eprintln!("warning: batched generator round under the {ml_gate:.1}x gate ({ml_min:.2}x)");
        std::process::exit(1);
    }
    // SimdBackend must pay for its dispatch: ≥1.5x over CpuBackend on the
    // generator training rounds (1.2x in --quick mode for the usual
    // CI-noise reason). `+inf` (no gate) only when the CPU has no SIMD path.
    let ml_simd_gate = if quick { 1.2 } else { 1.5 };
    if ml_simd_min.is_finite() && ml_simd_min < ml_simd_gate {
        eprintln!(
            "warning: SimdBackend under the {ml_simd_gate:.1}x over-CpuBackend gate \
             ({ml_simd_min:.2}x)"
        );
        std::process::exit(1);
    }
    // Intra-fit descent scaling: ≥2.5x at 8 threads on the descent-dominated
    // shapes (1.4x in --quick mode). The gate binds only on hosts that
    // actually have 8 cores — bit-identity is asserted unconditionally
    // inside the section, so thread-starved runners still verify the
    // reduction-order contract and record the (ungated) ratio.
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let fit_gate = if quick { 1.4 } else { 2.5 };
    if host_threads >= 8 && fit_min < fit_gate {
        eprintln!(
            "warning: intra-fit descent scaling under the {fit_gate:.1}x gate ({fit_min:.2}x)"
        );
        std::process::exit(1);
    }
    // The two-level core budget must not lose to cells-only parallelism
    // (25% slack full, 33% in --quick mode, for grid-scale timing noise).
    let grid_gate = if quick { 0.67 } else { 0.8 };
    if grid_ratio < grid_gate {
        eprintln!(
            "warning: core-budget grid slower than cells-only parallelism \
             (ratio {grid_ratio:.2}x, gate {grid_gate:.2}x)"
        );
        std::process::exit(1);
    }
}
