//! Regenerates **Figure 1**: the qualitative visual finding from Fairman et
//! al. — the distribution of first-substance use across race groups, on real
//! data (top) and on MST synthetic data at ε = e (bottom), plus the
//! total-variation similarity score used to judge "subjectively similar".
//!
//! ```text
//! cargo run --release -p synrd-bench --bin fig1 [--paper-scale]
//! ```

use synrd::visual::VisualFinding;
use synrd_data::BenchmarkDataset;
use synrd_synth::SynthKind;

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper-scale");
    let n = if paper_scale {
        BenchmarkDataset::Fairman2019.paper_n()
    } else {
        29_358 // 1/10 scale
    };
    let real = BenchmarkDataset::Fairman2019.generate(n, 20230531);
    let finding = VisualFinding::fairman_figure1();
    let real_table = finding.table(&real).expect("table over real data");

    println!("=== Figure 1 (top): real data, n = {n} ===\n");
    print!("{}", finding.render(&real, &real_table).expect("render"));

    // MST at epsilon = e, as in the paper's caption.
    let eps = std::f64::consts::E;
    let mut synth = SynthKind::Mst.build();
    synth
        .fit(&real, SynthKind::Mst.native_privacy(eps, n), 7)
        .expect("MST fits Fairman");
    let synthetic = synth.sample(n, 11).expect("sampling");
    let synth_table = finding.table(&synthetic).expect("table over synthetic");

    println!("\n=== Figure 1 (bottom): MST synthetic at eps = e ===\n");
    print!(
        "{}",
        finding.render(&synthetic, &synth_table).expect("render")
    );

    let similarity = VisualFinding::similarity(&real_table, &synth_table);
    println!("\nMean per-group total-variation similarity: {similarity:.4}");
    println!("(paper: \"agreement is subjectively high, though imperfect\")");
}
