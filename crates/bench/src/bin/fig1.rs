//! Regenerates **Figure 1**: the qualitative visual finding from Fairman et
//! al. — the distribution of first-substance use across race groups, on real
//! data (top) and on MST synthetic data at ε = e (bottom), plus the
//! total-variation similarity score used to judge "subjectively similar".
//!
//! ```text
//! cargo run --release -p synrd-bench --bin fig1 [--paper-scale] [--out-dir DIR]
//! ```
//!
//! With `--out-dir`, the rendered figure is also written to
//! `DIR/fig1.txt` so a result store carries every artifact of a run.

use std::fmt::Write as _;
use std::path::PathBuf;
use synrd::visual::VisualFinding;
use synrd_data::BenchmarkDataset;
use synrd_synth::SynthKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper_scale = args.iter().any(|a| a == "--paper-scale");
    let out_dir = args.iter().position(|a| a == "--out-dir").map(|i| {
        match args.get(i + 1).filter(|v| !v.starts_with("--")) {
            Some(v) => PathBuf::from(v),
            None => {
                eprintln!("--out-dir requires a value");
                std::process::exit(2);
            }
        }
    });
    let n = if paper_scale {
        BenchmarkDataset::Fairman2019.paper_n()
    } else {
        29_358 // 1/10 scale
    };
    let real = BenchmarkDataset::Fairman2019.generate(n, 20230531);
    let finding = VisualFinding::fairman_figure1();
    let real_table = finding.table(&real).expect("table over real data");

    let mut out = String::new();
    let _ = writeln!(out, "=== Figure 1 (top): real data, n = {n} ===\n");
    let _ = write!(
        out,
        "{}",
        finding.render(&real, &real_table).expect("render")
    );

    // MST at epsilon = e, as in the paper's caption.
    let eps = std::f64::consts::E;
    let mut synth = SynthKind::Mst.build();
    synth
        .fit(&real, SynthKind::Mst.native_privacy(eps, n), 7)
        .expect("MST fits Fairman");
    let synthetic = synth.sample(n, 11).expect("sampling");
    let synth_table = finding.table(&synthetic).expect("table over synthetic");

    let _ = writeln!(
        out,
        "\n=== Figure 1 (bottom): MST synthetic at eps = e ===\n"
    );
    let _ = write!(
        out,
        "{}",
        finding.render(&synthetic, &synth_table).expect("render")
    );

    let similarity = VisualFinding::similarity(&real_table, &synth_table);
    let _ = writeln!(
        out,
        "\nMean per-group total-variation similarity: {similarity:.4}"
    );
    let _ = writeln!(
        out,
        "(paper: \"agreement is subjectively high, though imperfect\")"
    );

    print!("{out}");
    if let Some(dir) = out_dir {
        std::fs::create_dir_all(&dir).expect("create --out-dir");
        let path = dir.join("fig1.txt");
        std::fs::write(&path, &out).expect("write fig1.txt");
        println!("\n[store] wrote {}", path.display());
    }
}
