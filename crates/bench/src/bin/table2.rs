//! Regenerates **Table 2**: the number of findings per analysis method
//! (finding type) across the benchmark publications.
//!
//! ```text
//! cargo run -p synrd-bench --bin table2
//! ```

fn main() {
    let counts = synrd::report::finding_type_counts();
    println!("Table 2: methods used in benchmark papers (finding types)\n");
    print!("{}", synrd::report::render_table2(&counts));
    println!("\nPaper reference counts: Descriptive 8, Between-Coeff 4, Sign 2,");
    println!("Causal (Var/Int) 1+1, Coeff Difference 19, Logistic 2x4,");
    println!("Mean Difference 24+26, Pearson 12, Spearman 1 (total 106).");
    println!("Our benchmark models 104 findings over the same taxonomy.");
}
