//! Regenerates **Figure 4**: average epistemic parity (left) and average
//! parity variance (right) as a function of ε, per synthesizer, aggregated
//! over the benchmark papers.
//!
//! ```text
//! cargo run --release -p synrd-bench --bin fig4 \
//!     [--paper-scale] [--papers fruiht2018,pierce2019,saw2018] \
//!     [--out-dir DIR] [--resume] [--shard i/n] [--merge-shards d0,d1,...]
//! ```
//!
//! The result-store flags behave exactly as in `fig3`: `--out-dir`
//! persists cells into a content-addressed store, `--resume` serves them
//! back (a warm store aggregates with zero synthesizer fits), `--shard`
//! computes one deterministic slice of the cell list, and
//! `--merge-shards` unions shard stores before aggregating.

use synrd::benchmark::{run_grid_with_stores, PaperReport};
use synrd::parity::aggregate;
use synrd::report::render_fig4;
use synrd_bench::{
    assemble_from_shards, cli_from_args, print_fit_summary, print_store_summary, run_shard_mode,
    selected_publications, with_cell_store, with_fit_store,
};
use synrd_store::JsonCodec;

fn main() {
    let cli = cli_from_args();
    let config = &cli.config;
    let papers = selected_publications(&cli.papers);
    println!(
        "Figure 4: parity vs epsilon  (seeds k={}, draws B={}, scale={})\n",
        config.seeds, config.bootstraps, config.data_scale
    );

    if let Some(shard) = cli.store.shard {
        let (cache, fit_cache) = run_shard_mode(&cli, &papers, shard);
        print_store_summary(&cache);
        print_fit_summary(&fit_cache);
        return;
    }

    let mut reports: Vec<PaperReport> = Vec::new();
    let fit_cache = if cli.store.merge_shards.is_empty() {
        cli.store.open_fit_cache(config)
    } else {
        None // merged reports assemble from cells; no fitting at all
    };
    let cache = if cli.store.merge_shards.is_empty() {
        let cache = cli.store.open_cache(config);
        let grid = |fits: Option<&dyn synrd::benchmark::FitStore>| match &cache {
            Some(c) => with_cell_store(c, cli.store.resume, |store| {
                run_grid_with_stores(&papers, config, Some(store), fits)
            }),
            None => run_grid_with_stores(&papers, config, None, fits),
        };
        for (name, result) in match &fit_cache {
            Some(f) => with_fit_store(f, cli.store.resume, |fits| grid(Some(fits))),
            None => grid(None),
        } {
            match result {
                Ok(report) => {
                    println!("  finished {}", report.paper_name);
                    reports.push(report);
                }
                Err(e) => println!("  {name} failed: {e}"),
            }
        }
        cache
    } else {
        let (cache, results) = assemble_from_shards(&cli, &papers);
        for (name, result) in results {
            match result {
                Ok(report) => {
                    println!("  assembled {} from store", report.paper_name);
                    reports.push(report);
                }
                Err(e) => println!("  {name} failed: {e}"),
            }
        }
        Some(cache)
    };

    let agg = match aggregate(&reports) {
        Ok(agg) => agg,
        Err(e) => {
            eprintln!("aggregation failed: {e}");
            std::process::exit(1);
        }
    };
    print!("\n{}", render_fig4(&agg));

    // Persist the aggregated series next to the per-paper reports.
    if let Some(cache) = &cache {
        let path = cache.root().join("fig4_series.json");
        if let Err(e) = std::fs::write(&path, agg.to_json_text()) {
            eprintln!("could not write {}: {e}", path.display());
        }
    }

    // The paper's headline observation: parity is relatively insensitive
    // to epsilon. Report the per-synthesizer spread across the grid.
    println!("\nSpread of mean parity across the eps grid (max - min):");
    for (kind, series) in &agg.parity {
        let finite: Vec<f64> = series.iter().copied().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            continue;
        }
        let max = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = finite.iter().cloned().fold(f64::INFINITY, f64::min);
        println!("  {:>10}: {:.3}", kind.name(), max - min);
    }
    if let Some(cache) = &cache {
        print_store_summary(cache);
    }
    if let Some(fit_cache) = &fit_cache {
        print_fit_summary(fit_cache);
    }
}
