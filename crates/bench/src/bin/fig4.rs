//! Regenerates **Figure 4**: average epistemic parity (left) and average
//! parity variance (right) as a function of ε, per synthesizer, aggregated
//! over the benchmark papers.
//!
//! ```text
//! cargo run --release -p synrd-bench --bin fig4 \
//!     [--paper-scale] [--papers fruiht2018,pierce2019,saw2018]
//! ```

use synrd::benchmark::run_paper;
use synrd::parity::aggregate;
use synrd::report::render_fig4;
use synrd_bench::{config_from_args, selected_publications};

fn main() {
    let (config, paper_filter) = config_from_args();
    let papers = selected_publications(&paper_filter);
    println!(
        "Figure 4: parity vs epsilon  (seeds k={}, draws B={}, scale={})\n",
        config.seeds, config.bootstraps, config.data_scale
    );
    let mut reports = Vec::new();
    for paper in papers {
        match run_paper(paper.as_ref(), &config) {
            Ok(report) => {
                println!("  finished {}", report.paper_name);
                reports.push(report);
            }
            Err(e) => println!("  {} failed: {e}", paper.name()),
        }
    }
    let agg = aggregate(&reports);
    print!("\n{}", render_fig4(&agg));

    // The paper's headline observation: parity is relatively insensitive
    // to epsilon. Report the per-synthesizer spread across the grid.
    println!("\nSpread of mean parity across the eps grid (max - min):");
    for (kind, series) in &agg.parity {
        let finite: Vec<f64> = series.iter().copied().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            continue;
        }
        let max = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = finite.iter().cloned().fold(f64::INFINITY, f64::min);
        println!("  {:>10}: {:.3}", kind.name(), max - min);
    }
}
