//! Regenerates **Figure 3**: epistemic parity for all findings across all
//! papers, per synthesizer per ε, as an ASCII heatmap with the
//! "real, bootstrap" control row and crosshatched infeasible cells.
//!
//! ```text
//! cargo run --release -p synrd-bench --bin fig3 \
//!     [--paper-scale] [--papers saw2018,fruiht2018] [--seeds K] [--bootstraps B]
//! ```
//!
//! Quick mode (default: 1/10 data, k = 3, B = 5) finishes on a laptop;
//! `--paper-scale` reproduces the full k = 10 × B = 25 protocol.

use std::time::Instant;
use synrd::benchmark::run_paper;
use synrd::parity::{never_reproduced, paper_summary};
use synrd::report::render_fig3_block;
use synrd_bench::{config_from_args, selected_publications};

fn main() {
    let (config, paper_filter) = config_from_args();
    let papers = selected_publications(&paper_filter);
    println!(
        "Figure 3: epistemic parity heatmap  (seeds k={}, draws B={}, scale={}, {} threads)\n",
        config.seeds, config.bootstraps, config.data_scale, config.threads
    );
    for paper in papers {
        let started = Instant::now();
        match run_paper(paper.as_ref(), &config) {
            Ok(report) => {
                print!("{}", render_fig3_block(&report));
                let summary = paper_summary(&report);
                let best = summary
                    .iter()
                    .filter(|(_, p)| p.is_finite())
                    .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
                if let Some((kind, parity)) = best {
                    println!(
                        "  best synthesizer: {} (mean parity {:.3})",
                        kind.name(),
                        parity
                    );
                }
                let hard = never_reproduced(&report, 0.5);
                if !hard.is_empty() {
                    println!("  findings below 0.5 parity for every synthesizer: {hard:?}");
                }
                println!(
                    "  [{} in {:.1}s]\n",
                    report.paper_id,
                    started.elapsed().as_secs_f64()
                );
            }
            Err(e) => println!("  {} failed: {e}\n", paper.name()),
        }
    }
}
