//! Regenerates **Figure 3**: epistemic parity for all findings across all
//! papers, per synthesizer per ε, as an ASCII heatmap with the
//! "real, bootstrap" control row and crosshatched infeasible cells.
//!
//! ```text
//! cargo run --release -p synrd-bench --bin fig3 \
//!     [--paper-scale] [--papers saw2018,fruiht2018] [--seeds K] [--bootstraps B] \
//!     [--out-dir DIR] [--resume] [--shard i/n] [--merge-shards d0,d1,...]
//! ```
//!
//! Quick mode (default: 1/10 data, k = 3, B = 5) finishes on a laptop;
//! `--paper-scale` reproduces the full k = 10 × B = 25 protocol.
//!
//! With `--out-dir`, every computed cell and every assembled report is
//! persisted into a content-addressed result store; `--resume` serves
//! stored cells instead of refitting (a warm store renders the whole
//! figure with zero synthesizer fits). `--shard i/n` computes only the
//! i-th of n deterministic slices of the global cell list — run all n
//! slices (anywhere, any order), then `--merge-shards` unions their
//! stores and assembles reports bit-identical to a monolithic run.

use std::time::Instant;
use synrd::benchmark::{run_paper_with_stores, PaperReport};
use synrd::parity::{never_reproduced, paper_summary};
use synrd::report::render_fig3_block;
use synrd_bench::{
    assemble_from_shards, cli_from_args, print_fit_summary, print_store_summary, run_shard_mode,
    selected_publications, with_cell_store, with_fit_store,
};

fn print_report(report: &PaperReport, started: Instant) {
    print!("{}", render_fig3_block(report));
    let summary = paper_summary(report);
    let best = summary
        .iter()
        .filter(|(_, p)| p.is_finite())
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    if let Some((kind, parity)) = best {
        println!(
            "  best synthesizer: {} (mean parity {:.3})",
            kind.name(),
            parity
        );
    }
    let hard = never_reproduced(report, 0.5);
    if !hard.is_empty() {
        println!("  findings below 0.5 parity for every synthesizer: {hard:?}");
    }
    println!(
        "  [{} in {:.1}s]\n",
        report.paper_id,
        started.elapsed().as_secs_f64()
    );
}

fn main() {
    let cli = cli_from_args();
    let config = &cli.config;
    let papers = selected_publications(&cli.papers);
    println!(
        "Figure 3: epistemic parity heatmap  (seeds k={}, draws B={}, scale={}, {} threads)\n",
        config.seeds, config.bootstraps, config.data_scale, config.threads
    );

    // Shard mode: populate the store with this slice of the cell list and
    // stop — rendering happens after a merge.
    if let Some(shard) = cli.store.shard {
        let (cache, fit_cache) = run_shard_mode(&cli, &papers, shard);
        print_store_summary(&cache);
        print_fit_summary(&fit_cache);
        return;
    }

    // Merge mode: union shard stores, then assemble every report purely
    // from cached cells (no fits at all).
    if !cli.store.merge_shards.is_empty() {
        let started = Instant::now();
        let (cache, results) = assemble_from_shards(&cli, &papers);
        for (name, result) in results {
            match result {
                Ok(report) => print_report(&report, started),
                Err(e) => println!("  {name} failed: {e}\n"),
            }
        }
        print_store_summary(&cache);
        return;
    }

    // Monolithic mode, optionally backed by the store. The fit store must
    // outlive the paper loop: its session view is what lets later papers
    // reuse fits an earlier paper computed on the same dataset.
    let cache = cli.store.open_cache(config);
    let fit_cache = cli.store.open_fit_cache(config);
    let run = |fits: Option<&dyn synrd::benchmark::FitStore>| {
        for paper in &papers {
            let started = Instant::now();
            let result = match &cache {
                Some(cache) => with_cell_store(cache, cli.store.resume, |store| {
                    run_paper_with_stores(paper.as_ref(), config, Some(store), fits)
                }),
                None => run_paper_with_stores(paper.as_ref(), config, None, fits),
            };
            match result {
                Ok(report) => {
                    if let Some(cache) = &cache {
                        let _ = cache.write_report(&report);
                    }
                    print_report(&report, started);
                }
                Err(e) => println!("  {} failed: {e}\n", paper.name()),
            }
        }
    };
    match &fit_cache {
        Some(fit_cache) => with_fit_store(fit_cache, cli.store.resume, |fits| run(Some(fits))),
        None => run(None),
    }
    if let Some(cache) = &cache {
        print_store_summary(cache);
    }
    if let Some(fit_cache) = &fit_cache {
        print_fit_summary(fit_cache);
    }
}
