//! Regenerates **Table 1**: properties and meta-features of the benchmark
//! datasets plus the Adult/Mushroom comparison datasets.
//!
//! ```text
//! cargo run --release -p synrd-bench --bin table1 [--paper-scale]
//! ```
//!
//! Quick mode computes meta-features on 1/10-scale samples (mutual
//! information over all pairs of the 57-variable Jeong dataset is the
//! expensive part); `--paper-scale` uses the full Table 1 sample sizes.

use synrd_data::{meta_features, BenchmarkDataset};

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper-scale");
    let mut rows = Vec::new();
    for ds in BenchmarkDataset::ALL {
        let n = if paper_scale {
            ds.paper_n()
        } else {
            (ds.paper_n() / 10).max(2_000)
        };
        let data = ds.generate(n, 20230531);
        let mf = meta_features(&data).expect("meta-features computable");
        rows.push((ds.name(), mf));
    }
    println!(
        "Table 1: dataset properties and meta-features ({} scale)\n",
        if paper_scale { "paper" } else { "1/10" }
    );
    print!("{}", synrd::report::render_table1(&rows));
    println!("\nPaper reference values (for comparison): see EXPERIMENTS.md table T1.");
}
