//! End-to-end parity evaluation cost: one (synthesizer, ε) cell on the
//! smallest paper, and the finding-evaluation loop alone — the quantities
//! that dominate the Figure 3 grid's wall time.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use synrd::benchmark::{run_paper, BenchmarkConfig};
use synrd::publication_by_id;
use synrd_synth::SynthKind;

fn one_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("parity_cell_fruiht");
    group.sample_size(10);
    group.bench_function("mst_1eps_1seed_2draws", |b| {
        let paper = publication_by_id("fruiht2018").expect("registered");
        let config = BenchmarkConfig {
            epsilons: vec![std::f64::consts::E],
            seeds: 1,
            bootstraps: 2,
            data_scale: 0.25,
            min_rows: 1_000,
            data_seed: 7,
            threads: 1,
            fit_threads: None,
            fit_timeout: Some(Duration::from_secs(600)),
            restrict_privmrf: true,
            synthesizers: vec![SynthKind::Mst],
        };
        b.iter(|| run_paper(paper.as_ref(), &config).expect("run"));
    });
    group.finish();
}

fn finding_evaluation(c: &mut Criterion) {
    let paper = publication_by_id("saw2018").expect("registered");
    let data = paper.generate(5_000, 3);
    let findings = paper.findings();
    c.bench_function("evaluate_15_saw_findings", |b| {
        b.iter(|| {
            for f in &findings {
                f.evaluate(&data).expect("evaluate");
            }
        });
    });
}

criterion_group!(benches, one_cell, finding_evaluation);
criterion_main!(benches);
