//! CpuBackend vs SimdBackend on the batched MLP round (forward +
//! backward + Adam apply) at the grid's batch size, over the registry's
//! generator and student shapes. The SIMD bars only appear on machines
//! where `SimdBackend::supported()`; the gate itself lives in `perfgrid`
//! (this bench is for profiling, not CI).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use synrd_ml::backend::registered_backends;
use synrd_ml::{Activation, BatchWorkspace, Mlp};

fn backend_round(c: &mut Criterion) {
    let batch = 48usize;
    let shapes: [(&str, Vec<usize>, Activation); 3] = [
        ("generator-o96", vec![16, 64, 96], Activation::Linear),
        ("generator-o320", vec![16, 64, 320], Activation::Linear),
        ("student-o96", vec![96, 64, 1], Activation::Sigmoid),
    ];
    for (name, sizes, act) in shapes {
        let mut group = c.benchmark_group(format!("mlp_round_{name}"));
        group.sample_size(20);
        let mut rng = StdRng::seed_from_u64(33);
        let net = Mlp::new(&sizes, act, &mut rng);
        let xs: Vec<f64> = (0..batch * sizes[0])
            .map(|i| (i as f64 * 0.137).sin())
            .collect();
        let grads: Vec<f64> = (0..batch * sizes[sizes.len() - 1])
            .map(|i| (i as f64 * 0.061).cos() * 0.1)
            .collect();
        for backend in registered_backends() {
            group.bench_with_input(BenchmarkId::new(backend.name(), batch), &(), |b, ()| {
                let mut net = net.clone();
                let mut ws = BatchWorkspace::with_backend(backend);
                b.iter(|| {
                    net.forward_batch(&xs, batch, &mut ws);
                    net.backward_apply_batch(&mut ws, &grads);
                    black_box(ws.output().len());
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, backend_round);
criterion_main!(benches);
