//! Before/after benches for the marginal-counting engine: the naive per-row
//! counter vs the engine kernel on 1-way and 2-way tables, the fused
//! multi-marginal sweep vs a per-set loop, and the packed-word kernels vs
//! the retained `u32`-slice kernel, all at ≥100k rows (`perfgrid` records
//! the same comparisons to `BENCH_marginal.json` and `BENCH_dataset.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use synrd_data::{Marginal, MarginalEngine};

const ROWS: usize = 120_000;
const ATTRS: usize = 12;

fn one_way_counting(c: &mut Criterion) {
    let data = synrd_bench::marginal_bench_dataset(ROWS, &synrd_bench::marginal_bench_shape(ATTRS));
    let mut group = c.benchmark_group("marginal_one_way");
    group.sample_size(20);
    group.bench_with_input(BenchmarkId::new("engine", ROWS), &(), |b, ()| {
        b.iter(|| black_box(Marginal::count(&data, &[3]).expect("count").total()));
    });
    group.bench_with_input(BenchmarkId::new("naive", ROWS), &(), |b, ()| {
        b.iter(|| black_box(Marginal::count_naive(&data, &[3]).expect("count").total()));
    });
    group.finish();
}

fn two_way_counting(c: &mut Criterion) {
    let data = synrd_bench::marginal_bench_dataset(ROWS, &synrd_bench::marginal_bench_shape(ATTRS));
    let mut group = c.benchmark_group("marginal_two_way");
    group.sample_size(20);
    group.bench_with_input(BenchmarkId::new("engine", ROWS), &(), |b, ()| {
        b.iter(|| black_box(Marginal::count(&data, &[2, 5]).expect("count").total()));
    });
    group.bench_with_input(BenchmarkId::new("naive", ROWS), &(), |b, ()| {
        b.iter(|| {
            black_box(
                Marginal::count_naive(&data, &[2, 5])
                    .expect("count")
                    .total(),
            )
        });
    });
    group.finish();
}

fn batched_multi_marginal(c: &mut Criterion) {
    let data = synrd_bench::marginal_bench_dataset(ROWS, &synrd_bench::marginal_bench_shape(ATTRS));
    let pairs: Vec<Vec<usize>> = (0..ATTRS)
        .flat_map(|a| ((a + 1)..ATTRS).map(move |b| vec![a, b]))
        .collect();
    let mut group = c.benchmark_group("marginal_all_pairs_batch");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("engine_fused", pairs.len()),
        &(),
        |b, ()| {
            b.iter(|| {
                let mut engine = MarginalEngine::new(&data);
                let batch = engine.count_many(&pairs).expect("count");
                black_box(batch.iter().map(Marginal::total).sum::<f64>())
            });
        },
    );
    group.bench_with_input(BenchmarkId::new("naive_loop", pairs.len()), &(), |b, ()| {
        b.iter(|| {
            let mut sink = 0.0;
            for attrs in &pairs {
                sink += Marginal::count_naive(&data, attrs).expect("count").total();
            }
            black_box(sink)
        });
    });
    group.finish();
}

fn packed_vs_unpacked_sweep(c: &mut Criterion) {
    use synrd_data::engine::unpacked::count_many_unpacked;
    use synrd_data::DEFAULT_CELL_LIMIT;

    let data = synrd_bench::marginal_bench_dataset(ROWS, &synrd_bench::marginal_bench_shape(ATTRS));
    let columns = data.to_columns();
    let one_ways: Vec<Vec<usize>> = (0..ATTRS).map(|a| vec![a]).collect();
    let mut group = c.benchmark_group("packed_marginal_sweep");
    group.sample_size(20);
    group.bench_with_input(BenchmarkId::new("packed_words", ROWS), &(), |b, ()| {
        b.iter(|| {
            let mut engine = MarginalEngine::new(&data);
            let batch = engine.count_many(&one_ways).expect("count");
            black_box(batch.iter().map(Marginal::total).sum::<f64>())
        });
    });
    group.bench_with_input(BenchmarkId::new("u32_slices", ROWS), &(), |b, ()| {
        b.iter(|| {
            let batch = count_many_unpacked(data.domain(), &columns, &one_ways, DEFAULT_CELL_LIMIT)
                .expect("count");
            black_box(batch.iter().map(Marginal::total).sum::<f64>())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    one_way_counting,
    two_way_counting,
    batched_multi_marginal,
    packed_vs_unpacked_sweep
);
criterion_main!(benches);
