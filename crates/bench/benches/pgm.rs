//! Ablation benches for the Private-PGM substrate (DESIGN.md "ablations"):
//! mirror-descent iteration count vs wall time, and junction-tree sampling
//! throughput as the tree widens.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use synrd_data::{BenchmarkDataset, Marginal};
use synrd_pgm::{estimate, EstimationOptions, NoisyMeasurement, TreeSampler};

/// Chain measurements over the Saw dataset (one per adjacent pair).
fn chain_measurements() -> (Vec<usize>, Vec<NoisyMeasurement>) {
    let data = BenchmarkDataset::Saw2018.generate(5_000, 3);
    let shape = data.domain().shape();
    let mut ms = Vec::new();
    for a in 0..data.n_attrs() {
        let m = Marginal::count(&data, &[a]).unwrap();
        ms.push(NoisyMeasurement {
            attrs: vec![a],
            values: m.counts().to_vec(),
            sigma: 5.0,
        });
    }
    for a in 0..data.n_attrs() - 1 {
        let m = Marginal::count(&data, &[a, a + 1]).unwrap();
        ms.push(NoisyMeasurement {
            attrs: vec![a, a + 1],
            values: m.counts().to_vec(),
            sigma: 5.0,
        });
    }
    (shape, ms)
}

fn estimation_iterations(c: &mut Criterion) {
    let (shape, ms) = chain_measurements();
    let mut group = c.benchmark_group("pgm_mirror_descent");
    group.sample_size(10);
    for iters in [10usize, 50, 150] {
        group.bench_with_input(BenchmarkId::from_parameter(iters), &iters, |b, &iters| {
            b.iter(|| {
                estimate(
                    &shape,
                    &ms,
                    EstimationOptions {
                        iterations: iters,
                        initial_step: 1.0,
                        cell_limit: 1 << 21,
                    },
                )
                .expect("estimate")
            });
        });
    }
    group.finish();
}

fn sampling_throughput(c: &mut Criterion) {
    let (shape, ms) = chain_measurements();
    let model = estimate(&shape, &ms, EstimationOptions::default()).expect("estimate");
    let sampler = TreeSampler::new(&model).expect("sampler");
    let mut group = c.benchmark_group("pgm_sampling");
    group.sample_size(10);
    for rows in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, &rows| {
            let mut rng = StdRng::seed_from_u64(11);
            b.iter(|| sampler.sample_columns(rows, &mut rng));
        });
    }
    group.finish();
}

criterion_group!(benches, estimation_iterations, sampling_throughput);
criterion_main!(benches);
