//! Ablation benches for the Private-PGM substrate (DESIGN.md "ablations"):
//! mirror-descent iteration count vs wall time, junction-tree sampling
//! throughput as the tree widens, and before/after kernel benches pitting
//! the stride-based calibration against the retained naive-reference
//! implementation (`perfgrid` records the same comparison to
//! `BENCH_pgm.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use synrd_data::{BenchmarkDataset, Marginal};
use synrd_pgm::{
    calibrate_into, calibrate_naive, estimate, CalibratedTree, CalibrationWorkspace,
    EstimationOptions, NoisyMeasurement, TreeSampler,
};

/// Chain measurements over the Saw dataset (one per adjacent pair).
fn chain_measurements() -> (Vec<usize>, Vec<NoisyMeasurement>) {
    let data = BenchmarkDataset::Saw2018.generate(5_000, 3);
    let shape = data.domain().shape();
    let mut ms = Vec::new();
    for a in 0..data.n_attrs() {
        let m = Marginal::count(&data, &[a]).unwrap();
        ms.push(NoisyMeasurement {
            attrs: vec![a],
            values: m.counts().to_vec(),
            sigma: 5.0,
        });
    }
    for a in 0..data.n_attrs() - 1 {
        let m = Marginal::count(&data, &[a, a + 1]).unwrap();
        ms.push(NoisyMeasurement {
            attrs: vec![a, a + 1],
            values: m.counts().to_vec(),
            sigma: 5.0,
        });
    }
    (shape, ms)
}

fn estimation_iterations(c: &mut Criterion) {
    let (shape, ms) = chain_measurements();
    let mut group = c.benchmark_group("pgm_mirror_descent");
    group.sample_size(10);
    for iters in [10usize, 50, 150] {
        group.bench_with_input(BenchmarkId::from_parameter(iters), &iters, |b, &iters| {
            b.iter(|| {
                estimate(
                    &shape,
                    &ms,
                    EstimationOptions {
                        iterations: iters,
                        initial_step: 1.0,
                        cell_limit: 1 << 21,
                        fit_threads: 1,
                    },
                )
                .expect("estimate")
            });
        });
    }
    group.finish();
}

fn sampling_throughput(c: &mut Criterion) {
    let (shape, ms) = chain_measurements();
    let model = estimate(&shape, &ms, EstimationOptions::default()).expect("estimate");
    let sampler = TreeSampler::new(&model).expect("sampler");
    let mut group = c.benchmark_group("pgm_sampling");
    group.sample_size(10);
    for rows in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, &rows| {
            let mut rng = StdRng::seed_from_u64(11);
            b.iter(|| sampler.sample_columns(rows, &mut rng));
        });
    }
    group.finish();
}

/// Before/after row-generation bench: the batched clique-major engine vs
/// the retained per-row oracle, on the same fitted model (`perfgrid`
/// records the same comparison to `BENCH_sampling.json`).
fn sampling_kernels(c: &mut Criterion) {
    let (shape, ms) = chain_measurements();
    let model = estimate(&shape, &ms, EstimationOptions::default()).expect("estimate");
    let sampler = TreeSampler::new(&model).expect("sampler");
    let mut group = c.benchmark_group("pgm_sampling_kernel");
    group.sample_size(10);
    let rows = 100_000usize;
    group.bench_with_input(BenchmarkId::new("batched", rows), &(), |b, ()| {
        let mut ws = synrd_pgm::SamplingWorkspace::new();
        b.iter(|| sampler.sample_columns_with(rows, &mut StdRng::seed_from_u64(11), &mut ws));
    });
    group.bench_with_input(BenchmarkId::new("naive", rows), &(), |b, ()| {
        b.iter(|| sampler.sample_columns_naive(rows, &mut StdRng::seed_from_u64(11)));
    });
    group.finish();
}

/// Before/after kernel bench: one full calibration through the stride
/// kernels (workspace reused across iterations, as the mirror-descent loop
/// does) vs the naive expand-then-zip reference. Problems come from
/// [`synrd_bench::pgm_chain_problem`] — the same grid `perfgrid` records
/// to `BENCH_pgm.json`.
fn calibrate_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("pgm_calibrate_kernel");
    group.sample_size(20);
    for (d, card) in [(8usize, 4usize), (6, 10)] {
        let (tree, pots) = synrd_bench::pgm_chain_problem(d, card);
        let mut ws = CalibrationWorkspace::new();
        let mut out = CalibratedTree::default();
        group.bench_with_input(
            BenchmarkId::new("stride", format!("d{d}c{card}")),
            &(),
            |b, ()| {
                b.iter(|| {
                    calibrate_into(&tree, &pots, &mut ws, &mut out).expect("calibrate");
                    out.beliefs[0].log_values()[0]
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("naive", format!("d{d}c{card}")),
            &(),
            |b, ()| {
                b.iter(|| calibrate_naive(&tree, &pots).expect("calibrate"));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    estimation_iterations,
    sampling_throughput,
    sampling_kernels,
    calibrate_kernels
);
criterion_main!(benches);
