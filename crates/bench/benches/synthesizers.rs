//! §7 "Computational resources": relative fit/sample cost of the six
//! synthesizers. The paper reports PrivMRF slowest (GPU-bound), PrivBayes
//! second; GEM/PATECTGAN the only methods tractable on wide domains. These
//! benches document our implementations' cost ordering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use synrd_data::BenchmarkDataset;
use synrd_synth::SynthKind;

fn fit_cost(c: &mut Criterion) {
    let data = BenchmarkDataset::Saw2018.generate(2_000, 5);
    let eps = std::f64::consts::E;
    let mut group = c.benchmark_group("fit_saw2018_n2000");
    group.sample_size(10);
    for kind in SynthKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut synth = kind.build();
                    synth
                        .fit(&data, kind.native_privacy(eps, data.n_rows()), 7)
                        .expect("fit");
                });
            },
        );
    }
    group.finish();
}

fn sample_cost(c: &mut Criterion) {
    let data = BenchmarkDataset::Saw2018.generate(2_000, 5);
    let eps = std::f64::consts::E;
    let mut group = c.benchmark_group("sample_10k_rows");
    group.sample_size(10);
    for kind in SynthKind::ALL {
        let mut synth = kind.build();
        synth
            .fit(&data, kind.native_privacy(eps, data.n_rows()), 7)
            .expect("fit");
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, _| {
            b.iter(|| synth.sample(10_000, 3).expect("sample"));
        });
    }
    group.finish();
}

fn wide_domain_fit(c: &mut Criterion) {
    // Only GEM and PATECTGAN can fit Jeong's 1e43 domain; time them.
    let data = BenchmarkDataset::Jeong2021.generate(1_500, 5);
    let eps = std::f64::consts::E;
    let mut group = c.benchmark_group("fit_jeong_n1500_wide_domain");
    group.sample_size(10);
    for kind in [SynthKind::Gem, SynthKind::PateCtgan] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut synth = kind.build();
                    synth
                        .fit(&data, kind.native_privacy(eps, data.n_rows()), 7)
                        .expect("fit");
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fit_cost, sample_cost, wide_domain_fit);
criterion_main!(benches);
