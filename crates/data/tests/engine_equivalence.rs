//! Differential proptests pinning the marginal engine against the naive
//! oracle (`naive-reference` feature): kernel-vs-naive count equivalence,
//! fused-batch equivalence, stride-walking projection equivalence, and
//! parallel-vs-sequential bit-identity of the chunked sweep.
//!
//! Every comparison is exact (`==` on the `f64` count vectors, via
//! `Marginal: PartialEq`): the engine counts in `u64` and converts once,
//! which must equal the naive kernel's repeated `+= 1.0` bit for bit.

use proptest::prelude::*;
use rayon::ThreadPoolBuilder;
use synrd_data::engine::{count_marginal_chunked, unpacked::count_many_unpacked};
use synrd_data::{Attribute, Dataset, Domain, Marginal, MarginalEngine, DEFAULT_CELL_LIMIT};

/// Strategy: a random domain (1–5 attributes, cardinalities 1–6 — including
/// the degenerate cardinality-1 case) and a matching dataset of 0–300 rows
/// (including the empty dataset).
fn domain_and_rows() -> impl Strategy<Value = (Vec<usize>, Vec<Vec<u32>>)> {
    proptest::collection::vec(1usize..=6, 1..=5).prop_flat_map(|shape| {
        let row = shape
            .iter()
            .map(|&card| 0u32..card as u32)
            .collect::<Vec<_>>();
        let rows = proptest::collection::vec(row, 0..=300);
        (Just(shape), rows)
    })
}

fn build_dataset(shape: &[usize], rows: &[Vec<u32>]) -> Dataset {
    let attrs = shape
        .iter()
        .enumerate()
        .map(|(i, &card)| Attribute::ordinal(format!("a{i}"), card))
        .collect();
    let mut ds = Dataset::with_capacity(Domain::new(attrs), rows.len());
    for row in rows {
        ds.push_row(row).expect("codes in range by construction");
    }
    ds
}

/// Every non-empty subset of the attribute indices (domains here have ≤ 5
/// attributes, so this is at most 31 sets).
fn all_subsets(d: usize) -> Vec<Vec<usize>> {
    (1u32..(1 << d))
        .map(|mask| (0..d).filter(|&a| mask & (1 << a) != 0).collect())
        .collect()
}

/// Strategy variant with cardinalities chosen to stress the bit-packing:
/// constant columns (width 0), widths that divide 64 unevenly (3, 17 → 2
/// and 5 bits), and power-of-two boundaries (16, 64). Fewer attributes so
/// the full joint stays under the cell limit.
fn wide_domain_and_rows() -> impl Strategy<Value = (Vec<usize>, Vec<Vec<u32>>)> {
    const CARDS: [usize; 10] = [1, 2, 3, 4, 5, 6, 16, 17, 64, 65];
    let card = (0usize..CARDS.len()).prop_map(|i| CARDS[i]);
    proptest::collection::vec(card, 1..=3).prop_flat_map(|shape| {
        let row = shape
            .iter()
            .map(|&card| 0u32..card as u32)
            .collect::<Vec<_>>();
        let rows = proptest::collection::vec(row, 0..=300);
        (Just(shape), rows)
    })
}

proptest! {
    /// Engine kernel == naive per-row counter, for every attribute subset.
    #[test]
    fn engine_count_matches_naive((shape, rows) in domain_and_rows()) {
        let ds = build_dataset(&shape, &rows);
        for attrs in all_subsets(shape.len()) {
            let fast = Marginal::count(&ds, &attrs).unwrap();
            let naive = Marginal::count_naive(&ds, &attrs).unwrap();
            prop_assert!(fast == naive, "attrs {:?}", attrs);
        }
    }

    /// The fused multi-marginal sweep answers exactly what per-set counting
    /// answers, in request order.
    #[test]
    fn count_many_matches_naive((shape, rows) in domain_and_rows()) {
        let ds = build_dataset(&shape, &rows);
        let sets = all_subsets(shape.len());
        let mut engine = MarginalEngine::new(&ds);
        let batch = engine.count_many(&sets).unwrap();
        prop_assert_eq!(batch.len(), sets.len());
        for (attrs, fast) in sets.iter().zip(batch) {
            let naive = Marginal::count_naive(&ds, attrs).unwrap();
            prop_assert!(fast == naive, "attrs {:?}", attrs);
        }
    }

    /// Chunk-parallel counting is bit-identical to the sequential pass:
    /// per-chunk `u64` partials merged by integer addition cannot differ
    /// from one accumulator, whatever the chunking or thread count.
    #[test]
    fn parallel_count_is_bit_identical(
        (shape, rows) in domain_and_rows(),
        chunk in 1usize..=64,
        threads in 2usize..=8,
    ) {
        let ds = build_dataset(&shape, &rows);
        let all: Vec<usize> = (0..shape.len()).collect();
        let sequential =
            count_marginal_chunked(&ds, &all, DEFAULT_CELL_LIMIT, usize::MAX).unwrap();
        let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let chunked = pool.install(|| {
            count_marginal_chunked(&ds, &all, DEFAULT_CELL_LIMIT, chunk).unwrap()
        });
        prop_assert_eq!(sequential, chunked);
    }

    /// Stride-walking projection == the per-cell decode/re-encode oracle,
    /// for arbitrary (possibly reordered or duplicated) keep positions.
    #[test]
    fn project_matches_naive(
        (shape, rows) in domain_and_rows(),
        keep_seed in proptest::collection::vec(0usize..5, 0..=4),
    ) {
        let ds = build_dataset(&shape, &rows);
        let all: Vec<usize> = (0..shape.len()).collect();
        let joint = Marginal::count(&ds, &all).unwrap();
        let keep: Vec<usize> = keep_seed.iter().map(|&k| k % shape.len()).collect();
        let fast = joint.project(&keep).unwrap();
        let naive = joint.project_naive(&keep).unwrap();
        prop_assert!(fast == naive, "keep {:?}", keep);
    }

    /// The packed block-decode kernels == the retained `u32`-slice kernel
    /// on the same fused batch: the only difference between the two paths
    /// is the memory they stream, so the `u64` histograms must be equal —
    /// and therefore the `f64` tables bit-identical.
    #[test]
    fn packed_kernel_matches_unpacked_kernel((shape, rows) in wide_domain_and_rows()) {
        let ds = build_dataset(&shape, &rows);
        let columns = ds.to_columns();
        let sets = all_subsets(shape.len());
        let mut engine = MarginalEngine::new(&ds);
        let packed = engine.count_many(&sets).unwrap();
        let unpacked =
            count_many_unpacked(ds.domain(), &columns, &sets, DEFAULT_CELL_LIMIT).unwrap();
        prop_assert_eq!(packed, unpacked);
    }

    /// The engine cache never changes answers: a second pass over the same
    /// sets returns identical tables.
    #[test]
    fn cache_hits_are_identical((shape, rows) in domain_and_rows()) {
        let ds = build_dataset(&shape, &rows);
        let sets = all_subsets(shape.len());
        let mut engine = MarginalEngine::new(&ds);
        let first = engine.count_many(&sets).unwrap();
        let second = engine.count_many(&sets).unwrap();
        prop_assert_eq!(first, second);
        // Second pass was served entirely from the cache.
        prop_assert!(engine.cache().hits() >= sets.len() as u64 * 2);
        prop_assert_eq!(engine.cache().misses(), sets.len() as u64);
    }
}
