//! Differential proptests pinning the bit-packed `Dataset` storage against
//! an unpacked `Vec<Vec<u32>>` shadow mirror under every constructing and
//! row-rearranging operation: `new`, `push_row`, `select`, `take_rows`,
//! `filter_rows`, `bootstrap_sample` and `subsample`.
//!
//! The domains deliberately include the packing edge cases: cardinality-1
//! attributes (width 0, no words stored), widths that divide 64 unevenly
//! (cardinality 3 → 2 bits, 17 → 5 bits), power-of-two boundaries (16, 64,
//! 65) and empty datasets. RNG-driven operations run the packed dataset and
//! the mirror from *cloned* seeded generators, so any divergence in RNG
//! consumption order would also fail the comparison.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use synrd_data::{Attribute, ColumnAccess, Dataset, Domain};

/// Cardinalities chosen to stress the packing (see module docs).
fn card_strategy() -> impl Strategy<Value = usize> {
    const CARDS: [usize; 11] = [1, 2, 3, 4, 5, 6, 16, 17, 64, 65, 100];
    (0usize..CARDS.len()).prop_map(|i| CARDS[i])
}

/// A random domain shape and a matching column-major mirror (0–200 rows,
/// including the empty dataset).
fn shape_and_mirror() -> impl Strategy<Value = (Vec<usize>, Vec<Vec<u32>>)> {
    proptest::collection::vec(card_strategy(), 1..=5).prop_flat_map(|shape| {
        let row = shape
            .iter()
            .map(|&card| 0u32..card as u32)
            .collect::<Vec<_>>();
        let rows = proptest::collection::vec(row, 0..=200);
        (Just(shape), rows)
    })
}

fn domain_of(shape: &[usize]) -> Domain {
    Domain::new(
        shape
            .iter()
            .enumerate()
            .map(|(i, &card)| Attribute::ordinal(format!("a{i}"), card))
            .collect(),
    )
}

/// Column-major mirror of a row-major sample.
fn columns_of(shape: &[usize], rows: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let mut cols = vec![Vec::with_capacity(rows.len()); shape.len()];
    for row in rows {
        for (c, &v) in cols.iter_mut().zip(row) {
            c.push(v);
        }
    }
    cols
}

proptest! {
    /// `Dataset::new` packs exactly the columns it was given: `to_columns`,
    /// per-cell `get`/`value`, and the row cursor all reproduce the mirror.
    #[test]
    fn new_round_trips((shape, rows) in shape_and_mirror()) {
        let cols = columns_of(&shape, &rows);
        let ds = Dataset::new(domain_of(&shape), cols.clone()).unwrap();
        prop_assert_eq!(ds.n_rows(), rows.len());
        prop_assert_eq!(ds.to_columns(), cols.clone());
        for (a, col) in cols.iter().enumerate() {
            let packed = ds.packed_column(a).unwrap();
            prop_assert_eq!(packed.len(), col.len());
            for (r, &want) in col.iter().enumerate() {
                prop_assert_eq!(packed.get(r), want);
                prop_assert_eq!(ds.value(r, a).unwrap(), want);
                prop_assert_eq!(ds.row(r).get(a), want);
            }
        }
    }

    /// Row-by-row `push_row` produces the same packed words as bulk `new`
    /// (canonical padding makes this `==` on the whole dataset).
    #[test]
    fn push_row_matches_bulk_pack((shape, rows) in shape_and_mirror()) {
        let bulk = Dataset::new(domain_of(&shape), columns_of(&shape, &rows)).unwrap();
        let mut pushed = Dataset::with_capacity(domain_of(&shape), rows.len());
        for row in &rows {
            pushed.push_row(row).unwrap();
        }
        prop_assert_eq!(bulk, pushed);
    }

    /// `select` mirrors column picking (order-preserving, clone-backed).
    #[test]
    fn select_matches_mirror(
        (shape, rows) in shape_and_mirror(),
        pick_seed in proptest::collection::vec(0usize..5, 1..=3),
    ) {
        let cols = columns_of(&shape, &rows);
        let ds = Dataset::new(domain_of(&shape), cols.clone()).unwrap();
        // Distinct in-range attribute picks (validate_attr_set rejects dups).
        let mut picks: Vec<usize> = pick_seed.iter().map(|&p| p % shape.len()).collect();
        picks.sort_unstable();
        picks.dedup();
        let selected = ds.select(&picks).unwrap();
        let expect: Vec<Vec<u32>> = picks.iter().map(|&a| cols[a].clone()).collect();
        prop_assert_eq!(selected.to_columns(), expect);
    }

    /// `take_rows` (with repeats) re-packs exactly the gathered codes.
    #[test]
    fn take_rows_matches_mirror(
        (shape, rows) in shape_and_mirror(),
        idx_seed in proptest::collection::vec(0usize..1000, 0..=300),
    ) {
        prop_assume!(!rows.is_empty());
        let cols = columns_of(&shape, &rows);
        let ds = Dataset::new(domain_of(&shape), cols.clone()).unwrap();
        let idx: Vec<usize> = idx_seed.iter().map(|&i| i % rows.len()).collect();
        let taken = ds.take_rows(&idx);
        let expect: Vec<Vec<u32>> = cols
            .iter()
            .map(|col| idx.iter().map(|&r| col[r]).collect())
            .collect();
        prop_assert_eq!(taken.n_rows(), idx.len());
        prop_assert_eq!(taken.to_columns(), expect);
    }

    /// Streaming `filter_rows` == mirror row filtering (same predicate on
    /// the first attribute), including when nothing or everything matches.
    #[test]
    fn filter_rows_matches_mirror((shape, rows) in shape_and_mirror(), code in 0u32..4) {
        let cols = columns_of(&shape, &rows);
        let ds = Dataset::new(domain_of(&shape), cols.clone()).unwrap();
        let filtered = ds.filter_rows(|r| r.get(0) % 4 == code);
        let keep: Vec<usize> = cols[0]
            .iter()
            .enumerate()
            .filter(|(_, &c)| c % 4 == code)
            .map(|(r, _)| r)
            .collect();
        let expect: Vec<Vec<u32>> = cols
            .iter()
            .map(|col| keep.iter().map(|&r| col[r]).collect())
            .collect();
        prop_assert_eq!(filtered.n_rows(), keep.len());
        prop_assert_eq!(filtered.to_columns(), expect);
    }

    /// `bootstrap_sample` consumes the RNG exactly as the pre-packing
    /// implementation did (one `gen_range` per drawn row) and packs the
    /// gathered codes faithfully — checked with a cloned generator.
    #[test]
    fn bootstrap_matches_mirror((shape, rows) in shape_and_mirror(), seed in 0u64..1000) {
        prop_assume!(!rows.is_empty());
        let cols = columns_of(&shape, &rows);
        let ds = Dataset::new(domain_of(&shape), cols.clone()).unwrap();
        let n = rows.len().min(97);
        let mut rng = StdRng::seed_from_u64(seed);
        let bs = ds.bootstrap_sample(n, &mut rng);
        let mut shadow_rng = StdRng::seed_from_u64(seed);
        let idx: Vec<usize> = (0..n).map(|_| shadow_rng.gen_range(0..rows.len())).collect();
        let expect: Vec<Vec<u32>> = cols
            .iter()
            .map(|col| idx.iter().map(|&r| col[r]).collect())
            .collect();
        prop_assert_eq!(bs.to_columns(), expect);
        // Both consumed identically many draws.
        prop_assert_eq!(rng.gen::<u64>(), shadow_rng.gen::<u64>());
    }

    /// `subsample` likewise: shuffle-truncate with a cloned generator gives
    /// the same rows, and `n >= n_rows` degenerates to a clone.
    #[test]
    fn subsample_matches_mirror((shape, rows) in shape_and_mirror(), seed in 0u64..1000) {
        let cols = columns_of(&shape, &rows);
        let ds = Dataset::new(domain_of(&shape), cols.clone()).unwrap();
        let n = rows.len() / 2;
        let mut rng = StdRng::seed_from_u64(seed);
        let sub = ds.subsample(n, &mut rng);
        let mut shadow_rng = StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..rows.len()).collect();
        idx.shuffle(&mut shadow_rng);
        idx.truncate(n);
        let expect: Vec<Vec<u32>> = cols
            .iter()
            .map(|col| idx.iter().map(|&r| col[r]).collect())
            .collect();
        prop_assert_eq!(sub.to_columns(), expect);

        let full = ds.subsample(rows.len(), &mut rng);
        prop_assert_eq!(full, ds);
    }

    /// `value_counts` (u64 accumulation) == a mirror histogram, and the
    /// streaming reads (`for_each_code`, `decode_into`) agree with `get`.
    #[test]
    fn value_counts_and_streams_match_mirror((shape, rows) in shape_and_mirror()) {
        let cols = columns_of(&shape, &rows);
        let ds = Dataset::new(domain_of(&shape), cols.clone()).unwrap();
        let mut scratch = Vec::new();
        for (a, col) in cols.iter().enumerate() {
            let mut expect = vec![0.0f64; shape[a]];
            for &c in col {
                expect[c as usize] += 1.0;
            }
            prop_assert_eq!(ds.value_counts(a).unwrap(), expect);
            let packed = ds.packed_column(a).unwrap();
            let mut streamed = Vec::with_capacity(col.len());
            packed.for_each_code(|c| streamed.push(c));
            prop_assert_eq!(&streamed, col);
            packed.decode_into(&mut scratch);
            prop_assert_eq!(&scratch, col);
        }
    }
}
