//! Property-based tests for the data substrate's core invariants.

use proptest::prelude::*;
use synrd_data::{Attribute, Dataset, Domain, Marginal};

/// Strategy: a small random domain (2–5 attributes, cardinalities 2–6) and a
/// matching dataset of 1–200 rows.
fn domain_and_rows() -> impl Strategy<Value = (Vec<usize>, Vec<Vec<u32>>)> {
    proptest::collection::vec(2usize..=6, 2..=5).prop_flat_map(|shape| {
        let row = shape
            .iter()
            .map(|&card| 0u32..card as u32)
            .collect::<Vec<_>>();
        let rows = proptest::collection::vec(row, 1..=200);
        (Just(shape), rows)
    })
}

fn build_dataset(shape: &[usize], rows: &[Vec<u32>]) -> Dataset {
    let attrs = shape
        .iter()
        .enumerate()
        .map(|(i, &card)| Attribute::ordinal(format!("a{i}"), card))
        .collect();
    let mut ds = Dataset::with_capacity(Domain::new(attrs), rows.len());
    for row in rows {
        ds.push_row(row).expect("codes in range by construction");
    }
    ds
}

proptest! {
    /// Marginal totals always equal the row count, for any attribute subset.
    #[test]
    fn marginal_total_is_row_count((shape, rows) in domain_and_rows()) {
        let ds = build_dataset(&shape, &rows);
        for a in 0..shape.len() {
            let m = Marginal::count(&ds, &[a]).unwrap();
            prop_assert!((m.total() - rows.len() as f64).abs() < 1e-9);
        }
        let all: Vec<usize> = (0..shape.len()).collect();
        let m = Marginal::count(&ds, &all).unwrap();
        prop_assert!((m.total() - rows.len() as f64).abs() < 1e-9);
    }

    /// Cell indexing is a bijection.
    #[test]
    fn index_codes_bijection((shape, rows) in domain_and_rows()) {
        let ds = build_dataset(&shape, &rows);
        let all: Vec<usize> = (0..shape.len()).collect();
        let m = Marginal::count(&ds, &all).unwrap();
        for idx in 0..m.n_cells() {
            prop_assert_eq!(m.index_of(&m.codes_of(idx)), idx);
        }
    }

    /// Projection commutes with direct counting.
    #[test]
    fn projection_commutes((shape, rows) in domain_and_rows()) {
        let ds = build_dataset(&shape, &rows);
        let joint = Marginal::count(&ds, &[0, 1]).unwrap();
        let projected = joint.project(&[0]).unwrap();
        let direct = Marginal::count(&ds, &[0]).unwrap();
        for (a, b) in projected.counts().iter().zip(direct.counts()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Mutual information is non-negative and symmetric.
    #[test]
    fn mi_nonnegative_symmetric((shape, rows) in domain_and_rows()) {
        let ds = build_dataset(&shape, &rows);
        let ab = synrd_data::mutual_information(&ds, 0, 1).unwrap();
        let ba = synrd_data::mutual_information(&ds, 1, 0).unwrap();
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-9);
    }

    /// Sparsity stays within [0, 1] for every attribute summary.
    #[test]
    fn sparsity_bounded((shape, rows) in domain_and_rows()) {
        prop_assume!(rows.len() >= 2);
        let ds = build_dataset(&shape, &rows);
        let s = synrd_data::metafeatures::sparsity_summary(&ds).unwrap();
        prop_assert!(s.mean >= -1e-12 && s.mean <= 1.0 + 1e-12, "mean = {}", s.mean);
    }

    /// Filtering then counting never exceeds original counts.
    #[test]
    fn filter_monotone((shape, rows) in domain_and_rows()) {
        let ds = build_dataset(&shape, &rows);
        let filtered = ds.filter_rows(|r| r.get(0) == 0);
        prop_assert!(filtered.n_rows() <= ds.n_rows());
        let all_zero = filtered.decode_column(0).unwrap().iter().all(|&c| c == 0);
        prop_assert!(all_zero);
    }

    /// Bootstrap samples preserve the domain and row count.
    #[test]
    fn bootstrap_preserves_shape((shape, rows) in domain_and_rows(), seed in 0u64..1000) {
        use rand::SeedableRng;
        let ds = build_dataset(&shape, &rows);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let bs = ds.bootstrap_sample(rows.len(), &mut rng);
        prop_assert_eq!(bs.n_rows(), rows.len());
        prop_assert_eq!(bs.domain(), ds.domain());
    }
}
