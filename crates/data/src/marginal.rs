//! Marginal (contingency) tables with mixed-radix cell indexing.
//!
//! A [`Marginal`] is the count vector of a subset of attributes — the object
//! every marginal-based synthesizer in the paper measures, noises, and fits
//! to. Cells are laid out row-major over the attribute subset, so the table
//! for attributes `[a, b]` with shapes `[3, 4]` has 12 cells and cell
//! `(i, j)` lives at `i * 4 + j`.
//!
//! Counting from data routes through the engine kernel
//! ([`crate::engine`]): integer accumulators, specialized one/two-way
//! loops, chunk-parallel sweeps. The original per-row counter and the
//! per-cell projection are retained as `count_naive` / `project_naive`
//! behind `cfg(any(test, feature = "naive-reference"))` — the differential
//! oracle the equivalence proptests pin the kernels against.

use crate::dataset::Dataset;
use crate::error::{DataError, Result};

#[cfg(any(test, feature = "naive-reference"))]
use crate::domain::validate_attr_set;

/// Default cap on materialized marginal cells (4M cells = 32 MB of `f64`).
pub const DEFAULT_CELL_LIMIT: usize = 1 << 22;

/// Dense count table over a subset of attributes of some parent domain.
#[derive(Debug, Clone, PartialEq)]
pub struct Marginal {
    attrs: Vec<usize>,
    shape: Vec<usize>,
    strides: Vec<usize>,
    counts: Vec<f64>,
}

/// Row-major strides for a shape.
pub(crate) fn strides_of(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

impl Marginal {
    /// Count the marginal of `attrs` over `dataset`, refusing tables larger
    /// than `cell_limit` cells.
    ///
    /// # Errors
    /// [`DataError::MarginalTooLarge`] when over the limit, plus the usual
    /// attribute-set validation errors.
    pub fn from_dataset(dataset: &Dataset, attrs: &[usize], cell_limit: usize) -> Result<Self> {
        crate::engine::count_marginal(dataset, attrs, cell_limit)
    }

    /// Count a marginal using [`DEFAULT_CELL_LIMIT`].
    pub fn count(dataset: &Dataset, attrs: &[usize]) -> Result<Self> {
        Self::from_dataset(dataset, attrs, DEFAULT_CELL_LIMIT)
    }

    /// The original per-row counter: one mixed-radix index rebuilt from
    /// scratch per row with an inner loop over the attribute set. Retained
    /// verbatim as the differential oracle for the engine kernel.
    #[cfg(any(test, feature = "naive-reference"))]
    pub fn from_dataset_naive(
        dataset: &Dataset,
        attrs: &[usize],
        cell_limit: usize,
    ) -> Result<Self> {
        validate_attr_set(dataset.domain().len(), attrs)?;
        let cells = dataset.domain().cells(attrs)?;
        if cells > cell_limit as u128 {
            return Err(DataError::MarginalTooLarge {
                cells,
                limit: cell_limit,
            });
        }
        let shape: Vec<usize> = attrs
            .iter()
            .map(|&a| dataset.domain().cardinality(a))
            .collect::<Result<_>>()?;
        let strides = strides_of(&shape);
        let mut counts = vec![0.0; cells as usize];

        // Hot loop: walk the columns once, accumulating mixed-radix indices
        // (decoded out of the packed store up front — the oracle's counting
        // body is unchanged from the pre-packing layout).
        let cols: Vec<Vec<u32>> = attrs
            .iter()
            .map(|&a| dataset.decode_column(a))
            .collect::<Result<_>>()?;
        for r in 0..dataset.n_rows() {
            let mut idx = 0usize;
            for (k, col) in cols.iter().enumerate() {
                idx += col[r] as usize * strides[k];
            }
            counts[idx] += 1.0;
        }
        Ok(Marginal {
            attrs: attrs.to_vec(),
            shape,
            strides,
            counts,
        })
    }

    /// Naive-oracle counterpart of [`Marginal::count`].
    #[cfg(any(test, feature = "naive-reference"))]
    pub fn count_naive(dataset: &Dataset, attrs: &[usize]) -> Result<Self> {
        Self::from_dataset_naive(dataset, attrs, DEFAULT_CELL_LIMIT)
    }

    /// Build a marginal from raw parts (e.g. after adding noise).
    pub fn from_counts(attrs: Vec<usize>, shape: Vec<usize>, counts: Vec<f64>) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if counts.len() != expected || attrs.len() != shape.len() {
            return Err(DataError::RaggedColumns);
        }
        let strides = strides_of(&shape);
        Ok(Marginal {
            attrs,
            shape,
            strides,
            counts,
        })
    }

    /// Parent-domain attribute indices this marginal covers.
    pub fn attrs(&self) -> &[usize] {
        &self.attrs
    }

    /// Cardinalities per attribute.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Raw cell counts.
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Mutable cell counts (used by mechanisms to add noise in place).
    pub fn counts_mut(&mut self) -> &mut [f64] {
        &mut self.counts
    }

    /// Total mass.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Number of cells.
    pub fn n_cells(&self) -> usize {
        self.counts.len()
    }

    /// Mixed-radix cell index of a code tuple (one code per attribute, in
    /// this marginal's attribute order).
    pub fn index_of(&self, codes: &[u32]) -> usize {
        debug_assert_eq!(codes.len(), self.shape.len());
        codes
            .iter()
            .zip(&self.strides)
            .map(|(&c, &s)| c as usize * s)
            .sum()
    }

    /// Inverse of [`Marginal::index_of`].
    pub fn codes_of(&self, mut index: usize) -> Vec<u32> {
        let mut codes = vec![0u32; self.shape.len()];
        for (k, &s) in self.strides.iter().enumerate() {
            codes[k] = (index / s) as u32;
            index %= s;
        }
        codes
    }

    /// Probability-normalized copy (cells clamped at zero first, uniform if
    /// the table is all-zero — the convention the synthesizers need after
    /// noising).
    pub fn normalized(&self) -> Vec<f64> {
        let mut probs: Vec<f64> = self.counts.iter().map(|&c| c.max(0.0)).collect();
        let total: f64 = probs.iter().sum();
        if total <= 0.0 {
            let u = 1.0 / probs.len() as f64;
            probs.iter_mut().for_each(|p| *p = u);
        } else {
            probs.iter_mut().for_each(|p| *p /= total);
        }
        probs
    }

    /// Sum out all attributes except those at `keep_positions` (positions
    /// into this marginal's attribute list, preserving order).
    ///
    /// Walks the source table once with an incremental odometer: the
    /// projected index is updated per step from a precomputed per-dimension
    /// stride map, so no code vector is allocated per cell (the cost that
    /// made `mutual_information` allocation-bound). Cells are visited in the
    /// same row-major order as the naive per-cell decode, so the summed
    /// `f64` counts are bit-identical to [`Marginal::project_naive`].
    pub fn project(&self, keep_positions: &[usize]) -> Result<Marginal> {
        for &p in keep_positions {
            if p >= self.shape.len() {
                return Err(DataError::AttributeIndexOutOfBounds {
                    index: p,
                    len: self.shape.len(),
                });
            }
        }
        let new_attrs: Vec<usize> = keep_positions.iter().map(|&p| self.attrs[p]).collect();
        let new_shape: Vec<usize> = keep_positions.iter().map(|&p| self.shape[p]).collect();
        let new_strides = strides_of(&new_shape);
        let mut new_counts = vec![0.0; new_shape.iter().product()];
        // Per source dimension: how much the projected index moves when that
        // dimension's code increments (summed, so repeated keep positions
        // contribute exactly as the naive decode does).
        let d = self.shape.len();
        let mut proj_stride = vec![0usize; d];
        for (k, &p) in keep_positions.iter().enumerate() {
            proj_stride[p] += new_strides[k];
        }
        let mut codes = vec![0usize; d];
        let mut new_idx = 0usize;
        for &c in &self.counts {
            new_counts[new_idx] += c;
            // Odometer increment, last dimension fastest (row-major).
            for k in (0..d).rev() {
                codes[k] += 1;
                new_idx += proj_stride[k];
                if codes[k] < self.shape[k] {
                    break;
                }
                codes[k] = 0;
                new_idx -= self.shape[k] * proj_stride[k];
            }
        }
        Marginal::from_counts(new_attrs, new_shape, new_counts)
    }

    /// The original projection: decode every cell index into a code vector,
    /// re-encode under the kept positions. Differential oracle for
    /// [`Marginal::project`].
    #[cfg(any(test, feature = "naive-reference"))]
    pub fn project_naive(&self, keep_positions: &[usize]) -> Result<Marginal> {
        for &p in keep_positions {
            if p >= self.shape.len() {
                return Err(DataError::AttributeIndexOutOfBounds {
                    index: p,
                    len: self.shape.len(),
                });
            }
        }
        let new_attrs: Vec<usize> = keep_positions.iter().map(|&p| self.attrs[p]).collect();
        let new_shape: Vec<usize> = keep_positions.iter().map(|&p| self.shape[p]).collect();
        let new_strides = strides_of(&new_shape);
        let mut new_counts = vec![0.0; new_shape.iter().product()];
        for (idx, &c) in self.counts.iter().enumerate() {
            let codes = self.codes_of(idx);
            let mut new_idx = 0usize;
            for (k, &p) in keep_positions.iter().enumerate() {
                new_idx += codes[p] as usize * new_strides[k];
            }
            new_counts[new_idx] += c;
        }
        Marginal::from_counts(new_attrs, new_shape, new_counts)
    }

    /// L1 distance between the normalized distributions of two same-shape
    /// marginals (total variation distance × 2).
    ///
    /// # Errors
    /// [`DataError::ShapeMismatch`] when the tables disagree on shape — the
    /// cell-wise difference is meaningless then, and the old silent zip
    /// truncation under-reported the distance.
    pub fn l1_distance(&self, other: &Marginal) -> Result<f64> {
        if self.shape != other.shape {
            return Err(DataError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        let a = self.normalized();
        let b = other.normalized();
        Ok(a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum())
    }
}

/// Empirical mutual information (nats) of a 2-way marginal: the shared
/// computation behind [`mutual_information`] and
/// [`crate::engine::MarginalEngine::mutual_information`].
pub(crate) fn mi_from_joint(joint: &Marginal) -> Result<f64> {
    let pa = joint.project(&[0])?.normalized();
    let pb = joint.project(&[1])?.normalized();
    let pj = joint.normalized();
    let card_b = joint.shape()[1];
    let mut mi = 0.0;
    for (idx, &pxy) in pj.iter().enumerate() {
        if pxy <= 0.0 {
            continue;
        }
        let x = idx / card_b;
        let y = idx % card_b;
        let px = pa[x];
        let py = pb[y];
        if px > 0.0 && py > 0.0 {
            mi += pxy * (pxy / (px * py)).ln();
        }
    }
    // Clamp tiny negative rounding noise.
    Ok(mi.max(0.0))
}

/// Empirical mutual information (nats) between two attributes of a dataset.
///
/// `I(X;Y) = Σ p(x,y) ln( p(x,y) / (p(x) p(y)) )`, the quantity MST,
/// PrivBayes and PrivMRF use to score candidate pairs, and the Table 1
/// meta-feature.
pub fn mutual_information(dataset: &Dataset, a: usize, b: usize) -> Result<f64> {
    let joint = Marginal::count(dataset, &[a, b])?;
    mi_from_joint(&joint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;
    use crate::domain::Domain;

    fn toy() -> Dataset {
        let domain = Domain::new(vec![Attribute::binary("x"), Attribute::ordinal("y", 3)]);
        Dataset::new(domain, vec![vec![0, 0, 1, 1, 1, 0], vec![0, 1, 2, 2, 1, 0]]).unwrap()
    }

    #[test]
    fn counts_and_indexing_round_trip() {
        let m = Marginal::count(&toy(), &[0, 1]).unwrap();
        assert_eq!(m.n_cells(), 6);
        assert_eq!(m.total(), 6.0);
        // (x=1, y=2) appears twice.
        assert_eq!(m.counts()[m.index_of(&[1, 2])], 2.0);
        for idx in 0..m.n_cells() {
            assert_eq!(m.index_of(&m.codes_of(idx)), idx);
        }
    }

    #[test]
    fn count_matches_naive_oracle() {
        let ds = toy();
        for attrs in [vec![0], vec![1], vec![0, 1], vec![1, 0]] {
            assert_eq!(
                Marginal::count(&ds, &attrs).unwrap(),
                Marginal::count_naive(&ds, &attrs).unwrap()
            );
        }
    }

    #[test]
    fn projection_matches_direct_count() {
        let ds = toy();
        let joint = Marginal::count(&ds, &[0, 1]).unwrap();
        let via_project = joint.project(&[1]).unwrap();
        let direct = Marginal::count(&ds, &[1]).unwrap();
        assert_eq!(via_project.counts(), direct.counts());
        assert_eq!(via_project.attrs(), &[1]);
    }

    #[test]
    fn projection_matches_naive_including_duplicates() {
        let ds = toy();
        let joint = Marginal::count(&ds, &[0, 1]).unwrap();
        for keep in [vec![], vec![0], vec![1], vec![0, 1], vec![1, 0], vec![0, 0]] {
            let fast = joint.project(&keep).unwrap();
            let naive = joint.project_naive(&keep).unwrap();
            assert_eq!(fast, naive, "keep {keep:?}");
        }
    }

    #[test]
    fn normalization_handles_noise_artifacts() {
        let mut m = Marginal::count(&toy(), &[0]).unwrap();
        m.counts_mut()[0] = -5.0; // as if noised below zero
        let p = m.normalized();
        assert_eq!(p[0], 0.0);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);

        let zero = Marginal::from_counts(vec![0], vec![4], vec![0.0; 4]).unwrap();
        assert_eq!(zero.normalized(), vec![0.25; 4]);
    }

    #[test]
    fn l1_distance_rejects_shape_mismatch() {
        let a = Marginal::from_counts(vec![0], vec![4], vec![1.0; 4]).unwrap();
        let b = Marginal::from_counts(vec![0], vec![3], vec![1.0; 3]).unwrap();
        assert!(matches!(
            a.l1_distance(&b),
            Err(DataError::ShapeMismatch { .. })
        ));
        // Same shape still works and is symmetric.
        let c = Marginal::from_counts(vec![0], vec![4], vec![0.0, 2.0, 1.0, 1.0]).unwrap();
        let d1 = a.l1_distance(&c).unwrap();
        let d2 = c.l1_distance(&a).unwrap();
        assert!((d1 - d2).abs() < 1e-15);
        assert!(d1 > 0.0);
    }

    #[test]
    fn mi_zero_for_independent_and_high_for_copies() {
        // y is a deterministic function of x => I(X;Y) = H(X).
        let domain = Domain::new(vec![Attribute::binary("x"), Attribute::binary("y")]);
        let col: Vec<u32> = (0..1000).map(|i| (i % 2) as u32).collect();
        let ds = Dataset::new(domain.clone(), vec![col.clone(), col.clone()]).unwrap();
        let mi = mutual_information(&ds, 0, 1).unwrap();
        assert!((mi - (2.0f64).ln()).abs() < 1e-9, "mi = {mi}");

        // Independent columns => MI near zero.
        let other: Vec<u32> = (0..1000).map(|i| ((i / 2) % 2) as u32).collect();
        let ds2 = Dataset::new(domain, vec![col, other]).unwrap();
        let mi2 = mutual_information(&ds2, 0, 1).unwrap();
        assert!(mi2.abs() < 1e-6, "mi2 = {mi2}");
    }

    #[test]
    fn rejects_oversized_marginals() {
        let ds = toy();
        assert!(matches!(
            Marginal::from_dataset(&ds, &[0, 1], 4),
            Err(DataError::MarginalTooLarge { .. })
        ));
        assert!(matches!(
            Marginal::from_dataset_naive(&ds, &[0, 1], 4),
            Err(DataError::MarginalTooLarge { .. })
        ));
    }
}
