//! # synrd-data — tabular substrate for the SynRD epistemic-parity benchmark
//!
//! This crate provides everything the benchmark needs to represent and probe
//! discrete tabular data:
//!
//! * [`Attribute`] / [`Domain`] — fully discretized schemas (the encoding all
//!   marginal-based DP synthesizers consume);
//! * [`Dataset`] — column-major, bit-packed code storage (see `packed`)
//!   behind the [`ColumnAccess`] trait, with selection, filtering and
//!   resampling;
//! * [`Marginal`] — dense contingency tables with mixed-radix indexing, plus
//!   empirical [`mutual_information`];
//! * [`MarginalEngine`] — the batched, cached, parallel counting engine the
//!   synthesizer selection loops run on (see `engine`);
//! * [`metafeatures`] — the Table 1 dataset characterization (outliers,
//!   mutual information, skewness, sparsity);
//! * [`generators`] — deterministic synthetic populations standing in for the
//!   eight restricted-access ICPSR paper datasets and the UCI Adult/Mushroom
//!   comparison datasets (see DESIGN.md §3 for the substitution argument).

pub mod attribute;
pub mod csv;
pub mod dataset;
pub mod domain;
pub mod engine;
pub mod error;
pub mod generators;
pub mod marginal;
pub mod metafeatures;
pub mod packed;

pub use attribute::{AttrKind, Attribute};
pub use dataset::{Dataset, RowRef};
pub use domain::Domain;
pub use engine::{marginal_counts_performed, MarginalCache, MarginalEngine};
pub use error::{DataError, Result};
pub use generators::BenchmarkDataset;
pub use marginal::{mutual_information, Marginal, DEFAULT_CELL_LIMIT};
pub use metafeatures::{meta_features, MeanStd, MetaFeatures};
pub use packed::{ColumnAccess, PackedColumn};
