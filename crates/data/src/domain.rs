//! A [`Domain`] is the ordered schema of a dataset: its attributes and their
//! cardinalities. Domains are cheap to clone relative to datasets and are the
//! currency between the data substrate, the graphical-model substrate and the
//! synthesizers.

use crate::attribute::Attribute;
use crate::error::{DataError, Result};

/// Ordered collection of attributes; the schema of a [`crate::Dataset`].
#[derive(Debug, Clone, PartialEq)]
pub struct Domain {
    attributes: Vec<Attribute>,
}

impl Domain {
    /// Build a domain from attributes. Attribute names should be unique;
    /// lookups by name return the first match.
    pub fn new(attributes: Vec<Attribute>) -> Self {
        Domain { attributes }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// Whether the domain has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// All attributes in order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Attribute by index.
    ///
    /// # Errors
    /// [`DataError::AttributeIndexOutOfBounds`] when out of range.
    pub fn attribute(&self, index: usize) -> Result<&Attribute> {
        self.attributes
            .get(index)
            .ok_or(DataError::AttributeIndexOutOfBounds {
                index,
                len: self.attributes.len(),
            })
    }

    /// Index of an attribute by name.
    ///
    /// # Errors
    /// [`DataError::UnknownAttribute`] when absent.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.attributes
            .iter()
            .position(|a| a.name() == name)
            .ok_or_else(|| DataError::UnknownAttribute(name.to_string()))
    }

    /// Cardinality of the attribute at `index`.
    pub fn cardinality(&self, index: usize) -> Result<usize> {
        Ok(self.attribute(index)?.cardinality())
    }

    /// Cardinalities of all attributes, in order.
    pub fn shape(&self) -> Vec<usize> {
        self.attributes.iter().map(Attribute::cardinality).collect()
    }

    /// Total domain size as a float (products like HSLS's 7.04e42 overflow
    /// every integer type, so this is deliberately `f64`).
    pub fn size(&self) -> f64 {
        self.attributes
            .iter()
            .map(|a| a.cardinality() as f64)
            .product()
    }

    /// Exact cell count for a *subset* of attributes, for materializing
    /// marginal tables.
    ///
    /// # Errors
    /// Propagates bad indices; duplicates are rejected.
    pub fn cells(&self, attrs: &[usize]) -> Result<u128> {
        validate_attr_set(self.len(), attrs)?;
        let mut total: u128 = 1;
        for &a in attrs {
            total = total.saturating_mul(self.cardinality(a)? as u128);
        }
        Ok(total)
    }

    /// Project the domain onto a subset of attribute indices (in the given
    /// order).
    pub fn project(&self, attrs: &[usize]) -> Result<Domain> {
        let mut out = Vec::with_capacity(attrs.len());
        for &a in attrs {
            out.push(self.attribute(a)?.clone());
        }
        Ok(Domain::new(out))
    }

    /// Indices of attributes that carry a numeric interpretation.
    pub fn numeric_attrs(&self) -> Vec<usize> {
        self.attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.is_numeric())
            .map(|(i, _)| i)
            .collect()
    }
}

/// Validate an attribute-index set: non-empty, in-bounds, distinct.
pub(crate) fn validate_attr_set(domain_len: usize, attrs: &[usize]) -> Result<()> {
    if attrs.is_empty() {
        return Err(DataError::EmptyAttributeSet);
    }
    let mut seen = vec![false; domain_len];
    for &a in attrs {
        if a >= domain_len {
            return Err(DataError::AttributeIndexOutOfBounds {
                index: a,
                len: domain_len,
            });
        }
        if seen[a] {
            return Err(DataError::DuplicateAttribute(a));
        }
        seen[a] = true;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Domain {
        Domain::new(vec![
            Attribute::binary("a"),
            Attribute::ordinal("b", 3),
            Attribute::categorical_from("c", &["x", "y", "z", "w"]),
        ])
    }

    #[test]
    fn size_and_shape() {
        let d = toy();
        assert_eq!(d.shape(), vec![2, 3, 4]);
        assert_eq!(d.size(), 24.0);
        assert_eq!(d.cells(&[0, 2]).unwrap(), 8);
    }

    #[test]
    fn lookup_by_name() {
        let d = toy();
        assert_eq!(d.index_of("b").unwrap(), 1);
        assert!(matches!(
            d.index_of("nope"),
            Err(DataError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn project_preserves_order() {
        let d = toy().project(&[2, 0]).unwrap();
        assert_eq!(d.attribute(0).unwrap().name(), "c");
        assert_eq!(d.attribute(1).unwrap().name(), "a");
    }

    #[test]
    fn rejects_duplicates_and_out_of_bounds() {
        let d = toy();
        assert!(matches!(
            d.cells(&[1, 1]),
            Err(DataError::DuplicateAttribute(1))
        ));
        assert!(d.cells(&[7]).is_err());
        assert!(matches!(d.cells(&[]), Err(DataError::EmptyAttributeSet)));
    }

    #[test]
    fn numeric_attrs_skip_categorical() {
        assert_eq!(toy().numeric_attrs(), vec![0, 1]);
    }
}
