//! Bit-packed column storage and the [`ColumnAccess`] seam.
//!
//! A [`PackedColumn`] stores one attribute's codes at `ceil(log2(card))`
//! bits each inside 64-bit words. The layout is *aligned*: each word holds
//! `floor(64 / width)` codes and a value never straddles a word boundary,
//! so extraction is one shift and one mask (the 1-bit case degenerates to
//! the classic binary occupancy grid of tile engines — 64 cells per word).
//! The top `64 mod width` bits of every word are zero padding, which makes
//! the word image canonical: two columns with equal codes have equal words,
//! so derived `PartialEq` is logical equality.
//!
//! Bit widths follow the attribute cardinality, not the data: a cardinality
//! of 2–20 costs 1–5 bits per cell instead of the 32 the previous
//! `Vec<u32>` layout spent, and a cardinality-1 attribute costs 0 bits —
//! the column stores nothing at all and decodes to zeros.
//!
//! Random access divides the row index by the codes-per-word factor. That
//! division sits on the `RowRef::get` hot path, so it is strength-reduced
//! to a multiply-shift (the magic-number scheme of Lemire, Kaser & Kurz,
//! "Faster remainder by direct computation", exact for all row indices
//! below 2^32) with a plain-division fallback beyond.
//!
//! [`ColumnAccess`] is the trait seam between storage and everything that
//! reads it: the marginal engine's counting kernels, the CSV writer, the
//! paper replications and the samplers all go through `get` /
//! `for_each_code` / `decode_into` / `iter_words`, so a future row-group or
//! out-of-core store can slot in behind the same trait without touching
//! them. The old unpacked representation is retained as
//! [`UnpackedColumn`] behind the `naive-reference` feature (and in tests)
//! as the differential oracle.

/// Read access to one column of codes, independent of the physical layout.
///
/// Implementors must return codes identical to a plain `Vec<u32>` holding
/// the column: the differential proptests in `tests/packed_oracle.rs` pin a
/// [`PackedColumn`] against an [`UnpackedColumn`] under every dataset
/// operation.
pub trait ColumnAccess {
    /// Number of codes stored.
    fn len(&self) -> usize;

    /// Whether the column holds no codes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bits per code in this layout (0 for constant columns, 32 for the
    /// unpacked reference layout).
    fn width(&self) -> u32;

    /// The code at `row`. Panics if `row >= len()`.
    fn get(&self, row: usize) -> u32;

    /// Visit the codes of rows `lo..hi` in order. Panics on an out-of-range
    /// or inverted range.
    fn for_each_range(&self, lo: usize, hi: usize, f: impl FnMut(u32));

    /// Visit every code in row order.
    fn for_each_code(&self, f: impl FnMut(u32)) {
        self.for_each_range(0, self.len(), f);
    }

    /// Decode rows `lo..hi` into `out`, which must hold exactly `hi - lo`
    /// slots.
    fn decode_range_into(&self, lo: usize, hi: usize, out: &mut [u32]);

    /// Decode the whole column into a reusable scratch vector (cleared and
    /// resized to `len()`).
    fn decode_into(&self, out: &mut Vec<u32>) {
        out.clear();
        out.resize(self.len(), 0);
        self.decode_range_into(0, self.len(), out);
    }

    /// The backing words for kernels that unpack inline. Layouts without a
    /// word image (the unpacked oracle, width-0 columns) return an empty
    /// slice.
    fn iter_words(&self) -> &[u64];
}

/// Bits needed to store codes `0..cardinality`: `ceil(log2(cardinality))`,
/// with constant columns (cardinality ≤ 1) costing 0 bits. Codes are `u32`,
/// so the width never exceeds 32.
pub fn width_for(cardinality: usize) -> u32 {
    if cardinality <= 1 {
        0
    } else {
        (usize::BITS - (cardinality - 1).leading_zeros()).min(32)
    }
}

/// One attribute's codes, bit-packed into 64-bit words (see the module
/// docs for the layout).
#[derive(Debug, Clone, PartialEq)]
pub struct PackedColumn {
    words: Vec<u64>,
    len: usize,
    width: u32,
    /// Codes per word: `64 / width` (unused sentinel 64 when `width == 0`).
    per_word: u32,
    /// `(1 << width) - 1`; extraction mask.
    mask: u64,
    /// Lemire fast-division magic for `row / per_word`.
    magic: u64,
}

impl PackedColumn {
    /// An empty column for codes `0..cardinality`.
    pub fn new(cardinality: usize) -> PackedColumn {
        PackedColumn::with_capacity(cardinality, 0)
    }

    /// An empty column with space reserved for `rows` codes.
    pub fn with_capacity(cardinality: usize, rows: usize) -> PackedColumn {
        let width = width_for(cardinality);
        // A width-0 column stores no words; give it a nominal 64 codes per
        // word so the locate math stays well-defined.
        let per_word = 64 / width.max(1);
        let words = if width == 0 {
            Vec::new()
        } else {
            Vec::with_capacity(rows.div_ceil(per_word as usize))
        };
        PackedColumn {
            words,
            len: 0,
            width,
            per_word,
            mask: if width == 0 { 0 } else { (1u64 << width) - 1 },
            magic: u64::MAX / u64::from(per_word) + 1,
        }
    }

    /// Bulk-pack a slice of codes (word-major, one pass). Codes must be in
    /// `0..cardinality`; the caller validates (as `Dataset::new` does).
    pub fn from_codes(cardinality: usize, codes: &[u32]) -> PackedColumn {
        let mut col = PackedColumn::with_capacity(cardinality, codes.len());
        if col.width == 0 {
            col.len = codes.len();
            return col;
        }
        debug_assert!(codes.iter().all(|&c| u64::from(c) <= col.mask));
        let width = col.width;
        for chunk in codes.chunks(col.per_word as usize) {
            let mut word = 0u64;
            let mut shift = 0u32;
            for &c in chunk {
                word |= u64::from(c) << shift;
                shift += width;
            }
            col.words.push(word);
        }
        col.len = codes.len();
        col
    }

    /// `(word index, bit shift)` of `row`. Only meaningful for `width > 0`.
    #[inline(always)]
    fn locate(&self, row: usize) -> (usize, u32) {
        debug_assert!(self.width > 0);
        let r = row as u64;
        let word = if r <= u64::from(u32::MAX) {
            // Exact for r < 2^32 and per_word <= 64 (Lemire fastdiv).
            ((u128::from(self.magic) * u128::from(r)) >> 64) as u64
        } else {
            r / u64::from(self.per_word)
        };
        let slot = r - word * u64::from(self.per_word);
        (word as usize, slot as u32 * self.width)
    }

    /// Append one code. The caller guarantees `code < cardinality` (as
    /// `Dataset::push_row` does after validation).
    #[inline]
    pub fn push(&mut self, code: u32) {
        debug_assert!(self.width == 32 || u64::from(code) <= self.mask);
        if self.width == 0 {
            self.len += 1;
            return;
        }
        let (word, shift) = self.locate(self.len);
        if word == self.words.len() {
            debug_assert_eq!(shift, 0);
            self.words.push(u64::from(code));
        } else {
            self.words[word] |= u64::from(code) << shift;
        }
        self.len += 1;
    }

    /// Heap bytes of the packed word image.
    pub fn packed_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }
}

/// Word-major decode of rows `lo..lo + out.len()` from an aligned packing.
/// `#[inline(always)]` so the const-width wrappers below fold `width`,
/// `per`, and `mask` to constants and the inner loops fully unroll.
#[inline(always)]
fn decode_words(words: &[u64], width: u32, lo: usize, out: &mut [u32]) {
    let n = out.len();
    if n == 0 {
        return;
    }
    let per = (64 / width) as usize;
    let mask = (1u64 << width) - 1;
    let mut word_idx = lo / per;
    let head_slot = lo % per;
    let mut i = 0usize;
    if head_slot != 0 {
        let mut x = words[word_idx] >> (head_slot as u32 * width);
        let take = (per - head_slot).min(n);
        for o in &mut out[..take] {
            *o = (x & mask) as u32;
            x >>= width;
        }
        i = take;
        word_idx += 1;
    }
    while n - i >= per {
        let mut x = words[word_idx];
        for o in &mut out[i..i + per] {
            *o = (x & mask) as u32;
            x >>= width;
        }
        i += per;
        word_idx += 1;
    }
    if i < n {
        let mut x = words[word_idx];
        for o in &mut out[i..] {
            *o = (x & mask) as u32;
            x >>= width;
        }
    }
}

fn decode_words_const<const W: u32>(words: &[u64], lo: usize, out: &mut [u32]) {
    decode_words(words, W, lo, out);
}

/// Word-major visit of rows `lo..hi`; the streaming counterpart of
/// [`decode_words`] for callers that fold instead of materializing.
#[inline(always)]
fn visit_words(words: &[u64], width: u32, lo: usize, hi: usize, mut f: impl FnMut(u32)) {
    let n = hi - lo;
    if n == 0 {
        return;
    }
    let per = (64 / width) as usize;
    let mask = (1u64 << width) - 1;
    let mut word_idx = lo / per;
    let head_slot = lo % per;
    let mut remaining = n;
    if head_slot != 0 {
        let mut x = words[word_idx] >> (head_slot as u32 * width);
        let take = (per - head_slot).min(remaining);
        for _ in 0..take {
            f((x & mask) as u32);
            x >>= width;
        }
        remaining -= take;
        word_idx += 1;
    }
    while remaining >= per {
        let mut x = words[word_idx];
        for _ in 0..per {
            f((x & mask) as u32);
            x >>= width;
        }
        remaining -= per;
        word_idx += 1;
    }
    if remaining > 0 {
        let mut x = words[word_idx];
        for _ in 0..remaining {
            f((x & mask) as u32);
            x >>= width;
        }
    }
}

impl ColumnAccess for PackedColumn {
    fn len(&self) -> usize {
        self.len
    }

    fn width(&self) -> u32 {
        self.width
    }

    #[inline]
    fn get(&self, row: usize) -> u32 {
        assert!(
            row < self.len,
            "row {row} out of range for column of {} rows",
            self.len
        );
        if self.width == 0 {
            return 0;
        }
        let (word, shift) = self.locate(row);
        ((self.words[word] >> shift) & self.mask) as u32
    }

    fn for_each_range(&self, lo: usize, hi: usize, mut f: impl FnMut(u32)) {
        assert!(lo <= hi && hi <= self.len, "range {lo}..{hi} out of bounds");
        if self.width == 0 {
            for _ in lo..hi {
                f(0);
            }
            return;
        }
        visit_words(&self.words, self.width, lo, hi, &mut f);
    }

    fn decode_range_into(&self, lo: usize, hi: usize, out: &mut [u32]) {
        assert!(lo <= hi && hi <= self.len, "range {lo}..{hi} out of bounds");
        assert_eq!(out.len(), hi - lo, "output slice must match the range");
        // Const-width dispatch: the common small widths get fully unrolled
        // shift/mask bodies; anything wider takes the generic loop.
        match self.width {
            0 => out.fill(0),
            1 => decode_words_const::<1>(&self.words, lo, out),
            2 => decode_words_const::<2>(&self.words, lo, out),
            3 => decode_words_const::<3>(&self.words, lo, out),
            4 => decode_words_const::<4>(&self.words, lo, out),
            5 => decode_words_const::<5>(&self.words, lo, out),
            6 => decode_words_const::<6>(&self.words, lo, out),
            7 => decode_words_const::<7>(&self.words, lo, out),
            8 => decode_words_const::<8>(&self.words, lo, out),
            w => decode_words(&self.words, w, lo, out),
        }
    }

    fn iter_words(&self) -> &[u64] {
        &self.words
    }
}

/// The previous `Vec<u32>`-per-column layout, retained as the differential
/// oracle behind the `naive-reference` feature (and in tests): every
/// [`ColumnAccess`] method must agree with [`PackedColumn`] code-for-code.
#[cfg(any(test, feature = "naive-reference"))]
#[derive(Debug, Clone, PartialEq)]
pub struct UnpackedColumn {
    codes: Vec<u32>,
}

#[cfg(any(test, feature = "naive-reference"))]
impl UnpackedColumn {
    /// Wrap a plain code vector.
    pub fn from_codes(codes: Vec<u32>) -> UnpackedColumn {
        UnpackedColumn { codes }
    }

    /// The raw codes.
    pub fn as_slice(&self) -> &[u32] {
        &self.codes
    }

    /// Append one code.
    pub fn push(&mut self, code: u32) {
        self.codes.push(code);
    }
}

#[cfg(any(test, feature = "naive-reference"))]
impl ColumnAccess for UnpackedColumn {
    fn len(&self) -> usize {
        self.codes.len()
    }

    fn width(&self) -> u32 {
        32
    }

    fn get(&self, row: usize) -> u32 {
        self.codes[row]
    }

    fn for_each_range(&self, lo: usize, hi: usize, mut f: impl FnMut(u32)) {
        for &c in &self.codes[lo..hi] {
            f(c);
        }
    }

    fn decode_range_into(&self, lo: usize, hi: usize, out: &mut [u32]) {
        out.copy_from_slice(&self.codes[lo..hi]);
    }

    fn iter_words(&self) -> &[u64] {
        &[]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_for_matches_ceil_log2() {
        for (card, want) in [
            (0, 0),
            (1, 0),
            (2, 1),
            (3, 2),
            (4, 2),
            (5, 3),
            (8, 3),
            (9, 4),
            (16, 4),
            (17, 5),
            (1 << 20, 20),
        ] {
            assert_eq!(width_for(card), want, "card {card}");
        }
    }

    fn ramp(card: usize, n: usize) -> Vec<u32> {
        (0..n).map(|i| ((i * 7 + i / 5) % card) as u32).collect()
    }

    #[test]
    fn push_and_bulk_pack_agree_across_widths() {
        for card in [1usize, 2, 3, 5, 8, 17, 100, 1 << 16] {
            for n in [0usize, 1, 63, 64, 65, 200] {
                let codes = ramp(card.max(1), n);
                let bulk = PackedColumn::from_codes(card, &codes);
                let mut pushed = PackedColumn::new(card);
                for &c in &codes {
                    pushed.push(c);
                }
                assert_eq!(bulk, pushed, "card {card} n {n}");
                assert_eq!(bulk.len(), n);
                for (r, &c) in codes.iter().enumerate() {
                    assert_eq!(bulk.get(r), c, "card {card} n {n} row {r}");
                }
            }
        }
    }

    #[test]
    fn decode_ranges_match_source_slices() {
        let card = 17; // width 5, 12 codes per word: exercises padding bits.
        let codes = ramp(card, 301);
        let col = PackedColumn::from_codes(card, &codes);
        for (lo, hi) in [(0, 301), (0, 0), (5, 5), (0, 12), (11, 25), (250, 301)] {
            let mut out = vec![0u32; hi - lo];
            col.decode_range_into(lo, hi, &mut out);
            assert_eq!(&out[..], &codes[lo..hi], "{lo}..{hi}");
            let mut visited = Vec::new();
            col.for_each_range(lo, hi, |c| visited.push(c));
            assert_eq!(&visited[..], &codes[lo..hi], "{lo}..{hi} via visit");
        }
        let mut all = Vec::new();
        col.decode_into(&mut all);
        assert_eq!(all, codes);
    }

    #[test]
    fn constant_column_stores_no_words() {
        let mut col = PackedColumn::new(1);
        for _ in 0..1000 {
            col.push(0);
        }
        assert_eq!(col.len(), 1000);
        assert_eq!(col.width(), 0);
        assert!(col.iter_words().is_empty());
        assert_eq!(col.packed_bytes(), 0);
        assert_eq!(col.get(999), 0);
        let mut out = Vec::new();
        col.decode_into(&mut out);
        assert!(out.iter().all(|&c| c == 0));
    }

    #[test]
    fn padding_is_canonical_so_eq_is_logical() {
        // Build the same logical column two ways; words must match exactly,
        // including the padding bits of the final partial word.
        let codes = ramp(5, 70);
        let a = PackedColumn::from_codes(5, &codes);
        let mut b = PackedColumn::with_capacity(5, 70);
        for &c in &codes {
            b.push(c);
        }
        assert_eq!(a.iter_words(), b.iter_words());
    }

    #[test]
    fn unpacked_oracle_agrees() {
        let codes = ramp(9, 130);
        let packed = PackedColumn::from_codes(9, &codes);
        let oracle = UnpackedColumn::from_codes(codes.clone());
        assert_eq!(packed.len(), oracle.len());
        for r in 0..codes.len() {
            assert_eq!(packed.get(r), oracle.get(r));
        }
        let (mut a, mut b) = (Vec::new(), Vec::new());
        packed.decode_into(&mut a);
        oracle.decode_into(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_past_len_panics() {
        let col = PackedColumn::from_codes(4, &[1, 2, 3]);
        col.get(3);
    }

    #[test]
    fn wide_codes_round_trip() {
        // Width above the const-dispatch table takes the generic path.
        let card = 1 << 20;
        let codes: Vec<u32> = (0..50u32).map(|i| i * 19_391 % (card as u32)).collect();
        let col = PackedColumn::from_codes(card, &codes);
        assert_eq!(col.width(), 20);
        let mut out = Vec::new();
        col.decode_into(&mut out);
        assert_eq!(out, codes);
    }
}
