//! Synthetic population for Fairman et al. (2019), built from NSDUH
//! (National Survey on Drug Use and Health).
//!
//! This is the benchmark's *large-n* dataset: ~293k rows over only 6
//! variables with a small domain (~2e5 cells). The paper found this shape
//! uniquely sensitive to marginal noise at low ε because findings compare
//! counts, so this generator deliberately keeps relationships modest in
//! magnitude.

use crate::attribute::Attribute;
use crate::dataset::Dataset;
use crate::domain::Domain;
use crate::generators::util::{bernoulli, categorical, softmax_choice};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Codes of the `first_substance` attribute.
pub const FIRST_NONE: u32 = 0;
pub const FIRST_ALCOHOL: u32 = 1;
pub const FIRST_CIGARETTES: u32 = 2;
pub const FIRST_MARIJUANA: u32 = 3;
pub const FIRST_OTHER: u32 = 4;

/// Race codes (matching attribute label order).
pub const RACE_LABELS: [&str; 7] = [
    "white",
    "black",
    "hispanic",
    "asian",
    "aian",
    "nhpi",
    "multiracial",
];

/// Additive logit adjustments for initiating marijuana first, by race —
/// the demographic disparity behind the paper's Figure 1 and its
/// "more likely to be Black, American Indian/Alaskan Native, multiracial,
/// or Hispanic than White or Asian" finding.
pub const MJ_FIRST_RACE_LOGIT: [f64; 7] = [0.0, 0.55, 0.25, -0.60, 0.75, 0.30, 0.50];

/// Fairman et al. (2019): predictors and consequences of using marijuana
/// before other substances. 6 variables, domain ≈ 2.0e5, n ≈ 293,581.
///
/// Planted structure:
/// * P(marijuana first) ≈ 6% overall, higher for males, older respondents,
///   later survey years, and the race groups of [`MJ_FIRST_RACE_LOGIT`].
/// * Cigarette-first initiation declines across survey years (the paper's
///   temporal finding).
/// * The ordinal `outcome` severity scale (0 = none … 9 = daily use/CUD) is
///   shifted upward for marijuana-first respondents (aOR/aRRR findings).
pub fn fairman2019(n: usize, seed: u64) -> Dataset {
    let domain = Domain::new(vec![
        Attribute::categorical_from(
            "first_substance",
            &["none", "alcohol", "cigarettes", "marijuana", "other"],
        ),
        Attribute::categorical_from("race", &RACE_LABELS),
        Attribute::categorical_from("sex", &["male", "female"]),
        Attribute::ordinal_scored("age", (12..30).map(|a| a as f64).collect()),
        Attribute::ordinal_scored("year", (2004..2020).map(|y| y as f64).collect()),
        Attribute::ordinal("outcome", 10),
    ]);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::with_capacity(domain, n);

    for _ in 0..n {
        let race = categorical(&mut rng, &[0.575, 0.14, 0.18, 0.05, 0.012, 0.006, 0.037]);
        let sex = bernoulli(&mut rng, 0.51); // 1 = female

        // Triangular-ish age distribution over 12..=29.
        let age = categorical(
            &mut rng,
            &[
                3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 8.0, 8.0, 7.5, 7.0, 6.5, 6.0, 5.5, 5.0, 4.5, 4.0,
                3.5, 3.0,
            ],
        );
        // Slight growth in sample size over years.
        let year = categorical(
            &mut rng,
            &[
                5.5, 5.6, 5.7, 5.8, 5.9, 6.0, 6.1, 6.2, 6.3, 6.4, 6.5, 6.6, 6.7, 6.8, 6.9, 7.0,
            ],
        );
        let age_z = (age as f64 - 8.5) / 8.5;
        let year_z = (year as f64 - 7.5) / 7.5;
        let male = 1.0 - sex as f64;

        // Multinomial logit over first substance, baseline = "none".
        let mj_logit =
            -2.05 + 0.35 * male + 0.45 * age_z + 0.45 * year_z + MJ_FIRST_RACE_LOGIT[race as usize];
        let cig_logit = -0.62 + 0.10 * male + 0.30 * age_z - 0.60 * year_z;
        let alc_logit = 0.12 + 0.05 * male + 0.50 * age_z;
        let other_logit = -3.6 + 0.15 * male;
        let first = softmax_choice(
            &mut rng,
            &[0.0, alc_logit, cig_logit, mj_logit, other_logit],
        );

        // Outcome severity: marijuana-first carries the largest bump.
        let sev_shift = match first {
            FIRST_MARIJUANA => 2.2,
            FIRST_CIGARETTES => 1.1,
            FIRST_ALCOHOL => 0.7,
            FIRST_OTHER => 1.5,
            _ => 0.0,
        };
        let mut weights = [0.0f64; 10];
        for (k, w) in weights.iter_mut().enumerate() {
            // Geometric decay from 0, flattened by the severity shift.
            let rate = 1.25 - 0.09 * sev_shift;
            *w = (-(k as f64) * rate + 0.28 * sev_shift * (k as f64).min(4.0)).exp();
        }
        let outcome = categorical(&mut rng, &weights);

        ds.push_row(&[first, race, sex, age, year, outcome])
            .expect("codes generated in range");
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marijuana_first_rate_is_modest() {
        let ds = fairman2019(80_000, 21);
        let p = ds.proportion(0, FIRST_MARIJUANA).unwrap();
        assert!((0.04..0.10).contains(&p), "p = {p:.4}");
    }

    #[test]
    fn race_disparities_match_planted_direction() {
        let ds = fairman2019(200_000, 22);
        let rate = |race: u32| {
            let group = ds.filter_rows(|r| r.get(1) == race);
            group.proportion(0, FIRST_MARIJUANA).unwrap()
        };
        let white = rate(0);
        assert!(rate(1) > white, "black > white");
        assert!(rate(4) > white, "aian > white");
        assert!(rate(6) > white, "multiracial > white");
        assert!(rate(3) < white, "asian < white");
    }

    #[test]
    fn cigarette_first_declines_over_years() {
        let ds = fairman2019(200_000, 23);
        let early = ds.filter_rows(|r| r.get(4) < 4);
        let late = ds.filter_rows(|r| r.get(4) >= 12);
        let p_early = early.proportion(0, FIRST_CIGARETTES).unwrap();
        let p_late = late.proportion(0, FIRST_CIGARETTES).unwrap();
        assert!(p_early > p_late + 0.03, "{p_early:.3} vs {p_late:.3}");
    }

    #[test]
    fn marijuana_first_predicts_severity() {
        let ds = fairman2019(150_000, 24);
        let mj = ds.filter_rows(|r| r.get(0) == FIRST_MARIJUANA);
        let alc = ds.filter_rows(|r| r.get(0) == FIRST_ALCOHOL);
        let heavy = |d: &crate::dataset::Dataset| {
            let counts = d.value_counts(5).unwrap();
            let total: f64 = counts.iter().sum();
            counts[5..].iter().sum::<f64>() / total
        };
        assert!(
            heavy(&mj) > 1.5 * heavy(&alc),
            "{} vs {}",
            heavy(&mj),
            heavy(&alc)
        );
    }
}
