//! Synthetic study generators.
//!
//! The benchmark papers analyze restricted-access ICPSR microdata that we
//! cannot redistribute, so each generator produces a synthetic population
//! with (a) the schema of Table 1 — variable counts, domain sizes, sample
//! sizes — and (b) *planted* statistical relationships chosen so that every
//! finding of the corresponding publication is true on the generated data.
//! DESIGN.md §3 documents this substitution.
//!
//! All generators are deterministic functions of `(n, seed)`.

pub mod acl;
pub mod addhealth;
pub mod hsls;
pub mod nsduh;
pub mod uci;
pub(crate) mod util;

use crate::dataset::Dataset;

/// The ten datasets characterized in Table 1: the eight benchmark papers plus
/// the Adult/Mushroom comparison datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchmarkDataset {
    /// Saw, Chang & Chan 2018 (HSLS:09) — STEM career aspiration disparities.
    Saw2018,
    /// Lee & Simpkins 2021 (HSLS:09) — math performance and teacher support.
    Lee2021,
    /// Jeong et al. 2021 (HSLS:09) — racial bias in ML performance prediction.
    Jeong2021,
    /// Fruiht & Chan 2018 (AddHealth) — mentorship and education attainment.
    Fruiht2018,
    /// Iverson & Terry 2021 (AddHealth) — high-school football and depression.
    Iverson2021,
    /// Fairman et al. 2019 (NSDUH) — marijuana-first substance initiation.
    Fairman2019,
    /// Assari & Bazargan 2019 (ACL) — obesity and cerebrovascular mortality.
    Assari2019,
    /// Pierce & Quiroz 2019 (ACL) — social support/strain and emotions.
    Pierce2019,
    /// UCI Adult analogue (comparison only).
    Adult,
    /// UCI Mushroom analogue (comparison only).
    Mushroom,
}

impl BenchmarkDataset {
    /// All ten datasets in Table 1 row order.
    pub const ALL: [BenchmarkDataset; 10] = [
        BenchmarkDataset::Assari2019,
        BenchmarkDataset::Fairman2019,
        BenchmarkDataset::Fruiht2018,
        BenchmarkDataset::Iverson2021,
        BenchmarkDataset::Jeong2021,
        BenchmarkDataset::Lee2021,
        BenchmarkDataset::Pierce2019,
        BenchmarkDataset::Saw2018,
        BenchmarkDataset::Adult,
        BenchmarkDataset::Mushroom,
    ];

    /// The eight paper datasets (no UCI comparisons).
    pub const PAPERS: [BenchmarkDataset; 8] = [
        BenchmarkDataset::Assari2019,
        BenchmarkDataset::Fairman2019,
        BenchmarkDataset::Fruiht2018,
        BenchmarkDataset::Iverson2021,
        BenchmarkDataset::Jeong2021,
        BenchmarkDataset::Lee2021,
        BenchmarkDataset::Pierce2019,
        BenchmarkDataset::Saw2018,
    ];

    /// Citation-style name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            BenchmarkDataset::Saw2018 => "Saw et al. [59]",
            BenchmarkDataset::Lee2021 => "Lee and Simpkins [39]",
            BenchmarkDataset::Jeong2021 => "Jeong et al. [35]",
            BenchmarkDataset::Fruiht2018 => "Fruiht and Chan [24]",
            BenchmarkDataset::Iverson2021 => "Iverson and Terry [31]",
            BenchmarkDataset::Fairman2019 => "Fairman et al. [23]",
            BenchmarkDataset::Assari2019 => "Assari and Bazargan [2]",
            BenchmarkDataset::Pierce2019 => "Pierce and Quiroz [47]",
            BenchmarkDataset::Adult => "Adult [38]",
            BenchmarkDataset::Mushroom => "Mushroom [60]",
        }
    }

    /// Short machine-friendly identifier.
    pub fn id(self) -> &'static str {
        match self {
            BenchmarkDataset::Saw2018 => "saw2018",
            BenchmarkDataset::Lee2021 => "lee2021",
            BenchmarkDataset::Jeong2021 => "jeong2021",
            BenchmarkDataset::Fruiht2018 => "fruiht2018",
            BenchmarkDataset::Iverson2021 => "iverson2021",
            BenchmarkDataset::Fairman2019 => "fairman2019",
            BenchmarkDataset::Assari2019 => "assari2019",
            BenchmarkDataset::Pierce2019 => "pierce2019",
            BenchmarkDataset::Adult => "adult",
            BenchmarkDataset::Mushroom => "mushroom",
        }
    }

    /// Sample size reported in Table 1.
    pub fn paper_n(self) -> usize {
        match self {
            BenchmarkDataset::Saw2018 => 20_242,
            BenchmarkDataset::Lee2021 => 14_575,
            BenchmarkDataset::Jeong2021 => 15_054,
            BenchmarkDataset::Fruiht2018 => 4_173,
            BenchmarkDataset::Iverson2021 => 1_762,
            BenchmarkDataset::Fairman2019 => 293_581,
            BenchmarkDataset::Assari2019 => 3_361,
            BenchmarkDataset::Pierce2019 => 1_585,
            BenchmarkDataset::Adult => 32_561,
            BenchmarkDataset::Mushroom => 8_124,
        }
    }

    /// Generate `n` rows deterministically from `seed`.
    pub fn generate(self, n: usize, seed: u64) -> Dataset {
        match self {
            BenchmarkDataset::Saw2018 => hsls::saw2018(n, seed),
            BenchmarkDataset::Lee2021 => hsls::lee2021(n, seed),
            BenchmarkDataset::Jeong2021 => hsls::jeong2021(n, seed),
            BenchmarkDataset::Fruiht2018 => addhealth::fruiht2018(n, seed),
            BenchmarkDataset::Iverson2021 => addhealth::iverson2021(n, seed),
            BenchmarkDataset::Fairman2019 => nsduh::fairman2019(n, seed),
            BenchmarkDataset::Assari2019 => acl::assari2019(n, seed),
            BenchmarkDataset::Pierce2019 => acl::pierce2019(n, seed),
            BenchmarkDataset::Adult => uci::adult(n, seed),
            BenchmarkDataset::Mushroom => uci::mushroom(n, seed),
        }
    }

    /// Generate at the paper's sample size.
    pub fn generate_paper(self, seed: u64) -> Dataset {
        self.generate(self.paper_n(), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_generators_produce_requested_rows() {
        for ds in BenchmarkDataset::ALL {
            let data = ds.generate(200, 7);
            assert_eq!(data.n_rows(), 200, "{}", ds.id());
            assert!(data.n_attrs() >= 6, "{}", ds.id());
        }
    }

    #[test]
    fn generators_are_deterministic() {
        for ds in BenchmarkDataset::ALL {
            let a = ds.generate(100, 42);
            let b = ds.generate(100, 42);
            assert_eq!(a, b, "{}", ds.id());
            let c = ds.generate(100, 43);
            assert_ne!(a, c, "{} should vary with seed", ds.id());
        }
    }

    #[test]
    fn variable_counts_match_table1() {
        let expected = [
            (BenchmarkDataset::Assari2019, 16),
            (BenchmarkDataset::Fairman2019, 6),
            (BenchmarkDataset::Fruiht2018, 11),
            (BenchmarkDataset::Iverson2021, 27),
            (BenchmarkDataset::Jeong2021, 57),
            (BenchmarkDataset::Lee2021, 9),
            (BenchmarkDataset::Pierce2019, 17),
            (BenchmarkDataset::Saw2018, 9),
            (BenchmarkDataset::Adult, 15),
            (BenchmarkDataset::Mushroom, 23),
        ];
        for (ds, vars) in expected {
            let data = ds.generate(50, 1);
            assert_eq!(data.n_attrs(), vars, "{}", ds.id());
        }
    }

    #[test]
    fn domain_sizes_match_table1_magnitudes() {
        // Same order of magnitude (within 1 decade) as Table 1.
        let expected = [
            (BenchmarkDataset::Assari2019, 9.03e9),
            (BenchmarkDataset::Fairman2019, 2.03e5),
            (BenchmarkDataset::Fruiht2018, 2.20e5),
            (BenchmarkDataset::Iverson2021, 5.71e15),
            (BenchmarkDataset::Jeong2021, 7.04e42),
            (BenchmarkDataset::Lee2021, 5.11e17),
            (BenchmarkDataset::Pierce2019, 7.19e11),
            (BenchmarkDataset::Saw2018, 4.30e4),
            (BenchmarkDataset::Adult, 9.06e14),
            (BenchmarkDataset::Mushroom, 2.44e14),
        ];
        for (ds, size) in expected {
            let data = ds.generate(10, 1);
            let got = data.domain().size();
            let ratio = got / size;
            assert!(
                (0.05..=20.0).contains(&ratio),
                "{}: domain {got:.3e} vs paper {size:.3e}",
                ds.id()
            );
        }
    }
}
