//! Synthetic populations for the two AddHealth papers.
//!
//! AddHealth (National Longitudinal Study of Adolescent to Adult Health)
//! follows U.S. adolescents from 1994-95 into adulthood. The public-use file
//! is a <50% subsample, which is why both papers work with a few thousand
//! rows.

use crate::attribute::Attribute;
use crate::dataset::Dataset;
use crate::domain::Domain;
use crate::generators::util::{bernoulli, categorical, clamp_code, normal, sigmoid};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Mean years of education attained, by the four (parent_college × mentor)
/// cells — the moderation structure of Fruiht & Chan's PROCESS model.
/// Mentorship lifts first-generation students more than continuing-generation
/// students (negative interaction).
pub const FRUIHT_EDU_MEAN: [[f64; 2]; 2] = [
    // parent_college = 0:  [no mentor, mentor]
    [13.0, 14.3],
    // parent_college = 1:  [no mentor, mentor]
    [14.7, 15.4],
];

/// Fruiht & Chan (2018): naturally occurring mentorship and educational
/// attainment of first-generation college goers. 11 variables, domain ≈ 3e5.
///
/// Planted structure:
/// * `edu_attain` (years, 8–20) follows [`FRUIHT_EDU_MEAN`] plus a −0.7-year
///   penalty for African American respondents and small income effects.
/// * 77% of respondents report a mentor (the paper's headline descriptive).
/// * `first_gen` is the complement of `parent_college`.
pub fn fruiht2018(n: usize, seed: u64) -> Dataset {
    let domain = Domain::new(vec![
        Attribute::categorical_from("race", &["white", "black", "hispanic", "asian", "other"]),
        Attribute::categorical_from("sex", &["male", "female"]),
        Attribute::binary("parent_college"),
        Attribute::binary("first_gen"),
        Attribute::binary("mentor"),
        Attribute::categorical_from(
            "mentor_type",
            &["none", "family", "teacher", "coach", "community", "other"],
        ),
        Attribute::binary("support_emotional"),
        Attribute::binary("support_instrumental"),
        Attribute::ordinal("age", 4),
        Attribute::ordinal("income", 3),
        Attribute::ordinal_scored("edu_attain", (8..=20).map(|y| y as f64).collect()),
    ]);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::with_capacity(domain, n);

    for _ in 0..n {
        let race = categorical(&mut rng, &[0.55, 0.21, 0.14, 0.06, 0.04]);
        let sex = bernoulli(&mut rng, 0.53);
        let parent_college = bernoulli(&mut rng, 0.35);
        let first_gen = 1 - parent_college;
        let mentor = bernoulli(&mut rng, 0.77);
        let mentor_type = if mentor == 0 {
            0
        } else {
            1 + categorical(&mut rng, &[0.33, 0.27, 0.12, 0.18, 0.10])
        };
        let support_emotional = if mentor == 1 {
            bernoulli(&mut rng, 0.72)
        } else {
            0
        };
        let support_instrumental = if mentor == 1 {
            bernoulli(&mut rng, 0.46)
        } else {
            0
        };
        let age = categorical(&mut rng, &[0.22, 0.30, 0.30, 0.18]);
        let income = categorical(
            &mut rng,
            &if parent_college == 1 {
                [0.20, 0.35, 0.45]
            } else {
                [0.42, 0.36, 0.22]
            },
        );

        let mut edu = FRUIHT_EDU_MEAN[parent_college as usize][mentor as usize];
        if race == 1 {
            edu -= 0.7; // African American attainment penalty (paper finding)
        }
        edu += 0.35 * (income as f64 - 1.0) + 1.8 * normal(&mut rng);
        let edu_code = clamp_code(edu - 8.0, 13);

        ds.push_row(&[
            race,
            sex,
            parent_college,
            first_gen,
            mentor,
            mentor_type,
            support_emotional,
            support_instrumental,
            age,
            income,
            edu_code,
        ])
        .expect("codes generated in range");
    }
    ds
}

/// Marginal prevalences for Iverson & Terry's five adult-diagnosis
/// descriptives (hard finding #39): depression, suicidality, counseling,
/// anxiety disorder, psychiatric hospitalization.
pub const IVERSON_DIAGNOSIS_RATES: [f64; 5] = [0.111, 0.042, 0.185, 0.092, 0.021];

/// Iverson & Terry (2021): high-school football and adult depression /
/// suicidality in men. 27 variables (19 binary + 8 wide categoricals),
/// domain ≈ 5.8e15 with near-zero pairwise mutual information — the
/// hardest dataset in the benchmark for every synthesizer.
///
/// Planted structure:
/// * Football has **no** direct effect on adult depression or suicidality
///   (the paper's null finding).
/// * Adolescent depression raises adult depression (OR ≈ 3.3) and
///   suicidality (OR ≈ 2.7) — the paper's positive finding.
/// * The eight 18-level categoricals (income, region, etc.) are mutually
///   near-independent, giving the low-MI / high-sparsity regime of Table 1.
pub fn iverson2021(n: usize, seed: u64) -> Dataset {
    let mut attrs = vec![
        Attribute::binary("football"),
        Attribute::binary("dep_adolescent"),
        Attribute::binary("dep_adult"),
        Attribute::binary("suicidality_adult"),
        Attribute::binary("counseling"),
        Attribute::binary("anxiety"),
        Attribute::binary("psych_hosp"),
    ];
    // Twelve more binary risk factors / covariates.
    const RISK: [&str; 12] = [
        "smoker",
        "binge_drinking",
        "obese",
        "injury_history",
        "adhd",
        "low_gpa",
        "single_parent",
        "rural_school",
        "team_sport_other",
        "violence_exposure",
        "insurance",
        "married_w5",
    ];
    for name in RISK {
        attrs.push(Attribute::binary(name));
    }
    // Eight wide categoricals with no numeric interpretation (skew = NaN).
    const WIDE: [&str; 8] = [
        "income_cat",
        "occupation",
        "region",
        "school_bucket",
        "age_months_cat",
        "education_cat",
        "bmi_cat",
        "sport_mix",
    ];
    for name in WIDE {
        let labels: Vec<String> = (0..18).map(|i| format!("c{i}")).collect();
        attrs.push(Attribute::categorical(name, labels));
    }
    let domain = Domain::new(attrs);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::with_capacity(domain, n);

    // Baseline prevalences for the 12 risk binaries.
    const RISK_P: [f64; 12] = [
        0.24, 0.31, 0.28, 0.18, 0.08, 0.22, 0.27, 0.21, 0.44, 0.13, 0.82, 0.58,
    ];

    for _ in 0..n {
        let football = bernoulli(&mut rng, 0.48);
        let dep_adolescent = bernoulli(&mut rng, 0.11);
        // No football term by construction: the paper found no direct effect.
        let dep_adult_logit = -2.32 + 1.20 * dep_adolescent as f64;
        let dep_adult = bernoulli(&mut rng, sigmoid(dep_adult_logit));
        let suic_logit = -3.38 + 1.00 * dep_adolescent as f64 + 0.55 * dep_adult as f64;
        let suicidality = bernoulli(&mut rng, sigmoid(suic_logit));
        let counseling = bernoulli(
            &mut rng,
            sigmoid(-1.62 + 1.30 * dep_adult as f64 + 0.4 * suicidality as f64),
        );
        let anxiety = bernoulli(&mut rng, sigmoid(-2.44 + 0.85 * dep_adult as f64));
        let psych_hosp = bernoulli(&mut rng, sigmoid(-3.95 + 1.0 * suicidality as f64));

        let mut row = vec![
            football,
            dep_adolescent,
            dep_adult,
            suicidality,
            counseling,
            anxiety,
            psych_hosp,
        ];
        for &p in &RISK_P {
            row.push(bernoulli(&mut rng, p));
        }
        // Wide categoricals: a mild Zipf-ish tilt, independent of everything.
        for _ in 0..8 {
            let u: f64 = rng.gen();
            let tilted = u * u; // denser near 0
            row.push((tilted * 18.0).floor().clamp(0.0, 17.0) as u32);
        }
        ds.push_row(&row).expect("codes generated in range");
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fruiht_mentor_lifts_attainment() {
        let ds = fruiht2018(20_000, 11);
        let edu = ds.domain().index_of("edu_attain").unwrap();
        let mentored = ds.filter_rows(|r| r.get(4) == 1);
        let not = ds.filter_rows(|r| r.get(4) == 0);
        let gap = mentored.mean_of(edu).unwrap() - not.mean_of(edu).unwrap();
        assert!(gap > 0.6, "gap = {gap:.3}");
    }

    #[test]
    fn fruiht_interaction_is_negative() {
        // Mentor effect among first-gen exceeds mentor effect among
        // continuing-gen.
        let ds = fruiht2018(40_000, 12);
        let edu = ds.domain().index_of("edu_attain").unwrap();
        let cell = |pc: u32, m: u32| {
            ds.filter_rows(|r| r.get(2) == pc && r.get(4) == m)
                .mean_of(edu)
                .unwrap()
        };
        let effect_first_gen = cell(0, 1) - cell(0, 0);
        let effect_cont_gen = cell(1, 1) - cell(1, 0);
        assert!(
            effect_first_gen > effect_cont_gen + 0.2,
            "{effect_first_gen:.3} vs {effect_cont_gen:.3}"
        );
    }

    #[test]
    fn fruiht_mentor_type_consistent_with_mentor_flag() {
        let ds = fruiht2018(3_000, 13);
        for r in 0..ds.n_rows() {
            let row = ds.row(r);
            let mentor = row.get(4);
            let mtype = row.get(5);
            assert_eq!(mtype == 0, mentor == 0);
        }
    }

    #[test]
    fn iverson_football_null_effect() {
        let ds = iverson2021(60_000, 14);
        let fb = ds.filter_rows(|r| r.get(0) == 1);
        let no_fb = ds.filter_rows(|r| r.get(0) == 0);
        let diff = (fb.mean_of(2).unwrap() - no_fb.mean_of(2).unwrap()).abs();
        assert!(diff < 0.01, "diff = {diff:.4}");
    }

    #[test]
    fn iverson_adolescent_depression_predicts_adult() {
        let ds = iverson2021(60_000, 15);
        let dep = ds.filter_rows(|r| r.get(1) == 1);
        let no_dep = ds.filter_rows(|r| r.get(1) == 0);
        let ratio = dep.mean_of(2).unwrap() / no_dep.mean_of(2).unwrap();
        assert!(ratio > 2.0, "risk ratio = {ratio:.2}");
    }

    #[test]
    fn iverson_diagnosis_rates_near_targets() {
        let ds = iverson2021(120_000, 16);
        let idx = [2usize, 3, 4, 5, 6];
        for (k, &attr) in idx.iter().enumerate() {
            let p = ds.mean_of(attr).unwrap();
            let target = IVERSON_DIAGNOSIS_RATES[k];
            assert!(
                (p - target).abs() < 0.015,
                "attr {attr}: {p:.3} vs {target:.3}"
            );
        }
    }
}
