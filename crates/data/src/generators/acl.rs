//! Synthetic populations for the two ACL (Americans' Changing Lives) papers.

use crate::attribute::Attribute;
use crate::dataset::Dataset;
use crate::domain::Domain;
use crate::generators::util::{bernoulli, bin_z, categorical, clamp_code, normal, sigmoid};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mean years of schooling at baseline — Assari & Bazargan's hard finding #4:
/// "overall, people had 12.53 years of schooling at baseline
/// (95% CI = 12.34–12.73)".
pub const ASSARI_EDU_MEAN: f64 = 12.53;

/// Assari & Bazargan (2019): baseline obesity and 25-year cerebrovascular
/// mortality, by race. 16 variables, domain ≈ 4e9.
///
/// Planted structure:
/// * ACL oversampled Black adults: P(black) = 0.5.
/// * Education years ~ N(12.53, 3.1) clamped to 0–20 (finding #4).
/// * Cerebrovascular death (~4% of the sample) rises with age, smoking,
///   hypertension and low education; **obesity raises it only for Black
///   respondents** — the paper's race-specific effect. The pooled
///   obesity–death association is therefore ≈ 0 (the "null overall" finding
///   whose check appears verbatim in the paper's SynRD code listing).
pub fn assari2019(n: usize, seed: u64) -> Dataset {
    let domain = Domain::new(vec![
        Attribute::categorical_from("race", &["white", "black"]),
        Attribute::categorical_from("sex", &["male", "female"]),
        Attribute::binned("age", 25.0, 93.0, 17),
        Attribute::ordinal_scored("education", (0..=20).map(|y| y as f64).collect()),
        Attribute::ordinal("income", 20),
        Attribute::binary("obesity"),
        Attribute::binary("smoking"),
        Attribute::binary("drinking"),
        Attribute::ordinal("exercise", 4),
        Attribute::ordinal("chronic_conditions", 5),
        Attribute::binary("depression"),
        Attribute::ordinal("self_rated_health", 5),
        Attribute::ordinal("bmi_cat", 4),
        Attribute::binary("hypertension"),
        Attribute::binary("cerebro_death"),
        Attribute::ordinal("wave_death", 6),
    ]);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::with_capacity(domain, n);

    for _ in 0..n {
        let race = bernoulli(&mut rng, 0.5); // 1 = black (oversample design)
        let sex = bernoulli(&mut rng, 0.62); // ACL skews female
        let age_z = normal(&mut rng) * 0.9;
        let age = bin_z(age_z, 17, 2.5);
        let edu_years = (ASSARI_EDU_MEAN + 3.1 * normal(&mut rng) - 0.55 * race as f64)
            .round()
            .clamp(0.0, 20.0);
        let education = edu_years as u32;
        let edu_z = (edu_years - 12.0) / 3.1;
        let income = clamp_code(
            10.0 + 3.5 * edu_z - 1.2 * race as f64 + 3.0 * normal(&mut rng),
            20,
        );
        let obesity = bernoulli(&mut rng, 0.26 + 0.09 * race as f64);
        let smoking = bernoulli(&mut rng, 0.33 - 0.02 * edu_z);
        let drinking = bernoulli(&mut rng, 0.52 + 0.02 * edu_z);
        let exercise = categorical(&mut rng, &[0.25, 0.35, 0.25, 0.15]);
        let chronic = {
            let lambda = 0.9 + 0.55 * (age as f64 / 16.0) + 0.25 * obesity as f64;
            clamp_code(lambda + 1.0 * normal(&mut rng), 5)
        };
        let depression = bernoulli(&mut rng, 0.12 + 0.03 * chronic as f64 / 4.0);
        let srh = clamp_code(
            3.1 - 0.5 * chronic as f64 / 2.0 - 0.3 * depression as f64 + 0.9 * normal(&mut rng),
            5,
        );
        let bmi_cat = if obesity == 1 {
            3
        } else {
            categorical(&mut rng, &[0.18, 0.52, 0.30])
        };
        let hypertension = bernoulli(
            &mut rng,
            sigmoid(-1.2 + 0.5 * age_z + 0.25 * obesity as f64 + 0.10 * race as f64),
        );

        // Obesity raises cerebrovascular death only among Black respondents.
        // The negative White term offsets the indirect obesity→hypertension→
        // death path so the *pooled* association stays null (|corr| < 0.04),
        // as the paper reports.
        let obesity_effect = if race == 1 { 0.55 } else { -0.34 };
        let death_logit = -3.85 + 1.05 * age_z + 0.30 * smoking as f64 + 0.35 * hypertension as f64
            - 0.22 * edu_z
            + obesity_effect * obesity as f64;
        let cerebro_death = bernoulli(&mut rng, sigmoid(death_logit));
        let wave_death = if cerebro_death == 1 {
            1 + categorical(&mut rng, &[0.15, 0.20, 0.25, 0.22, 0.18])
        } else {
            0
        };

        ds.push_row(&[
            race,
            sex,
            age,
            education,
            income,
            obesity,
            smoking,
            drinking,
            exercise,
            chronic,
            depression,
            srh,
            bmi_cat,
            hypertension,
            cerebro_death,
            wave_death,
        ])
        .expect("codes generated in range");
    }
    ds
}

/// Pierce & Quiroz (2019): social support, social strain, and emotions.
/// 17 variables, domain ≈ 4e12 (paper: 7.19e11).
///
/// Planted structure (all scales z-latent, binned):
/// * Positive emotions ← spousal support (large), friend support (small),
///   child support (smaller).
/// * Negative emotions ← spousal strain (large), child strain (medium),
///   friend strain (≈ 0, the paper's null).
pub fn pierce2019(n: usize, seed: u64) -> Dataset {
    let domain = Domain::new(vec![
        Attribute::ordinal("pos_emotions", 15),
        Attribute::ordinal("neg_emotions", 15),
        Attribute::ordinal("spouse_support", 8),
        Attribute::ordinal("spouse_strain", 8),
        Attribute::ordinal("child_support", 8),
        Attribute::ordinal("child_strain", 8),
        Attribute::ordinal("friend_support", 8),
        Attribute::ordinal("friend_strain", 8),
        Attribute::ordinal("income", 6),
        Attribute::ordinal("education", 6),
        Attribute::ordinal("age", 6),
        Attribute::ordinal("n_confidants", 6),
        Attribute::categorical_from("sex", &["male", "female"]),
        Attribute::ordinal("wave", 3),
        Attribute::binary("married"),
        Attribute::binary("has_child"),
        Attribute::binary("has_friends"),
    ]);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::with_capacity(domain, n);

    for _ in 0..n {
        let ses = normal(&mut rng);
        let sociability = normal(&mut rng);
        let spouse_sup = 0.3 * sociability + 0.95 * normal(&mut rng);
        let spouse_str = -0.25 * spouse_sup + 0.95 * normal(&mut rng);
        let child_sup = 0.25 * sociability + 0.95 * normal(&mut rng);
        let child_str = -0.15 * child_sup + 0.95 * normal(&mut rng);
        let friend_sup = 0.35 * sociability + 0.9 * normal(&mut rng);
        let friend_str = 0.95 * normal(&mut rng);

        let pos = 0.62 * spouse_sup
            + 0.22 * friend_sup
            + 0.12 * child_sup
            + 0.1 * ses
            + 0.72 * normal(&mut rng);
        let neg = 0.58 * spouse_str + 0.38 * child_str + 0.03 * friend_str - 0.1 * ses
            + 0.75 * normal(&mut rng);

        ds.push_row(&[
            bin_z(pos, 15, 2.8),
            bin_z(neg, 15, 2.8),
            bin_z(spouse_sup, 8, 2.5),
            bin_z(spouse_str, 8, 2.5),
            bin_z(child_sup, 8, 2.5),
            bin_z(child_str, 8, 2.5),
            bin_z(friend_sup, 8, 2.5),
            bin_z(friend_str, 8, 2.5),
            bin_z(0.8 * ses + 0.6 * normal(&mut rng), 6, 2.2),
            bin_z(0.75 * ses + 0.66 * normal(&mut rng), 6, 2.2),
            categorical(&mut rng, &[0.15, 0.2, 0.22, 0.2, 0.15, 0.08]),
            bin_z(0.5 * sociability + 0.87 * normal(&mut rng), 6, 2.2),
            bernoulli(&mut rng, 0.58),
            categorical(&mut rng, &[0.4, 0.33, 0.27]),
            bernoulli(&mut rng, 0.97),
            bernoulli(&mut rng, 0.96),
            bernoulli(&mut rng, 0.98),
        ])
        .expect("codes generated in range");
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assari_education_mean_matches_finding_4() {
        let ds = assari2019(60_000, 31);
        let edu = ds.domain().index_of("education").unwrap();
        let mean = ds.mean_of(edu).unwrap();
        assert!((mean - 12.25).abs() < 0.25, "mean = {mean:.3}");
    }

    #[test]
    fn assari_obesity_death_race_specific() {
        let ds = assari2019(200_000, 32);
        let corr = |data: &Dataset| {
            let ob = data.numeric_column(5).unwrap();
            let de = data.numeric_column(14).unwrap();
            pearson(&ob, &de)
        };
        let black = ds.filter_rows(|r| r.get(0) == 1);
        let white = ds.filter_rows(|r| r.get(0) == 0);
        assert!(corr(&black) > 0.03, "black corr = {:.4}", corr(&black));
        assert!(
            corr(&white).abs() < 0.025,
            "white corr = {:.4}",
            corr(&white)
        );
        assert!(corr(&ds).abs() < 0.035, "pooled corr = {:.4}", corr(&ds));
    }

    #[test]
    fn assari_death_rate_plausible() {
        let ds = assari2019(100_000, 33);
        let p = ds.mean_of(14).unwrap();
        assert!((0.025..0.08).contains(&p), "death rate = {p:.4}");
    }

    #[test]
    fn pierce_spousal_effects_dominate() {
        let ds = pierce2019(40_000, 34);
        let pos = ds.numeric_column(0).unwrap();
        let neg = ds.numeric_column(1).unwrap();
        let r_pos_ssup = pearson(&pos, &ds.numeric_column(2).unwrap());
        let r_pos_fsup = pearson(&pos, &ds.numeric_column(6).unwrap());
        let r_neg_sstr = pearson(&neg, &ds.numeric_column(3).unwrap());
        let r_neg_fstr = pearson(&neg, &ds.numeric_column(7).unwrap());
        assert!(
            r_pos_ssup > r_pos_fsup + 0.1,
            "{r_pos_ssup:.3} vs {r_pos_fsup:.3}"
        );
        assert!(r_neg_sstr > 0.3, "{r_neg_sstr:.3}");
        assert!(r_neg_fstr.abs() < 0.06, "{r_neg_fstr:.3}");
    }

    fn pearson(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len() as f64;
        let mx = x.iter().sum::<f64>() / n;
        let my = y.iter().sum::<f64>() / n;
        let cov: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
        let vx: f64 = x.iter().map(|a| (a - mx).powi(2)).sum();
        let vy: f64 = y.iter().map(|b| (b - my).powi(2)).sum();
        cov / (vx.sqrt() * vy.sqrt())
    }
}
