//! Synthetic analogues of the UCI Adult and Mushroom datasets.
//!
//! These appear only in Table 1, where the paper contrasts its benchmark
//! datasets with the two datasets most commonly used in earlier DP
//! evaluations. The analogues reproduce their signature meta-features:
//! Adult's extreme skew (zero-inflated capital gain/loss) and outlier count,
//! Mushroom's all-categorical wide-domain shape.

use crate::attribute::Attribute;
use crate::dataset::Dataset;
use crate::domain::Domain;
use crate::generators::util::{bernoulli, bin_z, categorical, clamp_code, normal, sigmoid};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// UCI Adult analogue: 15 variables, domain ≈ 7e15 (paper: 9.06e14), with
/// the dataset's signature heavy-tailed capital-gain/loss columns that push
/// mean skewness past every benchmark dataset.
pub fn adult(n: usize, seed: u64) -> Dataset {
    let domain = Domain::new(vec![
        Attribute::binned("age", 17.0, 90.0, 40),
        Attribute::categorical("workclass", (0..9).map(|i| format!("wc{i}")).collect()),
        Attribute::ordinal("fnlwgt", 10),
        Attribute::categorical("education", (0..16).map(|i| format!("ed{i}")).collect()),
        Attribute::ordinal("education_num", 16),
        Attribute::categorical("marital", (0..7).map(|i| format!("m{i}")).collect()),
        Attribute::categorical("occupation", (0..15).map(|i| format!("oc{i}")).collect()),
        Attribute::categorical("relationship", (0..6).map(|i| format!("r{i}")).collect()),
        Attribute::categorical_from("race", &["white", "black", "apia", "aian", "other"]),
        Attribute::categorical_from("sex", &["male", "female"]),
        // Zero-inflated long-tail money columns: scores are the bin's dollar
        // midpoint so their numeric skew matches the real Adult's shape.
        Attribute::ordinal_scored(
            "capital_gain",
            (0..40)
                .map(|i| {
                    if i == 0 {
                        0.0
                    } else {
                        250.0 * (i as f64).powi(2)
                    }
                })
                .collect(),
        ),
        Attribute::ordinal_scored(
            "capital_loss",
            (0..30)
                .map(|i| {
                    if i == 0 {
                        0.0
                    } else {
                        120.0 * (i as f64).powi(2)
                    }
                })
                .collect(),
        ),
        Attribute::binned("hours_per_week", 1.0, 99.0, 25),
        Attribute::categorical("country", (0..20).map(|i| format!("c{i}")).collect()),
        Attribute::binary("income_gt_50k"),
    ]);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::with_capacity(domain, n);

    for _ in 0..n {
        let age_z = normal(&mut rng) * 0.9;
        let edu_num = clamp_code(9.0 + 2.8 * normal(&mut rng), 16);
        let edu_z = (edu_num as f64 - 9.0) / 2.8;
        // Heavy right tail: ~8% of rows have nonzero capital gain, with an
        // exponential tail over the quadratic-dollar bins.
        let cap_gain = if rng.gen::<f64>() < 0.08 {
            let t: f64 = rng.gen::<f64>();
            clamp_code(1.0 + 38.0 * t.powi(3), 40)
        } else {
            0
        };
        let cap_loss = if rng.gen::<f64>() < 0.047 {
            let t: f64 = rng.gen::<f64>();
            clamp_code(1.0 + 28.0 * t.powi(3), 30)
        } else {
            0
        };
        let hours = bin_z(0.3 * edu_z + normal(&mut rng) * 0.8, 25, 2.8);
        let income_logit = -1.9
            + 0.8 * edu_z
            + 0.5 * age_z
            + 1.6 * f64::from(cap_gain > 0)
            + 0.25 * (hours as f64 - 12.0) / 12.0;
        let income = bernoulli(&mut rng, sigmoid(income_logit));

        ds.push_row(&[
            bin_z(age_z, 40, 2.8),
            categorical(
                &mut rng,
                &[0.70, 0.08, 0.06, 0.05, 0.04, 0.03, 0.02, 0.01, 0.01],
            ),
            categorical(&mut rng, &[1.0; 10]),
            edu_num, // education label mirrors education_num
            edu_num,
            categorical(&mut rng, &[0.46, 0.33, 0.10, 0.04, 0.03, 0.03, 0.01]),
            categorical(&mut rng, &[1.0; 15]),
            categorical(&mut rng, &[0.40, 0.26, 0.16, 0.10, 0.05, 0.03]),
            categorical(&mut rng, &[0.85, 0.10, 0.03, 0.01, 0.01]),
            bernoulli(&mut rng, 0.33),
            cap_gain,
            cap_loss,
            hours,
            categorical(
                &mut rng,
                &[
                    0.90, 0.02, 0.01, 0.01, 0.01, 0.008, 0.007, 0.006, 0.005, 0.005, 0.004, 0.004,
                    0.003, 0.003, 0.002, 0.002, 0.002, 0.002, 0.001, 0.001,
                ],
            ),
            income,
        ])
        .expect("codes generated in range");
    }
    ds
}

/// UCI Mushroom analogue: 23 all-categorical variables except a few ordinal
/// spore counts (so skewness is defined, as in the paper's Table 1),
/// domain ≈ 1.5e14 (paper: 2.44e14). Edibility is strongly predicted by odor.
pub fn mushroom(n: usize, seed: u64) -> Dataset {
    let cat = |name: &str, k: usize| -> Attribute {
        Attribute::categorical(name, (0..k).map(|i| format!("v{i}")).collect())
    };
    let domain = Domain::new(vec![
        Attribute::binary("edible"),
        cat("cap_shape", 6),
        cat("cap_surface", 4),
        cat("cap_color", 9),
        Attribute::binary("bruises"),
        cat("odor", 9),
        cat("gill_attachment", 2),
        cat("gill_spacing", 3),
        cat("gill_size", 2),
        cat("gill_color", 9),
        cat("stalk_shape", 2),
        cat("stalk_root", 6),
        cat("stalk_surface_above", 4),
        cat("stalk_surface_below", 4),
        cat("stalk_color_above", 9),
        cat("stalk_color_below", 9),
        cat("veil_color", 4),
        cat("ring_number", 3),
        cat("ring_type", 6),
        // Skewed ordinals standing in for spore-print measurements.
        Attribute::ordinal("spore_density", 9),
        Attribute::ordinal("height_class", 6),
        cat("population", 6),
        cat("habitat", 7),
    ]);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::with_capacity(domain, n);

    for _ in 0..n {
        let odor = categorical(
            &mut rng,
            &[0.42, 0.05, 0.05, 0.26, 0.05, 0.05, 0.05, 0.04, 0.03],
        );
        // Odor 0 ("none") and 3 ("anise-like") are mostly edible.
        let p_edible = match odor {
            0 => 0.85,
            3 => 0.92,
            1 | 2 => 0.10,
            _ => 0.25,
        };
        let edible = bernoulli(&mut rng, p_edible);
        let bruises = bernoulli(&mut rng, 0.35 + 0.25 * edible as f64);
        let gill_size = bernoulli(&mut rng, 0.4 + 0.2 * edible as f64);
        // Right-skewed ordinals (most mass at 0).
        let spore = {
            let u: f64 = rng.gen();
            clamp_code(8.0 * u.powi(4), 9)
        };
        let height = {
            let u: f64 = rng.gen();
            clamp_code(5.0 * u.powi(3), 6)
        };

        ds.push_row(&[
            edible,
            categorical(&mut rng, &[0.35, 0.3, 0.15, 0.1, 0.06, 0.04]),
            categorical(&mut rng, &[0.4, 0.3, 0.2, 0.1]),
            categorical(
                &mut rng,
                &[0.25, 0.2, 0.15, 0.1, 0.1, 0.07, 0.06, 0.04, 0.03],
            ),
            bruises,
            odor,
            bernoulli(&mut rng, 0.97),
            categorical(&mut rng, &[0.7, 0.2, 0.1]),
            gill_size,
            categorical(
                &mut rng,
                &[0.2, 0.18, 0.15, 0.12, 0.1, 0.09, 0.07, 0.05, 0.04],
            ),
            bernoulli(&mut rng, 0.43),
            categorical(&mut rng, &[0.45, 0.25, 0.13, 0.1, 0.05, 0.02]),
            categorical(&mut rng, &[0.55, 0.25, 0.12, 0.08]),
            categorical(&mut rng, &[0.55, 0.25, 0.12, 0.08]),
            categorical(
                &mut rng,
                &[0.25, 0.2, 0.15, 0.12, 0.1, 0.08, 0.05, 0.03, 0.02],
            ),
            categorical(
                &mut rng,
                &[0.25, 0.2, 0.15, 0.12, 0.1, 0.08, 0.05, 0.03, 0.02],
            ),
            categorical(&mut rng, &[0.9, 0.05, 0.03, 0.02]),
            categorical(&mut rng, &[0.08, 0.85, 0.07]),
            categorical(&mut rng, &[0.3, 0.25, 0.2, 0.12, 0.08, 0.05]),
            spore,
            height,
            categorical(&mut rng, &[0.3, 0.25, 0.18, 0.12, 0.09, 0.06]),
            categorical(&mut rng, &[0.3, 0.22, 0.16, 0.12, 0.1, 0.06, 0.04]),
        ])
        .expect("codes generated in range");
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metafeatures::skewness_summary;

    #[test]
    fn adult_capital_gain_is_heavily_skewed() {
        let ds = adult(20_000, 41);
        let skew = skewness_summary(&ds).unwrap();
        assert!(skew.mean > 2.0, "mean skew = {:.2}", skew.mean);
    }

    #[test]
    fn adult_income_tracks_education() {
        let ds = adult(30_000, 42);
        let edu = ds.domain().index_of("education_num").unwrap();
        let income = ds.domain().index_of("income_gt_50k").unwrap();
        let hi = ds.filter_rows(|r| r.get(edu) >= 12);
        let lo = ds.filter_rows(|r| r.get(edu) <= 6);
        assert!(hi.mean_of(income).unwrap() > lo.mean_of(income).unwrap() + 0.15);
    }

    #[test]
    fn mushroom_odor_predicts_edibility() {
        let ds = mushroom(20_000, 43);
        let none_odor = ds.filter_rows(|r| r.get(5) == 0);
        let foul = ds.filter_rows(|r| r.get(5) == 1);
        assert!(none_odor.mean_of(0).unwrap() > 0.7);
        assert!(foul.mean_of(0).unwrap() < 0.3);
    }
}
