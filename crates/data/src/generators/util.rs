//! Shared sampling helpers for the study generators.

use rand::Rng;

/// Standard normal draw via Box–Muller (rand 0.8's core has no normal
/// distribution and we deliberately avoid the extra `rand_distr` dependency).
pub fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Reject u1 == 0 to keep ln() finite.
    let mut u1: f64 = rng.gen();
    while u1 <= f64::MIN_POSITIVE {
        u1 = rng.gen();
    }
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Bernoulli draw returning a 0/1 code. `p` is clamped to [0, 1].
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> u32 {
    u32::from(rng.gen::<f64>() < p.clamp(0.0, 1.0))
}

/// Draw a category index proportional to `weights` (weights need not be
/// normalized; non-positive weights are treated as zero). Returns the last
/// index if rounding leaves residual mass.
pub fn categorical<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> u32 {
    debug_assert!(!weights.is_empty());
    let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
    if total <= 0.0 {
        return rng.gen_range(0..weights.len()) as u32;
    }
    let mut t = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        t -= w.max(0.0);
        if t < 0.0 {
            return i as u32;
        }
    }
    (weights.len() - 1) as u32
}

/// Draw from a softmax over `logits`.
pub fn softmax_choice<R: Rng + ?Sized>(rng: &mut R, logits: &[f64]) -> u32 {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let weights: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
    categorical(rng, &weights)
}

/// Logistic function.
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Map a z-score to one of `bins` codes covering `[-range, range]`
/// (clamping the tails into the extreme bins).
pub fn bin_z(z: f64, bins: usize, range: f64) -> u32 {
    debug_assert!(bins > 0);
    let unit = (z + range) / (2.0 * range);
    let idx = (unit * bins as f64).floor();
    idx.clamp(0.0, (bins - 1) as f64) as u32
}

/// Clamp an integer-valued f64 into the code space of a `card`-level
/// attribute.
pub fn clamp_code(v: f64, card: usize) -> u32 {
    v.round().clamp(0.0, (card - 1) as f64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[categorical(&mut rng, &[1.0, 2.0, 1.0]) as usize] += 1;
        }
        let p1 = counts[1] as f64 / 30_000.0;
        assert!((p1 - 0.5).abs() < 0.02, "p1 = {p1}");
    }

    #[test]
    fn categorical_ignores_negative_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let c = categorical(&mut rng, &[-5.0, 1.0, -2.0]);
            assert_eq!(c, 1);
        }
    }

    #[test]
    fn bin_z_covers_range() {
        assert_eq!(bin_z(-10.0, 10, 3.0), 0);
        assert_eq!(bin_z(10.0, 10, 3.0), 9);
        assert_eq!(bin_z(0.0, 10, 3.0), 5);
    }

    #[test]
    fn clamp_code_bounds() {
        assert_eq!(clamp_code(-3.0, 5), 0);
        assert_eq!(clamp_code(9.0, 5), 4);
        assert_eq!(clamp_code(2.4, 5), 2);
    }
}
