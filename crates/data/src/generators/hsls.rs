//! Synthetic populations for the three HSLS:09 papers.
//!
//! HSLS:09 (High School Longitudinal Study of 2009) follows ~23k U.S. 9th
//! graders. Each generator below produces the paper-specific variable subset
//! with planted relationships matching the published findings; see the
//! per-function docs for the exact structural model.

use crate::attribute::Attribute;
use crate::dataset::Dataset;
use crate::domain::Domain;
use crate::generators::util::{bernoulli, bin_z, categorical, normal, sigmoid};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Persistence rates P(aspire in 11th | aspired in 9th) by SES quartile
/// (low, low-middle, high-middle, high) — the values behind Saw et al.'s
/// hard finding #96: "31.9% and 29.9% ... than their high SES peers (45.1%)".
pub const SAW_PERSIST_BY_SES: [f64; 4] = [0.299, 0.319, 0.380, 0.451];

/// Emergence rates P(aspire in 11th | no aspiration in 9th) by SES quartile:
/// "emergers (6.1% and 5.4%) ... high SES peers (9.0%)".
pub const SAW_EMERGE_BY_SES: [f64; 4] = [0.054, 0.061, 0.075, 0.090];

/// Saw, Chang & Chan (2018): STEM career aspirations at the intersection of
/// gender, race/ethnicity and SES. 9 variables, domain ≈ 4.3e4.
///
/// Planted structure:
/// * Boys aspire in 9th grade at ~3× the rate of girls (logit gap 1.25).
/// * Aspiration rises with SES and math achievement.
/// * Persistence/emergence rates follow [`SAW_PERSIST_BY_SES`] /
///   [`SAW_EMERGE_BY_SES`] with a small male bonus.
/// * `persister`/`emerger` are derived columns (as in the paper's
///   preprocessing), so synthesizers must capture a 3-way interaction to
///   reproduce finding #96.
pub fn saw2018(n: usize, seed: u64) -> Dataset {
    let domain = Domain::new(vec![
        Attribute::categorical_from("sex", &["male", "female"]),
        Attribute::categorical_from(
            "race",
            &[
                "white",
                "black",
                "hispanic",
                "asian",
                "native",
                "multiracial",
            ],
        ),
        Attribute::ordinal("ses", 4),
        Attribute::ordinal("parent_edu", 4),
        Attribute::ordinal("math9", 14),
        Attribute::binary("stem_asp_9"),
        Attribute::binary("stem_asp_11"),
        Attribute::binary("persister"),
        Attribute::binary("emerger"),
    ]);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::with_capacity(domain, n);

    // SES distribution by race (rows: white..multiracial).
    const SES_BY_RACE: [[f64; 4]; 6] = [
        [0.18, 0.22, 0.30, 0.30],
        [0.35, 0.30, 0.22, 0.13],
        [0.38, 0.30, 0.20, 0.12],
        [0.20, 0.20, 0.28, 0.32],
        [0.40, 0.30, 0.20, 0.10],
        [0.25, 0.27, 0.26, 0.22],
    ];

    for _ in 0..n {
        let sex = bernoulli(&mut rng, 0.505); // 1 = female
        let race = categorical(&mut rng, &[0.52, 0.13, 0.22, 0.04, 0.01, 0.08]);
        let ses = categorical(&mut rng, &SES_BY_RACE[race as usize]);
        let parent_edu = {
            let jitter = normal(&mut rng) * 0.9;
            (ses as f64 + jitter).round().clamp(0.0, 3.0) as u32
        };
        let ses_z = (ses as f64 - 1.5) / 1.5;
        let math_latent =
            0.55 * ses_z + 0.30 * ((parent_edu as f64 - 1.5) / 1.5) + 0.8 * normal(&mut rng);
        let math9 = bin_z(math_latent, 14, 2.8);
        let math_z = (math9 as f64 - 6.5) / 6.5;

        let male = 1.0 - sex as f64;
        let race_adj = match race {
            1 | 2 | 4 => -0.15, // black, hispanic, native
            3 => 0.25,          // asian
            _ => 0.0,
        };
        let asp9_logit = -1.92 + 1.25 * male + 0.28 * ses_z + 0.35 * math_z + race_adj;
        let asp9 = bernoulli(&mut rng, sigmoid(asp9_logit));

        let sex_bonus = if sex == 0 { 0.018 } else { -0.018 };
        let p11 = if asp9 == 1 {
            SAW_PERSIST_BY_SES[ses as usize] + sex_bonus
        } else {
            SAW_EMERGE_BY_SES[ses as usize] + sex_bonus * 0.6
        };
        let asp11 = bernoulli(&mut rng, p11);

        let persister = u32::from(asp9 == 1 && asp11 == 1);
        let emerger = u32::from(asp9 == 0 && asp11 == 1);
        ds.push_row(&[
            sex, race, ses, parent_edu, math9, asp9, asp11, persister, emerger,
        ])
        .expect("codes generated in range");
    }
    ds
}

/// Lee & Simpkins (2021): adolescents' math performance under low teacher
/// support. 9 quasi-continuous variables binned at 60–120 levels,
/// domain ≈ 5.2e17 — the high-mutual-information dataset of Table 1.
///
/// Planted structure (z-scored latents, shared ability factor θ):
/// * `math11 = 0.45θ + 0.25·ability_sc + 0.18·parent_sup + 0.12·teacher_sup
///   − 0.08·(ability_sc × teacher_sup) + noise`. The negative interaction is
///   the paper's protective effect: high ability self-concept buffers low
///   teacher support.
/// * `r(math9, math11) > 0.7` ("strong" by the paper's convention).
pub fn lee2021(n: usize, seed: u64) -> Dataset {
    let domain = Domain::new(vec![
        Attribute::binned("math9", -4.0, 4.0, 120),
        Attribute::binned("math11", -4.0, 4.0, 120),
        Attribute::binned("ability_self_concept", -3.0, 3.0, 100),
        Attribute::binned("teacher_support", -3.0, 3.0, 100),
        Attribute::binned("parent_support", -3.0, 3.0, 100),
        Attribute::binned("ses", -3.0, 3.0, 100),
        Attribute::binned("prior_achievement", -3.0, 3.0, 100),
        Attribute::binned("school_belonging", -3.0, 3.0, 60),
        Attribute::binned("english9", -3.0, 3.0, 60),
    ]);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::with_capacity(domain, n);

    for _ in 0..n {
        let theta = normal(&mut rng);
        let ses = 0.40 * theta + 0.917 * normal(&mut rng);
        let prior = 0.80 * theta + 0.30 * ses + 0.50 * normal(&mut rng);
        let math9 = 0.80 * theta + 0.20 * ses + 0.45 * normal(&mut rng);
        let ability = 0.60 * theta + 0.70 * normal(&mut rng);
        let teacher = 0.15 * theta + 0.10 * ses + 0.95 * normal(&mut rng);
        let parent = 0.20 * theta + 0.45 * ses + 0.85 * normal(&mut rng);
        let belong = 0.30 * parent + 0.20 * teacher + 0.90 * normal(&mut rng);
        let english = 0.65 * theta + 0.25 * ses + 0.70 * normal(&mut rng);
        let math11 = 0.45 * theta + 0.38 * math9 + 0.25 * ability + 0.18 * parent + 0.12 * teacher
            - 0.08 * (ability * teacher)
            + 0.40 * normal(&mut rng);

        ds.push_row(&[
            bin_z(math9, 120, 4.0),
            bin_z(math11, 120, 4.0),
            bin_z(ability, 100, 3.0),
            bin_z(teacher, 100, 3.0),
            bin_z(parent, 100, 3.0),
            bin_z(ses, 100, 3.0),
            bin_z(prior, 100, 3.0),
            bin_z(belong, 60, 3.0),
            bin_z(english, 60, 3.0),
        ])
        .expect("codes generated in range");
    }
    ds
}

/// Number of 6-level survey items in the Jeong et al. subset.
pub const JEONG_SURVEY_VARS: usize = 51;

/// Jeong et al. (2021): racial bias in classifiers predicting 9th-grade math
/// performance. 57 variables (6 structural + 51 weak survey items),
/// domain ≈ 1.2e43 — the huge-domain dataset no PGM-based synthesizer can fit.
///
/// Planted structure:
/// * `race_group` ∈ {privileged (White/Asian), disadvantaged (Black/
///   Hispanic/Native American)}; privileged share 55%.
/// * Latent achievement = 0.35·(±1 by group) + 0.40·ses + noise; the label
///   `top50` thresholds it at 0. Group base-rate difference makes any
///   threshold classifier show FPR(privileged) ≈ 2× FPR(disadvantaged) and
///   the FNR reversed — the paper's headline finding.
/// * Survey items load on achievement with weights 0.10–0.35, giving the low
///   pairwise MI (≈0.02) of Table 1.
pub fn jeong2021(n: usize, seed: u64) -> Dataset {
    let mut attrs = vec![
        Attribute::categorical_from("race_group", &["privileged", "disadvantaged"]),
        Attribute::categorical_from("sex", &["male", "female"]),
        Attribute::binary("top50"),
        Attribute::ordinal("ses", 10),
        Attribute::ordinal("prior_math", 8),
        Attribute::categorical_from("locale", &["city", "suburb", "town", "rural"]),
    ];
    for i in 0..JEONG_SURVEY_VARS {
        attrs.push(Attribute::ordinal(format!("survey_{i:02}"), 6));
    }
    let domain = Domain::new(attrs);
    let mut rng = StdRng::seed_from_u64(seed);

    // Fixed (per-dataset, not per-row) survey loadings, derived from the seed
    // so the *population* is deterministic given (n, seed).
    let mut loading_rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let loadings: Vec<f64> = (0..JEONG_SURVEY_VARS)
        .map(|_| 0.10 + 0.25 * rand::Rng::gen::<f64>(&mut loading_rng))
        .collect();

    let mut ds = Dataset::with_capacity(domain, n);
    for _ in 0..n {
        let disadvantaged = bernoulli(&mut rng, 0.45);
        let group = if disadvantaged == 1 { -1.0 } else { 1.0 };
        let sex = bernoulli(&mut rng, 0.5);
        let ses_z = 0.30 * group + 0.954 * normal(&mut rng);
        let achievement = 0.35 * group + 0.40 * ses_z + 0.84 * normal(&mut rng);
        let top50 = u32::from(achievement > 0.0);
        let prior = bin_z(0.70 * achievement + 0.70 * normal(&mut rng), 8, 2.5);
        let locale_weights = if disadvantaged == 1 {
            [0.38, 0.27, 0.15, 0.20]
        } else {
            [0.25, 0.40, 0.15, 0.20]
        };
        let locale = categorical(&mut rng, &locale_weights);

        let mut row = Vec::with_capacity(6 + JEONG_SURVEY_VARS);
        row.extend_from_slice(&[
            disadvantaged,
            sex,
            top50,
            bin_z(ses_z, 10, 2.5),
            prior,
            locale,
        ]);
        for &w in &loadings {
            let v = w * achievement + (1.0 - w * w).sqrt() * normal(&mut rng);
            row.push(bin_z(v, 6, 2.2));
        }
        ds.push_row(&row).expect("codes generated in range");
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marginal::mutual_information;

    #[test]
    fn saw_gender_gap_is_planted() {
        let ds = saw2018(20_000, 3);
        let male = ds.filter_rows(|r| r.get(0) == 0);
        let female = ds.filter_rows(|r| r.get(0) == 1);
        let p_m = male.mean_of(5).unwrap();
        let p_f = female.mean_of(5).unwrap();
        assert!(p_m > p_f + 0.12, "male {p_m:.3} vs female {p_f:.3}");
    }

    #[test]
    fn saw_persistence_gradient_matches_constants() {
        let ds = saw2018(60_000, 4);
        for ses in [0u32, 3u32] {
            let aspirants = ds.filter_rows(|r| r.get(2) == ses && r.get(5) == 1);
            let p = aspirants.mean_of(7).unwrap();
            let target = SAW_PERSIST_BY_SES[ses as usize];
            assert!(
                (p - target).abs() < 0.04,
                "ses {ses}: persist {p:.3} vs target {target:.3}"
            );
        }
    }

    #[test]
    fn saw_derived_columns_are_consistent() {
        let ds = saw2018(5_000, 5);
        for r in 0..ds.n_rows() {
            let row = ds.row(r);
            let asp9 = row.get(5);
            let asp11 = row.get(6);
            let persister = row.get(7);
            let emerger = row.get(8);
            assert_eq!(persister, u32::from(asp9 == 1 && asp11 == 1));
            assert_eq!(emerger, u32::from(asp9 == 0 && asp11 == 1));
        }
    }

    #[test]
    fn lee_math_scores_strongly_correlated() {
        let ds = lee2021(10_000, 6);
        let x = ds.numeric_column(0).unwrap();
        let y = ds.numeric_column(1).unwrap();
        let r = pearson(&x, &y);
        assert!(r > 0.7, "r(math9, math11) = {r:.3}");
        // And the dataset has the highest MI in the benchmark family.
        let mi = mutual_information(&ds, 0, 1).unwrap();
        assert!(mi > 0.5, "mi = {mi:.3}");
    }

    #[test]
    fn jeong_base_rates_differ_by_group() {
        let ds = jeong2021(20_000, 7);
        let priv_rows = ds.filter_rows(|r| r.get(0) == 0);
        let dis_rows = ds.filter_rows(|r| r.get(0) == 1);
        let p_priv = priv_rows.mean_of(2).unwrap();
        let p_dis = dis_rows.mean_of(2).unwrap();
        assert!(p_priv > p_dis + 0.15, "priv {p_priv:.3} vs dis {p_dis:.3}");
    }

    fn pearson(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len() as f64;
        let mx = x.iter().sum::<f64>() / n;
        let my = y.iter().sum::<f64>() / n;
        let cov: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
        let vx: f64 = x.iter().map(|a| (a - mx).powi(2)).sum();
        let vy: f64 = y.iter().map(|b| (b - my).powi(2)).sum();
        cov / (vx.sqrt() * vy.sqrt())
    }
}
