//! Batched, cached, parallel marginal counting — the data-side hot path of
//! every synthesizer selection loop.
//!
//! The naive counter ([`Marginal::count_naive`]) walks the rows once *per
//! marginal*, recomputing a mixed-radix index from scratch for each row with
//! an inner loop over the attribute set. The selection loops of the
//! synthesizers make that quadratic-to-cubic in practice: AIM re-scores the
//! whole workload every round, MST counts all O(d²) pairwise joints, and
//! PrivMRF/PrivBayes score mutual information over the same pairs again.
//! True marginals of the input data never change during a fit, so all of
//! that work is redundant across rounds and embarrassingly parallel within
//! a pass. This module removes it in three layers:
//!
//! 1. **Kernel** — single-pass counting into `u64` integer accumulators
//!    with precomputed per-attribute stride tables, streaming straight from
//!    the bit-packed word image ([`crate::packed::PackedColumn`]): the
//!    memory the sweep actually reads is `ceil(log2(card))` bits per cell,
//!    not a `u32`. One-way sets unpack-and-count directly from words; wider
//!    sets share per-block decode scratch — each distinct column of a fused
//!    batch is unpacked once per cache-sized block, then the specialized
//!    two-way zips and the column-major mixed-radix accumulator run over
//!    the L1-resident decoded slices, so the DRAM traffic of a selection
//!    loop's whole candidate pool is the packed words, streamed once per
//!    chunk. There is no per-row inner loop and no per-cell heap
//!    allocation anywhere.
//! 2. **Parallelism** — row-chunked counting with per-thread scratch
//!    histograms merged by integer addition. `u64` addition is associative
//!    and commutative, so the merged counts are *bit-identical* to the
//!    sequential pass (pinned by the differential proptests in
//!    `tests/engine_equivalence.rs`), and converting an exact integer count
//!    to `f64` equals the naive kernel's repeated `+= 1.0` exactly for any
//!    dataset below 2^53 rows.
//! 3. **Memoization** — a per-fit [`MarginalCache`] keyed by attribute set,
//!    so a round loop counts each candidate at most once per fit, bounded
//!    by a total-cell budget (FIFO eviction) so wide-domain workloads trade
//!    hits for recounts instead of memory. The process-wide
//!    [`marginal_counts_performed`] counter (mirroring the grid driver's
//!    fit counter) makes the at-most-once property provable in tests.
//!
//! The pre-packing `u32`-slice kernel is retained verbatim in
//! [`unpacked`] (tests and the `naive-reference` feature) as the
//! differential oracle and the packed-vs-unpacked benchmark baseline.

use crate::dataset::Dataset;
use crate::domain::validate_attr_set;
use crate::error::{DataError, Result};
use crate::marginal::{mi_from_joint, strides_of, Marginal, DEFAULT_CELL_LIMIT};
use crate::packed::{ColumnAccess, PackedColumn};
use rayon::prelude::*;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of marginal counting passes (one per attribute set
/// actually counted from data; cache hits do not count).
///
/// Purely observational, like [`synrd::benchmark::fits_performed`]: the
/// engine-cache tests assert that a synthesizer's round loop counts each
/// candidate attribute set at most once per fit by reading this counter
/// before and after a fit.
static MARGINAL_COUNTS: AtomicU64 = AtomicU64::new(0);

/// Total marginal counting passes performed by this process.
pub fn marginal_counts_performed() -> u64 {
    MARGINAL_COUNTS.load(Ordering::Relaxed)
}

/// Rows per chunk of a counting sweep. Chunks bound the per-thread scratch
/// and keep a fused batch's working set (chunk of every column + all batch
/// histograms) inside the cache hierarchy.
const CHUNK_ROWS: usize = 1 << 16;

/// Rows per decode block inside a chunk: each distinct column of the batch
/// is unpacked once per block into scratch (32 KB per column), sized so a
/// dozen decoded columns plus the batch histograms stay L2-resident while
/// the counting loops re-read them once per plan, and large enough that the
/// per-block lane setup/merge stays negligible against the counting.
const BLOCK_ROWS: usize = 8192;

/// Minimum rows before a sweep fans out across threads; below this the
/// per-chunk scratch allocation outweighs the win.
const PAR_ROW_THRESHOLD: usize = 1 << 15;

/// Precomputed counting plan for one attribute set: resolved packed
/// columns, the per-attribute stride table, and the table geometry.
struct CountPlan<'d> {
    attrs: Vec<usize>,
    shape: Vec<usize>,
    strides: Vec<usize>,
    cols: Vec<&'d PackedColumn>,
    cells: usize,
}

impl<'d> CountPlan<'d> {
    /// Validate `attrs` against `dataset` and resolve everything the kernel
    /// needs, enforcing `cell_limit` exactly like the naive counter.
    fn build(dataset: &'d Dataset, attrs: &[usize], cell_limit: usize) -> Result<CountPlan<'d>> {
        validate_attr_set(dataset.domain().len(), attrs)?;
        let cells = dataset.domain().cells(attrs)?;
        if cells > cell_limit as u128 {
            return Err(DataError::MarginalTooLarge {
                cells,
                limit: cell_limit,
            });
        }
        let shape: Vec<usize> = attrs
            .iter()
            .map(|&a| dataset.domain().cardinality(a))
            .collect::<Result<_>>()?;
        let cols: Vec<&PackedColumn> = attrs
            .iter()
            .map(|&a| dataset.packed_column(a))
            .collect::<Result<_>>()?;
        Ok(CountPlan {
            attrs: attrs.to_vec(),
            strides: strides_of(&shape),
            shape,
            cols,
            cells: cells as usize,
        })
    }

    /// Materialize a [`Marginal`] from the finished `u64` accumulator.
    fn into_marginal(self, hist: Vec<u64>) -> Result<Marginal> {
        Marginal::from_counts(
            self.attrs,
            self.shape,
            hist.into_iter().map(|c| c as f64).collect(),
        )
    }
}

/// Table size up to which the bump pass spreads increments over four
/// interleaved histogram lanes. Real data has hot cells (and correlated
/// columns make consecutive rows hit the same cell), which serializes the
/// read-modify-write chain on a single accumulator; four lanes break that
/// dependency at the cost of 3 extra tables, merged by integer addition
/// afterwards — so the result is still bit-identical. Above this limit the
/// extra tables would pollute the cache more than the chain costs.
const LANE_CELL_LIMIT: usize = 1 << 12;

/// Reusable scratch for one counting thread: the per-block decoded columns
/// (one buffer per distinct attribute of the fused batch), the mixed-radix
/// index buffer (sets wider than two attributes) and the extra histogram
/// lanes.
#[derive(Default)]
struct CountScratch {
    decoded: Vec<Vec<u32>>,
    idx: Vec<usize>,
    lanes: Vec<u64>,
}

/// Borrow three extra lanes the same size as `hist` from `lanes`, run the
/// counting body over `(hist, l1, l2, l3)`, then fold the lanes back into
/// `hist` by integer addition (order-free, so still bit-identical).
fn with_lanes(
    hist: &mut [u64],
    lanes: &mut Vec<u64>,
    body: impl FnOnce(&mut [u64], &mut [u64], &mut [u64], &mut [u64]),
) {
    let cells = hist.len();
    lanes.clear();
    lanes.resize(3 * cells, 0);
    let (l1, rest) = lanes.split_at_mut(cells);
    let (l2, l3) = rest.split_at_mut(cells);
    body(hist, l1, l2, l3);
    for ((h, &a), (&b, &c)) in hist.iter_mut().zip(&*l1).zip(l2.iter().zip(&*l3)) {
        *h += a + b + c;
    }
}

/// The decode layout of a fused sweep: the distinct packed columns that the
/// multi-attribute plans share (each decoded once per block), and for every
/// plan the positions of its attributes inside that decode set. One-way
/// plans never decode — they unpack-and-count straight from the words — so
/// they contribute no columns and carry an empty slot map.
fn sweep_layout<'d>(plans: &[CountPlan<'d>]) -> (Vec<&'d PackedColumn>, Vec<Vec<usize>>) {
    let mut distinct_attrs: Vec<usize> = Vec::new();
    let mut distinct: Vec<&'d PackedColumn> = Vec::new();
    let slots: Vec<Vec<usize>> = plans
        .iter()
        .map(|plan| {
            if plan.cols.len() < 2 {
                return Vec::new();
            }
            plan.attrs
                .iter()
                .zip(&plan.cols)
                .map(
                    |(&a, &col)| match distinct_attrs.iter().position(|&x| x == a) {
                        Some(slot) => slot,
                        None => {
                            distinct_attrs.push(a);
                            distinct.push(col);
                            distinct.len() - 1
                        }
                    },
                )
                .collect()
        })
        .collect();
    (distinct, slots)
}

/// Count rows `lo..hi` of a one-way plan straight from the packed words:
/// no decode scratch. A constant column is a single addition for the whole
/// range; widths 1–3 use bit-sliced equality counting (cost scales with the
/// cardinality, not the rows); wider codes take one shift-mask-bump per row.
fn count_one_way(col: &PackedColumn, lo: usize, hi: usize, hist: &mut [u64], lanes: &mut Vec<u64>) {
    let width = col.width() as usize;
    if width == 0 {
        hist[0] += (hi - lo) as u64;
        return;
    }
    if hist.len() > LANE_CELL_LIMIT {
        col.for_each_range(lo, hi, |c| hist[c as usize] += 1);
        return;
    }
    // Narrow codes (width ≤ 3, so cardinality ≤ 8): bit-sliced equality
    // counting. For each value, one XOR + OR-collapse + POPCNT counts its
    // occurrences across a whole word of `64 / width` rows, so the cost
    // scales with the cardinality instead of the row count — a kernel shape
    // the packed layout enables and a `u32` slice cannot express.
    match col.width() {
        1 => return count_one_way_eq::<1>(col.iter_words(), lo, hi, hist),
        2 => return count_one_way_eq::<2>(col.iter_words(), lo, hi, hist),
        3 => return count_one_way_eq::<3>(col.iter_words(), lo, hi, hist),
        _ => {}
    }
    // Word-major with four interleaved lanes: one u64 load covers
    // `64 / width` rows, each extracted by a shift-and-mask with no
    // cross-iteration dependency. Widths 4–8 dispatch to a const-width body
    // whose shift amounts are immediates and whose per-word loop fully
    // unrolls (mirroring `decode_range_into`); wider codes take the
    // runtime-width body.
    with_lanes(hist, lanes, |h0, l1, l2, l3| match col.width() {
        4 => count_one_way_words::<4>(col.iter_words(), lo, hi, h0, l1, l2, l3),
        5 => count_one_way_words::<5>(col.iter_words(), lo, hi, h0, l1, l2, l3),
        6 => count_one_way_words::<6>(col.iter_words(), lo, hi, h0, l1, l2, l3),
        7 => count_one_way_words::<7>(col.iter_words(), lo, hi, h0, l1, l2, l3),
        8 => count_one_way_words::<8>(col.iter_words(), lo, hi, h0, l1, l2, l3),
        _ => count_one_way_words_generic(col.iter_words(), width, lo, hi, h0, l1, l2, l3),
    });
}

/// Bit-sliced equality counting for [`count_one_way`] over narrow codes
/// (`WIDTH` ≤ 3): for each value `v` of the (≤ 8-value) alphabet, XOR the
/// word against `v` replicated into every field, OR-collapse each field
/// onto its low bit, and POPCNT the non-matches — `64 / WIDTH` rows per
/// popcount. Partial words at the range ends fall back to shift-and-mask,
/// so column padding is never touched. All counts are exact `u64`s, so the
/// histogram is bit-identical to the per-row bump.
#[inline(always)]
fn count_one_way_eq<const WIDTH: usize>(words: &[u64], lo: usize, hi: usize, hist: &mut [u64]) {
    let per_word = 64 / WIDTH;
    let mask = (1u64 << WIDTH) - 1;
    let head_end = hi.min(lo.next_multiple_of(per_word));
    for r in lo..head_end {
        hist[((words[r / per_word] >> ((r % per_word) * WIDTH)) & mask) as usize] += 1;
    }
    if head_end == hi {
        return;
    }
    // A 1 at the low bit of every field (the top `64 % WIDTH` padding bits
    // stay clear); multiplying by `v < 2^WIDTH` replicates `v` into each
    // field without carries.
    let mut lsb = 0u64;
    let mut k = 0usize;
    while k < per_word {
        lsb |= 1 << (k * WIDTH);
        k += 1;
    }
    let full = &words[head_end / per_word..hi / per_word];
    for (v, cell) in hist.iter_mut().enumerate() {
        let bcast = lsb.wrapping_mul(v as u64);
        let mut matches = 0u64;
        for &w in full {
            let t = w ^ bcast;
            let mut z = t;
            let mut s = 1usize;
            while s < WIDTH {
                z |= t >> s;
                s += 1;
            }
            matches += per_word as u64 - u64::from((z & lsb).count_ones());
        }
        *cell += matches;
    }
    for r in (hi / per_word) * per_word..hi {
        hist[((words[r / per_word] >> ((r % per_word) * WIDTH)) & mask) as usize] += 1;
    }
}

/// Const-width word-major histogram body for [`count_one_way`]: `WIDTH` is
/// a compile-time constant, so every shift amount is an immediate and the
/// per-word extraction loop unrolls completely.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn count_one_way_words<const WIDTH: usize>(
    words: &[u64],
    lo: usize,
    hi: usize,
    h0: &mut [u64],
    l1: &mut [u64],
    l2: &mut [u64],
    l3: &mut [u64],
) {
    let per_word = 64 / WIDTH;
    let mask = (1u64 << WIDTH) - 1;
    let head_end = hi.min(lo.next_multiple_of(per_word));
    for r in lo..head_end {
        h0[((words[r / per_word] >> ((r % per_word) * WIDTH)) & mask) as usize] += 1;
    }
    if head_end == hi {
        return;
    }
    let last_word = hi / per_word;
    for &w in &words[head_end / per_word..last_word] {
        let mut k = 0usize;
        while k + 4 <= per_word {
            h0[((w >> (k * WIDTH)) & mask) as usize] += 1;
            l1[((w >> ((k + 1) * WIDTH)) & mask) as usize] += 1;
            l2[((w >> ((k + 2) * WIDTH)) & mask) as usize] += 1;
            l3[((w >> ((k + 3) * WIDTH)) & mask) as usize] += 1;
            k += 4;
        }
        while k < per_word {
            h0[((w >> (k * WIDTH)) & mask) as usize] += 1;
            k += 1;
        }
    }
    for r in last_word * per_word..hi {
        h0[((words[r / per_word] >> ((r % per_word) * WIDTH)) & mask) as usize] += 1;
    }
}

/// Runtime-width fallback of [`count_one_way_words`] for codes wider than 8
/// bits (cardinalities above 256 — rare in the benchmark's social-science
/// domains).
#[inline(never)]
#[allow(clippy::too_many_arguments)]
fn count_one_way_words_generic(
    words: &[u64],
    width: usize,
    lo: usize,
    hi: usize,
    h0: &mut [u64],
    l1: &mut [u64],
    l2: &mut [u64],
    l3: &mut [u64],
) {
    let per_word = 64 / width;
    let mask = (1u64 << width) - 1;
    let head_end = hi.min(lo.next_multiple_of(per_word));
    for r in lo..head_end {
        h0[((words[r / per_word] >> ((r % per_word) * width)) & mask) as usize] += 1;
    }
    if head_end == hi {
        return;
    }
    let last_word = hi / per_word;
    for &w in &words[head_end / per_word..last_word] {
        let mut k = 0usize;
        while k + 4 <= per_word {
            h0[((w >> (k * width)) & mask) as usize] += 1;
            l1[((w >> ((k + 1) * width)) & mask) as usize] += 1;
            l2[((w >> ((k + 2) * width)) & mask) as usize] += 1;
            l3[((w >> ((k + 3) * width)) & mask) as usize] += 1;
            k += 4;
        }
        while k < per_word {
            h0[((w >> (k * width)) & mask) as usize] += 1;
            k += 1;
        }
    }
    for r in last_word * per_word..hi {
        h0[((words[r / per_word] >> ((r % per_word) * width)) & mask) as usize] += 1;
    }
}

/// Count one block (`lo..hi`, already decoded into `decoded` per the plan's
/// slot map) into `hist`.
#[allow(clippy::too_many_arguments)]
fn count_block(
    plan: &CountPlan<'_>,
    slots: &[usize],
    decoded: &[Vec<u32>],
    lo: usize,
    hi: usize,
    hist: &mut [u64],
    idx_scratch: &mut Vec<usize>,
    lanes: &mut Vec<u64>,
) {
    let use_lanes = hist.len() <= LANE_CELL_LIMIT;
    match slots {
        [] => count_one_way(plan.cols[0], lo, hi, hist, lanes),
        [sa, sb] => {
            let stride = plan.strides[0];
            let (ca, cb) = (&decoded[*sa][..], &decoded[*sb][..]);
            if use_lanes {
                with_lanes(hist, lanes, |h0, l1, l2, l3| {
                    let mut qa = ca.chunks_exact(4);
                    let mut qb = cb.chunks_exact(4);
                    for (a, b) in qa.by_ref().zip(qb.by_ref()) {
                        h0[a[0] as usize * stride + b[0] as usize] += 1;
                        l1[a[1] as usize * stride + b[1] as usize] += 1;
                        l2[a[2] as usize * stride + b[2] as usize] += 1;
                        l3[a[3] as usize * stride + b[3] as usize] += 1;
                    }
                    for (&a, &b) in qa.remainder().iter().zip(qb.remainder()) {
                        h0[a as usize * stride + b as usize] += 1;
                    }
                });
            } else {
                for (&a, &b) in ca.iter().zip(cb) {
                    hist[a as usize * stride + b as usize] += 1;
                }
            }
        }
        slots => {
            // Column-major mixed-radix accumulation: one vectorizable pass
            // per attribute into the index scratch, then one bump pass.
            let n = hi - lo;
            idx_scratch.clear();
            idx_scratch.resize(n, 0);
            for (&slot, &stride) in slots.iter().zip(&plan.strides) {
                for (i, &c) in idx_scratch.iter_mut().zip(&decoded[slot]) {
                    *i += c as usize * stride;
                }
            }
            let idx = &*idx_scratch;
            if use_lanes {
                with_lanes(hist, lanes, |h0, l1, l2, l3| {
                    let mut quads = idx.chunks_exact(4);
                    for q in quads.by_ref() {
                        h0[q[0]] += 1;
                        l1[q[1]] += 1;
                        l2[q[2]] += 1;
                        l3[q[3]] += 1;
                    }
                    for &i in quads.remainder() {
                        h0[i] += 1;
                    }
                });
            } else {
                for &i in idx {
                    hist[i] += 1;
                }
            }
        }
    }
}

/// Count rows `lo..hi` of a whole fused batch: per decode block, unpack
/// each distinct multi-attribute column once into scratch, then run every
/// plan's counting loop over the decoded slices (one-way plans stream the
/// words directly).
fn count_chunk(
    plans: &[CountPlan<'_>],
    distinct: &[&PackedColumn],
    slots: &[Vec<usize>],
    lo: usize,
    hi: usize,
    hists: &mut [Vec<u64>],
    scratch: &mut CountScratch,
) {
    if scratch.decoded.len() < distinct.len() {
        scratch.decoded.resize_with(distinct.len(), Vec::new);
    }
    let mut blo = lo;
    while blo < hi {
        let bhi = (blo + BLOCK_ROWS).min(hi);
        let n = bhi - blo;
        for (buf, col) in scratch.decoded.iter_mut().zip(distinct) {
            buf.clear();
            buf.resize(n, 0);
            col.decode_range_into(blo, bhi, buf);
        }
        for ((plan, slot), hist) in plans.iter().zip(slots).zip(hists.iter_mut()) {
            count_block(
                plan,
                slot,
                &scratch.decoded,
                blo,
                bhi,
                hist,
                &mut scratch.idx,
                &mut scratch.lanes,
            );
        }
        blo = bhi;
    }
}

/// Run one fused sweep over `rows` rows for a batch of plans, returning one
/// `u64` histogram per plan. Chunked for locality; parallel across chunks
/// when `parallel` is set. Per-thread partial histograms are merged by
/// integer addition (associative), so the result is bit-identical to the
/// sequential sweep regardless of chunking, blocking or thread count.
fn sweep_plans(
    plans: &[CountPlan<'_>],
    rows: usize,
    chunk_rows: usize,
    parallel: bool,
) -> Vec<Vec<u64>> {
    for _ in plans {
        MARGINAL_COUNTS.fetch_add(1, Ordering::Relaxed);
    }
    let (distinct, slots) = sweep_layout(plans);
    let chunk_rows = chunk_rows.max(1);
    let n_chunks = rows.div_ceil(chunk_rows).max(1);
    if !parallel || n_chunks <= 1 {
        let mut hists: Vec<Vec<u64>> = plans.iter().map(|p| vec![0u64; p.cells]).collect();
        let mut scratch = CountScratch::default();
        for c in 0..n_chunks {
            let lo = c * chunk_rows;
            let hi = ((c + 1) * chunk_rows).min(rows);
            count_chunk(plans, &distinct, &slots, lo, hi, &mut hists, &mut scratch);
        }
        return hists;
    }
    let distinct = &distinct;
    let slots = &slots;
    let locals: Vec<Vec<Vec<u64>>> = (0..n_chunks)
        .into_par_iter()
        .map(|c| {
            let lo = c * chunk_rows;
            let hi = ((c + 1) * chunk_rows).min(rows);
            let mut scratch = CountScratch::default();
            let mut hists: Vec<Vec<u64>> = plans.iter().map(|p| vec![0u64; p.cells]).collect();
            count_chunk(plans, distinct, slots, lo, hi, &mut hists, &mut scratch);
            hists
        })
        .collect();
    // Merge partials in chunk order (order is irrelevant for u64 addition,
    // but determinism costs nothing).
    let mut hists: Vec<Vec<u64>> = plans.iter().map(|p| vec![0u64; p.cells]).collect();
    for local in locals {
        for (hist, part) in hists.iter_mut().zip(local) {
            for (h, p) in hist.iter_mut().zip(part) {
                *h += p;
            }
        }
    }
    hists
}

/// Whether a sweep over `rows` rows should fan out across threads.
fn should_parallelize(rows: usize) -> bool {
    rows >= PAR_ROW_THRESHOLD && rayon::current_num_threads() > 1
}

/// Chunk size for a production sweep: [`CHUNK_ROWS`], grown as needed so a
/// parallel sweep never materializes more than ~4 partial histogram sets
/// per worker at the merge barrier (the transient memory is
/// `n_chunks × Σ cells` until merged; chunk *size* has no effect on the
/// counts, only on locality and that bound).
fn production_chunk_rows(rows: usize) -> usize {
    let max_chunks = rayon::current_num_threads().saturating_mul(4).max(1);
    CHUNK_ROWS.max(rows.div_ceil(max_chunks))
}

/// One-shot engine-kernel count (the implementation behind
/// [`Marginal::from_dataset`]).
pub(crate) fn count_marginal(
    dataset: &Dataset,
    attrs: &[usize],
    cell_limit: usize,
) -> Result<Marginal> {
    let plan = CountPlan::build(dataset, attrs, cell_limit)?;
    let rows = dataset.n_rows();
    let parallel = should_parallelize(rows);
    let hist = sweep_plans(
        std::slice::from_ref(&plan),
        rows,
        production_chunk_rows(rows),
        parallel,
    )
    .pop()
    .expect("one histogram per plan");
    plan.into_marginal(hist)
}

/// Test/bench hook: count with an explicit chunk size, always taking the
/// chunk-merge code path when more than one chunk results. Used by the
/// differential proptests to pin parallel-vs-sequential bit-identity.
#[doc(hidden)]
pub fn count_marginal_chunked(
    dataset: &Dataset,
    attrs: &[usize],
    cell_limit: usize,
    chunk_rows: usize,
) -> Result<Marginal> {
    let plan = CountPlan::build(dataset, attrs, cell_limit)?;
    let rows = dataset.n_rows();
    let hist = sweep_plans(std::slice::from_ref(&plan), rows, chunk_rows, true)
        .pop()
        .expect("one histogram per plan");
    plan.into_marginal(hist)
}

/// The pre-packing counting kernel over plain `u32` columns, retained
/// verbatim as the differential oracle for the packed kernels and as the
/// baseline of the packed-vs-unpacked benchmark (`BENCH_dataset.json`).
/// Same specialized loops, same lanes, same chunking and parallel merge —
/// the only difference is the memory it streams.
#[cfg(any(test, feature = "naive-reference"))]
pub mod unpacked {
    use super::*;
    use crate::domain::Domain;

    struct UnpackedPlan<'a> {
        attrs: Vec<usize>,
        shape: Vec<usize>,
        strides: Vec<usize>,
        cols: Vec<&'a [u32]>,
        cells: usize,
    }

    fn build_plan<'a>(
        domain: &Domain,
        columns: &'a [Vec<u32>],
        attrs: &[usize],
        cell_limit: usize,
    ) -> Result<UnpackedPlan<'a>> {
        validate_attr_set(domain.len(), attrs)?;
        let cells = domain.cells(attrs)?;
        if cells > cell_limit as u128 {
            return Err(DataError::MarginalTooLarge {
                cells,
                limit: cell_limit,
            });
        }
        let shape: Vec<usize> = attrs
            .iter()
            .map(|&a| domain.cardinality(a))
            .collect::<Result<_>>()?;
        let cols: Vec<&[u32]> = attrs.iter().map(|&a| columns[a].as_slice()).collect();
        Ok(UnpackedPlan {
            attrs: attrs.to_vec(),
            strides: strides_of(&shape),
            shape,
            cols,
            cells: cells as usize,
        })
    }

    /// Count rows `lo..hi` of one plan into `hist` (the original u32-slice
    /// kernel body, unchanged).
    fn count_range(
        plan: &UnpackedPlan<'_>,
        lo: usize,
        hi: usize,
        hist: &mut [u64],
        scratch: &mut CountScratch,
    ) {
        let lanes = hist.len() <= LANE_CELL_LIMIT;
        match plan.cols.as_slice() {
            [col] => {
                let col = &col[lo..hi];
                if lanes {
                    with_lanes(hist, &mut scratch.lanes, |h0, l1, l2, l3| {
                        let mut quads = col.chunks_exact(4);
                        for q in quads.by_ref() {
                            h0[q[0] as usize] += 1;
                            l1[q[1] as usize] += 1;
                            l2[q[2] as usize] += 1;
                            l3[q[3] as usize] += 1;
                        }
                        for &c in quads.remainder() {
                            h0[c as usize] += 1;
                        }
                    });
                } else {
                    for &c in col {
                        hist[c as usize] += 1;
                    }
                }
            }
            [ca, cb] => {
                let stride = plan.strides[0];
                let (ca, cb) = (&ca[lo..hi], &cb[lo..hi]);
                if lanes {
                    with_lanes(hist, &mut scratch.lanes, |h0, l1, l2, l3| {
                        let mut qa = ca.chunks_exact(4);
                        let mut qb = cb.chunks_exact(4);
                        for (a, b) in qa.by_ref().zip(qb.by_ref()) {
                            h0[a[0] as usize * stride + b[0] as usize] += 1;
                            l1[a[1] as usize * stride + b[1] as usize] += 1;
                            l2[a[2] as usize * stride + b[2] as usize] += 1;
                            l3[a[3] as usize * stride + b[3] as usize] += 1;
                        }
                        for (&a, &b) in qa.remainder().iter().zip(qb.remainder()) {
                            h0[a as usize * stride + b as usize] += 1;
                        }
                    });
                } else {
                    for (&a, &b) in ca.iter().zip(cb) {
                        hist[a as usize * stride + b as usize] += 1;
                    }
                }
            }
            cols => {
                let n = hi - lo;
                let idx = &mut scratch.idx;
                idx.clear();
                idx.resize(n, 0);
                for (col, &stride) in cols.iter().zip(&plan.strides) {
                    for (i, &c) in idx.iter_mut().zip(&col[lo..hi]) {
                        *i += c as usize * stride;
                    }
                }
                let idx = &scratch.idx;
                if lanes {
                    with_lanes(hist, &mut scratch.lanes, |h0, l1, l2, l3| {
                        let mut quads = idx.chunks_exact(4);
                        for q in quads.by_ref() {
                            h0[q[0]] += 1;
                            l1[q[1]] += 1;
                            l2[q[2]] += 1;
                            l3[q[3]] += 1;
                        }
                        for &i in quads.remainder() {
                            h0[i] += 1;
                        }
                    });
                } else {
                    for &i in idx {
                        hist[i] += 1;
                    }
                }
            }
        }
    }

    /// Count a batch of attribute sets over unpacked columns in one fused
    /// chunked sweep (parallel by the same heuristics as the packed
    /// engine), returning the marginals in request order.
    ///
    /// # Errors
    /// Same validation contract as [`MarginalEngine::count_many`].
    pub fn count_many_unpacked(
        domain: &Domain,
        columns: &[Vec<u32>],
        sets: &[Vec<usize>],
        cell_limit: usize,
    ) -> Result<Vec<Marginal>> {
        let plans: Vec<UnpackedPlan<'_>> = sets
            .iter()
            .map(|attrs| build_plan(domain, columns, attrs, cell_limit))
            .collect::<Result<_>>()?;
        let rows = columns.first().map_or(0, Vec::len);
        let chunk_rows = production_chunk_rows(rows).max(1);
        let n_chunks = rows.div_ceil(chunk_rows).max(1);
        let hists: Vec<Vec<u64>> = if !should_parallelize(rows) || n_chunks <= 1 {
            let mut hists: Vec<Vec<u64>> = plans.iter().map(|p| vec![0u64; p.cells]).collect();
            let mut scratch = CountScratch::default();
            for c in 0..n_chunks {
                let lo = c * chunk_rows;
                let hi = ((c + 1) * chunk_rows).min(rows);
                for (plan, hist) in plans.iter().zip(&mut hists) {
                    count_range(plan, lo, hi, hist, &mut scratch);
                }
            }
            hists
        } else {
            let locals: Vec<Vec<Vec<u64>>> = (0..n_chunks)
                .into_par_iter()
                .map(|c| {
                    let lo = c * chunk_rows;
                    let hi = ((c + 1) * chunk_rows).min(rows);
                    let mut scratch = CountScratch::default();
                    plans
                        .iter()
                        .map(|plan| {
                            let mut hist = vec![0u64; plan.cells];
                            count_range(plan, lo, hi, &mut hist, &mut scratch);
                            hist
                        })
                        .collect()
                })
                .collect();
            let mut hists: Vec<Vec<u64>> = plans.iter().map(|p| vec![0u64; p.cells]).collect();
            for local in locals {
                for (hist, part) in hists.iter_mut().zip(local) {
                    for (h, p) in hist.iter_mut().zip(part) {
                        *h += p;
                    }
                }
            }
            hists
        };
        plans
            .into_iter()
            .zip(hists)
            .map(|(plan, hist)| {
                Marginal::from_counts(
                    plan.attrs,
                    plan.shape,
                    hist.into_iter().map(|c| c as f64).collect(),
                )
            })
            .collect()
    }
}

/// Default soft bound on the total cells a [`MarginalCache`] retains
/// (16M `f64` cells = 128 MB). Benchmark-scale tables never come close; the
/// bound exists so a wide-domain fit that prefetches hundreds of large pair
/// joints degrades to recounting instead of exhausting memory.
pub const DEFAULT_CACHE_CELL_BUDGET: usize = 1 << 24;

/// Per-fit memo of counted marginals, keyed by attribute set (in the order
/// requested — `[a, b]` and `[b, a]` are distinct tables). Bounded by a
/// total-cell budget with FIFO eviction: hot small tables stay, and an
/// over-budget workload trades cache hits for recounts rather than memory.
#[derive(Debug)]
pub struct MarginalCache {
    map: HashMap<Vec<usize>, Marginal>,
    /// Insertion order, for FIFO eviction (keys are unique: entries are
    /// inserted only when absent).
    order: VecDeque<Vec<usize>>,
    total_cells: usize,
    cell_budget: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Default for MarginalCache {
    fn default() -> Self {
        MarginalCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            total_cells: 0,
            cell_budget: DEFAULT_CACHE_CELL_BUDGET,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }
}

impl MarginalCache {
    /// Record a freshly counted marginal (the key must be absent).
    fn insert(&mut self, key: Vec<usize>, marginal: Marginal) {
        debug_assert!(!self.map.contains_key(&key));
        self.total_cells += marginal.n_cells();
        self.order.push_back(key.clone());
        self.map.insert(key, marginal);
        self.misses += 1;
    }

    /// Evict oldest entries until the budget holds, sparing `keep` (the
    /// entry a caller is about to borrow).
    fn enforce_budget(&mut self, keep: &[usize]) {
        while self.total_cells > self.cell_budget && self.order.len() > 1 {
            let victim = self.order.pop_front().expect("len checked above");
            if victim == keep {
                self.order.push_back(victim);
                continue;
            }
            if let Some(evicted) = self.map.remove(&victim) {
                self.total_cells -= evicted.n_cells();
                self.evictions += 1;
            }
        }
    }

    /// Cache lookups that were served without touching the data.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache lookups that required a counting pass.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries dropped to stay under the cell budget.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of distinct attribute sets cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing has been counted yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Batched, cached, parallel marginal counter over one dataset.
///
/// Synthesizers hold one engine per fit: every true-data marginal a
/// selection loop needs goes through [`count`](MarginalEngine::count) (or is
/// warmed in bulk by [`prefetch`](MarginalEngine::prefetch) /
/// [`count_many`](MarginalEngine::count_many)), so repeated rounds hit the
/// [`MarginalCache`] instead of rescanning the data.
pub struct MarginalEngine<'d> {
    data: &'d Dataset,
    cell_limit: usize,
    cache: MarginalCache,
}

impl<'d> MarginalEngine<'d> {
    /// Engine over `data` with [`DEFAULT_CELL_LIMIT`].
    pub fn new(data: &'d Dataset) -> MarginalEngine<'d> {
        MarginalEngine::with_cell_limit(data, DEFAULT_CELL_LIMIT)
    }

    /// Engine over `data` refusing tables larger than `cell_limit` cells.
    pub fn with_cell_limit(data: &'d Dataset, cell_limit: usize) -> MarginalEngine<'d> {
        MarginalEngine {
            data,
            cell_limit,
            cache: MarginalCache::default(),
        }
    }

    /// Override the cache's total-cell budget (see
    /// [`DEFAULT_CACHE_CELL_BUDGET`]); mainly for tests and memory-tight
    /// callers.
    pub fn with_cache_budget(mut self, cells: usize) -> MarginalEngine<'d> {
        self.cache.cell_budget = cells;
        self
    }

    /// The dataset this engine counts over.
    pub fn dataset(&self) -> &'d Dataset {
        self.data
    }

    /// Cache statistics for this fit.
    pub fn cache(&self) -> &MarginalCache {
        &self.cache
    }

    /// The true marginal of `attrs`, counted at most once per engine.
    ///
    /// # Errors
    /// Same contract as [`Marginal::from_dataset`].
    pub fn count(&mut self, attrs: &[usize]) -> Result<&Marginal> {
        if self.cache.map.contains_key(attrs) {
            self.cache.hits += 1;
        } else {
            let marginal = count_marginal(self.data, attrs, self.cell_limit)?;
            self.cache.insert(attrs.to_vec(), marginal);
            self.cache.enforce_budget(attrs);
        }
        Ok(self
            .cache
            .map
            .get(attrs)
            .expect("present: hit or just inserted"))
    }

    /// The cached marginal for `attrs`, if it has already been counted — a
    /// pure read: no hit/miss accounting, no eviction, `&self` only. This
    /// is what lets the synthesizers' parallel scoring closures read a
    /// shared engine after a sequential warm-up pass has counted (or
    /// prefetched) every candidate.
    pub fn peek(&self, attrs: &[usize]) -> Option<&Marginal> {
        self.cache.map.get(attrs)
    }

    /// Warm the cache for a whole batch of attribute sets with fused sweeps:
    /// the not-yet-cached sets are grouped and counted together, so the data
    /// is streamed through cache once per chunk for the entire group rather
    /// than once per set.
    ///
    /// # Errors
    /// Fails on the first invalid or oversized set (in batch order), leaving
    /// previously cached sets intact and counting nothing.
    pub fn prefetch(&mut self, sets: &[Vec<usize>]) -> Result<()> {
        // Plan every uncached set up front so validation errors surface in
        // batch order before any counting work happens.
        let mut pending: Vec<CountPlan<'d>> = Vec::new();
        for attrs in sets {
            if self.cache.map.contains_key(attrs.as_slice())
                || pending.iter().any(|p| &p.attrs == attrs)
            {
                continue;
            }
            pending.push(CountPlan::build(self.data, attrs, self.cell_limit)?);
        }
        if pending.is_empty() {
            return Ok(());
        }
        let rows = self.data.n_rows();
        let parallel = should_parallelize(rows);
        // Bound a group's scratch: every set fits `cell_limit` individually,
        // so cap the fused batch at the same total.
        let mut group: Vec<CountPlan<'d>> = Vec::new();
        let mut group_cells = 0usize;
        let flush = |group: &mut Vec<CountPlan<'d>>, cache: &mut MarginalCache| -> Result<()> {
            if group.is_empty() {
                return Ok(());
            }
            let hists = sweep_plans(group, rows, production_chunk_rows(rows), parallel);
            for (plan, hist) in group.drain(..).zip(hists) {
                let key = plan.attrs.clone();
                let marginal = plan.into_marginal(hist)?;
                cache.insert(key, marginal);
            }
            cache.enforce_budget(&[]);
            Ok(())
        };
        for plan in pending {
            if !group.is_empty() && group_cells + plan.cells > self.cell_limit {
                flush(&mut group, &mut self.cache)?;
                group_cells = 0;
            }
            group_cells += plan.cells;
            group.push(plan);
        }
        flush(&mut group, &mut self.cache)?;
        Ok(())
    }

    /// Count a whole batch of attribute sets in fused sweeps, returning the
    /// marginals in request order (cloned out of the cache, which keeps
    /// serving later [`count`](MarginalEngine::count) calls).
    ///
    /// # Errors
    /// Same contract as [`prefetch`](MarginalEngine::prefetch).
    pub fn count_many(&mut self, sets: &[Vec<usize>]) -> Result<Vec<Marginal>> {
        self.prefetch(sets)?;
        sets.iter()
            .map(|attrs| Ok(self.count(attrs)?.clone()))
            .collect()
    }

    /// Empirical mutual information between attributes `a` and `b`, with the
    /// joint served from the cache (bit-identical to
    /// [`crate::mutual_information`]).
    pub fn mutual_information(&mut self, a: usize, b: usize) -> Result<f64> {
        let joint = self.count(&[a, b])?;
        mi_from_joint(joint)
    }
}

impl std::fmt::Debug for MarginalEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MarginalEngine")
            .field("rows", &self.data.n_rows())
            .field("cell_limit", &self.cell_limit)
            .field("cached", &self.cache.len())
            .field("hits", &self.cache.hits)
            .field("misses", &self.cache.misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;
    use crate::domain::Domain;

    fn toy(rows: usize) -> Dataset {
        let domain = Domain::new(vec![
            Attribute::binary("x"),
            Attribute::ordinal("y", 3),
            Attribute::ordinal("z", 4),
        ]);
        let mut ds = Dataset::with_capacity(domain, rows);
        for r in 0..rows {
            ds.push_row(&[(r % 2) as u32, (r % 3) as u32, ((r * 7) % 4) as u32])
                .unwrap();
        }
        ds
    }

    #[test]
    fn engine_matches_naive_count() {
        let ds = toy(257);
        let mut engine = MarginalEngine::new(&ds);
        for attrs in [vec![0], vec![1], vec![0, 1], vec![2, 0], vec![0, 1, 2]] {
            let fast = engine.count(&attrs).unwrap().clone();
            let naive = Marginal::count_naive(&ds, &attrs).unwrap();
            assert_eq!(fast, naive, "attrs {attrs:?}");
        }
    }

    #[test]
    fn engine_matches_unpacked_kernel() {
        let ds = toy(4099); // crosses a decode-block boundary
        let columns = ds.to_columns();
        let sets = vec![vec![0], vec![1], vec![0, 1], vec![2, 0], vec![0, 1, 2]];
        let mut engine = MarginalEngine::new(&ds);
        let packed = engine.count_many(&sets).unwrap();
        let reference =
            unpacked::count_many_unpacked(ds.domain(), &columns, &sets, DEFAULT_CELL_LIMIT)
                .unwrap();
        assert_eq!(packed, reference);
    }

    #[test]
    fn cache_serves_repeats_without_recounting() {
        let ds = toy(64);
        let mut engine = MarginalEngine::new(&ds);
        engine.count(&[0, 1]).unwrap();
        engine.count(&[0, 1]).unwrap();
        engine.count(&[0, 1]).unwrap();
        // Per-engine stats (race-free under the parallel test harness,
        // unlike the process-wide counter): one counting pass, two hits.
        assert_eq!(engine.cache().hits(), 2);
        assert_eq!(engine.cache().misses(), 1);
    }

    #[test]
    fn count_many_matches_individual_counts() {
        let ds = toy(123);
        let sets = vec![vec![0], vec![1], vec![2], vec![0, 2], vec![1, 2]];
        let mut engine = MarginalEngine::new(&ds);
        let batch = engine.count_many(&sets).unwrap();
        for (attrs, m) in sets.iter().zip(&batch) {
            assert_eq!(m, &Marginal::count_naive(&ds, attrs).unwrap());
        }
        // The batch itself cost one pass per set; re-requesting costs none.
        assert_eq!(engine.cache().misses(), sets.len() as u64);
        engine.count_many(&sets).unwrap();
        assert_eq!(engine.cache().misses(), sets.len() as u64);
    }

    #[test]
    fn prefetch_errors_leave_cache_usable() {
        let ds = toy(32);
        let mut engine = MarginalEngine::with_cell_limit(&ds, 4);
        // [1, 2] has 12 cells > 4: the whole batch fails before counting.
        let err = engine.prefetch(&[vec![0], vec![1, 2]]).unwrap_err();
        assert!(matches!(err, DataError::MarginalTooLarge { .. }));
        assert!(engine.cache().is_empty());
        // The engine still counts what fits.
        assert_eq!(engine.count(&[0]).unwrap().total(), 32.0);
    }

    #[test]
    fn engine_mi_matches_free_function() {
        let ds = toy(300);
        let mut engine = MarginalEngine::new(&ds);
        let via_engine = engine.mutual_information(1, 2).unwrap();
        let direct = crate::mutual_information(&ds, 1, 2).unwrap();
        assert_eq!(via_engine.to_bits(), direct.to_bits());
    }

    #[test]
    fn cache_budget_evicts_fifo_but_answers_stay_correct() {
        let ds = toy(90);
        // Budget of 8 cells: the 2-way tables (6, 8, 12 cells) cannot all
        // stay resident; the newest entry always survives.
        let mut engine = MarginalEngine::new(&ds).with_cache_budget(8);
        let sets = [vec![0, 1], vec![0, 2], vec![1, 2]];
        for _ in 0..3 {
            for attrs in &sets {
                let fast = engine.count(attrs).unwrap().clone();
                assert_eq!(fast, Marginal::count_naive(&ds, attrs).unwrap());
            }
        }
        assert!(engine.cache().evictions() > 0);
        // Retained cells never exceed budget + the most recent entry.
        assert!(engine.cache().len() <= 2);
        // Unbudgeted engine on the same loop makes exactly 3 passes.
        let mut roomy = MarginalEngine::new(&ds);
        for _ in 0..3 {
            for attrs in &sets {
                roomy.count(attrs).unwrap();
            }
        }
        assert_eq!(roomy.cache().misses(), 3);
        assert_eq!(roomy.cache().hits(), 6);
    }

    #[test]
    fn empty_dataset_counts_to_zero() {
        let ds = toy(0);
        let mut engine = MarginalEngine::new(&ds);
        let m = engine.count(&[0, 1]).unwrap();
        assert_eq!(m.total(), 0.0);
        assert_eq!(m.n_cells(), 6);
    }

    #[test]
    fn constant_attribute_counts_by_range_addition() {
        // A cardinality-1 attribute stores no words; the one-way kernel
        // counts it with a single range-length addition and the wider
        // kernels decode it to zeros.
        let domain = Domain::new(vec![
            Attribute::categorical_from("const", &["only"]),
            Attribute::ordinal("y", 3),
        ]);
        let cols = vec![vec![0u32; 100], (0..100u32).map(|i| i % 3).collect()];
        let ds = Dataset::new(domain, cols).unwrap();
        let mut engine = MarginalEngine::new(&ds);
        assert_eq!(engine.count(&[0]).unwrap().counts(), &[100.0]);
        let joint = engine.count(&[0, 1]).unwrap();
        assert_eq!(joint.counts(), &[34.0, 33.0, 33.0]);
    }
}
