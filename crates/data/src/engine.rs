//! Batched, cached, parallel marginal counting — the data-side hot path of
//! every synthesizer selection loop.
//!
//! The naive counter ([`Marginal::count_naive`]) walks the rows once *per
//! marginal*, recomputing a mixed-radix index from scratch for each row with
//! an inner loop over the attribute set. The selection loops of the
//! synthesizers make that quadratic-to-cubic in practice: AIM re-scores the
//! whole workload every round, MST counts all O(d²) pairwise joints, and
//! PrivMRF/PrivBayes score mutual information over the same pairs again.
//! True marginals of the input data never change during a fit, so all of
//! that work is redundant across rounds and embarrassingly parallel within
//! a pass. This module removes it in three layers:
//!
//! 1. **Kernel** — single-pass counting into `u64` integer accumulators
//!    with precomputed per-attribute stride tables. One- and two-way sets
//!    (the overwhelming majority) get specialized zipped-column loops; wider
//!    sets accumulate mixed-radix indices column-by-column into a reusable
//!    index scratch, so there is no per-row inner loop and no per-cell heap
//!    allocation anywhere. [`MarginalEngine::count_many`] fuses a whole
//!    batch of attribute sets into one chunked sweep over the columns, so a
//!    selection loop's entire candidate pool is answered with the data
//!    streamed through cache once per chunk.
//! 2. **Parallelism** — row-chunked counting with per-thread scratch
//!    histograms merged by integer addition. `u64` addition is associative
//!    and commutative, so the merged counts are *bit-identical* to the
//!    sequential pass (pinned by the differential proptests in
//!    `tests/engine_equivalence.rs`), and converting an exact integer count
//!    to `f64` equals the naive kernel's repeated `+= 1.0` exactly for any
//!    dataset below 2^53 rows.
//! 3. **Memoization** — a per-fit [`MarginalCache`] keyed by attribute set,
//!    so a round loop counts each candidate at most once per fit, bounded
//!    by a total-cell budget (FIFO eviction) so wide-domain workloads trade
//!    hits for recounts instead of memory. The process-wide
//!    [`marginal_counts_performed`] counter (mirroring the grid driver's
//!    fit counter) makes the at-most-once property provable in tests.

use crate::dataset::Dataset;
use crate::domain::validate_attr_set;
use crate::error::{DataError, Result};
use crate::marginal::{mi_from_joint, strides_of, Marginal, DEFAULT_CELL_LIMIT};
use rayon::prelude::*;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of marginal counting passes (one per attribute set
/// actually counted from data; cache hits do not count).
///
/// Purely observational, like [`synrd::benchmark::fits_performed`]: the
/// engine-cache tests assert that a synthesizer's round loop counts each
/// candidate attribute set at most once per fit by reading this counter
/// before and after a fit.
static MARGINAL_COUNTS: AtomicU64 = AtomicU64::new(0);

/// Total marginal counting passes performed by this process.
pub fn marginal_counts_performed() -> u64 {
    MARGINAL_COUNTS.load(Ordering::Relaxed)
}

/// Rows per chunk of a counting sweep. Chunks bound the per-thread scratch
/// and keep a fused batch's working set (chunk of every column + all batch
/// histograms) inside the cache hierarchy.
const CHUNK_ROWS: usize = 1 << 16;

/// Minimum rows before a sweep fans out across threads; below this the
/// per-chunk scratch allocation outweighs the win.
const PAR_ROW_THRESHOLD: usize = 1 << 15;

/// Precomputed counting plan for one attribute set: resolved column slices,
/// the per-attribute stride table, and the table geometry.
struct CountPlan<'d> {
    attrs: Vec<usize>,
    shape: Vec<usize>,
    strides: Vec<usize>,
    cols: Vec<&'d [u32]>,
    cells: usize,
}

impl<'d> CountPlan<'d> {
    /// Validate `attrs` against `dataset` and resolve everything the kernel
    /// needs, enforcing `cell_limit` exactly like the naive counter.
    fn build(dataset: &'d Dataset, attrs: &[usize], cell_limit: usize) -> Result<CountPlan<'d>> {
        validate_attr_set(dataset.domain().len(), attrs)?;
        let cells = dataset.domain().cells(attrs)?;
        if cells > cell_limit as u128 {
            return Err(DataError::MarginalTooLarge {
                cells,
                limit: cell_limit,
            });
        }
        let shape: Vec<usize> = attrs
            .iter()
            .map(|&a| dataset.domain().cardinality(a))
            .collect::<Result<_>>()?;
        let cols: Vec<&[u32]> = attrs
            .iter()
            .map(|&a| dataset.column(a))
            .collect::<Result<_>>()?;
        Ok(CountPlan {
            attrs: attrs.to_vec(),
            strides: strides_of(&shape),
            shape,
            cols,
            cells: cells as usize,
        })
    }

    /// Materialize a [`Marginal`] from the finished `u64` accumulator.
    fn into_marginal(self, hist: Vec<u64>) -> Result<Marginal> {
        Marginal::from_counts(
            self.attrs,
            self.shape,
            hist.into_iter().map(|c| c as f64).collect(),
        )
    }
}

/// Table size up to which the bump pass spreads increments over four
/// interleaved histogram lanes. Real data has hot cells (and correlated
/// columns make consecutive rows hit the same cell), which serializes the
/// read-modify-write chain on a single accumulator; four lanes break that
/// dependency at the cost of 3 extra tables, merged by integer addition
/// afterwards — so the result is still bit-identical. Above this limit the
/// extra tables would pollute the cache more than the chain costs.
const LANE_CELL_LIMIT: usize = 1 << 12;

/// Reusable scratch for one counting thread: the mixed-radix index buffer
/// (sets wider than two attributes) and the extra histogram lanes.
#[derive(Default)]
struct CountScratch {
    idx: Vec<usize>,
    lanes: Vec<u64>,
}

/// Borrow three extra lanes the same size as `hist` from `lanes`, run the
/// counting body over `(hist, l1, l2, l3)`, then fold the lanes back into
/// `hist` by integer addition (order-free, so still bit-identical).
fn with_lanes(
    hist: &mut [u64],
    lanes: &mut Vec<u64>,
    body: impl FnOnce(&mut [u64], &mut [u64], &mut [u64], &mut [u64]),
) {
    let cells = hist.len();
    lanes.clear();
    lanes.resize(3 * cells, 0);
    let (l1, rest) = lanes.split_at_mut(cells);
    let (l2, l3) = rest.split_at_mut(cells);
    body(hist, l1, l2, l3);
    for ((h, &a), (&b, &c)) in hist.iter_mut().zip(&*l1).zip(l2.iter().zip(&*l3)) {
        *h += a + b + c;
    }
}

/// Count rows `lo..hi` of one plan into `hist`.
fn count_range(
    plan: &CountPlan<'_>,
    lo: usize,
    hi: usize,
    hist: &mut [u64],
    scratch: &mut CountScratch,
) {
    let lanes = hist.len() <= LANE_CELL_LIMIT;
    match plan.cols.as_slice() {
        [col] => {
            let col = &col[lo..hi];
            if lanes {
                with_lanes(hist, &mut scratch.lanes, |h0, l1, l2, l3| {
                    let mut quads = col.chunks_exact(4);
                    for q in quads.by_ref() {
                        h0[q[0] as usize] += 1;
                        l1[q[1] as usize] += 1;
                        l2[q[2] as usize] += 1;
                        l3[q[3] as usize] += 1;
                    }
                    for &c in quads.remainder() {
                        h0[c as usize] += 1;
                    }
                });
            } else {
                for &c in col {
                    hist[c as usize] += 1;
                }
            }
        }
        [ca, cb] => {
            let stride = plan.strides[0];
            let (ca, cb) = (&ca[lo..hi], &cb[lo..hi]);
            if lanes {
                with_lanes(hist, &mut scratch.lanes, |h0, l1, l2, l3| {
                    let mut qa = ca.chunks_exact(4);
                    let mut qb = cb.chunks_exact(4);
                    for (a, b) in qa.by_ref().zip(qb.by_ref()) {
                        h0[a[0] as usize * stride + b[0] as usize] += 1;
                        l1[a[1] as usize * stride + b[1] as usize] += 1;
                        l2[a[2] as usize * stride + b[2] as usize] += 1;
                        l3[a[3] as usize * stride + b[3] as usize] += 1;
                    }
                    for (&a, &b) in qa.remainder().iter().zip(qb.remainder()) {
                        h0[a as usize * stride + b as usize] += 1;
                    }
                });
            } else {
                for (&a, &b) in ca.iter().zip(cb) {
                    hist[a as usize * stride + b as usize] += 1;
                }
            }
        }
        cols => {
            // Column-major mixed-radix accumulation: one vectorizable pass
            // per attribute into the index scratch, then one bump pass.
            let n = hi - lo;
            let idx = &mut scratch.idx;
            idx.clear();
            idx.resize(n, 0);
            for (col, &stride) in cols.iter().zip(&plan.strides) {
                for (i, &c) in idx.iter_mut().zip(&col[lo..hi]) {
                    *i += c as usize * stride;
                }
            }
            let idx = &scratch.idx;
            if lanes {
                with_lanes(hist, &mut scratch.lanes, |h0, l1, l2, l3| {
                    let mut quads = idx.chunks_exact(4);
                    for q in quads.by_ref() {
                        h0[q[0]] += 1;
                        l1[q[1]] += 1;
                        l2[q[2]] += 1;
                        l3[q[3]] += 1;
                    }
                    for &i in quads.remainder() {
                        h0[i] += 1;
                    }
                });
            } else {
                for &i in idx {
                    hist[i] += 1;
                }
            }
        }
    }
}

/// Run one fused sweep over `rows` rows for a batch of plans, returning one
/// `u64` histogram per plan. Chunked for locality; parallel across chunks
/// when `parallel` is set. Per-thread partial histograms are merged by
/// integer addition (associative), so the result is bit-identical to the
/// sequential sweep regardless of chunking or thread count.
fn sweep_plans(
    plans: &[CountPlan<'_>],
    rows: usize,
    chunk_rows: usize,
    parallel: bool,
) -> Vec<Vec<u64>> {
    for _ in plans {
        MARGINAL_COUNTS.fetch_add(1, Ordering::Relaxed);
    }
    let chunk_rows = chunk_rows.max(1);
    let n_chunks = rows.div_ceil(chunk_rows).max(1);
    if !parallel || n_chunks <= 1 {
        let mut hists: Vec<Vec<u64>> = plans.iter().map(|p| vec![0u64; p.cells]).collect();
        let mut scratch = CountScratch::default();
        for c in 0..n_chunks {
            let lo = c * chunk_rows;
            let hi = ((c + 1) * chunk_rows).min(rows);
            for (plan, hist) in plans.iter().zip(&mut hists) {
                count_range(plan, lo, hi, hist, &mut scratch);
            }
        }
        return hists;
    }
    let locals: Vec<Vec<Vec<u64>>> = (0..n_chunks)
        .into_par_iter()
        .map(|c| {
            let lo = c * chunk_rows;
            let hi = ((c + 1) * chunk_rows).min(rows);
            let mut scratch = CountScratch::default();
            plans
                .iter()
                .map(|plan| {
                    let mut hist = vec![0u64; plan.cells];
                    count_range(plan, lo, hi, &mut hist, &mut scratch);
                    hist
                })
                .collect()
        })
        .collect();
    // Merge partials in chunk order (order is irrelevant for u64 addition,
    // but determinism costs nothing).
    let mut hists: Vec<Vec<u64>> = plans.iter().map(|p| vec![0u64; p.cells]).collect();
    for local in locals {
        for (hist, part) in hists.iter_mut().zip(local) {
            for (h, p) in hist.iter_mut().zip(part) {
                *h += p;
            }
        }
    }
    hists
}

/// Whether a sweep over `rows` rows should fan out across threads.
fn should_parallelize(rows: usize) -> bool {
    rows >= PAR_ROW_THRESHOLD && rayon::current_num_threads() > 1
}

/// Chunk size for a production sweep: [`CHUNK_ROWS`], grown as needed so a
/// parallel sweep never materializes more than ~4 partial histogram sets
/// per worker at the merge barrier (the transient memory is
/// `n_chunks × Σ cells` until merged; chunk *size* has no effect on the
/// counts, only on locality and that bound).
fn production_chunk_rows(rows: usize) -> usize {
    let max_chunks = rayon::current_num_threads().saturating_mul(4).max(1);
    CHUNK_ROWS.max(rows.div_ceil(max_chunks))
}

/// One-shot engine-kernel count (the implementation behind
/// [`Marginal::from_dataset`]).
pub(crate) fn count_marginal(
    dataset: &Dataset,
    attrs: &[usize],
    cell_limit: usize,
) -> Result<Marginal> {
    let plan = CountPlan::build(dataset, attrs, cell_limit)?;
    let rows = dataset.n_rows();
    let parallel = should_parallelize(rows);
    let hist = sweep_plans(
        std::slice::from_ref(&plan),
        rows,
        production_chunk_rows(rows),
        parallel,
    )
    .pop()
    .expect("one histogram per plan");
    plan.into_marginal(hist)
}

/// Test/bench hook: count with an explicit chunk size, always taking the
/// chunk-merge code path when more than one chunk results. Used by the
/// differential proptests to pin parallel-vs-sequential bit-identity.
#[doc(hidden)]
pub fn count_marginal_chunked(
    dataset: &Dataset,
    attrs: &[usize],
    cell_limit: usize,
    chunk_rows: usize,
) -> Result<Marginal> {
    let plan = CountPlan::build(dataset, attrs, cell_limit)?;
    let rows = dataset.n_rows();
    let hist = sweep_plans(std::slice::from_ref(&plan), rows, chunk_rows, true)
        .pop()
        .expect("one histogram per plan");
    plan.into_marginal(hist)
}

/// Default soft bound on the total cells a [`MarginalCache`] retains
/// (16M `f64` cells = 128 MB). Benchmark-scale tables never come close; the
/// bound exists so a wide-domain fit that prefetches hundreds of large pair
/// joints degrades to recounting instead of exhausting memory.
pub const DEFAULT_CACHE_CELL_BUDGET: usize = 1 << 24;

/// Per-fit memo of counted marginals, keyed by attribute set (in the order
/// requested — `[a, b]` and `[b, a]` are distinct tables). Bounded by a
/// total-cell budget with FIFO eviction: hot small tables stay, and an
/// over-budget workload trades cache hits for recounts rather than memory.
#[derive(Debug)]
pub struct MarginalCache {
    map: HashMap<Vec<usize>, Marginal>,
    /// Insertion order, for FIFO eviction (keys are unique: entries are
    /// inserted only when absent).
    order: VecDeque<Vec<usize>>,
    total_cells: usize,
    cell_budget: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Default for MarginalCache {
    fn default() -> Self {
        MarginalCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            total_cells: 0,
            cell_budget: DEFAULT_CACHE_CELL_BUDGET,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }
}

impl MarginalCache {
    /// Record a freshly counted marginal (the key must be absent).
    fn insert(&mut self, key: Vec<usize>, marginal: Marginal) {
        debug_assert!(!self.map.contains_key(&key));
        self.total_cells += marginal.n_cells();
        self.order.push_back(key.clone());
        self.map.insert(key, marginal);
        self.misses += 1;
    }

    /// Evict oldest entries until the budget holds, sparing `keep` (the
    /// entry a caller is about to borrow).
    fn enforce_budget(&mut self, keep: &[usize]) {
        while self.total_cells > self.cell_budget && self.order.len() > 1 {
            let victim = self.order.pop_front().expect("len checked above");
            if victim == keep {
                self.order.push_back(victim);
                continue;
            }
            if let Some(evicted) = self.map.remove(&victim) {
                self.total_cells -= evicted.n_cells();
                self.evictions += 1;
            }
        }
    }

    /// Cache lookups that were served without touching the data.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache lookups that required a counting pass.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries dropped to stay under the cell budget.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of distinct attribute sets cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing has been counted yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Batched, cached, parallel marginal counter over one dataset.
///
/// Synthesizers hold one engine per fit: every true-data marginal a
/// selection loop needs goes through [`count`](MarginalEngine::count) (or is
/// warmed in bulk by [`prefetch`](MarginalEngine::prefetch) /
/// [`count_many`](MarginalEngine::count_many)), so repeated rounds hit the
/// [`MarginalCache`] instead of rescanning the data.
pub struct MarginalEngine<'d> {
    data: &'d Dataset,
    cell_limit: usize,
    cache: MarginalCache,
}

impl<'d> MarginalEngine<'d> {
    /// Engine over `data` with [`DEFAULT_CELL_LIMIT`].
    pub fn new(data: &'d Dataset) -> MarginalEngine<'d> {
        MarginalEngine::with_cell_limit(data, DEFAULT_CELL_LIMIT)
    }

    /// Engine over `data` refusing tables larger than `cell_limit` cells.
    pub fn with_cell_limit(data: &'d Dataset, cell_limit: usize) -> MarginalEngine<'d> {
        MarginalEngine {
            data,
            cell_limit,
            cache: MarginalCache::default(),
        }
    }

    /// Override the cache's total-cell budget (see
    /// [`DEFAULT_CACHE_CELL_BUDGET`]); mainly for tests and memory-tight
    /// callers.
    pub fn with_cache_budget(mut self, cells: usize) -> MarginalEngine<'d> {
        self.cache.cell_budget = cells;
        self
    }

    /// The dataset this engine counts over.
    pub fn dataset(&self) -> &'d Dataset {
        self.data
    }

    /// Cache statistics for this fit.
    pub fn cache(&self) -> &MarginalCache {
        &self.cache
    }

    /// The true marginal of `attrs`, counted at most once per engine.
    ///
    /// # Errors
    /// Same contract as [`Marginal::from_dataset`].
    pub fn count(&mut self, attrs: &[usize]) -> Result<&Marginal> {
        if self.cache.map.contains_key(attrs) {
            self.cache.hits += 1;
        } else {
            let marginal = count_marginal(self.data, attrs, self.cell_limit)?;
            self.cache.insert(attrs.to_vec(), marginal);
            self.cache.enforce_budget(attrs);
        }
        Ok(self
            .cache
            .map
            .get(attrs)
            .expect("present: hit or just inserted"))
    }

    /// The cached marginal for `attrs`, if it has already been counted — a
    /// pure read: no hit/miss accounting, no eviction, `&self` only. This
    /// is what lets the synthesizers' parallel scoring closures read a
    /// shared engine after a sequential warm-up pass has counted (or
    /// prefetched) every candidate.
    pub fn peek(&self, attrs: &[usize]) -> Option<&Marginal> {
        self.cache.map.get(attrs)
    }

    /// Warm the cache for a whole batch of attribute sets with fused sweeps:
    /// the not-yet-cached sets are grouped and counted together, so the data
    /// is streamed through cache once per chunk for the entire group rather
    /// than once per set.
    ///
    /// # Errors
    /// Fails on the first invalid or oversized set (in batch order), leaving
    /// previously cached sets intact and counting nothing.
    pub fn prefetch(&mut self, sets: &[Vec<usize>]) -> Result<()> {
        // Plan every uncached set up front so validation errors surface in
        // batch order before any counting work happens.
        let mut pending: Vec<CountPlan<'d>> = Vec::new();
        for attrs in sets {
            if self.cache.map.contains_key(attrs.as_slice())
                || pending.iter().any(|p| &p.attrs == attrs)
            {
                continue;
            }
            pending.push(CountPlan::build(self.data, attrs, self.cell_limit)?);
        }
        if pending.is_empty() {
            return Ok(());
        }
        let rows = self.data.n_rows();
        let parallel = should_parallelize(rows);
        // Bound a group's scratch: every set fits `cell_limit` individually,
        // so cap the fused batch at the same total.
        let mut group: Vec<CountPlan<'d>> = Vec::new();
        let mut group_cells = 0usize;
        let flush = |group: &mut Vec<CountPlan<'d>>, cache: &mut MarginalCache| -> Result<()> {
            if group.is_empty() {
                return Ok(());
            }
            let hists = sweep_plans(group, rows, production_chunk_rows(rows), parallel);
            for (plan, hist) in group.drain(..).zip(hists) {
                let key = plan.attrs.clone();
                let marginal = plan.into_marginal(hist)?;
                cache.insert(key, marginal);
            }
            cache.enforce_budget(&[]);
            Ok(())
        };
        for plan in pending {
            if !group.is_empty() && group_cells + plan.cells > self.cell_limit {
                flush(&mut group, &mut self.cache)?;
                group_cells = 0;
            }
            group_cells += plan.cells;
            group.push(plan);
        }
        flush(&mut group, &mut self.cache)?;
        Ok(())
    }

    /// Count a whole batch of attribute sets in fused sweeps, returning the
    /// marginals in request order (cloned out of the cache, which keeps
    /// serving later [`count`](MarginalEngine::count) calls).
    ///
    /// # Errors
    /// Same contract as [`prefetch`](MarginalEngine::prefetch).
    pub fn count_many(&mut self, sets: &[Vec<usize>]) -> Result<Vec<Marginal>> {
        self.prefetch(sets)?;
        sets.iter()
            .map(|attrs| Ok(self.count(attrs)?.clone()))
            .collect()
    }

    /// Empirical mutual information between attributes `a` and `b`, with the
    /// joint served from the cache (bit-identical to
    /// [`crate::mutual_information`]).
    pub fn mutual_information(&mut self, a: usize, b: usize) -> Result<f64> {
        let joint = self.count(&[a, b])?;
        mi_from_joint(joint)
    }
}

impl std::fmt::Debug for MarginalEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MarginalEngine")
            .field("rows", &self.data.n_rows())
            .field("cell_limit", &self.cell_limit)
            .field("cached", &self.cache.len())
            .field("hits", &self.cache.hits)
            .field("misses", &self.cache.misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;
    use crate::domain::Domain;

    fn toy(rows: usize) -> Dataset {
        let domain = Domain::new(vec![
            Attribute::binary("x"),
            Attribute::ordinal("y", 3),
            Attribute::ordinal("z", 4),
        ]);
        let mut ds = Dataset::with_capacity(domain, rows);
        for r in 0..rows {
            ds.push_row(&[(r % 2) as u32, (r % 3) as u32, ((r * 7) % 4) as u32])
                .unwrap();
        }
        ds
    }

    #[test]
    fn engine_matches_naive_count() {
        let ds = toy(257);
        let mut engine = MarginalEngine::new(&ds);
        for attrs in [vec![0], vec![1], vec![0, 1], vec![2, 0], vec![0, 1, 2]] {
            let fast = engine.count(&attrs).unwrap().clone();
            let naive = Marginal::count_naive(&ds, &attrs).unwrap();
            assert_eq!(fast, naive, "attrs {attrs:?}");
        }
    }

    #[test]
    fn cache_serves_repeats_without_recounting() {
        let ds = toy(64);
        let mut engine = MarginalEngine::new(&ds);
        engine.count(&[0, 1]).unwrap();
        engine.count(&[0, 1]).unwrap();
        engine.count(&[0, 1]).unwrap();
        // Per-engine stats (race-free under the parallel test harness,
        // unlike the process-wide counter): one counting pass, two hits.
        assert_eq!(engine.cache().hits(), 2);
        assert_eq!(engine.cache().misses(), 1);
    }

    #[test]
    fn count_many_matches_individual_counts() {
        let ds = toy(123);
        let sets = vec![vec![0], vec![1], vec![2], vec![0, 2], vec![1, 2]];
        let mut engine = MarginalEngine::new(&ds);
        let batch = engine.count_many(&sets).unwrap();
        for (attrs, m) in sets.iter().zip(&batch) {
            assert_eq!(m, &Marginal::count_naive(&ds, attrs).unwrap());
        }
        // The batch itself cost one pass per set; re-requesting costs none.
        assert_eq!(engine.cache().misses(), sets.len() as u64);
        engine.count_many(&sets).unwrap();
        assert_eq!(engine.cache().misses(), sets.len() as u64);
    }

    #[test]
    fn prefetch_errors_leave_cache_usable() {
        let ds = toy(32);
        let mut engine = MarginalEngine::with_cell_limit(&ds, 4);
        // [1, 2] has 12 cells > 4: the whole batch fails before counting.
        let err = engine.prefetch(&[vec![0], vec![1, 2]]).unwrap_err();
        assert!(matches!(err, DataError::MarginalTooLarge { .. }));
        assert!(engine.cache().is_empty());
        // The engine still counts what fits.
        assert_eq!(engine.count(&[0]).unwrap().total(), 32.0);
    }

    #[test]
    fn engine_mi_matches_free_function() {
        let ds = toy(300);
        let mut engine = MarginalEngine::new(&ds);
        let via_engine = engine.mutual_information(1, 2).unwrap();
        let direct = crate::mutual_information(&ds, 1, 2).unwrap();
        assert_eq!(via_engine.to_bits(), direct.to_bits());
    }

    #[test]
    fn cache_budget_evicts_fifo_but_answers_stay_correct() {
        let ds = toy(90);
        // Budget of 8 cells: the 2-way tables (6, 8, 12 cells) cannot all
        // stay resident; the newest entry always survives.
        let mut engine = MarginalEngine::new(&ds).with_cache_budget(8);
        let sets = [vec![0, 1], vec![0, 2], vec![1, 2]];
        for _ in 0..3 {
            for attrs in &sets {
                let fast = engine.count(attrs).unwrap().clone();
                assert_eq!(fast, Marginal::count_naive(&ds, attrs).unwrap());
            }
        }
        assert!(engine.cache().evictions() > 0);
        // Retained cells never exceed budget + the most recent entry.
        assert!(engine.cache().len() <= 2);
        // Unbudgeted engine on the same loop makes exactly 3 passes.
        let mut roomy = MarginalEngine::new(&ds);
        for _ in 0..3 {
            for attrs in &sets {
                roomy.count(attrs).unwrap();
            }
        }
        assert_eq!(roomy.cache().misses(), 3);
        assert_eq!(roomy.cache().hits(), 6);
    }

    #[test]
    fn empty_dataset_counts_to_zero() {
        let ds = toy(0);
        let mut engine = MarginalEngine::new(&ds);
        let m = engine.count(&[0, 1]).unwrap();
        assert_eq!(m.total(), 0.0);
        assert_eq!(m.n_cells(), 6);
    }
}
