//! Dataset meta-features from Table 1 of the paper.
//!
//! The paper characterizes each benchmark dataset with four meta-features
//! relevant to DP synthesis, computed with the conventions below:
//!
//! * **Outliers** — for each numeric attribute, the number of *distinct
//!   observed levels* outside `[x̄ − 1.5·IQR, x̄ + 1.5·IQR]`, summed across
//!   attributes. (Counting distinct levels rather than raw cells reproduces
//!   the magnitudes of Table 1, e.g. 96 for Adult and 0 for Fairman.)
//! * **Mutual information** — mean ± std of the empirical pairwise MI (nats)
//!   over all unordered attribute pairs.
//! * **Skewness** — mean ± std of the adjusted Fisher–Pearson standardized
//!   moment coefficient (G1) over *ordinal* attributes. `NaN` when the
//!   dataset has no ordinal attribute with positive variance (Iverson &
//!   Terry's all-binary/categorical subset).
//! * **Sparsity** — mean ± std over all attributes of
//!   `(n/φ_v − 1)/(n − 1)`, where `φ_v` is the number of distinct observed
//!   values (1 when every row shares one value, 0 when all rows differ).

use crate::attribute::AttrKind;
use crate::dataset::Dataset;
use crate::engine::MarginalEngine;
use crate::error::Result;

/// Mean/standard-deviation pair used by several meta-features.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanStd {
    pub mean: f64,
    pub std: f64,
}

impl MeanStd {
    fn of(values: &[f64]) -> MeanStd {
        if values.is_empty() {
            return MeanStd {
                mean: f64::NAN,
                std: f64::NAN,
            };
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        MeanStd {
            mean,
            std: var.sqrt(),
        }
    }
}

/// The Table 1 row for one dataset.
#[derive(Debug, Clone)]
pub struct MetaFeatures {
    pub sample_size: usize,
    pub n_variables: usize,
    pub domain_size: f64,
    pub outliers: usize,
    pub mutual_information: MeanStd,
    pub skewness: MeanStd,
    pub sparsity: MeanStd,
}

/// Compute all Table 1 meta-features of a dataset.
///
/// # Errors
/// Propagates marginal-counting failures (e.g. an oversized pair table).
pub fn meta_features(dataset: &Dataset) -> Result<MetaFeatures> {
    Ok(MetaFeatures {
        sample_size: dataset.n_rows(),
        n_variables: dataset.n_attrs(),
        domain_size: dataset.domain().size(),
        outliers: outlier_count(dataset)?,
        mutual_information: pairwise_mi(dataset)?,
        skewness: skewness_summary(dataset)?,
        sparsity: sparsity_summary(dataset)?,
    })
}

/// Distinct numeric levels outside `mean ± 1.5·IQR`, summed over numeric
/// attributes.
pub fn outlier_count(dataset: &Dataset) -> Result<usize> {
    let mut total = 0usize;
    for attr in dataset.domain().numeric_attrs() {
        let values = dataset.numeric_column(attr)?;
        if values.is_empty() {
            continue;
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("numeric values are finite"));
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let iqr = quantile_sorted(&sorted, 0.75) - quantile_sorted(&sorted, 0.25);
        let lo = mean - 1.5 * iqr;
        let hi = mean + 1.5 * iqr;
        // Count *levels* of the attribute observed outside the range.
        let attribute = dataset.domain().attribute(attr)?;
        let counts = dataset.value_counts(attr)?;
        for (code, &c) in counts.iter().enumerate() {
            if c > 0.0 {
                let v = attribute.numeric(code as u32)?;
                if v < lo || v > hi {
                    total += 1;
                }
            }
        }
    }
    Ok(total)
}

/// Mean ± std of pairwise mutual information over all unordered pairs.
///
/// All pair joints are counted in one fused engine sweep over the data,
/// then each MI is computed from the cached table.
pub fn pairwise_mi(dataset: &Dataset) -> Result<MeanStd> {
    let k = dataset.n_attrs();
    let mut pairs = Vec::with_capacity(k * (k.saturating_sub(1)) / 2);
    for a in 0..k {
        for b in (a + 1)..k {
            pairs.push(vec![a, b]);
        }
    }
    let mut engine = MarginalEngine::new(dataset);
    engine.prefetch(&pairs)?;
    let mut values = Vec::with_capacity(pairs.len());
    for pair in &pairs {
        values.push(engine.mutual_information(pair[0], pair[1])?);
    }
    Ok(MeanStd::of(&values))
}

/// Adjusted Fisher–Pearson skewness (G1) of a sample; `None` if undefined
/// (fewer than 3 points or zero variance).
pub fn sample_skewness(values: &[f64]) -> Option<f64> {
    let n = values.len();
    if n < 3 {
        return None;
    }
    let nf = n as f64;
    let mean = values.iter().sum::<f64>() / nf;
    let m2 = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / nf;
    let m3 = values.iter().map(|v| (v - mean).powi(3)).sum::<f64>() / nf;
    if m2 <= 1e-300 {
        return None;
    }
    let g1 = m3 / m2.powf(1.5);
    Some(g1 * (nf * (nf - 1.0)).sqrt() / (nf - 2.0))
}

/// Mean ± std skewness over ordinal attributes; NaN/NaN when none qualify.
pub fn skewness_summary(dataset: &Dataset) -> Result<MeanStd> {
    let mut values = Vec::new();
    for (idx, attr) in dataset.domain().attributes().iter().enumerate() {
        if attr.kind() != AttrKind::Ordinal {
            continue;
        }
        let col = dataset.numeric_column(idx)?;
        if let Some(g1) = sample_skewness(&col) {
            values.push(g1);
        }
    }
    Ok(MeanStd::of(&values))
}

/// Mean ± std of the paper's normalized sparsity ratio over all attributes.
pub fn sparsity_summary(dataset: &Dataset) -> Result<MeanStd> {
    let n = dataset.n_rows();
    if n < 2 {
        return Ok(MeanStd {
            mean: f64::NAN,
            std: f64::NAN,
        });
    }
    let mut values = Vec::with_capacity(dataset.n_attrs());
    for attr in 0..dataset.n_attrs() {
        let counts = dataset.value_counts(attr)?;
        let distinct = counts.iter().filter(|&&c| c > 0.0).count().max(1);
        let ratio = (n as f64 / distinct as f64 - 1.0) / (n as f64 - 1.0);
        values.push(ratio);
    }
    Ok(MeanStd::of(&values))
}

/// Interpolated quantile of an already-sorted slice (linear interpolation,
/// the "type 7" convention used by NumPy/R's default).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;
    use crate::domain::Domain;

    fn dataset(cols: Vec<(Attribute, Vec<u32>)>) -> Dataset {
        let (attrs, columns): (Vec<_>, Vec<_>) = cols.into_iter().unzip();
        Dataset::new(Domain::new(attrs), columns).unwrap()
    }

    #[test]
    fn sparsity_bounds() {
        // One constant column (sparsity 1) and one all-distinct column
        // (sparsity 0).
        let ds = dataset(vec![
            (Attribute::ordinal("const", 4), vec![2; 10]),
            (Attribute::ordinal("distinct", 10), (0..10u32).collect()),
        ]);
        let s = sparsity_summary(&ds).unwrap();
        assert!((s.mean - 0.5).abs() < 1e-12);
    }

    #[test]
    fn skewness_nan_without_ordinals() {
        let ds = dataset(vec![(Attribute::binary("b"), vec![0, 1, 0, 1, 1, 0, 1, 0])]);
        let s = skewness_summary(&ds).unwrap();
        assert!(s.mean.is_nan());
    }

    #[test]
    fn skewness_sign_matches_distribution_shape() {
        // Right-skewed: mass at 0 with a long right tail.
        let mut col = vec![0u32; 90];
        col.extend(vec![9u32; 10]);
        let ds = dataset(vec![(Attribute::ordinal("x", 10), col)]);
        let s = skewness_summary(&ds).unwrap();
        assert!(s.mean > 1.0, "skew = {}", s.mean);
    }

    #[test]
    fn outliers_counts_extreme_levels() {
        // 97 zeros and single observations of levels 50 and 99: both extreme
        // levels land outside mean ± 1.5 IQR (IQR = 0 here).
        let mut col = vec![0u32; 97];
        col.push(50);
        col.push(99);
        col.push(0);
        let ds = dataset(vec![(Attribute::ordinal("gain", 100), col)]);
        // IQR is 0, so the acceptance range degenerates to {mean}; all three
        // observed levels (0, 50, 99) fall outside it.
        assert_eq!(outlier_count(&ds).unwrap(), 3);
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile_sorted(&v, 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(quantile_sorted(&v, 0.0), 1.0);
        assert_eq!(quantile_sorted(&v, 1.0), 4.0);
    }

    #[test]
    fn meta_features_end_to_end() {
        let ds = dataset(vec![
            (Attribute::binary("b"), vec![0, 1, 1, 0, 1, 0, 0, 1]),
            (Attribute::ordinal("o", 4), vec![0, 1, 2, 3, 0, 1, 2, 3]),
        ]);
        let mf = meta_features(&ds).unwrap();
        assert_eq!(mf.sample_size, 8);
        assert_eq!(mf.n_variables, 2);
        assert_eq!(mf.domain_size, 8.0);
        assert!(mf.mutual_information.mean >= 0.0);
    }
}
