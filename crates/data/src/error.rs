//! Error taxonomy for the data substrate.

use std::fmt;

/// Errors produced by dataset construction, projection, and marginal counting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// An attribute name was looked up that does not exist in the domain.
    UnknownAttribute(String),
    /// An attribute index was out of bounds for the domain.
    AttributeIndexOutOfBounds { index: usize, len: usize },
    /// A code was out of range for the attribute's cardinality.
    CodeOutOfRange {
        attribute: String,
        code: u32,
        cardinality: usize,
    },
    /// A row had the wrong number of cells for the domain.
    RowArity { expected: usize, got: usize },
    /// Columns of a dataset had inconsistent lengths.
    RaggedColumns,
    /// A marginal over the requested attributes would be too large to materialize.
    MarginalTooLarge { cells: u128, limit: usize },
    /// Two marginals disagreed on shape where a cell-wise comparison was
    /// required (e.g. [`crate::Marginal::l1_distance`]).
    ShapeMismatch { left: Vec<usize>, right: Vec<usize> },
    /// The requested attribute set was empty where at least one attribute is required.
    EmptyAttributeSet,
    /// An attribute was repeated in a set that requires distinct attributes.
    DuplicateAttribute(usize),
    /// Numeric interpretation was requested for an attribute without one.
    NotNumeric(String),
    /// CSV parsing failed.
    Csv { line: usize, message: String },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            DataError::AttributeIndexOutOfBounds { index, len } => {
                write!(
                    f,
                    "attribute index {index} out of bounds for domain of {len}"
                )
            }
            DataError::CodeOutOfRange {
                attribute,
                code,
                cardinality,
            } => write!(
                f,
                "code {code} out of range for attribute `{attribute}` (cardinality {cardinality})"
            ),
            DataError::RowArity { expected, got } => {
                write!(f, "row has {got} cells, domain expects {expected}")
            }
            DataError::RaggedColumns => write!(f, "dataset columns have inconsistent lengths"),
            DataError::MarginalTooLarge { cells, limit } => {
                write!(
                    f,
                    "marginal would have {cells} cells, over the limit of {limit}"
                )
            }
            DataError::ShapeMismatch { left, right } => {
                write!(f, "marginal shapes differ: {left:?} vs {right:?}")
            }
            DataError::EmptyAttributeSet => write!(f, "attribute set must be non-empty"),
            DataError::DuplicateAttribute(idx) => {
                write!(f, "attribute index {idx} repeated in attribute set")
            }
            DataError::NotNumeric(name) => {
                write!(f, "attribute `{name}` has no numeric interpretation")
            }
            DataError::Csv { line, message } => {
                write!(f, "csv parse error on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for DataError {}

/// Convenience alias used throughout the data crate.
pub type Result<T> = std::result::Result<T, DataError>;
