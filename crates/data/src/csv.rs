//! Minimal CSV reading/writing for datasets.
//!
//! Datasets are written with a header of attribute names and one label per
//! cell. This exists so examples and bench binaries can persist artifacts
//! without pulling a serialization dependency; it intentionally supports only
//! the subset of CSV we emit (no quoting — labels must not contain commas or
//! newlines, which the generators guarantee).

use crate::dataset::Dataset;
use crate::domain::Domain;
use crate::error::{DataError, Result};
use std::io::{BufRead, Write};

/// Write `dataset` as CSV with a header row of attribute names.
///
/// # Errors
/// Propagates I/O failures as a [`DataError::Csv`] with line 0.
pub fn write_csv<W: Write>(dataset: &Dataset, out: &mut W) -> Result<()> {
    let io_err = |e: std::io::Error| DataError::Csv {
        line: 0,
        message: e.to_string(),
    };
    let names: Vec<&str> = dataset
        .domain()
        .attributes()
        .iter()
        .map(|a| a.name())
        .collect();
    writeln!(out, "{}", names.join(",")).map_err(io_err)?;
    let mut line = String::new();
    for r in 0..dataset.n_rows() {
        line.clear();
        let row = dataset.row(r);
        for a in 0..dataset.n_attrs() {
            if a > 0 {
                line.push(',');
            }
            let code = row.get(a);
            let label = dataset
                .domain()
                .attribute(a)?
                .label(code)
                .expect("codes validated on construction");
            line.push_str(label);
        }
        writeln!(out, "{line}").map_err(io_err)?;
    }
    Ok(())
}

/// Read a CSV produced by [`write_csv`] back into a dataset over `domain`.
///
/// The header must match the domain's attribute names in order.
///
/// # Errors
/// [`DataError::Csv`] for malformed input; label lookups that fail become
/// per-line errors.
pub fn read_csv<R: BufRead>(domain: &Domain, input: R) -> Result<Dataset> {
    let mut lines = input.lines().enumerate();
    let (_, header) = lines.next().ok_or(DataError::Csv {
        line: 1,
        message: "missing header".to_string(),
    })?;
    let header = header.map_err(|e| DataError::Csv {
        line: 1,
        message: e.to_string(),
    })?;
    let names: Vec<&str> = header.split(',').collect();
    if names.len() != domain.len() {
        return Err(DataError::Csv {
            line: 1,
            message: format!(
                "header has {} columns, domain expects {}",
                names.len(),
                domain.len()
            ),
        });
    }
    for (i, name) in names.iter().enumerate() {
        if domain.attribute(i)?.name() != *name {
            return Err(DataError::Csv {
                line: 1,
                message: format!(
                    "header column {i} is `{name}`, domain expects `{}`",
                    domain.attribute(i)?.name()
                ),
            });
        }
    }

    let mut dataset = Dataset::with_capacity(domain.clone(), 1024);
    let mut row = Vec::with_capacity(domain.len());
    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line.map_err(|e| DataError::Csv {
            line: line_no,
            message: e.to_string(),
        })?;
        if line.is_empty() {
            continue;
        }
        row.clear();
        for (a, cell) in line.split(',').enumerate() {
            let attr = domain.attribute(a).map_err(|_| DataError::Csv {
                line: line_no,
                message: "too many cells".to_string(),
            })?;
            let code = attr.code_of(cell).ok_or_else(|| DataError::Csv {
                line: line_no,
                message: format!("unknown label `{cell}` for attribute `{}`", attr.name()),
            })?;
            row.push(code);
        }
        dataset.push_row(&row).map_err(|e| DataError::Csv {
            line: line_no,
            message: e.to_string(),
        })?;
    }
    Ok(dataset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;

    #[test]
    fn round_trip() {
        let domain = Domain::new(vec![
            Attribute::categorical_from("color", &["red", "green"]),
            Attribute::ordinal("count", 3),
        ]);
        let ds = Dataset::new(domain.clone(), vec![vec![0, 1, 1], vec![2, 0, 1]]).unwrap();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("color,count\n"));
        let back = read_csv(&domain, &buf[..]).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn rejects_header_mismatch() {
        let domain = Domain::new(vec![Attribute::binary("a")]);
        let err = read_csv(&domain, "b\nno\n".as_bytes()).unwrap_err();
        assert!(matches!(err, DataError::Csv { line: 1, .. }));
    }

    #[test]
    fn rejects_unknown_label() {
        let domain = Domain::new(vec![Attribute::binary("a")]);
        let err = read_csv(&domain, "a\nmaybe\n".as_bytes()).unwrap_err();
        assert!(matches!(err, DataError::Csv { line: 2, .. }));
    }
}
