//! Attribute descriptions: every variable in SynRD is discrete.
//!
//! The marginal-based synthesizers in the paper (MST, AIM, PrivMRF, PrivBayes)
//! operate on fully discretized data; continuous variables in the source
//! studies are binned once by the study generators, so the "real" analysis and
//! the synthetic analysis share exactly the same encoding.

use crate::error::{DataError, Result};

/// How the codes of an attribute should be interpreted by statistics code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrKind {
    /// Unordered categories (race, region, ...). No numeric interpretation by
    /// default; means over these are meaningless.
    Categorical,
    /// Ordered categories with a numeric score per code (Likert scales, binned
    /// continuous variables, counts).
    Ordinal,
    /// Two categories, conventionally 0 = no / 1 = yes. Numeric value is the
    /// code itself, so the mean is a proportion.
    Binary,
}

/// A single discrete variable: its name, category labels, and (optionally) the
/// numeric value each code maps to when the variable is used in arithmetic
/// (means, regressions, correlations).
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    name: String,
    kind: AttrKind,
    categories: Vec<String>,
    /// `numeric_values[code]` is the numeric interpretation of `code`.
    /// `None` means "use the code itself" for ordinal/binary attributes and
    /// "no numeric interpretation" for categorical ones.
    numeric_values: Option<Vec<f64>>,
}

impl Attribute {
    /// An unordered categorical attribute with the given labels.
    pub fn categorical(name: impl Into<String>, categories: Vec<String>) -> Self {
        Attribute {
            name: name.into(),
            kind: AttrKind::Categorical,
            categories,
            numeric_values: None,
        }
    }

    /// Convenience: categorical attribute from `&str` labels.
    pub fn categorical_from(name: impl Into<String>, categories: &[&str]) -> Self {
        Self::categorical(name, categories.iter().map(|s| s.to_string()).collect())
    }

    /// An ordered attribute whose numeric value is the code itself
    /// (0, 1, 2, ...). Suitable for counts and Likert scales.
    pub fn ordinal(name: impl Into<String>, cardinality: usize) -> Self {
        let categories = (0..cardinality).map(|i| i.to_string()).collect();
        Attribute {
            name: name.into(),
            kind: AttrKind::Ordinal,
            categories,
            numeric_values: None,
        }
    }

    /// An ordered attribute with explicit numeric scores per code, e.g. bin
    /// midpoints of a binned continuous variable.
    pub fn ordinal_scored(name: impl Into<String>, scores: Vec<f64>) -> Self {
        let categories = scores.iter().map(|v| format!("{v}")).collect();
        Attribute {
            name: name.into(),
            kind: AttrKind::Ordinal,
            categories,
            numeric_values: Some(scores),
        }
    }

    /// A binned continuous attribute: `bins` equal-width bins covering
    /// `[lo, hi]`, scored at bin midpoints.
    pub fn binned(name: impl Into<String>, lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "binned attribute needs at least one bin");
        assert!(hi > lo, "binned attribute needs hi > lo");
        let width = (hi - lo) / bins as f64;
        let scores = (0..bins).map(|i| lo + width * (i as f64 + 0.5)).collect();
        Self::ordinal_scored(name, scores)
    }

    /// A yes/no attribute; code 1 means "yes".
    pub fn binary(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            kind: AttrKind::Binary,
            categories: vec!["no".to_string(), "yes".to_string()],
            numeric_values: None,
        }
    }

    /// Reassemble an attribute from its serialized parts — the inverse of
    /// [`Attribute::categories`] / [`Attribute::numeric_values`], used by
    /// the fit-cache codec to round-trip domains exactly.
    ///
    /// # Errors
    /// [`DataError::CodeOutOfRange`] when `categories` is empty or
    /// `numeric_values` does not align with the categories one-to-one.
    pub fn from_parts(
        name: impl Into<String>,
        kind: AttrKind,
        categories: Vec<String>,
        numeric_values: Option<Vec<f64>>,
    ) -> Result<Self> {
        let name = name.into();
        if categories.is_empty() {
            return Err(DataError::CodeOutOfRange {
                attribute: name,
                code: 0,
                cardinality: 0,
            });
        }
        if let Some(values) = &numeric_values {
            if values.len() != categories.len() {
                return Err(DataError::CodeOutOfRange {
                    attribute: name,
                    code: values.len() as u32,
                    cardinality: categories.len(),
                });
            }
        }
        Ok(Attribute {
            name,
            kind,
            categories,
            numeric_values,
        })
    }

    /// Attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Category labels, code order.
    pub fn categories(&self) -> &[String] {
        &self.categories
    }

    /// Explicit per-code numeric scores, when set (see
    /// [`Attribute::numeric`] for the interpretation of `None`).
    pub fn numeric_values(&self) -> Option<&[f64]> {
        self.numeric_values.as_deref()
    }

    /// Interpretation of the codes.
    pub fn kind(&self) -> AttrKind {
        self.kind
    }

    /// Number of categories (domain size of this attribute).
    pub fn cardinality(&self) -> usize {
        self.categories.len()
    }

    /// Label for a code, if in range.
    pub fn label(&self, code: u32) -> Option<&str> {
        self.categories.get(code as usize).map(|s| s.as_str())
    }

    /// Code for a label, if present.
    pub fn code_of(&self, label: &str) -> Option<u32> {
        self.categories
            .iter()
            .position(|c| c == label)
            .map(|i| i as u32)
    }

    /// Whether this attribute participates in numeric statistics
    /// (means, skewness, outlier counting). Categorical attributes do not.
    pub fn is_numeric(&self) -> bool {
        !matches!(self.kind, AttrKind::Categorical)
    }

    /// Numeric value of a code.
    ///
    /// # Errors
    /// Returns [`DataError::NotNumeric`] for categorical attributes and
    /// [`DataError::CodeOutOfRange`] for out-of-range codes.
    pub fn numeric(&self, code: u32) -> Result<f64> {
        if !self.is_numeric() {
            return Err(DataError::NotNumeric(self.name.clone()));
        }
        if code as usize >= self.cardinality() {
            return Err(DataError::CodeOutOfRange {
                attribute: self.name.clone(),
                code,
                cardinality: self.cardinality(),
            });
        }
        Ok(match &self.numeric_values {
            Some(values) => values[code as usize],
            None => f64::from(code),
        })
    }

    /// Bin a raw continuous value into this attribute's code space, assuming
    /// the attribute was built with [`Attribute::binned`] or
    /// [`Attribute::ordinal_scored`] with monotone scores. Values outside the
    /// score range clamp to the first/last bin.
    pub fn bin_value(&self, value: f64) -> u32 {
        match &self.numeric_values {
            Some(scores) if !scores.is_empty() => {
                // Scores are midpoints; choose the nearest.
                let mut best = 0usize;
                let mut best_dist = f64::INFINITY;
                for (i, s) in scores.iter().enumerate() {
                    let d = (value - s).abs();
                    if d < best_dist {
                        best_dist = d;
                        best = i;
                    }
                }
                best as u32
            }
            _ => {
                let max = self.cardinality().saturating_sub(1) as f64;
                value.round().clamp(0.0, max) as u32
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categorical_has_no_numeric_interpretation() {
        let race = Attribute::categorical_from("race", &["white", "black", "hispanic"]);
        assert_eq!(race.cardinality(), 3);
        assert!(!race.is_numeric());
        assert!(matches!(race.numeric(0), Err(DataError::NotNumeric(_))));
        assert_eq!(race.code_of("black"), Some(1));
        assert_eq!(race.label(2), Some("hispanic"));
    }

    #[test]
    fn ordinal_defaults_to_code_values() {
        let likert = Attribute::ordinal("agreement", 5);
        assert_eq!(likert.numeric(3).unwrap(), 3.0);
        assert!(likert.numeric(5).is_err());
    }

    #[test]
    fn binned_scores_are_midpoints() {
        let age = Attribute::binned("age", 0.0, 100.0, 10);
        assert_eq!(age.cardinality(), 10);
        assert!((age.numeric(0).unwrap() - 5.0).abs() < 1e-12);
        assert!((age.numeric(9).unwrap() - 95.0).abs() < 1e-12);
        assert_eq!(age.bin_value(12.0), 1);
        assert_eq!(age.bin_value(-50.0), 0);
        assert_eq!(age.bin_value(1e9), 9);
    }

    #[test]
    fn binary_mean_is_proportion() {
        let b = Attribute::binary("obese");
        assert_eq!(b.cardinality(), 2);
        assert_eq!(b.numeric(1).unwrap(), 1.0);
        assert_eq!(b.label(0), Some("no"));
    }
}
