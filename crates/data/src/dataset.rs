//! Column-major discrete dataset.
//!
//! Storage is one `Vec<u32>` of codes per attribute: marginal counting,
//! per-column statistics and synthesizer fitting are all column-oriented, so
//! this layout keeps hot loops over contiguous memory (see the Rust perf-book
//! guidance on bounds checks and iteration).

use crate::attribute::Attribute;
use crate::domain::{validate_attr_set, Domain};
use crate::error::{DataError, Result};
use rand::seq::SliceRandom;
use rand::Rng;

/// A discrete tabular dataset over a [`Domain`].
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    domain: Domain,
    /// `columns[a][r]` is the code of attribute `a` in row `r`.
    columns: Vec<Vec<u32>>,
    rows: usize,
}

/// A lightweight view of one row, used by [`Dataset::filter_rows`].
#[derive(Clone, Copy)]
pub struct RowRef<'a> {
    dataset: &'a Dataset,
    row: usize,
}

impl<'a> RowRef<'a> {
    /// Code of attribute `attr` in this row. Panics on bad index (the dataset
    /// validated its shape on construction, so indices from the same domain
    /// are always in range).
    pub fn get(&self, attr: usize) -> u32 {
        self.dataset.columns[attr][self.row]
    }

    /// Row index inside the parent dataset.
    pub fn index(&self) -> usize {
        self.row
    }
}

impl Dataset {
    /// Build a dataset from pre-validated columns.
    ///
    /// # Errors
    /// - [`DataError::RaggedColumns`] if column lengths differ or the column
    ///   count does not match the domain;
    /// - [`DataError::CodeOutOfRange`] if any code exceeds its attribute's
    ///   cardinality.
    pub fn new(domain: Domain, columns: Vec<Vec<u32>>) -> Result<Self> {
        if columns.len() != domain.len() {
            return Err(DataError::RaggedColumns);
        }
        let rows = columns.first().map_or(0, Vec::len);
        for col in &columns {
            if col.len() != rows {
                return Err(DataError::RaggedColumns);
            }
        }
        for (a, col) in columns.iter().enumerate() {
            let card = domain.cardinality(a)? as u32;
            if let Some(&bad) = col.iter().find(|&&c| c >= card) {
                return Err(DataError::CodeOutOfRange {
                    attribute: domain.attribute(a)?.name().to_string(),
                    code: bad,
                    cardinality: card as usize,
                });
            }
        }
        Ok(Dataset {
            domain,
            columns,
            rows,
        })
    }

    /// An empty dataset over `domain` with row capacity reserved.
    pub fn with_capacity(domain: Domain, capacity: usize) -> Self {
        let columns = (0..domain.len())
            .map(|_| Vec::with_capacity(capacity))
            .collect();
        Dataset {
            domain,
            columns,
            rows: 0,
        }
    }

    /// Append one row of codes.
    ///
    /// # Errors
    /// [`DataError::RowArity`] / [`DataError::CodeOutOfRange`] on shape or
    /// range mismatch. On error the dataset is unchanged.
    pub fn push_row(&mut self, row: &[u32]) -> Result<()> {
        if row.len() != self.domain.len() {
            return Err(DataError::RowArity {
                expected: self.domain.len(),
                got: row.len(),
            });
        }
        for (a, &code) in row.iter().enumerate() {
            let card = self.domain.cardinality(a)? as u32;
            if code >= card {
                return Err(DataError::CodeOutOfRange {
                    attribute: self.domain.attribute(a)?.name().to_string(),
                    code,
                    cardinality: card as usize,
                });
            }
        }
        for (a, &code) in row.iter().enumerate() {
            self.columns[a].push(code);
        }
        self.rows += 1;
        Ok(())
    }

    /// The dataset's schema.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Number of attributes.
    pub fn n_attrs(&self) -> usize {
        self.domain.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Codes of one attribute across all rows.
    pub fn column(&self, attr: usize) -> Result<&[u32]> {
        self.columns
            .get(attr)
            .map(Vec::as_slice)
            .ok_or(DataError::AttributeIndexOutOfBounds {
                index: attr,
                len: self.columns.len(),
            })
    }

    /// Codes of an attribute looked up by name.
    pub fn column_by_name(&self, name: &str) -> Result<&[u32]> {
        let idx = self.domain.index_of(name)?;
        self.column(idx)
    }

    /// Numeric interpretation of a column (bin midpoints / scores / codes).
    ///
    /// # Errors
    /// [`DataError::NotNumeric`] for categorical attributes.
    pub fn numeric_column(&self, attr: usize) -> Result<Vec<f64>> {
        let attribute = self.domain.attribute(attr)?;
        self.column(attr)?
            .iter()
            .map(|&c| attribute.numeric(c))
            .collect()
    }

    /// Code at `(row, attr)`.
    pub fn value(&self, row: usize, attr: usize) -> Result<u32> {
        let col = self.column(attr)?;
        col.get(row).copied().ok_or(DataError::RowArity {
            expected: self.rows,
            got: row,
        })
    }

    /// Project onto a subset of attributes, preserving the given order.
    pub fn select(&self, attrs: &[usize]) -> Result<Dataset> {
        validate_attr_set(self.domain.len(), attrs)?;
        let domain = self.domain.project(attrs)?;
        let columns = attrs.iter().map(|&a| self.columns[a].clone()).collect();
        Ok(Dataset {
            domain,
            columns,
            rows: self.rows,
        })
    }

    /// Project onto attributes by name.
    pub fn select_by_name(&self, names: &[&str]) -> Result<Dataset> {
        let attrs: Result<Vec<usize>> = names.iter().map(|n| self.domain.index_of(n)).collect();
        self.select(&attrs?)
    }

    /// Keep the rows for which `pred` returns true.
    pub fn filter_rows(&self, pred: impl Fn(RowRef<'_>) -> bool) -> Dataset {
        let keep: Vec<usize> = (0..self.rows)
            .filter(|&r| {
                pred(RowRef {
                    dataset: self,
                    row: r,
                })
            })
            .collect();
        self.take_rows(&keep)
    }

    /// Materialize a dataset from a list of row indices (may repeat rows, as
    /// in bootstrap resampling).
    pub fn take_rows(&self, rows: &[usize]) -> Dataset {
        let columns = self
            .columns
            .iter()
            .map(|col| rows.iter().map(|&r| col[r]).collect())
            .collect();
        Dataset {
            domain: self.domain.clone(),
            columns,
            rows: rows.len(),
        }
    }

    /// Uniform bootstrap resample of `n` rows (with replacement).
    pub fn bootstrap_sample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Dataset {
        let rows: Vec<usize> = (0..n).map(|_| rng.gen_range(0..self.rows)).collect();
        self.take_rows(&rows)
    }

    /// Subsample `n` distinct rows without replacement (or all rows if
    /// `n >= n_rows`).
    pub fn subsample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Dataset {
        if n >= self.rows {
            return self.clone();
        }
        let mut idx: Vec<usize> = (0..self.rows).collect();
        idx.shuffle(rng);
        idx.truncate(n);
        self.take_rows(&idx)
    }

    /// Count of each code of one attribute: `counts[code]`.
    pub fn value_counts(&self, attr: usize) -> Result<Vec<f64>> {
        let card = self.domain.cardinality(attr)?;
        let mut counts = vec![0.0; card];
        for &c in self.column(attr)? {
            counts[c as usize] += 1.0;
        }
        Ok(counts)
    }

    /// Mean of the numeric interpretation of an attribute. For binary
    /// attributes this is the proportion of 1s.
    pub fn mean_of(&self, attr: usize) -> Result<f64> {
        let vals = self.numeric_column(attr)?;
        if vals.is_empty() {
            return Ok(f64::NAN);
        }
        Ok(vals.iter().sum::<f64>() / vals.len() as f64)
    }

    /// Proportion of rows whose attribute equals `code`.
    pub fn proportion(&self, attr: usize, code: u32) -> Result<f64> {
        let col = self.column(attr)?;
        if col.is_empty() {
            return Ok(f64::NAN);
        }
        let hits = col.iter().filter(|&&c| c == code).count();
        Ok(hits as f64 / col.len() as f64)
    }

    /// Row indices where `attr == code`.
    pub fn rows_where(&self, attr: usize, code: u32) -> Result<Vec<usize>> {
        Ok(self
            .column(attr)?
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == code)
            .map(|(r, _)| r)
            .collect())
    }

    /// Extract an [`Attribute`] reference by name.
    pub fn attribute_by_name(&self, name: &str) -> Result<&Attribute> {
        let idx = self.domain.index_of(name)?;
        self.domain.attribute(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        let domain = Domain::new(vec![
            Attribute::binary("treated"),
            Attribute::ordinal("score", 5),
        ]);
        Dataset::new(domain, vec![vec![0, 1, 1, 0, 1], vec![0, 4, 3, 1, 4]]).unwrap()
    }

    #[test]
    fn construction_validates_shape_and_codes() {
        let domain = Domain::new(vec![Attribute::binary("b")]);
        assert!(matches!(
            Dataset::new(domain.clone(), vec![vec![0], vec![1]]),
            Err(DataError::RaggedColumns)
        ));
        assert!(matches!(
            Dataset::new(domain, vec![vec![0, 2]]),
            Err(DataError::CodeOutOfRange { .. })
        ));
    }

    #[test]
    fn push_row_is_atomic_on_error() {
        let mut ds = toy();
        let before = ds.n_rows();
        assert!(ds.push_row(&[1]).is_err());
        assert!(ds.push_row(&[1, 9]).is_err());
        assert_eq!(ds.n_rows(), before);
        ds.push_row(&[1, 2]).unwrap();
        assert_eq!(ds.n_rows(), before + 1);
    }

    #[test]
    fn select_and_filter() {
        let ds = toy();
        let only_score = ds.select_by_name(&["score"]).unwrap();
        assert_eq!(only_score.n_attrs(), 1);
        assert_eq!(only_score.column(0).unwrap(), &[0, 4, 3, 1, 4]);

        let treated = ds.filter_rows(|r| r.get(0) == 1);
        assert_eq!(treated.n_rows(), 3);
        assert_eq!(treated.column(1).unwrap(), &[4, 3, 4]);
    }

    #[test]
    fn stats_helpers() {
        let ds = toy();
        assert!((ds.mean_of(0).unwrap() - 0.6).abs() < 1e-12);
        assert!((ds.proportion(1, 4).unwrap() - 0.4).abs() < 1e-12);
        assert_eq!(ds.value_counts(1).unwrap(), vec![1.0, 1.0, 0.0, 1.0, 2.0]);
        assert_eq!(ds.rows_where(0, 0).unwrap(), vec![0, 3]);
    }

    #[test]
    fn bootstrap_preserves_schema_and_size() {
        let ds = toy();
        let mut rng = StdRng::seed_from_u64(7);
        let bs = ds.bootstrap_sample(100, &mut rng);
        assert_eq!(bs.n_rows(), 100);
        assert_eq!(bs.domain(), ds.domain());
        let sub = ds.subsample(2, &mut rng);
        assert_eq!(sub.n_rows(), 2);
    }
}
