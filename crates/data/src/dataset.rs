//! Column-major discrete dataset over bit-packed storage.
//!
//! Storage is one [`PackedColumn`] per attribute: codes cost
//! `ceil(log2(card))` bits each instead of a full `u32`, which cuts the
//! bytes the marginal kernels stream by 4–16× on the benchmark registry
//! (see `packed.rs` for the word layout). All reads go through the
//! [`ColumnAccess`] trait — bulk readers decode into reusable scratch,
//! per-row readers use the [`RowRef`] cursor — so the physical layout can
//! keep evolving (row groups, out-of-core) without touching consumers.

use crate::attribute::{AttrKind, Attribute};
use crate::domain::{validate_attr_set, Domain};
use crate::error::{DataError, Result};
use crate::packed::{ColumnAccess, PackedColumn};
use rand::seq::SliceRandom;
use rand::Rng;

/// A discrete tabular dataset over a [`Domain`].
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    domain: Domain,
    /// `columns[a]` holds the codes of attribute `a`, bit-packed.
    columns: Vec<PackedColumn>,
    rows: usize,
}

/// A lightweight cursor over one row, used by [`Dataset::filter_rows`]
/// predicates and per-row readers ([`Dataset::row`]).
#[derive(Clone, Copy)]
pub struct RowRef<'a> {
    /// Direct column handle: `get` resolves bounds once via the packed
    /// column instead of re-walking `column(attr)?`'s error path per cell.
    columns: &'a [PackedColumn],
    row: usize,
}

impl<'a> RowRef<'a> {
    /// Code of attribute `attr` in this row. Panics on bad index (the
    /// dataset validated its shape on construction, so indices from the
    /// same domain are always in range).
    #[inline]
    pub fn get(&self, attr: usize) -> u32 {
        self.columns[attr].get(self.row)
    }

    /// Row index inside the parent dataset.
    pub fn index(&self) -> usize {
        self.row
    }
}

impl Dataset {
    /// Build a dataset from pre-validated columns, bit-packing each one.
    ///
    /// # Errors
    /// - [`DataError::RaggedColumns`] if column lengths differ or the column
    ///   count does not match the domain;
    /// - [`DataError::CodeOutOfRange`] if any code exceeds its attribute's
    ///   cardinality.
    pub fn new(domain: Domain, columns: Vec<Vec<u32>>) -> Result<Self> {
        if columns.len() != domain.len() {
            return Err(DataError::RaggedColumns);
        }
        let rows = columns.first().map_or(0, Vec::len);
        for col in &columns {
            if col.len() != rows {
                return Err(DataError::RaggedColumns);
            }
        }
        let mut packed = Vec::with_capacity(columns.len());
        for (a, col) in columns.iter().enumerate() {
            let card = domain.cardinality(a)?;
            if let Some(&bad) = col.iter().find(|&&c| c >= card as u32) {
                return Err(DataError::CodeOutOfRange {
                    attribute: domain.attribute(a)?.name().to_string(),
                    code: bad,
                    cardinality: card,
                });
            }
            packed.push(PackedColumn::from_codes(card, col));
        }
        Ok(Dataset {
            domain,
            columns: packed,
            rows,
        })
    }

    /// An empty dataset over `domain` with row capacity reserved.
    pub fn with_capacity(domain: Domain, capacity: usize) -> Self {
        let columns = domain
            .attributes()
            .iter()
            .map(|a| PackedColumn::with_capacity(a.cardinality(), capacity))
            .collect();
        Dataset {
            domain,
            columns,
            rows: 0,
        }
    }

    /// Append one row of codes.
    ///
    /// # Errors
    /// [`DataError::RowArity`] / [`DataError::CodeOutOfRange`] on shape or
    /// range mismatch. On error the dataset is unchanged.
    pub fn push_row(&mut self, row: &[u32]) -> Result<()> {
        if row.len() != self.domain.len() {
            return Err(DataError::RowArity {
                expected: self.domain.len(),
                got: row.len(),
            });
        }
        for (a, &code) in row.iter().enumerate() {
            let card = self.domain.cardinality(a)? as u32;
            if code >= card {
                return Err(DataError::CodeOutOfRange {
                    attribute: self.domain.attribute(a)?.name().to_string(),
                    code,
                    cardinality: card as usize,
                });
            }
        }
        for (col, &code) in self.columns.iter_mut().zip(row) {
            col.push(code);
        }
        self.rows += 1;
        Ok(())
    }

    /// The dataset's schema.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Number of attributes.
    pub fn n_attrs(&self) -> usize {
        self.domain.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The packed column of one attribute (the [`ColumnAccess`] entry point
    /// for kernels and streaming readers).
    pub fn packed_column(&self, attr: usize) -> Result<&PackedColumn> {
        self.columns
            .get(attr)
            .ok_or(DataError::AttributeIndexOutOfBounds {
                index: attr,
                len: self.columns.len(),
            })
    }

    /// Decode one attribute's codes into a fresh vector.
    pub fn decode_column(&self, attr: usize) -> Result<Vec<u32>> {
        let mut out = Vec::new();
        self.decode_column_into(attr, &mut out)?;
        Ok(out)
    }

    /// Decode one attribute's codes into a reusable scratch vector.
    pub fn decode_column_into(&self, attr: usize, out: &mut Vec<u32>) -> Result<()> {
        self.packed_column(attr)?.decode_into(out);
        Ok(())
    }

    /// Decode an attribute's codes looked up by name.
    pub fn decode_column_by_name(&self, name: &str) -> Result<Vec<u32>> {
        let idx = self.domain.index_of(name)?;
        self.decode_column(idx)
    }

    /// Decode every column into plain `Vec<u32>`s (the pre-packing layout;
    /// used by benches and differential oracles).
    pub fn to_columns(&self) -> Vec<Vec<u32>> {
        self.columns
            .iter()
            .map(|col| {
                let mut out = Vec::new();
                col.decode_into(&mut out);
                out
            })
            .collect()
    }

    /// Heap bytes of the packed storage across all columns.
    pub fn packed_bytes(&self) -> usize {
        self.columns.iter().map(PackedColumn::packed_bytes).sum()
    }

    /// Heap bytes the same columns would cost at one `u32` per cell (the
    /// pre-packing layout, for the bytes-per-row benchmark record).
    pub fn unpacked_bytes(&self) -> usize {
        self.rows * self.columns.len() * std::mem::size_of::<u32>()
    }

    /// Numeric interpretation of a column (bin midpoints / scores / codes).
    ///
    /// # Errors
    /// [`DataError::NotNumeric`] for categorical attributes.
    pub fn numeric_column(&self, attr: usize) -> Result<Vec<f64>> {
        let attribute = self.domain.attribute(attr)?;
        self.decode_column(attr)?
            .into_iter()
            .map(|c| attribute.numeric(c))
            .collect()
    }

    /// Code at `(row, attr)`. Bounds are resolved once; per-row loops
    /// should prefer the [`Dataset::row`] cursor.
    pub fn value(&self, row: usize, attr: usize) -> Result<u32> {
        let col = self.packed_column(attr)?;
        if row >= col.len() {
            return Err(DataError::RowArity {
                expected: self.rows,
                got: row,
            });
        }
        Ok(col.get(row))
    }

    /// Cursor over row `row`: repeated [`RowRef::get`] calls skip the
    /// per-cell attribute-resolution of [`Dataset::value`]. Panics if
    /// `row >= n_rows()` on the first `get`.
    pub fn row(&self, row: usize) -> RowRef<'_> {
        RowRef {
            columns: &self.columns,
            row,
        }
    }

    /// Project onto a subset of attributes, preserving the given order.
    pub fn select(&self, attrs: &[usize]) -> Result<Dataset> {
        validate_attr_set(self.domain.len(), attrs)?;
        let domain = self.domain.project(attrs)?;
        let columns = attrs.iter().map(|&a| self.columns[a].clone()).collect();
        Ok(Dataset {
            domain,
            columns,
            rows: self.rows,
        })
    }

    /// Project onto attributes by name.
    pub fn select_by_name(&self, names: &[&str]) -> Result<Dataset> {
        let attrs: Result<Vec<usize>> = names.iter().map(|n| self.domain.index_of(n)).collect();
        self.select(&attrs?)
    }

    /// Keep the rows for which `pred` returns true, streaming matches
    /// straight into pre-sized packed builders (no intermediate keep-list).
    pub fn filter_rows(&self, pred: impl Fn(RowRef<'_>) -> bool) -> Dataset {
        let mut columns: Vec<PackedColumn> = self
            .domain
            .attributes()
            .iter()
            .map(|a| PackedColumn::with_capacity(a.cardinality(), self.rows))
            .collect();
        let mut rows = 0;
        for r in 0..self.rows {
            let row = RowRef {
                columns: &self.columns,
                row: r,
            };
            if pred(row) {
                for (dst, src) in columns.iter_mut().zip(&self.columns) {
                    dst.push(src.get(r));
                }
                rows += 1;
            }
        }
        Dataset {
            domain: self.domain.clone(),
            columns,
            rows,
        }
    }

    /// Materialize a dataset from a list of row indices (may repeat rows, as
    /// in bootstrap resampling).
    pub fn take_rows(&self, rows: &[usize]) -> Dataset {
        let columns = self
            .domain
            .attributes()
            .iter()
            .zip(&self.columns)
            .map(|(attr, src)| {
                let mut dst = PackedColumn::with_capacity(attr.cardinality(), rows.len());
                for &r in rows {
                    dst.push(src.get(r));
                }
                dst
            })
            .collect();
        Dataset {
            domain: self.domain.clone(),
            columns,
            rows: rows.len(),
        }
    }

    /// Uniform bootstrap resample of `n` rows (with replacement).
    pub fn bootstrap_sample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Dataset {
        let rows: Vec<usize> = (0..n).map(|_| rng.gen_range(0..self.rows)).collect();
        self.take_rows(&rows)
    }

    /// Subsample `n` distinct rows without replacement (or all rows if
    /// `n >= n_rows`).
    pub fn subsample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Dataset {
        if n >= self.rows {
            return self.clone();
        }
        let mut idx: Vec<usize> = (0..self.rows).collect();
        idx.shuffle(rng);
        idx.truncate(n);
        self.take_rows(&idx)
    }

    /// Count of each code of one attribute: `counts[code]`. Counts in `u64`
    /// and converts once (the engine's integer-accumulation convention).
    pub fn value_counts(&self, attr: usize) -> Result<Vec<f64>> {
        let card = self.domain.cardinality(attr)?;
        let mut counts = vec![0u64; card];
        self.columns[attr].for_each_code(|c| counts[c as usize] += 1);
        Ok(counts.into_iter().map(|c| c as f64).collect())
    }

    /// Mean of the numeric interpretation of an attribute. For binary
    /// attributes this is the proportion of 1s.
    pub fn mean_of(&self, attr: usize) -> Result<f64> {
        let vals = self.numeric_column(attr)?;
        if vals.is_empty() {
            return Ok(f64::NAN);
        }
        Ok(vals.iter().sum::<f64>() / vals.len() as f64)
    }

    /// Proportion of rows whose attribute equals `code`.
    pub fn proportion(&self, attr: usize, code: u32) -> Result<f64> {
        let col = self.packed_column(attr)?;
        if col.is_empty() {
            return Ok(f64::NAN);
        }
        let mut hits = 0u64;
        col.for_each_code(|c| hits += u64::from(c == code));
        Ok(hits as f64 / col.len() as f64)
    }

    /// Row indices where `attr == code`.
    pub fn rows_where(&self, attr: usize, code: u32) -> Result<Vec<usize>> {
        let col = self.packed_column(attr)?;
        let mut out = Vec::new();
        let mut r = 0usize;
        col.for_each_code(|c| {
            if c == code {
                out.push(r);
            }
            r += 1;
        });
        Ok(out)
    }

    /// 64-bit FNV-1a digest over the full content: schema (names, kinds,
    /// labels, numeric scores bit-exactly) and every cell in column-major
    /// order. Two datasets digest equal iff they would behave identically
    /// under every fit — this is the dataset component of the fit-cache key,
    /// which is how papers sharing a generator share fitted models.
    pub fn content_digest(&self) -> u64 {
        struct Fnv(u64);
        impl Fnv {
            fn bytes(&mut self, bs: &[u8]) {
                for &b in bs {
                    self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
                }
            }
            // Separator bytes keep adjacent fields from aliasing (the same
            // convention as synrd-store's digest module).
            fn word(&mut self, v: u64) {
                self.bytes(&v.to_le_bytes());
                self.bytes(&[0xff]);
            }
            fn text(&mut self, s: &str) {
                self.bytes(s.as_bytes());
                self.bytes(&[0xfe]);
            }
        }
        let mut h = Fnv(0xcbf2_9ce4_8422_2325);
        h.word(self.domain.len() as u64);
        for attr in self.domain.attributes() {
            h.text(attr.name());
            h.word(match attr.kind() {
                AttrKind::Categorical => 0,
                AttrKind::Ordinal => 1,
                AttrKind::Binary => 2,
            });
            h.word(attr.cardinality() as u64);
            for label in attr.categories() {
                h.text(label);
            }
            match attr.numeric_values() {
                None => h.word(0),
                Some(values) => {
                    h.word(1);
                    for v in values {
                        h.word(v.to_bits());
                    }
                }
            }
        }
        h.word(self.rows as u64);
        for col in &self.columns {
            col.for_each_code(|c| h.word(u64::from(c)));
        }
        h.0
    }

    /// Extract an [`Attribute`] reference by name.
    pub fn attribute_by_name(&self, name: &str) -> Result<&Attribute> {
        let idx = self.domain.index_of(name)?;
        self.domain.attribute(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        let domain = Domain::new(vec![
            Attribute::binary("treated"),
            Attribute::ordinal("score", 5),
        ]);
        Dataset::new(domain, vec![vec![0, 1, 1, 0, 1], vec![0, 4, 3, 1, 4]]).unwrap()
    }

    #[test]
    fn construction_validates_shape_and_codes() {
        let domain = Domain::new(vec![Attribute::binary("b")]);
        assert!(matches!(
            Dataset::new(domain.clone(), vec![vec![0], vec![1]]),
            Err(DataError::RaggedColumns)
        ));
        assert!(matches!(
            Dataset::new(domain, vec![vec![0, 2]]),
            Err(DataError::CodeOutOfRange { .. })
        ));
    }

    #[test]
    fn push_row_is_atomic_on_error() {
        let mut ds = toy();
        let before = ds.n_rows();
        assert!(ds.push_row(&[1]).is_err());
        assert!(ds.push_row(&[1, 9]).is_err());
        assert_eq!(ds.n_rows(), before);
        ds.push_row(&[1, 2]).unwrap();
        assert_eq!(ds.n_rows(), before + 1);
    }

    #[test]
    fn select_and_filter() {
        let ds = toy();
        let only_score = ds.select_by_name(&["score"]).unwrap();
        assert_eq!(only_score.n_attrs(), 1);
        assert_eq!(only_score.decode_column(0).unwrap(), vec![0, 4, 3, 1, 4]);

        let treated = ds.filter_rows(|r| r.get(0) == 1);
        assert_eq!(treated.n_rows(), 3);
        assert_eq!(treated.decode_column(1).unwrap(), vec![4, 3, 4]);
    }

    #[test]
    fn stats_helpers() {
        let ds = toy();
        assert!((ds.mean_of(0).unwrap() - 0.6).abs() < 1e-12);
        assert!((ds.proportion(1, 4).unwrap() - 0.4).abs() < 1e-12);
        assert_eq!(ds.value_counts(1).unwrap(), vec![1.0, 1.0, 0.0, 1.0, 2.0]);
        assert_eq!(ds.rows_where(0, 0).unwrap(), vec![0, 3]);
    }

    #[test]
    fn bootstrap_preserves_schema_and_size() {
        let ds = toy();
        let mut rng = StdRng::seed_from_u64(7);
        let bs = ds.bootstrap_sample(100, &mut rng);
        assert_eq!(bs.n_rows(), 100);
        assert_eq!(bs.domain(), ds.domain());
        let sub = ds.subsample(2, &mut rng);
        assert_eq!(sub.n_rows(), 2);
    }

    #[test]
    fn row_cursor_and_value_agree() {
        let ds = toy();
        for r in 0..ds.n_rows() {
            let row = ds.row(r);
            for a in 0..ds.n_attrs() {
                assert_eq!(row.get(a), ds.value(r, a).unwrap());
            }
        }
        assert!(ds.value(99, 0).is_err());
        assert!(ds.value(0, 99).is_err());
    }

    #[test]
    fn content_digest_tracks_schema_and_cells() {
        let ds = toy();
        assert_eq!(ds.content_digest(), toy().content_digest());
        // One flipped cell changes the digest.
        let mut cols = ds.to_columns();
        cols[0][0] = 1;
        let changed = Dataset::new(ds.domain().clone(), cols).unwrap();
        assert_ne!(ds.content_digest(), changed.content_digest());
        // Same cells under a renamed schema changes the digest.
        let renamed = Domain::new(vec![
            Attribute::binary("exposed"),
            Attribute::ordinal("score", 5),
        ]);
        let other = Dataset::new(renamed, ds.to_columns()).unwrap();
        assert_ne!(ds.content_digest(), other.content_digest());
    }

    #[test]
    fn packing_shrinks_storage() {
        let ds = toy();
        // 2 attrs × 5 rows × 4 bytes unpacked; packed fits in one word per
        // column (1-bit and 3-bit codes).
        assert_eq!(ds.unpacked_bytes(), 40);
        assert_eq!(ds.packed_bytes(), 16);
        assert_eq!(
            ds.to_columns(),
            vec![vec![0, 1, 1, 0, 1], vec![0, 4, 3, 1, 4]]
        );
    }
}
