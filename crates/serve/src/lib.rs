//! # synrd-serve — the serve-mode sampling service
//!
//! A grid run with `--out-dir` leaves behind a fit cache: one serialized
//! synthesizer state per `(dataset content, synthesizer, ε, trial seed)`.
//! This crate turns that cache into a long-running service — `synrd serve`
//! answers sampling and workload-query requests from those fits without
//! ever refitting, which is where the fit cache's 5x+ warm-path win
//! becomes user-visible (`BENCH_serve.json`, gated in CI).
//!
//! Three layers, each testable without the one above:
//!
//! * [`FitService`] — restores synthesizers from a
//!   [`DiskFitCache`](synrd_store::DiskFitCache) on first use and memoizes
//!   them in memory (an `RwLock` map of `Arc`ed synthesizers; the
//!   [`Synthesizer`] trait is `Send + Sync`, so one restored model serves
//!   every worker concurrently).
//! * [`handle_request`] — the protocol: one canonical-JSON request in, one
//!   canonical-JSON response out. Pure with respect to the network.
//! * [`serve`] — a `TcpListener` acceptor plus a fixed worker pool sharing
//!   an `mpsc` channel of connections; each connection speaks
//!   line-delimited JSON.
//!
//! ## Protocol
//!
//! One request per line, one response line back:
//!
//! ```text
//! {"op":"ping"}
//! {"op":"stats"}
//! {"op":"sample","paper":"fruiht2018","synth":"MST","epsilon":1.0,
//!  "seed_index":0,"n":500,"seed":7,"rows":false}
//! {"op":"workload","paper":"fruiht2018","synth":"MST","epsilon":1.0,
//!  "seed_index":0,"n":500,"seed":7,"queries":[[0],[0,2]]}
//! {"op":"shutdown"}
//! ```
//!
//! Responses carry `"ok":true` plus op-specific fields, or `"ok":false`
//! with an `"error"` message. A fit that was never cached is an error, not
//! a refit: serve mode is deliberately read-only over the store.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use synrd::benchmark::{BenchmarkConfig, FitStore};
use synrd::publication_by_id;
use synrd_data::{Dataset, MarginalEngine};
use synrd_store::{hex16, parse, DiskFitCache, JsonValue};
use synrd_synth::{SynthKind, Synthesizer};

/// Key of one restored synthesizer:
/// `(dataset digest, synth name, ε bits, seed index)` — the fit cache's key.
type FitKey = (u64, &'static str, u64, usize);

/// A sampling service over one fit cache.
///
/// `&self` everywhere: one instance is shared by the whole worker pool.
pub struct FitService {
    config: BenchmarkConfig,
    fits: DiskFitCache,
    /// Restored synthesizers, keyed like the fit cache. Restoring is
    /// cheap next to fitting but not free (PGM models rebuild their
    /// sampler lazily), so warm requests skip even that.
    restored: RwLock<HashMap<FitKey, Arc<Box<dyn Synthesizer>>>>,
    /// Paper id → dataset content digest, memoized (computing one means
    /// generating the paper's dataset once).
    paper_digests: RwLock<HashMap<String, u64>>,
    samples_served: AtomicU64,
    queries_served: AtomicU64,
}

impl FitService {
    /// Open the fit cache under `root` (a grid run's `--out-dir`) for
    /// `config`.
    ///
    /// # Errors
    /// Directory creation failing.
    pub fn open(root: impl Into<PathBuf>, config: BenchmarkConfig) -> io::Result<FitService> {
        Ok(FitService {
            fits: DiskFitCache::open(root, &config)?,
            config,
            restored: RwLock::new(HashMap::new()),
            paper_digests: RwLock::new(HashMap::new()),
            samples_served: AtomicU64::new(0),
            queries_served: AtomicU64::new(0),
        })
    }

    /// The underlying fit cache (tests and `bench-serve` seed it directly).
    pub fn fits(&self) -> &DiskFitCache {
        &self.fits
    }

    /// The config the cache is keyed under.
    pub fn config(&self) -> &BenchmarkConfig {
        &self.config
    }

    /// The dataset content digest a paper's cells were fitted against
    /// under this config — the same digest `ground_truth` computes, so
    /// serve-mode requests address exactly the fits the grid stored.
    pub fn dataset_digest(&self, paper_id: &str) -> Result<u64, String> {
        if let Some(&digest) = self.paper_digests.read().unwrap().get(paper_id) {
            return Ok(digest);
        }
        let paper =
            publication_by_id(paper_id).ok_or_else(|| format!("unknown paper '{paper_id}'"))?;
        let n = self.config.rows_for(paper.dataset().paper_n());
        let digest = paper.generate(n, self.config.data_seed).content_digest();
        self.paper_digests
            .write()
            .unwrap()
            .insert(paper_id.to_string(), digest);
        Ok(digest)
    }

    /// The restored synthesizer for one fit-cache entry, loading it from
    /// disk on first use.
    ///
    /// # Errors
    /// A human-readable message when the entry is missing or does not
    /// restore — serve mode never refits.
    pub fn synthesizer(
        &self,
        dataset_digest: u64,
        kind: SynthKind,
        epsilon: f64,
        seed_index: usize,
    ) -> Result<Arc<Box<dyn Synthesizer>>, String> {
        let key = (dataset_digest, kind.name(), epsilon.to_bits(), seed_index);
        if let Some(synth) = self.restored.read().unwrap().get(&key) {
            return Ok(Arc::clone(synth));
        }
        let state = self
            .fits
            .load(dataset_digest, kind, epsilon, seed_index)
            .ok_or_else(|| {
                format!(
                    "no cached fit for dataset {} synth {} epsilon {epsilon} seed {seed_index} \
                     (run the grid with --out-dir first)",
                    hex16(dataset_digest),
                    kind.name(),
                )
            })?;
        let mut synth = kind.build();
        synth
            .restore_state(state)
            .map_err(|e| format!("cached fit failed to restore: {e}"))?;
        let synth = Arc::new(synth);
        let mut map = self.restored.write().unwrap();
        // A racing restorer may have won; keep exactly one.
        Ok(Arc::clone(
            map.entry(key).or_insert_with(|| Arc::clone(&synth)),
        ))
    }

    /// (samples, workload queries) answered so far.
    pub fn served(&self) -> (u64, u64) {
        (
            self.samples_served.load(Ordering::Relaxed),
            self.queries_served.load(Ordering::Relaxed),
        )
    }
}

fn error_response(message: impl Into<String>) -> JsonValue {
    JsonValue::obj(vec![
        ("ok", JsonValue::Bool(false)),
        ("error", JsonValue::Str(message.into())),
    ])
}

fn str_field<'a>(req: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    req.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn usize_field_or(req: &JsonValue, key: &str, default: usize) -> Result<usize, String> {
    match req.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .and_then(|u| usize::try_from(u).ok())
            .ok_or_else(|| format!("field '{key}' is not an unsigned integer")),
    }
}

/// The dataset digest a request addresses: `"paper"` (id registered in
/// `synrd`) or `"dataset"` (explicit 16-hex-digit content digest).
fn request_digest(service: &FitService, req: &JsonValue) -> Result<u64, String> {
    if let Some(paper) = req.get("paper") {
        let paper = paper.as_str().ok_or("field 'paper' is not a string")?;
        return service.dataset_digest(paper);
    }
    let hex = str_field(req, "dataset")
        .map_err(|_| "request needs either 'paper' or 'dataset'".to_string())?;
    u64::from_str_radix(hex, 16).map_err(|_| format!("bad dataset digest '{hex}'"))
}

/// Sample the synthetic dataset a request describes.
fn sampled_dataset(service: &FitService, req: &JsonValue) -> Result<Dataset, String> {
    let digest = request_digest(service, req)?;
    let synth_name = str_field(req, "synth")?;
    let kind = SynthKind::from_name(synth_name)
        .ok_or_else(|| format!("unknown synthesizer '{synth_name}'"))?;
    let epsilon = req
        .get("epsilon")
        .and_then(JsonValue::as_f64)
        .ok_or("missing number field 'epsilon'")?;
    let seed_index = usize_field_or(req, "seed_index", 0)?;
    let n = req
        .get("n")
        .and_then(JsonValue::as_u64)
        .and_then(|u| usize::try_from(u).ok())
        .ok_or("missing unsigned field 'n'")?;
    let seed = req.get("seed").and_then(JsonValue::as_u64).unwrap_or(0);
    let synth = service.synthesizer(digest, kind, epsilon, seed_index)?;
    synth
        .sample(n, seed)
        .map_err(|e| format!("sampling failed: {e}"))
}

fn handle_sample(service: &FitService, req: &JsonValue) -> Result<JsonValue, String> {
    let data = sampled_dataset(service, req)?;
    service.samples_served.fetch_add(1, Ordering::Relaxed);
    let mut fields = vec![
        ("ok", JsonValue::Bool(true)),
        ("n", JsonValue::Uint(data.n_rows() as u64)),
        ("digest", JsonValue::Str(hex16(data.content_digest()))),
    ];
    // Row payloads are opt-in: workload-style consumers usually only need
    // counts, and a million-row sample would make a very long line.
    if req.get("rows").and_then(JsonValue::as_bool) == Some(true) {
        let columns = (0..data.n_attrs())
            .map(|a| {
                let codes = data
                    .decode_column(a)
                    .map_err(|e| format!("column decode failed: {e}"))?;
                Ok(JsonValue::Arr(
                    codes
                        .into_iter()
                        .map(|c| JsonValue::Uint(u64::from(c)))
                        .collect(),
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        fields.push(("columns", JsonValue::Arr(columns)));
    }
    Ok(JsonValue::obj(fields))
}

fn handle_workload(service: &FitService, req: &JsonValue) -> Result<JsonValue, String> {
    let sets = req
        .get("queries")
        .and_then(JsonValue::as_arr)
        .ok_or("missing array field 'queries'")?
        .iter()
        .map(|set| {
            set.as_arr()
                .ok_or("query is not an array of attribute ids")?
                .iter()
                .map(|v| {
                    v.as_u64()
                        .and_then(|u| usize::try_from(u).ok())
                        .ok_or("non-index value in query")
                })
                .collect::<Result<Vec<usize>, &str>>()
        })
        .collect::<Result<Vec<_>, &str>>()
        .map_err(str::to_string)?;
    let data = sampled_dataset(service, req)?;
    let mut engine = MarginalEngine::new(&data);
    let mut results = Vec::with_capacity(sets.len());
    for set in &sets {
        let marginal = engine
            .count(set)
            .map_err(|e| format!("query {set:?} failed: {e}"))?;
        results.push(JsonValue::obj(vec![
            (
                "attrs",
                JsonValue::Arr(
                    marginal
                        .attrs()
                        .iter()
                        .map(|&a| JsonValue::Uint(a as u64))
                        .collect(),
                ),
            ),
            ("counts", JsonValue::num_arr(marginal.counts())),
        ]));
    }
    service
        .queries_served
        .fetch_add(sets.len() as u64, Ordering::Relaxed);
    Ok(JsonValue::obj(vec![
        ("ok", JsonValue::Bool(true)),
        ("n", JsonValue::Uint(data.n_rows() as u64)),
        ("results", JsonValue::Arr(results)),
    ]))
}

fn handle_stats(service: &FitService) -> JsonValue {
    let stats = service.fits.stats();
    let (samples, queries) = service.served();
    JsonValue::obj(vec![
        ("ok", JsonValue::Bool(true)),
        ("fit_hits", JsonValue::Uint(stats.hits)),
        ("fit_misses", JsonValue::Uint(stats.misses)),
        ("fit_errors", JsonValue::Uint(stats.errors)),
        ("samples_served", JsonValue::Uint(samples)),
        ("queries_served", JsonValue::Uint(queries)),
        (
            "restored_in_memory",
            JsonValue::Uint(service.restored.read().unwrap().len() as u64),
        ),
        // Active ML execution backend (`--ml-backend` / `SYNRD_ML_BACKEND`).
        // Informational: backends are bit-identical, so serving results do
        // not depend on it.
        (
            "ml_backend",
            JsonValue::Str(synrd_synth::ml_backend::global_name().to_string()),
        ),
        // Active intra-fit thread allowance (`--fit-threads` /
        // `SYNRD_FIT_THREADS`). Informational for the same reason: fits are
        // bit-identical at any thread count.
        (
            "fit_threads",
            JsonValue::Uint(synrd_synth::default_fit_threads() as u64),
        ),
    ])
}

/// Answer one protocol request. Network-free: the TCP layer is a thin loop
/// around this, and tests drive it directly.
pub fn handle_request(service: &FitService, request: &JsonValue) -> JsonValue {
    let op = match str_field(request, "op") {
        Ok(op) => op,
        Err(e) => return error_response(e),
    };
    let result = match op {
        "ping" => Ok(JsonValue::obj(vec![
            ("ok", JsonValue::Bool(true)),
            ("pong", JsonValue::Bool(true)),
        ])),
        "stats" => Ok(handle_stats(service)),
        "sample" => handle_sample(service, request),
        "workload" => handle_workload(service, request),
        "shutdown" => Ok(JsonValue::obj(vec![
            ("ok", JsonValue::Bool(true)),
            ("bye", JsonValue::Bool(true)),
        ])),
        other => Err(format!("unknown op '{other}'")),
    };
    result.unwrap_or_else(error_response)
}

/// Answer one raw request line (parse errors become protocol errors).
pub fn handle_line(service: &FitService, line: &str) -> JsonValue {
    match parse(line) {
        Ok(request) => handle_request(service, &request),
        Err(e) => error_response(format!("bad request: {e}")),
    }
}

/// A running serve-mode instance.
pub struct ServerHandle {
    addr: SocketAddr,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Wait for the server to shut down (a client sending
    /// `{"op":"shutdown"}`).
    pub fn join(self) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Serve `service` on `addr` with a pool of `workers` connection handlers.
///
/// Returns as soon as the listener is bound; the acceptor and workers run
/// on background threads until a shutdown request arrives.
///
/// # Errors
/// Binding the listener.
pub fn serve(service: Arc<FitService>, addr: &str, workers: usize) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));

    let worker_handles = (0..workers.max(1))
        .map(|_| {
            let rx = Arc::clone(&rx);
            let service = Arc::clone(&service);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || loop {
                // Take one connection; the acceptor dropping the sender is
                // the pool's stop signal.
                let stream = match rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
                    Ok(stream) => stream,
                    Err(_) => return,
                };
                handle_connection(&service, stream, &shutdown, local);
            })
        })
        .collect();

    let acceptor = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break; // tx drops here; workers drain and exit
            }
            if let Ok(stream) = stream {
                if tx.send(stream).is_err() {
                    break;
                }
            }
        }
    });

    Ok(ServerHandle {
        addr: local,
        acceptor,
        workers: worker_handles,
    })
}

fn handle_connection(
    service: &FitService,
    stream: TcpStream,
    shutdown: &AtomicBool,
    local: SocketAddr,
) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_line(service, &line);
        let mut text = response.to_text();
        text.push('\n');
        if writer.write_all(text.as_bytes()).is_err() {
            return;
        }
        if parse(&line)
            .ok()
            .as_ref()
            .and_then(|r| r.get("op"))
            .and_then(JsonValue::as_str)
            == Some("shutdown")
        {
            shutdown.store(true, Ordering::SeqCst);
            // The acceptor is blocked in accept(); poke it awake so it can
            // observe the flag and exit.
            let _ = TcpStream::connect(local);
            return;
        }
    }
}
