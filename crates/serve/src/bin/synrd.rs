//! The `synrd` serve-mode binary.
//!
//! ```text
//! synrd serve --out-dir DIR [--addr HOST:PORT] [--workers N]
//!             [--ml-backend auto|cpu|simd] [--fit-threads auto|N]
//!             [grid knobs]
//! synrd request ADDR 'JSON'        # one request line, prints the response
//! synrd bench-serve [--quick] [--out BENCH_serve.json]
//! ```
//!
//! `serve` answers sampling / workload requests from the fit cache a grid
//! run left under `--out-dir` (see `synrd_serve` for the protocol). The
//! grid knobs (`--seeds`, `--scale`, ...) must match the run that
//! populated the store — they determine the dataset digests and the fit
//! fingerprint requests resolve against.
//!
//! `bench-serve` measures the serve-path win and writes `BENCH_serve.json`:
//! cold fit-and-sample versus warm serve-mode sampling from a cached fit.
//! Exits nonzero when the warm path is not at least 5x the cold path —
//! the CI gate for the whole fit-cache tentpole.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;
use synrd::benchmark::{BenchmarkConfig, FitStore};
use synrd::publication_by_id;
use synrd_serve::{handle_request, serve, FitService};
use synrd_store::JsonValue;
use synrd_synth::SynthKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("request") => cmd_request(&args[1..]),
        Some("bench-serve") => cmd_bench_serve(&args[1..]),
        _ => {
            eprintln!(
                "usage: synrd serve --out-dir DIR [--addr HOST:PORT] [--workers N] [grid knobs]\n\
                 \x20      synrd request ADDR 'JSON'\n\
                 \x20      synrd bench-serve [--quick] [--out PATH]"
            );
            std::process::exit(2);
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The grid knobs that change dataset digests / the fit fingerprint.
fn config_from(args: &[String]) -> BenchmarkConfig {
    let mut config = if args.iter().any(|a| a == "--paper-scale") {
        BenchmarkConfig::paper()
    } else {
        BenchmarkConfig::quick()
    };
    if let Some(v) = flag_value(args, "--seeds").and_then(|v| v.parse().ok()) {
        config.seeds = v;
    }
    if let Some(v) = flag_value(args, "--bootstraps").and_then(|v| v.parse().ok()) {
        config.bootstraps = v;
    }
    if let Some(v) = flag_value(args, "--scale").and_then(|v| v.parse().ok()) {
        config.data_scale = v;
    }
    config
}

fn cmd_serve(args: &[String]) {
    let Some(out_dir) = flag_value(args, "--out-dir") else {
        eprintln!("serve requires --out-dir (the grid run's result store)");
        std::process::exit(2);
    };
    // Backend for any ML work the service performs (bit-identical across
    // backends; the `stats` response reports the active one).
    if let Some(name) = flag_value(args, "--ml-backend") {
        if let Err(e) = synrd_synth::ml_backend::set_global(Some(&name)) {
            eprintln!("bad --ml-backend '{name}': {e}");
            std::process::exit(2);
        }
    }
    // Intra-fit thread allowance for any fits the process performs
    // (bit-identical at any count; the `stats` response reports it).
    // `auto` keeps the default (`SYNRD_FIT_THREADS`, else sequential).
    if let Some(spec) = flag_value(args, "--fit-threads") {
        match spec.as_str() {
            "auto" => {}
            n => match n.parse::<usize>() {
                Ok(v) if v >= 1 => synrd_synth::set_default_fit_threads(v),
                _ => {
                    eprintln!(
                        "bad --fit-threads '{spec}': expected 'auto' or a positive thread count"
                    );
                    std::process::exit(2);
                }
            },
        }
    }
    let addr = flag_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let workers = flag_value(args, "--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let service = match FitService::open(&out_dir, config_from(args)) {
        Ok(service) => Arc::new(service),
        Err(e) => {
            eprintln!("cannot open fit cache {out_dir}: {e}");
            std::process::exit(2);
        }
    };
    match serve(service, &addr, workers) {
        Ok(handle) => {
            // CI and scripts parse this line for the bound port.
            println!("[serve] listening on {} workers={workers}", handle.addr());
            handle.join();
            println!("[serve] shut down");
        }
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            std::process::exit(2);
        }
    }
}

fn cmd_request(args: &[String]) {
    let (Some(addr), Some(body)) = (args.first(), args.get(1)) else {
        eprintln!("usage: synrd request ADDR 'JSON'");
        std::process::exit(2);
    };
    let mut stream = match TcpStream::connect(addr) {
        Ok(stream) => stream,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    if writeln!(stream, "{body}").is_err() {
        eprintln!("send failed");
        std::process::exit(1);
    }
    let mut response = String::new();
    if BufReader::new(&stream).read_line(&mut response).is_err() {
        eprintln!("no response");
        std::process::exit(1);
    }
    print!("{response}");
    // Non-ok responses fail the invoking script.
    if !response.contains("\"ok\":true") {
        std::process::exit(1);
    }
}

/// Cold fit-and-sample versus warm serve-mode sampling, on a real paper's
/// dataset at quick scale.
fn cmd_bench_serve(args: &[String]) {
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = flag_value(args, "--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let reps = if quick { 3 } else { 10 };
    let n = 2_000usize;
    let paper_id = "fruiht2018";
    let kind = SynthKind::Mst;
    let epsilon = 1.0;
    let config = BenchmarkConfig::quick();

    let paper = publication_by_id(paper_id).expect("registered paper");
    let rows = config.rows_for(paper.dataset().paper_n());
    let data = paper.generate(rows, config.data_seed);
    let privacy = kind.native_privacy(epsilon, data.n_rows());

    // Cold path: every batch pays a fresh fit, the cost the cache removes.
    let cold_started = Instant::now();
    for rep in 0..reps {
        let mut synth = kind.build();
        synth.fit(&data, privacy, rep as u64).expect("cold fit");
        synth.sample(n, rep as u64).expect("cold sample");
    }
    let cold_ns = cold_started.elapsed().as_nanos() as f64 / reps as f64;

    // Warm path: one cached fit, served through the full request protocol.
    let dir = std::env::temp_dir().join(format!("synrd-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let service = FitService::open(&dir, config).expect("open fit cache");
    let mut synth = kind.build();
    synth.fit(&data, privacy, 0).expect("seed fit");
    let state = synth.fitted_state().expect("fitted state");
    service
        .fits()
        .save(data.content_digest(), kind, epsilon, 0, &state);
    let request = JsonValue::obj(vec![
        ("op", JsonValue::Str("sample".to_string())),
        ("paper", JsonValue::Str(paper_id.to_string())),
        ("synth", JsonValue::Str(kind.name().to_string())),
        ("epsilon", JsonValue::Num(epsilon)),
        ("seed_index", JsonValue::Uint(0)),
        ("n", JsonValue::Uint(n as u64)),
        ("seed", JsonValue::Uint(1)),
    ]);
    // Untimed warm-up: the first request pays the one-off disk load +
    // restore; steady-state serving is what the gate measures.
    let first = handle_request(&service, &request);
    assert_eq!(
        first.get("ok"),
        Some(&JsonValue::Bool(true)),
        "warm-up request failed: {}",
        first.to_text()
    );
    let warm_started = Instant::now();
    for _ in 0..reps {
        let response = handle_request(&service, &request);
        assert_eq!(response.get("ok"), Some(&JsonValue::Bool(true)));
    }
    let warm_ns = warm_started.elapsed().as_nanos() as f64 / reps as f64;
    let _ = std::fs::remove_dir_all(&dir);

    let speedup = cold_ns / warm_ns;
    let doc = JsonValue::obj(vec![
        ("schema", JsonValue::Str("synrd-bench-serve/1".to_string())),
        (
            "mode",
            JsonValue::Str(if quick { "quick" } else { "full" }.to_string()),
        ),
        ("paper", JsonValue::Str(paper_id.to_string())),
        ("synth", JsonValue::Str(kind.name().to_string())),
        ("epsilon", JsonValue::Num(epsilon)),
        ("fit_rows", JsonValue::Uint(data.n_rows() as u64)),
        ("sample_rows", JsonValue::Uint(n as u64)),
        ("reps", JsonValue::Uint(reps as u64)),
        ("cold_fit_and_sample_ns", JsonValue::Num(cold_ns)),
        ("warm_serve_sample_ns", JsonValue::Num(warm_ns)),
        ("speedup", JsonValue::Num(speedup)),
        ("gate", JsonValue::Num(5.0)),
    ]);
    std::fs::write(&out_path, format!("{}\n", doc.to_text())).expect("write BENCH_serve.json");
    println!(
        "[bench-serve] cold={:.2}ms warm={:.2}ms speedup={speedup:.1}x (gate 5x) -> {out_path}",
        cold_ns / 1e6,
        warm_ns / 1e6,
    );
    if speedup < 5.0 {
        eprintln!("serve-mode warm sampling is below the 5x gate");
        std::process::exit(1);
    }
}
