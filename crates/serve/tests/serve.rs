//! End-to-end tests for serve mode: the network-free protocol layer
//! (`handle_request` / `handle_line`) against a seeded fit cache, and a
//! real TCP round trip on an ephemeral port.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use synrd::benchmark::{BenchmarkConfig, FitStore};
use synrd_data::{Attribute, Dataset, Domain};
use synrd_serve::{handle_line, handle_request, serve, FitService};
use synrd_store::{hex16, parse, JsonValue};
use synrd_synth::SynthKind;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("synrd-serve-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_dataset() -> Dataset {
    let domain = Domain::new(vec![
        Attribute::binary("x"),
        Attribute::binary("y"),
        Attribute::ordinal("z", 3),
    ]);
    let mut data = Dataset::with_capacity(domain, 240);
    for i in 0..240u64 {
        let h = i.wrapping_mul(2654435761).wrapping_add(17);
        data.push_row(&[(h % 2) as u32, ((h >> 3) % 2) as u32, ((h >> 5) % 3) as u32])
            .unwrap();
    }
    data
}

/// A service whose cache holds one MST fit of [`small_dataset`] at ε=1,
/// seed index 0. Returns the service and the dataset's content digest.
fn seeded_service(tag: &str) -> (FitService, u64) {
    let service = FitService::open(tmp_dir(tag), BenchmarkConfig::quick()).unwrap();
    let data = small_dataset();
    let mut synth = SynthKind::Mst.build();
    synth
        .fit(&data, SynthKind::Mst.native_privacy(1.0, data.n_rows()), 0)
        .unwrap();
    let digest = data.content_digest();
    service.fits().save(
        digest,
        SynthKind::Mst,
        1.0,
        0,
        &synth.fitted_state().unwrap(),
    );
    (service, digest)
}

fn sample_request(digest: u64, n: u64, seed: u64) -> JsonValue {
    JsonValue::obj(vec![
        ("op", JsonValue::Str("sample".to_string())),
        ("dataset", JsonValue::Str(hex16(digest))),
        ("synth", JsonValue::Str("MST".to_string())),
        ("epsilon", JsonValue::Num(1.0)),
        ("seed_index", JsonValue::Uint(0)),
        ("n", JsonValue::Uint(n)),
        ("seed", JsonValue::Uint(seed)),
    ])
}

fn assert_ok(response: &JsonValue) {
    assert_eq!(
        response.get("ok"),
        Some(&JsonValue::Bool(true)),
        "expected ok response, got {}",
        response.to_text()
    );
}

#[test]
fn sampling_from_a_cached_fit_is_deterministic() {
    let (service, digest) = seeded_service("sample");

    let a = handle_request(&service, &sample_request(digest, 500, 7));
    assert_ok(&a);
    assert_eq!(a.get("n"), Some(&JsonValue::Uint(500)));
    // Same request, same bytes: the restored sampler is deterministic in
    // the draw seed, so serve mode reproduces itself.
    let b = handle_request(&service, &sample_request(digest, 500, 7));
    assert_eq!(a.get("digest"), b.get("digest"));

    // The fit was loaded from disk exactly once; the second request hit
    // the in-memory memo.
    assert_eq!(service.fits().stats().hits, 1);
    assert_eq!(service.served().0, 2);

    // Opt-in row payload: one column per attribute, n codes each, all
    // within the attribute's cardinality.
    let mut with_rows = sample_request(digest, 64, 1);
    if let JsonValue::Obj(fields) = &mut with_rows {
        fields.push(("rows".to_string(), JsonValue::Bool(true)));
    }
    let r = handle_request(&service, &with_rows);
    assert_ok(&r);
    let columns = r.get("columns").and_then(JsonValue::as_arr).unwrap();
    assert_eq!(columns.len(), 3);
    for (attr, column) in columns.iter().enumerate() {
        let codes = column.as_arr().unwrap();
        assert_eq!(codes.len(), 64);
        let card = if attr == 2 { 3 } else { 2 };
        assert!(codes.iter().all(|c| c.as_u64().unwrap() < card));
    }
    let _ = std::fs::remove_dir_all(service.fits().root());
}

#[test]
fn workload_queries_count_the_sampled_rows() {
    let (service, digest) = seeded_service("workload");
    let mut request = sample_request(digest, 400, 3);
    if let JsonValue::Obj(fields) = &mut request {
        fields.retain(|(k, _)| k != "op");
        fields.insert(
            0,
            ("op".to_string(), JsonValue::Str("workload".to_string())),
        );
        fields.push((
            "queries".to_string(),
            JsonValue::Arr(vec![
                JsonValue::Arr(vec![JsonValue::Uint(0)]),
                JsonValue::Arr(vec![JsonValue::Uint(0), JsonValue::Uint(2)]),
            ]),
        ));
    }
    let response = handle_request(&service, &request);
    assert_ok(&response);
    let results = response.get("results").and_then(JsonValue::as_arr).unwrap();
    assert_eq!(results.len(), 2);
    for (result, cells) in results.iter().zip([2usize, 6]) {
        let counts = result.get("counts").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(counts.len(), cells);
        let total: f64 = counts.iter().map(|c| c.as_f64().unwrap()).sum();
        assert_eq!(total, 400.0, "marginal counts must sum to the sample size");
    }
    assert_eq!(service.served().1, 2);
    let _ = std::fs::remove_dir_all(service.fits().root());
}

#[test]
fn missing_fits_and_malformed_requests_are_errors_not_refits() {
    let (service, digest) = seeded_service("errors");

    let refusal = |req: &JsonValue| {
        let response = handle_request(&service, req);
        assert_eq!(response.get("ok"), Some(&JsonValue::Bool(false)));
        response
            .get("error")
            .and_then(JsonValue::as_str)
            .unwrap()
            .to_string()
    };

    // Never-fitted coordinates are refused, not refitted on demand.
    assert!(refusal(&sample_request(digest ^ 1, 10, 0)).contains("no cached fit"));
    let mut wrong_eps = sample_request(digest, 10, 0);
    if let JsonValue::Obj(fields) = &mut wrong_eps {
        for (k, v) in fields.iter_mut() {
            if k == "epsilon" {
                *v = JsonValue::Num(2.0);
            }
        }
    }
    assert!(refusal(&wrong_eps).contains("no cached fit"));

    assert!(refusal(&parse(r#"{"op":"explode"}"#).unwrap()).contains("unknown op"));
    assert!(refusal(&parse(r#"{"n":3}"#).unwrap()).contains("op"));
    assert!(refusal(
        &parse(r#"{"op":"sample","paper":"nope","synth":"MST","epsilon":1.0,"n":3}"#).unwrap()
    )
    .contains("unknown paper"));
    let bad_synth = format!(
        r#"{{"op":"sample","dataset":"{}","synth":"NOPE","epsilon":1.0,"n":3}}"#,
        hex16(digest)
    );
    assert!(refusal(&parse(&bad_synth).unwrap()).contains("unknown synthesizer"));

    // Unparseable lines get a protocol error, not a dropped connection.
    let garbled = handle_line(&service, "{not json");
    assert_eq!(garbled.get("ok"), Some(&JsonValue::Bool(false)));

    // Nothing above fitted anything: the service holds only the seeded
    // restoration path and all failures were refusals.
    assert_eq!(service.served(), (0, 0));
    let _ = std::fs::remove_dir_all(service.fits().root());
}

#[test]
fn tcp_round_trip_ping_sample_shutdown() {
    let (service, digest) = seeded_service("tcp");
    let root = service.fits().root().to_path_buf();
    let handle = serve(Arc::new(service), "127.0.0.1:0", 2).unwrap();
    let addr = handle.addr();

    let exchange = |line: String| -> JsonValue {
        let mut stream = TcpStream::connect(addr).unwrap();
        writeln!(stream, "{line}").unwrap();
        let mut response = String::new();
        BufReader::new(&stream).read_line(&mut response).unwrap();
        parse(response.trim()).unwrap()
    };

    assert_ok(&exchange(r#"{"op":"ping"}"#.to_string()));
    let sampled = exchange(sample_request(digest, 200, 9).to_text());
    assert_ok(&sampled);
    assert_eq!(sampled.get("n"), Some(&JsonValue::Uint(200)));
    let stats = exchange(r#"{"op":"stats"}"#.to_string());
    assert_ok(&stats);
    assert_eq!(stats.get("samples_served"), Some(&JsonValue::Uint(1)));
    // The stats response reports the active ML backend by name.
    let backend = synrd_synth::ml_backend::global_name();
    assert_eq!(
        stats.get("ml_backend"),
        Some(&JsonValue::Str(backend.to_string()))
    );

    assert_ok(&exchange(r#"{"op":"shutdown"}"#.to_string()));
    handle.join();
    let _ = std::fs::remove_dir_all(root);
}
