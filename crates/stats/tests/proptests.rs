//! Property-based tests for statistical invariants.

use proptest::prelude::*;
use synrd_stats::{mean, pearson, ranks, rubin_combine, spearman, special, variance};

fn finite_vec(len: std::ops::RangeInclusive<usize>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, len)
}

proptest! {
    /// Pearson stays in [-1, 1] and is symmetric.
    #[test]
    fn pearson_bounded_symmetric(x in finite_vec(2..=100), y in finite_vec(2..=100)) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        let r = pearson(x, y).unwrap();
        prop_assert!((-1.0..=1.0).contains(&r));
        let r2 = pearson(y, x).unwrap();
        prop_assert!((r - r2).abs() < 1e-9);
    }

    /// Pearson is invariant under positive affine transforms.
    #[test]
    fn pearson_affine_invariant(x in finite_vec(3..=50), a in 0.1f64..10.0, b in -100.0f64..100.0) {
        let y: Vec<f64> = x.iter().map(|v| a * v + b).collect();
        let r = pearson(&x, &y).unwrap();
        // x vs its own affine image: correlation 1 (or 0 for constant x).
        prop_assert!(r == 0.0 || (r - 1.0).abs() < 1e-6, "r = {r}");
    }

    /// Spearman is invariant under strictly monotone transforms.
    #[test]
    fn spearman_monotone_invariant(x in finite_vec(3..=60), y in finite_vec(3..=60)) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        let before = spearman(x, y).unwrap();
        let y_mono: Vec<f64> = y.iter().map(|v| v / 1e6 + (v / 1e6).powi(3)).collect();
        let after = spearman(x, &y_mono).unwrap();
        prop_assert!((before - after).abs() < 1e-6, "{before} vs {after}");
    }

    /// Ranks form a permutation-like average ranking: sum preserved.
    #[test]
    fn ranks_sum_preserved(x in finite_vec(1..=80)) {
        let r = ranks(&x);
        let expected: f64 = (1..=x.len()).map(|i| i as f64).sum();
        prop_assert!((r.iter().sum::<f64>() - expected).abs() < 1e-9);
    }

    /// Sample variance is non-negative; mean lies within [min, max].
    #[test]
    fn moments_sane(x in finite_vec(2..=100)) {
        let v = variance(&x).unwrap();
        prop_assert!(v >= -1e-9);
        let m = mean(&x);
        let lo = x.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    /// Rubin's pooled estimate is the mean of the inputs, and the interval
    /// contains it.
    #[test]
    fn rubin_pooled_sane(q in finite_vec(2..=20), vscale in 0.001f64..10.0) {
        let v = vec![vscale; q.len()];
        let r = rubin_combine(&q, &v).unwrap();
        prop_assert!((r.estimate - mean(&q)).abs() < 1e-6);
        let (lo, hi) = r.confidence_interval(0.95);
        prop_assert!(lo <= r.estimate && r.estimate <= hi);
    }

    /// Normal quantile inverts the CDF across the open unit interval.
    #[test]
    fn normal_quantile_round_trip(p in 0.001f64..0.999) {
        let x = special::normal_quantile(p);
        prop_assert!((special::normal_cdf(x) - p).abs() < 1e-5);
    }

    /// t CDF is monotone in its argument.
    #[test]
    fn t_cdf_monotone(a in -10.0f64..10.0, delta in 0.01f64..5.0, df in 1.0f64..100.0) {
        let lo = special::t_cdf(a, df);
        let hi = special::t_cdf(a + delta, df);
        prop_assert!(hi >= lo - 1e-12);
    }
}
