//! Special functions backing p-values and confidence intervals:
//! error function, normal CDF/quantile, log-gamma, regularized incomplete
//! beta, and Student-t CDF/quantile.
//!
//! Implementations follow the classic Numerical-Recipes-style series /
//! continued-fraction forms, accurate to ~1e-7 — far below the statistical
//! noise of any benchmark quantity.
#![allow(clippy::excessive_precision)] // coefficients quoted verbatim from the references

/// Error function via the Abramowitz & Stegun 7.1.26 rational approximation
/// (|error| < 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal CDF.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal quantile via Acklam's inverse-CDF approximation
/// (relative error < 1.15e-9 over (0,1)).
pub fn normal_quantile(p: f64) -> f64 {
    if !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Log-gamma via the Lanczos approximation (g = 7, n = 9).
pub fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 9] = [
        0.99999999999980993,
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function I_x(a, b) via the Lentz continued
/// fraction.
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // The front factor is symmetric under (a,b,x) -> (b,a,1-x), so both
    // branches reuse it; choosing the branch keeps the continued fraction in
    // its fast-converging regime.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (Numerical Recipes betacf).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const FPMIN: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Student-t CDF with `df` degrees of freedom.
pub fn t_cdf(t: f64, df: f64) -> f64 {
    if df <= 0.0 {
        return f64::NAN;
    }
    if !t.is_finite() {
        return if t > 0.0 { 1.0 } else { 0.0 };
    }
    let x = df / (df + t * t);
    let p = 0.5 * incomplete_beta(0.5 * df, 0.5, x);
    if t > 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Student-t quantile by bisection on [`t_cdf`] (bracketing from the normal
/// quantile; monotone, so convergence is guaranteed).
pub fn t_quantile(p: f64, df: f64) -> f64 {
    if !(0.0 < p && p < 1.0) || df <= 0.0 {
        return f64::NAN;
    }
    // Large df: the normal quantile is already accurate to < 1e-3.
    let z = normal_quantile(p);
    if df > 1e6 {
        return z;
    }
    let mut lo = z.abs().mul_add(-4.0, -2.0);
    let mut hi = z.abs().mul_add(4.0, 2.0);
    // Widen until bracketed (heavy tails at tiny df).
    while t_cdf(lo, df) > p {
        lo *= 2.0;
    }
    while t_cdf(hi, df) < p {
        hi *= 2.0;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if t_cdf(mid, df) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-10 {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.959964) - 0.975).abs() < 1e-5);
        assert!((normal_cdf(-1.959964) - 0.025).abs() < 1e-5);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-6, "p = {p}");
        }
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(5) = 24.
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        // Γ(0.5) = √π.
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn t_cdf_matches_reference() {
        // t = 2.228, df = 10 is the classic two-sided 95% critical value.
        assert!((t_cdf(2.228, 10.0) - 0.975).abs() < 1e-3);
        assert!((t_cdf(0.0, 7.0) - 0.5).abs() < 1e-12);
        // Converges to the normal for large df.
        assert!((t_cdf(1.96, 1e5) - normal_cdf(1.96)).abs() < 1e-4);
    }

    #[test]
    fn t_quantile_inverts_cdf() {
        for &df in &[1.5, 4.0, 10.0, 50.0] {
            for &p in &[0.05, 0.5, 0.9, 0.975] {
                let t = t_quantile(p, df);
                assert!((t_cdf(t, df) - p).abs() < 1e-6, "df {df}, p {p}");
            }
        }
    }

    #[test]
    fn incomplete_beta_boundaries() {
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_{0.5}(a, a) = 0.5 by symmetry.
        assert!((incomplete_beta(4.0, 4.0, 0.5) - 0.5).abs() < 1e-10);
    }
}
