//! Rubin's rules for combining estimates over multiple synthetic datasets —
//! Equations (1)–(5) of the paper (§4.3, after Raghunathan, Reiter & Rubin).
//!
//! Given per-dataset point estimates q_i with variances v_i over m synthetic
//! datasets:
//!
//! * q̂ = mean(q_i)                                  (Eq. 1)
//! * v̂ = mean(v_i)                                  (Eq. 2)
//! * b  = (1/(m−1)) Σ (q_i − q̂)²                    (Eq. 3)
//! * T  = (1 + 1/m)·b − v̂                           (Eq. 4)
//! * df = (1 − v̂ / ((1+1/m)·b))² · (m−1)            (Eq. 5)
//!
//! T can be negative in small samples; we clamp it to the standard
//! non-negative adjustment `max(T, v̂/m)` before building intervals, and
//! report the raw value alongside.

use crate::error::{Result, StatsError};
use crate::special::t_quantile;

/// Combined inference over m synthetic replicates.
#[derive(Debug, Clone, Copy)]
pub struct RubinResult {
    /// Pooled point estimate q̂.
    pub estimate: f64,
    /// Mean within-dataset variance v̂.
    pub within_variance: f64,
    /// Between-dataset variance b.
    pub between_variance: f64,
    /// Raw total variance T from Eq. 4 (may be negative).
    pub total_variance_raw: f64,
    /// Clamped total variance used for intervals.
    pub total_variance: f64,
    /// Degrees of freedom from Eq. 5.
    pub df: f64,
    /// Number of synthetic datasets combined.
    pub m: usize,
}

impl RubinResult {
    /// Two-sided confidence interval at `level` using the t reference
    /// distribution of Eq. 5.
    pub fn confidence_interval(&self, level: f64) -> (f64, f64) {
        let alpha = (1.0 - level) / 2.0;
        let df = self.df.max(1.0);
        let t = t_quantile(1.0 - alpha, df);
        let half = t * self.total_variance.sqrt();
        (self.estimate - half, self.estimate + half)
    }
}

/// Combine per-dataset estimates and variances with Rubin's rules.
///
/// # Errors
/// Mismatched lengths or m < 2.
pub fn combine(estimates: &[f64], variances: &[f64]) -> Result<RubinResult> {
    if estimates.len() != variances.len() {
        return Err(StatsError::LengthMismatch {
            left: estimates.len(),
            right: variances.len(),
        });
    }
    let m = estimates.len();
    if m < 2 {
        return Err(StatsError::TooFewObservations { needed: 2, got: m });
    }
    let mf = m as f64;
    let q_bar = estimates.iter().sum::<f64>() / mf;
    let v_bar = variances.iter().sum::<f64>() / mf;
    let b = estimates.iter().map(|q| (q - q_bar).powi(2)).sum::<f64>() / (mf - 1.0);
    let inflation = (1.0 + 1.0 / mf) * b;
    let t_raw = inflation - v_bar;
    let t_clamped = t_raw.max(v_bar / mf).max(1e-300);
    let df = if inflation > 0.0 {
        (1.0 - v_bar / inflation).powi(2) * (mf - 1.0)
    } else {
        mf - 1.0
    };
    Ok(RubinResult {
        estimate: q_bar,
        within_variance: v_bar,
        between_variance: b,
        total_variance_raw: t_raw,
        total_variance: t_clamped,
        df: df.max(1.0),
        m,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooled_estimate_is_mean() {
        let r = combine(&[1.0, 2.0, 3.0], &[0.1, 0.1, 0.1]).unwrap();
        assert!((r.estimate - 2.0).abs() < 1e-12);
        assert!((r.within_variance - 0.1).abs() < 1e-12);
        assert!((r.between_variance - 1.0).abs() < 1e-12);
        // Eq. 4: (1 + 1/3)·1 − 0.1 = 1.2333…
        assert!((r.total_variance_raw - (4.0 / 3.0 - 0.1)).abs() < 1e-12);
    }

    #[test]
    fn interval_contains_estimate_and_widens_with_b() {
        let tight = combine(&[5.0, 5.01, 4.99, 5.0], &[0.01; 4]).unwrap();
        let loose = combine(&[4.0, 6.0, 3.5, 6.5], &[0.01; 4]).unwrap();
        let (lo_t, hi_t) = tight.confidence_interval(0.95);
        let (lo_l, hi_l) = loose.confidence_interval(0.95);
        assert!(lo_t < 5.0 && 5.0 < hi_t);
        assert!(hi_l - lo_l > hi_t - lo_t);
    }

    #[test]
    fn negative_t_is_clamped() {
        // Between-variance tiny, within-variance large => raw T negative.
        let r = combine(&[1.0, 1.0001, 0.9999], &[10.0, 10.0, 10.0]).unwrap();
        assert!(r.total_variance_raw < 0.0);
        assert!(r.total_variance > 0.0);
    }

    #[test]
    fn input_validation() {
        assert!(combine(&[1.0], &[0.1]).is_err());
        assert!(combine(&[1.0, 2.0], &[0.1]).is_err());
    }
}
