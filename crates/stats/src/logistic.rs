//! Logistic regression via iteratively reweighted least squares (IRLS),
//! with a small L2 ridge for separation-prone synthetic data.
//!
//! Backs the odds-ratio findings (Assari & Bazargan, Fairman) and serves as
//! one of Jeong et al.'s three classifiers.

use crate::error::{Result, StatsError};
use crate::linalg::{inverse_spd, solve_spd, Matrix};

/// A fitted logistic model (coefficients on the logit scale).
#[derive(Debug, Clone)]
pub struct LogisticFit {
    /// Coefficients, in design-column order (index 0 = intercept when the
    /// design was built with [`Matrix::design_with_intercept`]).
    pub coefficients: Vec<f64>,
    /// Wald standard errors.
    pub std_errors: Vec<f64>,
    /// IRLS iterations used.
    pub iterations: usize,
    /// Observations.
    pub n: usize,
}

impl LogisticFit {
    /// Odds ratio of coefficient `j`.
    pub fn odds_ratio(&self, j: usize) -> f64 {
        self.coefficients[j].exp()
    }

    /// Wald z statistic of coefficient `j`.
    pub fn z_stat(&self, j: usize) -> f64 {
        self.coefficients[j] / self.std_errors[j]
    }

    /// Predicted probabilities for a design matrix.
    pub fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        Ok(x.matvec(&self.coefficients)?
            .into_iter()
            .map(|eta| 1.0 / (1.0 + (-eta).exp()))
            .collect())
    }
}

/// Options for the IRLS fit.
#[derive(Debug, Clone, Copy)]
pub struct LogisticOptions {
    /// Maximum IRLS iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the max coefficient change.
    pub tol: f64,
    /// L2 ridge added to the information matrix (guards against separation,
    /// common on small noisy synthetic subsets).
    pub ridge: f64,
}

impl Default for LogisticOptions {
    fn default() -> Self {
        LogisticOptions {
            max_iter: 60,
            tol: 1e-8,
            ridge: 1e-6,
        }
    }
}

/// Fit P(y=1|x) = σ(Xβ) by ridge-stabilized IRLS.
///
/// # Errors
/// Dimension errors, non-0/1 responses, or no convergence.
pub fn logistic(x: &Matrix, y: &[f64], options: LogisticOptions) -> Result<LogisticFit> {
    let n = x.n_rows();
    let k = x.n_cols();
    if y.len() != n {
        return Err(StatsError::LengthMismatch {
            left: y.len(),
            right: n,
        });
    }
    if n <= k {
        return Err(StatsError::TooFewObservations {
            needed: k + 1,
            got: n,
        });
    }
    for &v in y {
        if v != 0.0 && v != 1.0 {
            return Err(StatsError::InvalidParameter {
                name: "response",
                value: v,
            });
        }
    }

    let mut beta = vec![0.0; k];
    let mut iterations = 0;
    for iter in 0..options.max_iter {
        iterations = iter + 1;
        let eta = x.matvec(&beta)?;
        let mu: Vec<f64> = eta.iter().map(|e| 1.0 / (1.0 + (-e).exp())).collect();
        // IRLS weights w = μ(1−μ), clamped away from zero to keep the
        // information matrix well-conditioned under separation.
        let w: Vec<f64> = mu.iter().map(|m| (m * (1.0 - m)).max(1e-10)).collect();
        // Working response z = η + (y − μ)/w.
        let z: Vec<f64> = (0..n).map(|i| eta[i] + (y[i] - mu[i]) / w[i]).collect();

        let mut info = x.gram(Some(&w))?;
        for j in 0..k {
            info.set(j, j, info.at(j, j) + options.ridge);
        }
        let rhs = x.gram_rhs(&z, Some(&w))?;
        let new_beta = solve_spd(&info, &rhs)?;

        let delta = beta
            .iter()
            .zip(&new_beta)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        beta = new_beta;
        if delta < options.tol {
            // Standard errors from the final information matrix.
            let cov = inverse_spd(&info)?;
            let std_errors = (0..k).map(|j| cov.at(j, j).max(0.0).sqrt()).collect();
            return Ok(LogisticFit {
                coefficients: beta,
                std_errors,
                iterations,
                n,
            });
        }
    }
    Err(StatsError::NoConvergence { iterations })
}

/// Convenience: logistic regression of binary `y` on predictor columns with
/// an intercept, default options.
pub fn logistic_columns(columns: &[Vec<f64>], y: &[f64]) -> Result<LogisticFit> {
    let x = Matrix::design_with_intercept(columns)?;
    logistic(&x, y, LogisticOptions::default())
}

/// Unadjusted odds ratio from a 2×2 table with Haldane–Anscombe 0.5
/// correction: OR = (a·d)/(b·c) over exposure × outcome counts.
pub fn odds_ratio_2x2(
    exposed_yes: f64,
    exposed_no: f64,
    unexposed_yes: f64,
    unexposed_no: f64,
) -> f64 {
    let (a, b, c, d) = (
        exposed_yes + 0.5,
        exposed_no + 0.5,
        unexposed_yes + 0.5,
        unexposed_no + 0.5,
    );
    (a * d) / (b * c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn recovers_planted_logit() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 20_000;
        let x1: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
        let y: Vec<f64> = x1
            .iter()
            .map(|&x| {
                let p = 1.0 / (1.0 + (-(-0.5 + 1.5 * x)).exp());
                f64::from(rng.gen::<f64>() < p)
            })
            .collect();
        let fit = logistic_columns(&[x1], &y).unwrap();
        assert!(
            (fit.coefficients[0] + 0.5).abs() < 0.08,
            "{:?}",
            fit.coefficients
        );
        assert!(
            (fit.coefficients[1] - 1.5).abs() < 0.12,
            "{:?}",
            fit.coefficients
        );
        assert!(fit.z_stat(1) > 10.0);
    }

    #[test]
    fn survives_perfect_separation_via_ridge() {
        // x < 0 => y = 0, x > 0 => y = 1 (perfectly separable).
        let x: Vec<f64> = (-10..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| f64::from(v > 0.0)).collect();
        let fit = logistic_columns(&[x], &y);
        // Must not blow up; the ridge bounds the coefficients.
        let fit = fit.unwrap();
        assert!(fit.coefficients[1].is_finite());
        assert!(fit.coefficients[1] > 0.0);
    }

    #[test]
    fn predictions_are_probabilities() {
        let x: Vec<f64> = (0..100).map(|i| i as f64 / 50.0 - 1.0).collect();
        let y: Vec<f64> = x.iter().map(|&v| f64::from(v > 0.1)).collect();
        let design = Matrix::design_with_intercept(&[x]).unwrap();
        let fit = logistic(&design, &y, LogisticOptions::default()).unwrap();
        for p in fit.predict_proba(&design).unwrap() {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn rejects_non_binary_response() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert!(matches!(
            logistic_columns(&[x], &[0.0, 1.0, 2.0, 0.0]),
            Err(StatsError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn odds_ratio_2x2_direction() {
        // Exposure strongly associated with outcome.
        let or = odds_ratio_2x2(90.0, 10.0, 30.0, 70.0);
        assert!(or > 10.0);
        // Null association ~ 1.
        let null = odds_ratio_2x2(50.0, 50.0, 50.0, 50.0);
        assert!((null - 1.0).abs() < 0.05);
    }
}
