//! # synrd-stats — statistics substrate for epistemic-parity findings
//!
//! Every finding in the benchmark is a statistical quantity computed twice —
//! once on real data, once on DP synthetic data. This crate provides those
//! computations:
//!
//! * [`descriptive`] — means, quantiles, proportions (finding type
//!   *Descriptive Statistics*);
//! * [`correlation`] — Pearson / Spearman with the paper's |r| > 0.7
//!   "strong" convention;
//! * [`regression`] / [`logistic`](mod@logistic) — OLS/WLS and IRLS logistic regression
//!   with standard errors (coefficient-comparison finding types);
//! * [`mediation`](mod@mediation) — PROCESS-style moderation/mediation via OLS;
//! * [`hypothesis`] — two-proportion z, Welch t, χ² independence;
//! * [`bootstrap`] — standard and Bayesian (Dirichlet-weight) bootstrap, the
//!   paper's control condition;
//! * [`rubin`] — Rubin's rules (paper Eqs. 1–5) for combining estimates over
//!   synthetic replicates;
//! * [`special`] / [`linalg`] — numerical underpinnings.

#![allow(clippy::needless_range_loop)] // indexed loops are the clearer idiom in numeric kernels
pub mod bootstrap;
pub mod correlation;
pub mod descriptive;
pub mod error;
pub mod hypothesis;
pub mod linalg;
pub mod logistic;
pub mod mediation;
pub mod regression;
pub mod rubin;
pub mod special;

pub use correlation::{is_strong, pearson, ranks, spearman};
pub use descriptive::{
    iqr, mean, mean_difference, median, quantile, std_dev, variance, weighted_mean,
};
pub use error::{Result, StatsError};
pub use hypothesis::{chi_square_independence, two_proportion_z, welch_t, TestResult};
pub use linalg::Matrix;
pub use logistic::{logistic, logistic_columns, odds_ratio_2x2, LogisticFit, LogisticOptions};
pub use mediation::{mediation, moderation, Mediation, Moderation};
pub use regression::{ols, ols_columns, wls, LinearFit};
pub use rubin::{combine as rubin_combine, RubinResult};
