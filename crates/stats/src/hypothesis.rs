//! Hypothesis tests: two-proportion z, Welch's t, and χ² independence.
//!
//! Findings in the benchmark papers frequently assert that a gap is
//! "statistically significant"; these tests instantiate that language.

use crate::descriptive::{mean, variance};
use crate::error::{Result, StatsError};
use crate::special::{normal_cdf, t_cdf};

/// Outcome of a two-sided test.
#[derive(Debug, Clone, Copy)]
pub struct TestResult {
    /// Test statistic (z, t, or χ²).
    pub statistic: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Degrees of freedom where applicable (NaN for z tests).
    pub df: f64,
}

impl TestResult {
    /// Significance at a level.
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-proportion z-test (pooled variance).
///
/// # Errors
/// Zero-sized groups.
pub fn two_proportion_z(p1: f64, n1: usize, p2: f64, n2: usize) -> Result<TestResult> {
    if n1 == 0 || n2 == 0 {
        return Err(StatsError::TooFewObservations {
            needed: 1,
            got: n1.min(n2),
        });
    }
    let (n1f, n2f) = (n1 as f64, n2 as f64);
    let pooled = (p1 * n1f + p2 * n2f) / (n1f + n2f);
    let se = (pooled * (1.0 - pooled) * (1.0 / n1f + 1.0 / n2f)).sqrt();
    let z = if se > 0.0 { (p1 - p2) / se } else { 0.0 };
    Ok(TestResult {
        statistic: z,
        p_value: 2.0 * (1.0 - normal_cdf(z.abs())),
        df: f64::NAN,
    })
}

/// Welch's unequal-variance t-test with Welch–Satterthwaite df.
pub fn welch_t(a: &[f64], b: &[f64]) -> Result<TestResult> {
    let va = variance(a)?;
    let vb = variance(b)?;
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let se2 = va / na + vb / nb;
    if se2 <= 0.0 {
        return Ok(TestResult {
            statistic: 0.0,
            p_value: 1.0,
            df: na + nb - 2.0,
        });
    }
    let t = (mean(a) - mean(b)) / se2.sqrt();
    let df = se2 * se2
        / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0)).max(f64::MIN_POSITIVE);
    Ok(TestResult {
        statistic: t,
        p_value: 2.0 * (1.0 - t_cdf(t.abs(), df)),
        df,
    })
}

/// χ² test of independence on a contingency table given as rows of counts.
/// Uses the normal-approximation p-value via the Wilson–Hilferty cube-root
/// transform, accurate for the table sizes in the benchmark.
pub fn chi_square_independence(table: &[Vec<f64>]) -> Result<TestResult> {
    let r = table.len();
    let c = table.first().map_or(0, Vec::len);
    if r < 2 || c < 2 {
        return Err(StatsError::TooFewObservations {
            needed: 2,
            got: r.min(c),
        });
    }
    for row in table {
        if row.len() != c {
            return Err(StatsError::LengthMismatch {
                left: row.len(),
                right: c,
            });
        }
    }
    let total: f64 = table.iter().flatten().sum();
    if total <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "table_total",
            value: total,
        });
    }
    let row_sums: Vec<f64> = table.iter().map(|row| row.iter().sum()).collect();
    let col_sums: Vec<f64> = (0..c)
        .map(|j| table.iter().map(|row| row[j]).sum())
        .collect();
    let mut chi2 = 0.0;
    for i in 0..r {
        for j in 0..c {
            let expected = row_sums[i] * col_sums[j] / total;
            if expected > 0.0 {
                chi2 += (table[i][j] - expected).powi(2) / expected;
            }
        }
    }
    let df = ((r - 1) * (c - 1)) as f64;
    // Wilson–Hilferty: (χ²/df)^(1/3) ≈ Normal(1 − 2/(9df), 2/(9df)).
    let wh = ((chi2 / df).powf(1.0 / 3.0) - (1.0 - 2.0 / (9.0 * df))) / (2.0 / (9.0 * df)).sqrt();
    Ok(TestResult {
        statistic: chi2,
        p_value: 1.0 - normal_cdf(wh),
        df,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportion_test_detects_gap() {
        let t = two_proportion_z(0.30, 2000, 0.20, 2000).unwrap();
        assert!(t.significant(0.001), "p = {}", t.p_value);
        let null = two_proportion_z(0.25, 500, 0.25, 500).unwrap();
        assert!(!null.significant(0.05));
    }

    #[test]
    fn welch_detects_mean_shift() {
        let a: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
        let b: Vec<f64> = (0..200).map(|i| (i % 10) as f64 + 2.0).collect();
        let t = welch_t(&a, &b).unwrap();
        assert!(t.significant(1e-6));
        assert!(t.statistic < 0.0);
    }

    #[test]
    fn chi_square_independence_works() {
        // Strong association.
        let dep = chi_square_independence(&[vec![90.0, 10.0], vec![30.0, 70.0]]).unwrap();
        assert!(dep.significant(1e-6), "p = {}", dep.p_value);
        // Independence.
        let ind = chi_square_independence(&[vec![50.0, 50.0], vec![50.0, 50.0]]).unwrap();
        assert!(!ind.significant(0.05), "p = {}", ind.p_value);
    }

    #[test]
    fn input_validation() {
        assert!(two_proportion_z(0.5, 0, 0.5, 10).is_err());
        assert!(chi_square_independence(&[vec![1.0, 2.0]]).is_err());
    }
}
