//! Descriptive statistics: means, variances, quantiles, proportions.
//!
//! These back the paper's *Descriptive Statistics* finding type (8 findings,
//! including the hard ones #4 and #39).

use crate::error::{Result, StatsError};

/// Arithmetic mean; NaN on empty input.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Unbiased sample variance (n−1 denominator).
///
/// # Errors
/// [`StatsError::TooFewObservations`] with fewer than 2 values.
pub fn variance(values: &[f64]) -> Result<f64> {
    if values.len() < 2 {
        return Err(StatsError::TooFewObservations {
            needed: 2,
            got: values.len(),
        });
    }
    let m = mean(values);
    Ok(values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64)
}

/// Sample standard deviation.
pub fn std_dev(values: &[f64]) -> Result<f64> {
    Ok(variance(values)?.sqrt())
}

/// Weighted mean with non-negative weights.
///
/// # Errors
/// Length mismatch or all-zero weights.
pub fn weighted_mean(values: &[f64], weights: &[f64]) -> Result<f64> {
    if values.len() != weights.len() {
        return Err(StatsError::LengthMismatch {
            left: values.len(),
            right: weights.len(),
        });
    }
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "weights_sum",
            value: total,
        });
    }
    Ok(values.iter().zip(weights).map(|(v, w)| v * w).sum::<f64>() / total)
}

/// Linear-interpolation quantile (type 7). Sorts a copy.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] * (1.0 - (pos - lo as f64)) + sorted[hi] * (pos - lo as f64)
    }
}

/// Median.
pub fn median(values: &[f64]) -> f64 {
    quantile(values, 0.5)
}

/// Interquartile range.
pub fn iqr(values: &[f64]) -> f64 {
    quantile(values, 0.75) - quantile(values, 0.25)
}

/// Proportion of values satisfying a predicate.
pub fn proportion_where(values: &[f64], pred: impl Fn(f64) -> bool) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().filter(|&&v| pred(v)).count() as f64 / values.len() as f64
}

/// Standard error of a proportion p estimated from n observations.
pub fn proportion_se(p: f64, n: usize) -> f64 {
    if n == 0 {
        return f64::NAN;
    }
    (p * (1.0 - p) / n as f64).sqrt()
}

/// Difference of two group means.
pub fn mean_difference(a: &[f64], b: &[f64]) -> f64 {
    mean(a) - mean(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&v) - 2.5).abs() < 1e-12);
        assert!((variance(&v).unwrap() - 5.0 / 3.0).abs() < 1e-12);
        assert!((median(&v) - 2.5).abs() < 1e-12);
        assert!((iqr(&v) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_mean_matches_manual() {
        let wm = weighted_mean(&[1.0, 3.0], &[1.0, 3.0]).unwrap();
        assert!((wm - 2.5).abs() < 1e-12);
        assert!(weighted_mean(&[1.0], &[1.0, 2.0]).is_err());
        assert!(weighted_mean(&[1.0], &[0.0]).is_err());
    }

    #[test]
    fn too_few_observations() {
        assert!(matches!(
            variance(&[1.0]),
            Err(StatsError::TooFewObservations { .. })
        ));
    }

    #[test]
    fn proportions() {
        let v = [0.0, 1.0, 1.0, 0.0];
        assert!((proportion_where(&v, |x| x > 0.5) - 0.5).abs() < 1e-12);
        assert!((proportion_se(0.5, 100) - 0.05).abs() < 1e-12);
    }
}
