//! Error taxonomy for the statistics substrate.

use std::fmt;

/// Errors from statistical routines.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// Inputs had mismatched lengths.
    LengthMismatch { left: usize, right: usize },
    /// Not enough observations for the requested statistic.
    TooFewObservations { needed: usize, got: usize },
    /// A matrix was singular (or numerically so) during a solve.
    SingularMatrix,
    /// Dimensions were inconsistent for a matrix operation.
    DimensionMismatch {
        rows: usize,
        cols: usize,
        expected: usize,
    },
    /// An iterative fit failed to converge.
    NoConvergence { iterations: usize },
    /// A parameter was outside its valid range.
    InvalidParameter { name: &'static str, value: f64 },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            StatsError::TooFewObservations { needed, got } => {
                write!(f, "too few observations: needed {needed}, got {got}")
            }
            StatsError::SingularMatrix => write!(f, "matrix is singular"),
            StatsError::DimensionMismatch {
                rows,
                cols,
                expected,
            } => write!(f, "dimension mismatch: {rows}x{cols}, expected {expected}"),
            StatsError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
            StatsError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name} = {value}")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// Convenience alias used throughout the stats crate.
pub type Result<T> = std::result::Result<T, StatsError>;
