//! Moderation and mediation analysis in the Preacher & Hayes (PROCESS) style,
//! approximated with OLS — the paper's own reproduction of Fruiht & Chan used
//! the same approximation since the original R macro's exact output was
//! unavailable (see DESIGN.md §3).

use crate::error::Result;
use crate::linalg::Matrix;
use crate::regression::{ols, LinearFit};

/// Result of a moderation analysis y ~ x + m + x·m (+ covariates).
#[derive(Debug, Clone)]
pub struct Moderation {
    /// Effect of x at m = 0.
    pub direct: f64,
    /// Effect of the moderator at x = 0.
    pub moderator: f64,
    /// Interaction coefficient (the moderation effect).
    pub interaction: f64,
    /// t statistic of the interaction.
    pub interaction_t: f64,
    /// Full fit for further inspection.
    pub fit: LinearFit,
}

/// Fit y ~ x + m + x·m + covariates and report the interaction structure.
pub fn moderation(y: &[f64], x: &[f64], m: &[f64], covariates: &[Vec<f64>]) -> Result<Moderation> {
    let interaction_col: Vec<f64> = x.iter().zip(m).map(|(a, b)| a * b).collect();
    let mut columns: Vec<Vec<f64>> = vec![x.to_vec(), m.to_vec(), interaction_col];
    columns.extend(covariates.iter().cloned());
    let design = Matrix::design_with_intercept(&columns)?;
    let fit = ols(&design, y)?;
    Ok(Moderation {
        direct: fit.coefficients[1],
        moderator: fit.coefficients[2],
        interaction: fit.coefficients[3],
        interaction_t: fit.t_stat(3),
        fit,
    })
}

/// Result of a simple mediation analysis x → mediator → y.
#[derive(Debug, Clone, Copy)]
pub struct Mediation {
    /// a path: effect of x on the mediator.
    pub a_path: f64,
    /// b path: effect of the mediator on y, controlling for x.
    pub b_path: f64,
    /// Direct effect c′ of x on y, controlling for the mediator.
    pub direct: f64,
    /// Indirect effect a·b.
    pub indirect: f64,
    /// Sobel z statistic for the indirect effect.
    pub sobel_z: f64,
}

/// Baron–Kenny / Sobel mediation: fits mediator ~ x and y ~ x + mediator.
pub fn mediation(y: &[f64], x: &[f64], mediator: &[f64]) -> Result<Mediation> {
    let design_a = Matrix::design_with_intercept(&[x.to_vec()])?;
    let fit_a = ols(&design_a, mediator)?;
    let (a, sa) = (fit_a.coefficients[1], fit_a.std_errors[1]);

    let design_b = Matrix::design_with_intercept(&[x.to_vec(), mediator.to_vec()])?;
    let fit_b = ols(&design_b, y)?;
    let direct = fit_b.coefficients[1];
    let (b, sb) = (fit_b.coefficients[2], fit_b.std_errors[2]);

    let sobel_se = (b * b * sa * sa + a * a * sb * sb).sqrt();
    let indirect = a * b;
    Ok(Mediation {
        a_path: a,
        b_path: b,
        direct,
        indirect,
        sobel_z: if sobel_se > 0.0 {
            indirect / sobel_se
        } else {
            0.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn noise(rng: &mut StdRng) -> f64 {
        rng.gen::<f64>() - 0.5
    }

    #[test]
    fn moderation_recovers_interaction() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 4000;
        let x: Vec<f64> = (0..n).map(|_| f64::from(rng.gen::<bool>())).collect();
        let m: Vec<f64> = (0..n).map(|_| f64::from(rng.gen::<bool>())).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| 1.0 + 0.8 * x[i] + 0.5 * m[i] - 0.4 * x[i] * m[i] + noise(&mut rng))
            .collect();
        let result = moderation(&y, &x, &m, &[]).unwrap();
        assert!((result.direct - 0.8).abs() < 0.05);
        assert!((result.interaction + 0.4).abs() < 0.08);
        assert!(result.interaction_t < -4.0);
    }

    #[test]
    fn mediation_recovers_indirect_path() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 4000;
        let x: Vec<f64> = (0..n).map(|_| f64::from(rng.gen::<bool>())).collect();
        // x -> m with a = 0.9; m -> y with b = 0.7; direct c' = 0.2.
        let m: Vec<f64> = x.iter().map(|&xi| 0.9 * xi + noise(&mut rng)).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| 0.2 * x[i] + 0.7 * m[i] + noise(&mut rng))
            .collect();
        let result = mediation(&y, &x, &m).unwrap();
        assert!((result.a_path - 0.9).abs() < 0.05);
        assert!((result.b_path - 0.7).abs() < 0.05);
        assert!((result.direct - 0.2).abs() < 0.05);
        assert!((result.indirect - 0.63).abs() < 0.07);
        assert!(result.sobel_z > 5.0);
    }
}
