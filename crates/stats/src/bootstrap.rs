//! Resampling: the standard bootstrap and the Bayesian bootstrap (Rubin
//! 1981) used as the paper's control condition ("real, bootstrap" row of
//! Figure 3).

use crate::error::{Result, StatsError};
use rand::Rng;

/// Draw one vector of Bayesian-bootstrap weights: w ~ Dirichlet(1,…,1),
/// sampled as normalized Exp(1) draws. Weights sum to 1.
pub fn bayesian_bootstrap_weights<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<f64> {
    let mut weights: Vec<f64> = (0..n)
        .map(|_| -rng.gen::<f64>().max(f64::MIN_POSITIVE).ln())
        .collect();
    let total: f64 = weights.iter().sum();
    weights.iter_mut().for_each(|w| *w /= total);
    weights
}

/// Run `b` Bayesian-bootstrap replicates of a weighted statistic.
///
/// The statistic receives Dirichlet weights over the *original* rows, which
/// is the smoothed analogue of resampling — each replicate is an i.i.d. draw
/// from the posterior predictive of the data-generating mechanism.
pub fn bayesian_bootstrap<R, F>(n: usize, b: usize, rng: &mut R, mut stat: F) -> Result<Vec<f64>>
where
    R: Rng + ?Sized,
    F: FnMut(&[f64]) -> f64,
{
    if n == 0 {
        return Err(StatsError::TooFewObservations { needed: 1, got: 0 });
    }
    Ok((0..b)
        .map(|_| {
            let w = bayesian_bootstrap_weights(n, rng);
            stat(&w)
        })
        .collect())
}

/// Run `b` standard bootstrap replicates: each replicate passes resampled
/// row indices (with replacement) to the statistic.
pub fn bootstrap<R, F>(n: usize, b: usize, rng: &mut R, mut stat: F) -> Result<Vec<f64>>
where
    R: Rng + ?Sized,
    F: FnMut(&[usize]) -> f64,
{
    if n == 0 {
        return Err(StatsError::TooFewObservations { needed: 1, got: 0 });
    }
    let mut idx = vec![0usize; n];
    Ok((0..b)
        .map(|_| {
            for slot in idx.iter_mut() {
                *slot = rng.gen_range(0..n);
            }
            stat(&idx)
        })
        .collect())
}

/// Percentile confidence interval from replicate statistics.
pub fn percentile_ci(replicates: &[f64], level: f64) -> (f64, f64) {
    if replicates.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let mut sorted = replicates.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite replicates"));
    let alpha = (1.0 - level) / 2.0;
    let pick = |q: f64| {
        let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            sorted[lo] * (1.0 - (pos - lo as f64)) + sorted[hi] * (pos - lo as f64)
        }
    };
    (pick(alpha), pick(1.0 - alpha))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dirichlet_weights_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = bayesian_bootstrap_weights(100, &mut rng);
        assert_eq!(w.len(), 100);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn bayesian_bootstrap_centers_on_weighted_mean() {
        let mut rng = StdRng::seed_from_u64(4);
        let data: Vec<f64> = (0..500).map(|i| (i % 10) as f64).collect();
        let reps = bayesian_bootstrap(data.len(), 400, &mut rng, |w| {
            data.iter().zip(w).map(|(x, wi)| x * wi).sum::<f64>()
        })
        .unwrap();
        let center = reps.iter().sum::<f64>() / reps.len() as f64;
        assert!((center - 4.5).abs() < 0.05, "center = {center}");
        let (lo, hi) = percentile_ci(&reps, 0.95);
        assert!(lo < 4.5 && 4.5 < hi);
    }

    #[test]
    fn standard_bootstrap_varies_replicates() {
        let mut rng = StdRng::seed_from_u64(5);
        let data: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let reps = bootstrap(data.len(), 100, &mut rng, |idx| {
            idx.iter().map(|&i| data[i]).sum::<f64>() / idx.len() as f64
        })
        .unwrap();
        let min = reps.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = reps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max > min, "replicates must vary");
    }

    #[test]
    fn empty_data_errors() {
        let mut rng = StdRng::seed_from_u64(6);
        assert!(bootstrap(0, 10, &mut rng, |_| 0.0).is_err());
        assert!(bayesian_bootstrap(0, 10, &mut rng, |_| 0.0).is_err());
    }
}
