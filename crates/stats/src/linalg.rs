//! Dense linear algebra: just enough for regression via normal equations.
//!
//! The largest systems in the benchmark are the one-hot designs of Jeong et
//! al. (~300 columns), for which Cholesky on the Gram matrix is fast and
//! stable with a small ridge.

use crate::error::{Result, StatsError};

/// Row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from row-major data.
    ///
    /// # Errors
    /// [`StatsError::DimensionMismatch`] if `data.len() != rows*cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Result<Matrix> {
        if data.len() != rows * cols {
            return Err(StatsError::DimensionMismatch {
                rows,
                cols,
                expected: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Build a design matrix from columns (each a predictor), prepending an
    /// intercept column of ones.
    pub fn design_with_intercept(columns: &[Vec<f64>]) -> Result<Matrix> {
        let n = columns.first().map_or(0, Vec::len);
        for c in columns {
            if c.len() != n {
                return Err(StatsError::LengthMismatch {
                    left: n,
                    right: c.len(),
                });
            }
        }
        let cols = columns.len() + 1;
        let mut m = Matrix::zeros(n, cols);
        for r in 0..n {
            m.set(r, 0, 1.0);
            for (j, c) in columns.iter().enumerate() {
                m.set(r, j + 1, c[r]);
            }
        }
        Ok(m)
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Gram matrix XᵀWX for optional per-row weights W (identity if `None`).
    pub fn gram(&self, weights: Option<&[f64]>) -> Result<Matrix> {
        if let Some(w) = weights {
            if w.len() != self.rows {
                return Err(StatsError::LengthMismatch {
                    left: w.len(),
                    right: self.rows,
                });
            }
        }
        let k = self.cols;
        let mut g = Matrix::zeros(k, k);
        for r in 0..self.rows {
            let w = weights.map_or(1.0, |w| w[r]);
            let row = self.row(r);
            for i in 0..k {
                let wi = w * row[i];
                // Symmetric: fill upper triangle, mirror after.
                for j in i..k {
                    g.data[i * k + j] += wi * row[j];
                }
            }
        }
        for i in 0..k {
            for j in 0..i {
                g.data[i * k + j] = g.data[j * k + i];
            }
        }
        Ok(g)
    }

    /// XᵀWy for optional weights.
    pub fn gram_rhs(&self, y: &[f64], weights: Option<&[f64]>) -> Result<Vec<f64>> {
        if y.len() != self.rows {
            return Err(StatsError::LengthMismatch {
                left: y.len(),
                right: self.rows,
            });
        }
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let w = weights.map_or(1.0, |w| w[r]);
            let row = self.row(r);
            let wy = w * y[r];
            for (o, &x) in out.iter_mut().zip(row) {
                *o += wy * x;
            }
        }
        Ok(out)
    }

    /// X·v.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(StatsError::LengthMismatch {
                left: v.len(),
                right: self.cols,
            });
        }
        Ok((0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }
}

/// Cholesky decomposition of a symmetric positive-definite matrix,
/// returning the lower factor L with A = L·Lᵀ.
///
/// # Errors
/// [`StatsError::SingularMatrix`] when a pivot is non-positive.
pub fn cholesky(a: &Matrix) -> Result<Matrix> {
    let n = a.n_rows();
    if a.n_cols() != n {
        return Err(StatsError::DimensionMismatch {
            rows: a.n_rows(),
            cols: a.n_cols(),
            expected: n * n,
        });
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.at(i, j);
            for k in 0..j {
                sum -= l.at(i, k) * l.at(j, k);
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return Err(StatsError::SingularMatrix);
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.at(j, j));
            }
        }
    }
    Ok(l)
}

/// Solve A·x = b for symmetric positive-definite A via Cholesky, retrying
/// with an escalating ridge (A + λI) when A is numerically singular —
/// the standard stabilization for collinear one-hot designs.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = a.n_rows();
    if b.len() != n {
        return Err(StatsError::LengthMismatch {
            left: b.len(),
            right: n,
        });
    }
    let mean_diag: f64 = (0..n).map(|i| a.at(i, i)).sum::<f64>() / n.max(1) as f64;
    let mut ridge = 0.0;
    for attempt in 0..6 {
        let mut work = a.clone();
        if ridge > 0.0 {
            for i in 0..n {
                work.set(i, i, work.at(i, i) + ridge);
            }
        }
        match cholesky(&work) {
            Ok(l) => return Ok(cholesky_solve(&l, b)),
            Err(_) if attempt < 5 => {
                ridge = if ridge == 0.0 {
                    1e-10 * mean_diag.max(1e-12)
                } else {
                    ridge * 100.0
                };
            }
            Err(e) => return Err(e),
        }
    }
    Err(StatsError::SingularMatrix)
}

/// Solve L·Lᵀ·x = b given the lower Cholesky factor.
fn cholesky_solve(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.n_rows();
    // Forward solve L·y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l.at(i, k) * y[k];
        }
        y[i] = sum / l.at(i, i);
    }
    // Back solve Lᵀ·x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in (i + 1)..n {
            sum -= l.at(k, i) * x[k];
        }
        x[i] = sum / l.at(i, i);
    }
    x
}

/// Inverse of a symmetric positive-definite matrix (for coefficient
/// standard errors). Solves against the identity column by column.
pub fn inverse_spd(a: &Matrix) -> Result<Matrix> {
    let n = a.n_rows();
    let mut inv = Matrix::zeros(n, n);
    let mut e = vec![0.0; n];
    for j in 0..n {
        e.iter_mut().for_each(|v| *v = 0.0);
        e[j] = 1.0;
        let col = solve_spd(a, &e)?;
        for i in 0..n {
            inv.set(i, j, col[i]);
        }
    }
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_round_trip() {
        // A = Lref·Lrefᵀ for a known L.
        let a = Matrix::from_rows(2, 2, vec![4.0, 2.0, 2.0, 5.0]).unwrap();
        let l = cholesky(&a).unwrap();
        assert!((l.at(0, 0) - 2.0).abs() < 1e-12);
        assert!((l.at(1, 0) - 1.0).abs() < 1e-12);
        assert!((l.at(1, 1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_spd_solves() {
        let a = Matrix::from_rows(2, 2, vec![4.0, 2.0, 2.0, 5.0]).unwrap();
        let x = solve_spd(&a, &[10.0, 13.0]).unwrap();
        // 4x + 2y = 10, 2x + 5y = 13 => x = 1.5, y = 2.
        assert!((x[0] - 1.5).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn solve_spd_survives_collinearity_with_ridge() {
        // Perfectly collinear columns: rank 1.
        let a = Matrix::from_rows(2, 2, vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        let x = solve_spd(&a, &[2.0, 2.0]).unwrap();
        // Any solution with x0 + x1 ≈ 2 is acceptable under ridge.
        assert!((x[0] + x[1] - 2.0).abs() < 1e-3, "{x:?}");
    }

    #[test]
    fn gram_matches_manual() {
        let x = Matrix::from_rows(3, 2, vec![1.0, 2.0, 1.0, 3.0, 1.0, 4.0]).unwrap();
        let g = x.gram(None).unwrap();
        assert!((g.at(0, 0) - 3.0).abs() < 1e-12);
        assert!((g.at(0, 1) - 9.0).abs() < 1e-12);
        assert!((g.at(1, 1) - 29.0).abs() < 1e-12);
        let rhs = x.gram_rhs(&[1.0, 2.0, 3.0], None).unwrap();
        assert!((rhs[0] - 6.0).abs() < 1e-12);
        assert!((rhs[1] - 20.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_spd_inverts() {
        let a = Matrix::from_rows(2, 2, vec![4.0, 2.0, 2.0, 5.0]).unwrap();
        let inv = inverse_spd(&a).unwrap();
        // A * A^-1 = I.
        for i in 0..2 {
            for j in 0..2 {
                let v: f64 = (0..2).map(|k| a.at(i, k) * inv.at(k, j)).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((v - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn design_with_intercept_shapes() {
        let m = Matrix::design_with_intercept(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_cols(), 3);
        assert_eq!(m.row(0), &[1.0, 1.0, 3.0]);
    }
}
