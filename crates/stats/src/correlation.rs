//! Correlation measures: Pearson, Spearman (average-rank ties), and the
//! paper's qualitative "strong correlation" convention (|r| > 0.7).

use crate::error::{Result, StatsError};

/// Pearson product-moment correlation.
///
/// # Errors
/// Length mismatch or fewer than 2 points. Returns 0 when either variable is
/// constant (the convention the findings code relies on for noisy synthetic
/// data where a column can collapse).
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if x.len() < 2 {
        return Err(StatsError::TooFewObservations {
            needed: 2,
            got: x.len(),
        });
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx <= 0.0 || vy <= 0.0 {
        return Ok(0.0);
    }
    Ok((cov / (vx.sqrt() * vy.sqrt())).clamp(-1.0, 1.0))
}

/// Average ranks (1-based) with ties sharing the mean rank.
pub fn ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite values"));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Ties i..=j share the average rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation (Pearson on average ranks, so ties are handled
/// exactly).
pub fn spearman(x: &[f64], y: &[f64]) -> Result<f64> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    pearson(&ranks(x), &ranks(y))
}

/// The paper's convention: a correlation is "strong" when |r| > 0.7.
pub fn is_strong(r: f64) -> bool {
    r.abs() > 0.7
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_and_constant() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg).unwrap() + 1.0).abs() < 1e-12);
        let c = [5.0; 4];
        assert_eq!(pearson(&x, &c).unwrap(), 0.0);
    }

    #[test]
    fn ranks_average_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v: &f64| v.exp()).collect(); // monotone
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        // Pearson is below 1 for the same data.
        assert!(pearson(&x, &y).unwrap() < 1.0);
    }

    #[test]
    fn strong_convention() {
        assert!(is_strong(0.71));
        assert!(is_strong(-0.9));
        assert!(!is_strong(0.69));
    }

    #[test]
    fn length_mismatch_errors() {
        assert!(pearson(&[1.0], &[1.0, 2.0]).is_err());
        assert!(spearman(&[1.0], &[1.0, 2.0]).is_err());
    }
}
