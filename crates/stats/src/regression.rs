//! Ordinary and weighted least squares via the normal equations.
//!
//! Backs the paper's *Regression Between-Coefficients*, *Fixed Coefficient
//! (Sign)*, *Coefficient Difference* and *Causal Paths* finding types.

use crate::error::{Result, StatsError};
use crate::linalg::{inverse_spd, solve_spd, Matrix};

/// A fitted linear model. Coefficient 0 is the intercept when the design was
/// built with [`Matrix::design_with_intercept`].
#[derive(Debug, Clone)]
pub struct LinearFit {
    /// Estimated coefficients, in design-column order.
    pub coefficients: Vec<f64>,
    /// Standard errors of the coefficients (classical, homoscedastic).
    pub std_errors: Vec<f64>,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Residual variance (SSR / (n − k)).
    pub residual_variance: f64,
    /// Observations used.
    pub n: usize,
}

impl LinearFit {
    /// t statistic of coefficient `j`.
    pub fn t_stat(&self, j: usize) -> f64 {
        self.coefficients[j] / self.std_errors[j]
    }

    /// Predicted values for a design matrix.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        x.matvec(&self.coefficients)
    }
}

/// Fit y = Xβ by OLS.
///
/// # Errors
/// Dimension mismatches, or an unresolvably singular Gram matrix.
pub fn ols(x: &Matrix, y: &[f64]) -> Result<LinearFit> {
    wls(x, y, None)
}

/// Fit weighted least squares with optional per-row weights (None = OLS).
pub fn wls(x: &Matrix, y: &[f64], weights: Option<&[f64]>) -> Result<LinearFit> {
    let n = x.n_rows();
    let k = x.n_cols();
    if y.len() != n {
        return Err(StatsError::LengthMismatch {
            left: y.len(),
            right: n,
        });
    }
    if n <= k {
        return Err(StatsError::TooFewObservations {
            needed: k + 1,
            got: n,
        });
    }
    let gram = x.gram(weights)?;
    let rhs = x.gram_rhs(y, weights)?;
    let coefficients = solve_spd(&gram, &rhs)?;

    // Residuals and fit quality (weighted when weights are given).
    let fitted = x.matvec(&coefficients)?;
    let mut ssr = 0.0;
    let mut sst = 0.0;
    let mut wsum = 0.0;
    let ybar = match weights {
        Some(w) => {
            let tw: f64 = w.iter().sum();
            y.iter().zip(w).map(|(yi, wi)| yi * wi).sum::<f64>() / tw
        }
        None => y.iter().sum::<f64>() / n as f64,
    };
    for r in 0..n {
        let w = weights.map_or(1.0, |w| w[r]);
        ssr += w * (y[r] - fitted[r]).powi(2);
        sst += w * (y[r] - ybar).powi(2);
        wsum += w;
    }
    let dof = (wsum - k as f64).max(1.0);
    let residual_variance = ssr / dof;
    let cov = inverse_spd(&gram)?;
    let std_errors = (0..k)
        .map(|j| (residual_variance * cov.at(j, j)).max(0.0).sqrt())
        .collect();
    let r_squared = if sst > 0.0 { 1.0 - ssr / sst } else { 0.0 };

    Ok(LinearFit {
        coefficients,
        std_errors,
        r_squared,
        residual_variance,
        n,
    })
}

/// Convenience: OLS of `y` on predictor columns with an intercept.
pub fn ols_columns(columns: &[Vec<f64>], y: &[f64]) -> Result<LinearFit> {
    let x = Matrix::design_with_intercept(columns)?;
    ols(&x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_known_coefficients() {
        // y = 2 + 3·x, exactly.
        let xcol: Vec<f64> = (0..50).map(|i| i as f64 / 10.0).collect();
        let y: Vec<f64> = xcol.iter().map(|x| 2.0 + 3.0 * x).collect();
        let fit = ols_columns(&[xcol], &y).unwrap();
        assert!((fit.coefficients[0] - 2.0).abs() < 1e-9);
        assert!((fit.coefficients[1] - 3.0).abs() < 1e-9);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn multivariate_with_noise() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let n = 5000;
        let x1: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
        let x2: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| 1.0 + 0.5 * x1[i] - 1.5 * x2[i] + 0.1 * (rng.gen::<f64>() - 0.5))
            .collect();
        let fit = ols_columns(&[x1, x2], &y).unwrap();
        assert!((fit.coefficients[1] - 0.5).abs() < 0.01);
        assert!((fit.coefficients[2] + 1.5).abs() < 0.01);
        // t statistics should be overwhelming.
        assert!(fit.t_stat(1).abs() > 50.0);
    }

    #[test]
    fn weights_shift_the_fit() {
        // Two clusters with different relationships; upweighting one pulls
        // the slope toward it.
        let x = vec![0.0, 1.0, 0.0, 1.0];
        let y = vec![0.0, 1.0, 0.0, 3.0];
        let even = wls(
            &Matrix::design_with_intercept(std::slice::from_ref(&x)).unwrap(),
            &y,
            Some(&[1.0, 1.0, 1.0, 1.0]),
        )
        .unwrap();
        let tilted = wls(
            &Matrix::design_with_intercept(&[x]).unwrap(),
            &y,
            Some(&[1.0, 1.0, 1.0, 10.0]),
        )
        .unwrap();
        assert!(tilted.coefficients[1] > even.coefficients[1]);
    }

    #[test]
    fn rejects_underdetermined() {
        let x = Matrix::design_with_intercept(&[vec![1.0, 2.0]]).unwrap();
        assert!(matches!(
            ols(&x, &[1.0, 2.0]),
            Err(StatsError::TooFewObservations { .. })
        ));
    }
}
