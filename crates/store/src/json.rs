//! The canonical JSON document model and writer.
//!
//! The build environment has no crates.io access, so this is a hand-rolled,
//! dependency-free stand-in for serde_json — deliberately minimal, but with
//! two properties serde_json does not give us out of the box:
//!
//! * **Canonical output.** The writer is compact (no whitespace), object
//!   fields keep their construction order (every codec in this crate emits
//!   a fixed field order), and every scalar has exactly one rendering — so
//!   equal values always serialize to equal bytes, which is what lets the
//!   cell cache be content-addressed and the round-trip proptests assert
//!   byte identity.
//! * **Total floats.** The grid legitimately produces NaN (crosshatched /
//!   skipped cells) and could produce ±∞; standard JSON has no spelling for
//!   them. The writer emits the bare tokens `NaN`, `Infinity` and
//!   `-Infinity` (as Python's `json` does) and the parser accepts them.
//!   Finite floats are written with Rust's shortest round-trip formatting,
//!   so parsing the text recovers the exact bit pattern. All NaN payloads
//!   normalize to the one canonical `NaN` token; the parser returns the
//!   standard quiet NaN (`f64::NAN`), which is the only NaN this codebase
//!   produces.

use std::fmt::Write as _;

/// A parsed or to-be-written JSON document.
///
/// Integers are kept apart from floats so `u64` values (e.g. the master
/// seed) round-trip exactly: a numeric token without `.`/`e` parses as
/// [`JsonValue::Uint`]/[`JsonValue::Int`], everything else as
/// [`JsonValue::Num`]. The writer preserves the distinction (`7` vs `7.0`).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    /// Non-negative integer token (no sign, no `.`/exponent).
    Uint(u64),
    /// Negative integer token.
    Int(i64),
    /// Floating-point token (has `.`/exponent, or is `NaN`/`±Infinity`).
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    /// Fields in construction order; the writer does not reorder them.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// An array of floats.
    pub fn num_arr(values: &[f64]) -> JsonValue {
        JsonValue::Arr(values.iter().map(|&v| JsonValue::Num(v)).collect())
    }

    /// Serialize to canonical compact text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Append the canonical rendering to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Uint(u) => {
                let _ = write!(out, "{u}");
            }
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::Num(f) => write_f64(*f, out),
            JsonValue::Str(s) => write_escaped(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// The object's value for `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// As a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As an unsigned integer (rejects floats — integral fields must have
    /// been written as integers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Uint(u) => Some(*u),
            JsonValue::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// As a float (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(f) => Some(*f),
            JsonValue::Uint(u) => Some(*u as f64),
            JsonValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// As a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// As an array slice.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

/// One canonical rendering per float: shortest round-trip text for finite
/// values (Rust's `{:?}`, which always contains `.` or an exponent), bare
/// `NaN` / `Infinity` / `-Infinity` tokens otherwise.
fn write_f64(f: f64, out: &mut String) {
    if f.is_nan() {
        out.push_str("NaN");
    } else if f == f64::INFINITY {
        out.push_str("Infinity");
    } else if f == f64::NEG_INFINITY {
        out.push_str("-Infinity");
    } else {
        let _ = write!(out, "{f:?}");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_canonically() {
        assert_eq!(JsonValue::Null.to_text(), "null");
        assert_eq!(JsonValue::Bool(true).to_text(), "true");
        assert_eq!(JsonValue::Uint(u64::MAX).to_text(), "18446744073709551615");
        assert_eq!(JsonValue::Int(-7).to_text(), "-7");
        assert_eq!(JsonValue::Num(1.0).to_text(), "1.0");
        assert_eq!(JsonValue::Num(-0.0).to_text(), "-0.0");
        assert_eq!(JsonValue::Num(f64::NAN).to_text(), "NaN");
        assert_eq!(JsonValue::Num(f64::INFINITY).to_text(), "Infinity");
        assert_eq!(JsonValue::Num(f64::NEG_INFINITY).to_text(), "-Infinity");
    }

    #[test]
    fn nan_payloads_normalize_to_one_token() {
        // A NaN with a nonstandard payload still renders as the canonical
        // token — the writer is total over all 2^64 bit patterns.
        let weird = f64::from_bits(0x7ff8_0000_dead_beef);
        assert!(weird.is_nan());
        assert_eq!(JsonValue::Num(weird).to_text(), "NaN");
    }

    #[test]
    fn strings_escape_quotes_controls_and_keep_unicode() {
        assert_eq!(
            JsonValue::Str("a\"b\\c\nd\u{1}é".to_string()).to_text(),
            "\"a\\\"b\\\\c\\nd\\u0001é\""
        );
    }

    #[test]
    fn containers_are_compact_and_ordered() {
        let v = JsonValue::obj(vec![
            ("b", JsonValue::Uint(1)),
            (
                "a",
                JsonValue::Arr(vec![JsonValue::Null, JsonValue::Num(0.5)]),
            ),
        ]);
        assert_eq!(v.to_text(), "{\"b\":1,\"a\":[null,0.5]}");
        assert_eq!(v.get("b").and_then(JsonValue::as_u64), Some(1));
        assert!(v.get("missing").is_none());
    }
}
