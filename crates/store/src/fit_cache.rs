//! The content-addressed on-disk **fit** cache.
//!
//! Where [`crate::cache::DiskCellCache`] stores finished cell outcomes,
//! this cache stores the expensive intermediate: one fitted synthesizer
//! state per `(dataset content, synthesizer, ε, trial seed)`. Fit seeds are
//! derived from the dataset's content digest rather than the paper id (see
//! `synrd::benchmark`), so any two papers whose generators produce the same
//! rows share every entry — the redundant-refit fix this crate level
//! persists across processes.
//!
//! Layout inside a store directory (shared with the cell cache):
//!
//! ```text
//! out-dir/
//!   fits/<digest16>.json   one fitted state each
//! ```
//!
//! Each file embeds its key block (fingerprint, dataset digest,
//! synthesizer, ε bits, seed index) and the load path verifies it before
//! decoding, so collisions, stale files, truncation, or hand edits all
//! degrade to a cache miss — the grid refits and overwrites. The fit
//! fingerprint deliberately covers *only* the knobs a fit depends on: the
//! master data seed (fit seeds derive from it) and nothing else. Changing
//! `bootstraps`, `scale`, `min_rows` or the fit timeout invalidates cells
//! but keeps fits warm — scale/floor changes flow in through the dataset
//! digest when they actually change the data.

use crate::cache::{write_atomic, CacheStats};
use crate::codec::JsonCodec;
use crate::digest::{hex16, Fnv1a};
use crate::json::JsonValue;
use crate::parse::parse;
use std::collections::HashSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use synrd::benchmark::{BenchmarkConfig, FitStore};
use synrd_synth::{FittedState, SynthKind};

/// Version tag mixed into every fit fingerprint; bump when fitted-state
/// semantics change so old fit files invalidate wholesale.
///
/// v2: PATECTGAN fits are produced by the batched minibatch round loop
/// (new trajectory and retuned hyperparameters), so v1 fit files describe
/// states the current trainer can no longer reproduce.
const FIT_FINGERPRINT_VERSION: u64 = 2;

/// Digest of the config knobs a *fit* depends on.
///
/// Fit seeds are `grid_seed(data_seed, dataset_key, synth, ε, seed_idx)`,
/// so the master seed is the only config input beyond the per-entry key;
/// everything else either cannot change a fit (`bootstraps`, timeouts) or
/// reaches it through the dataset content digest (`data_scale`,
/// `min_rows`).
pub fn fit_fingerprint(config: &BenchmarkConfig) -> u64 {
    Fnv1a::new()
        .write_u64(FIT_FINGERPRINT_VERSION)
        .write_u64(config.data_seed)
        .finish()
}

/// Content address of one fit:
/// `(fingerprint, dataset digest, synthesizer, ε bits, seed index)`.
pub fn fit_digest(
    fingerprint: u64,
    dataset_digest: u64,
    synth: &str,
    epsilon: f64,
    seed_index: usize,
) -> u64 {
    Fnv1a::new()
        .write_u64(fingerprint)
        .write_u64(dataset_digest)
        .write_str(synth)
        .write_u64(epsilon.to_bits())
        .write_u64(seed_index as u64)
        .finish()
}

/// A content-addressed fit cache rooted at a store directory.
///
/// Same concurrency contract as the cell cache: `&self` everywhere, atomic
/// counters, and atomic temp-file writes, so one handle serves a whole
/// rayon grid.
#[derive(Debug)]
pub struct DiskFitCache {
    root: PathBuf,
    fingerprint: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    errors: AtomicU64,
}

impl DiskFitCache {
    /// Open (creating if needed) the fit cache under `root` for `config`.
    ///
    /// # Errors
    /// Directory creation failing.
    pub fn open(root: impl Into<PathBuf>, config: &BenchmarkConfig) -> io::Result<DiskFitCache> {
        let root = root.into();
        fs::create_dir_all(root.join("fits"))?;
        Ok(DiskFitCache {
            root,
            fingerprint: fit_fingerprint(config),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        })
    }

    /// The cache's root directory (the store's `--out-dir`).
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The fingerprint fits are being keyed under.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Counters since this handle was opened.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }

    /// Copy every fit file from another store directory that this cache
    /// does not already hold. A shard without a `fits/` subdirectory (an
    /// older store layout) contributes nothing and is not an error.
    ///
    /// # Errors
    /// I/O failures while reading or copying.
    pub fn merge_from(&self, other_root: &Path) -> io::Result<usize> {
        let src = other_root.join("fits");
        if !src.is_dir() {
            return Ok(0);
        }
        let mut copied = 0usize;
        for entry in fs::read_dir(&src)? {
            let entry = entry?;
            let name = entry.file_name();
            if entry.path().extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let dest = self.root.join("fits").join(&name);
            if dest.exists() {
                continue;
            }
            let bytes = fs::read(entry.path())?;
            write_atomic(&dest, &bytes)?;
            copied += 1;
        }
        Ok(copied)
    }

    fn fit_path(&self, digest: u64) -> PathBuf {
        self.root
            .join("fits")
            .join(format!("{}.json", hex16(digest)))
    }

    fn key_block(
        &self,
        dataset_digest: u64,
        synth: &str,
        epsilon: f64,
        seed_index: usize,
    ) -> JsonValue {
        JsonValue::obj(vec![
            ("fingerprint", JsonValue::Str(hex16(self.fingerprint))),
            ("dataset", JsonValue::Str(hex16(dataset_digest))),
            ("synth", JsonValue::Str(synth.to_string())),
            ("epsilon_bits", JsonValue::Str(hex16(epsilon.to_bits()))),
            ("epsilon", JsonValue::Num(epsilon)),
            ("seed_index", JsonValue::Uint(seed_index as u64)),
        ])
    }
}

impl FitStore for DiskFitCache {
    fn load(
        &self,
        dataset_digest: u64,
        kind: SynthKind,
        epsilon: f64,
        seed_index: usize,
    ) -> Option<FittedState> {
        let digest = fit_digest(
            self.fingerprint,
            dataset_digest,
            kind.name(),
            epsilon,
            seed_index,
        );
        let text = match fs::read_to_string(self.fit_path(digest)) {
            Ok(text) => text,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        let decoded = parse(&text).ok().and_then(|doc| {
            // Verify the embedded key before trusting the payload, exactly
            // as the cell cache does.
            let expected = self.key_block(dataset_digest, kind.name(), epsilon, seed_index);
            if doc.get("key") != Some(&expected) {
                return None;
            }
            FittedState::from_json(doc.get("state")?).ok()
        });
        match decoded {
            Some(state) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(state)
            }
            None => {
                // Truncated, corrupted, or mismatched file: a miss (the
                // grid refits and the save path overwrites the bad file),
                // plus an error count for the summary line.
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn save(
        &self,
        dataset_digest: u64,
        kind: SynthKind,
        epsilon: f64,
        seed_index: usize,
        state: &FittedState,
    ) {
        let digest = fit_digest(
            self.fingerprint,
            dataset_digest,
            kind.name(),
            epsilon,
            seed_index,
        );
        let doc = JsonValue::obj(vec![
            (
                "key",
                self.key_block(dataset_digest, kind.name(), epsilon, seed_index),
            ),
            ("state", state.to_json()),
        ]);
        match write_atomic(&self.fit_path(digest), doc.to_text().as_bytes()) {
            Ok(()) => {
                self.stores.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                // Best-effort by contract: a failed save must not fail the
                // run, the fit just will not be cached.
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// A fit-store adapter that never serves loads — paired with
/// [`crate::cache::WriteOnly`] when `--out-dir` is given without
/// `--resume`: fits are recomputed and (re)written, never read back.
pub struct WriteOnlyFits<'a>(pub &'a DiskFitCache);

/// A fit-store adapter that serves only fits written **through this
/// handle** — the non-`--resume` grid mode. A fresh run distrusts whatever
/// a previous process left on disk (like [`WriteOnlyFits`]), but papers
/// sharing a dataset *within* the run still share every fit: the first
/// paper's saves are served back to the later ones.
pub struct SessionFits<'a> {
    cache: &'a DiskFitCache,
    written: Mutex<HashSet<(u64, &'static str, u64, usize)>>,
}

impl<'a> SessionFits<'a> {
    /// A session view over `cache` that starts out empty.
    pub fn new(cache: &'a DiskFitCache) -> SessionFits<'a> {
        SessionFits {
            cache,
            written: Mutex::new(HashSet::new()),
        }
    }
}

impl FitStore for SessionFits<'_> {
    fn load(
        &self,
        dataset_digest: u64,
        kind: SynthKind,
        epsilon: f64,
        seed_index: usize,
    ) -> Option<FittedState> {
        let key = (dataset_digest, kind.name(), epsilon.to_bits(), seed_index);
        if !self.written.lock().unwrap().contains(&key) {
            return None;
        }
        self.cache.load(dataset_digest, kind, epsilon, seed_index)
    }

    fn save(
        &self,
        dataset_digest: u64,
        kind: SynthKind,
        epsilon: f64,
        seed_index: usize,
        state: &FittedState,
    ) {
        self.cache
            .save(dataset_digest, kind, epsilon, seed_index, state);
        self.written.lock().unwrap().insert((
            dataset_digest,
            kind.name(),
            epsilon.to_bits(),
            seed_index,
        ));
    }
}

impl FitStore for WriteOnlyFits<'_> {
    fn load(
        &self,
        _dataset_digest: u64,
        _kind: SynthKind,
        _epsilon: f64,
        _seed_index: usize,
    ) -> Option<FittedState> {
        None
    }

    fn save(
        &self,
        dataset_digest: u64,
        kind: SynthKind,
        epsilon: f64,
        seed_index: usize,
        state: &FittedState,
    ) {
        self.0
            .save(dataset_digest, kind, epsilon, seed_index, state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synrd_data::{Attribute, Dataset, Domain};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("synrd-fit-unit-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn fitted_state(seed: u64) -> FittedState {
        let domain = Domain::new(vec![
            Attribute::binary("x"),
            Attribute::binary("y"),
            Attribute::ordinal("z", 3),
        ]);
        let mut data = Dataset::with_capacity(domain, 200);
        for i in 0..200u64 {
            let h = i.wrapping_mul(seed | 1).wrapping_add(seed);
            data.push_row(&[(h % 2) as u32, ((h >> 1) % 2) as u32, ((h >> 2) % 3) as u32])
                .unwrap();
        }
        let mut synth = SynthKind::Mst.build();
        synth
            .fit(
                &data,
                SynthKind::Mst.native_privacy(1.0, data.n_rows()),
                seed,
            )
            .unwrap();
        synth.fitted_state().unwrap()
    }

    fn restored_samples(state: FittedState) -> Dataset {
        let mut synth = SynthKind::Mst.build();
        synth.restore_state(state).unwrap();
        synth.sample(300, 5).unwrap()
    }

    #[test]
    fn save_then_load_roundtrips_the_sampler_bitwise() {
        let dir = tmp_dir("roundtrip");
        let config = BenchmarkConfig::quick();
        let cache = DiskFitCache::open(&dir, &config).unwrap();
        let state = fitted_state(11);
        let want = restored_samples(state.clone());

        assert!(cache.load(42, SynthKind::Mst, 1.0, 0).is_none());
        cache.save(42, SynthKind::Mst, 1.0, 0, &state);
        let back = cache.load(42, SynthKind::Mst, 1.0, 0).unwrap();
        assert_eq!(restored_samples(back), want);

        // Other coordinates do not alias.
        assert!(cache.load(43, SynthKind::Mst, 1.0, 0).is_none());
        assert!(cache.load(42, SynthKind::Aim, 1.0, 0).is_none());
        assert!(cache.load(42, SynthKind::Mst, 2.0, 0).is_none());
        assert!(cache.load(42, SynthKind::Mst, 1.0, 1).is_none());

        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.stores, 1);
        assert_eq!(stats.misses, 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_files_degrade_to_misses_and_are_overwritten() {
        let dir = tmp_dir("truncate");
        let config = BenchmarkConfig::quick();
        let cache = DiskFitCache::open(&dir, &config).unwrap();
        let state = fitted_state(7);
        cache.save(9, SynthKind::Mst, 1.0, 0, &state);
        let digest = fit_digest(cache.fingerprint(), 9, "MST", 1.0, 0);
        let path = cache.fit_path(digest);

        // Truncate the entry mid-file, as if the writer was killed (the
        // rename makes this unreachable for *our* writes, but files from
        // other tools or damaged disks must still degrade gracefully).
        let full = fs::read_to_string(&path).unwrap();
        for cut in [full.len() / 2, 1, full.len() - 1] {
            fs::write(&path, &full.as_bytes()[..cut]).unwrap();
            assert!(
                cache.load(9, SynthKind::Mst, 1.0, 0).is_none(),
                "truncation at {cut} must be a miss, not an error"
            );
        }
        assert_eq!(cache.stats().errors, 3);

        // The refit path overwrites the damaged file and recovers.
        cache.save(9, SynthKind::Mst, 1.0, 0, &state);
        assert!(cache.load(9, SynthKind::Mst, 1.0, 0).is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn master_seed_change_invalidates_fits() {
        let dir = tmp_dir("invalidate");
        let config = BenchmarkConfig::quick();
        let cache = DiskFitCache::open(&dir, &config).unwrap();
        cache.save(1, SynthKind::Mst, 1.0, 0, &fitted_state(3));

        let mut reseeded = BenchmarkConfig::quick();
        reseeded.data_seed ^= 0xdead;
        let cache2 = DiskFitCache::open(&dir, &reseeded).unwrap();
        assert_ne!(cache.fingerprint(), cache2.fingerprint());
        assert!(cache2.load(1, SynthKind::Mst, 1.0, 0).is_none());

        // Cell-only knobs keep fits warm: fits do not depend on bootstraps.
        let mut more_draws = BenchmarkConfig::quick();
        more_draws.bootstraps += 7;
        let cache3 = DiskFitCache::open(&dir, &more_draws).unwrap();
        assert_eq!(cache.fingerprint(), cache3.fingerprint());
        assert!(cache3.load(1, SynthKind::Mst, 1.0, 0).is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ml_backend_selection_never_reaches_the_fingerprint() {
        // Backends are bit-identical, so backend choice must stay out of
        // fit identity: the fingerprint is computed from the config alone
        // and a fit saved under one backend loads under any other.
        use synrd_synth::ml_backend;
        let dir = tmp_dir("backend");
        let config = BenchmarkConfig::quick();
        let fp_auto = fit_fingerprint(&config);
        ml_backend::set_global(Some("cpu")).unwrap();
        let cache = DiskFitCache::open(&dir, &config).unwrap();
        assert_eq!(cache.fingerprint(), fp_auto);
        cache.save(6, SynthKind::Mst, 1.0, 0, &fitted_state(2));

        let other = if ml_backend::select(Some("simd")).is_ok() {
            "simd"
        } else {
            "cpu"
        };
        ml_backend::set_global(Some(other)).unwrap();
        assert_eq!(fit_fingerprint(&config), fp_auto);
        let reopened = DiskFitCache::open(&dir, &config).unwrap();
        assert!(
            reopened.load(6, SynthKind::Mst, 1.0, 0).is_some(),
            "a cpu-backend fit must hit under the {other} backend"
        );
        ml_backend::set_global(Some("auto")).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fit_thread_allowance_never_reaches_the_fingerprint() {
        // Intra-fit parallelism is bit-identical at any thread count, so the
        // allowance must stay out of fit identity: configs differing only in
        // `fit_threads` fingerprint identically, and a fit saved by a
        // sequential run loads under any allowance.
        let dir = tmp_dir("fit-threads");
        let seq = BenchmarkConfig {
            fit_threads: Some(1),
            ..BenchmarkConfig::quick()
        };
        let wide = BenchmarkConfig {
            fit_threads: Some(8),
            ..BenchmarkConfig::quick()
        };
        let auto = BenchmarkConfig {
            fit_threads: None,
            ..BenchmarkConfig::quick()
        };
        let fp = fit_fingerprint(&seq);
        assert_eq!(fit_fingerprint(&wide), fp);
        assert_eq!(fit_fingerprint(&auto), fp);

        let cache = DiskFitCache::open(&dir, &seq).unwrap();
        cache.save(9, SynthKind::Mst, 1.0, 0, &fitted_state(3));
        let reopened = DiskFitCache::open(&dir, &wide).unwrap();
        assert!(
            reopened.load(9, SynthKind::Mst, 1.0, 0).is_some(),
            "a sequential fit must hit under an 8-thread allowance"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_only_never_serves_loads() {
        let dir = tmp_dir("write-only");
        let config = BenchmarkConfig::quick();
        let cache = DiskFitCache::open(&dir, &config).unwrap();
        let wo = WriteOnlyFits(&cache);
        wo.save(5, SynthKind::Mst, 1.0, 0, &fitted_state(1));
        assert!(wo.load(5, SynthKind::Mst, 1.0, 0).is_none());
        assert!(cache.load(5, SynthKind::Mst, 1.0, 0).is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn session_fits_serve_only_what_this_run_wrote() {
        let dir = tmp_dir("session");
        let config = BenchmarkConfig::quick();
        let cache = DiskFitCache::open(&dir, &config).unwrap();
        // A previous process left a fit behind.
        cache.save(5, SynthKind::Mst, 1.0, 0, &fitted_state(1));

        let session = SessionFits::new(&cache);
        // Stale disk state is invisible to a fresh run...
        assert!(session.load(5, SynthKind::Mst, 1.0, 0).is_none());
        // ...but the run's own saves are served back (shared-dataset
        // papers within one sweep), write-through to disk included.
        session.save(6, SynthKind::Mst, 1.0, 0, &fitted_state(2));
        assert!(session.load(6, SynthKind::Mst, 1.0, 0).is_some());
        assert!(session.load(6, SynthKind::Mst, 2.0, 0).is_none());
        assert!(cache.load(6, SynthKind::Mst, 1.0, 0).is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merging_copies_missing_fits_and_tolerates_fitless_shards() {
        let shard_a = tmp_dir("merge-a");
        let shard_b = tmp_dir("merge-b");
        let dest = tmp_dir("merge-dest");
        let config = BenchmarkConfig::quick();
        let a = DiskFitCache::open(&shard_a, &config).unwrap();
        let b = DiskFitCache::open(&shard_b, &config).unwrap();
        a.save(1, SynthKind::Mst, 1.0, 0, &fitted_state(1));
        b.save(1, SynthKind::Mst, 1.0, 0, &fitted_state(1)); // duplicate
        b.save(2, SynthKind::Mst, 1.0, 0, &fitted_state(2));

        let merged = DiskFitCache::open(&dest, &config).unwrap();
        assert_eq!(merged.merge_from(&shard_a).unwrap(), 1);
        assert_eq!(merged.merge_from(&shard_b).unwrap(), 1); // dup skipped
        assert!(merged.load(1, SynthKind::Mst, 1.0, 0).is_some());
        assert!(merged.load(2, SynthKind::Mst, 1.0, 0).is_some());

        // A store from before fit caching has no fits/ directory.
        let empty = tmp_dir("merge-empty");
        fs::create_dir_all(&empty).unwrap();
        assert_eq!(merged.merge_from(&empty).unwrap(), 0);
        for dir in [&shard_a, &shard_b, &dest, &empty] {
            fs::remove_dir_all(dir).unwrap();
        }
    }
}
