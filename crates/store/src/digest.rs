//! FNV-1a 64-bit digests — the content-address of the cell cache.
//!
//! FNV-1a is deliberately chosen over a cryptographic hash: the cache is a
//! correctness-preserving accelerator (a wrong hit is guarded against by
//! the key block embedded in every cell file, see [`crate::cache`]), the
//! key space per store is a few thousand cells, and FNV is dependency-free
//! and stable across platforms and releases.

/// FNV-1a offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(OFFSET)
    }
}

impl Fnv1a {
    /// Fresh hasher at the offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a::default()
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(PRIME);
        }
        self
    }

    /// Absorb a `u64` (little-endian) with a trailing separator so adjacent
    /// fields cannot alias.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes()).write(&[0xff])
    }

    /// Absorb a length-prefix-free string field with a trailing separator.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write(s.as_bytes()).write(&[0xfe])
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a of a byte string.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    Fnv1a::new().write(bytes).finish()
}

/// Fixed-width lowercase hex rendering (cache file names).
pub fn hex16(v: u64) -> String {
    format!("{v:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_fnv1a_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn field_separators_prevent_aliasing() {
        let ab_c = Fnv1a::new().write_str("ab").write_str("c").finish();
        let a_bc = Fnv1a::new().write_str("a").write_str("bc").finish();
        assert_ne!(ab_c, a_bc);
        let one_two = Fnv1a::new().write_u64(1).write_u64(2).finish();
        let two_one = Fnv1a::new().write_u64(2).write_u64(1).finish();
        assert_ne!(one_two, two_one);
    }

    #[test]
    fn hex16_is_fixed_width() {
        assert_eq!(hex16(0xab), "00000000000000ab");
        assert_eq!(hex16(u64::MAX), "ffffffffffffffff");
    }
}
