//! Codecs for fitted synthesizer state — the payloads of the fit cache.
//!
//! A [`FittedState`](synrd_synth::FittedState) is whatever a synthesizer
//! needs to sample without refitting: junction-tree beliefs for the PGM
//! family, conditional probability tables for PrivBayes, the product
//! distribution and Adam moments for GEM, and the generator MLP for
//! PATECTGAN. Everything routes through the canonical JSON model, so the
//! same guarantees hold as for cell outcomes: floats round-trip
//! bit-for-bit (NaN and ±∞ included) and equal states serialize to equal
//! bytes.
//!
//! The junction tree itself is **not** serialized edge-by-edge: the tree
//! is a deterministic function of its maximal cliques
//! ([`JunctionTree::build`] on a chordal graph reproduces itself), so the
//! codec stores `(domain_shape, cliques, beliefs)` and rebuilds. Decoding
//! re-runs the same structural validation as a fresh fit
//! ([`FittedModel::from_parts`]), so a corrupted or hand-edited file
//! surfaces as a decode error, never as a silently wrong model.

use crate::codec::JsonCodec;
use crate::json::JsonValue;
use crate::StoreError;
use synrd_data::{AttrKind, Attribute, Domain, Marginal};
use synrd_ml::{Activation, DenseState, MlpState};
use synrd_pgm::{CalibratedTree, Factor, FittedModel, JunctionTree};
use synrd_synth::{BayesNode, FittedState, GemState};

fn codec_err(message: impl Into<String>) -> StoreError {
    StoreError::Codec(message.into())
}

fn field<'a>(value: &'a JsonValue, key: &str) -> Result<&'a JsonValue, StoreError> {
    value
        .get(key)
        .ok_or_else(|| codec_err(format!("missing field '{key}'")))
}

fn f64_field(value: &JsonValue, key: &str) -> Result<f64, StoreError> {
    field(value, key)?
        .as_f64()
        .ok_or_else(|| codec_err(format!("field '{key}' is not a number")))
}

fn u64_field(value: &JsonValue, key: &str) -> Result<u64, StoreError> {
    field(value, key)?
        .as_u64()
        .ok_or_else(|| codec_err(format!("field '{key}' is not an unsigned integer")))
}

fn usize_field(value: &JsonValue, key: &str) -> Result<usize, StoreError> {
    usize::try_from(u64_field(value, key)?)
        .map_err(|_| codec_err(format!("field '{key}' does not fit usize")))
}

fn str_field<'a>(value: &'a JsonValue, key: &str) -> Result<&'a str, StoreError> {
    field(value, key)?
        .as_str()
        .ok_or_else(|| codec_err(format!("field '{key}' is not a string")))
}

fn arr_field<'a>(value: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], StoreError> {
    field(value, key)?
        .as_arr()
        .ok_or_else(|| codec_err(format!("field '{key}' is not an array")))
}

fn usize_arr(values: &[usize]) -> JsonValue {
    JsonValue::Arr(values.iter().map(|&v| JsonValue::Uint(v as u64)).collect())
}

fn usize_vec(value: &JsonValue, key: &str) -> Result<Vec<usize>, StoreError> {
    arr_field(value, key)?
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|u| usize::try_from(u).ok())
                .ok_or_else(|| codec_err(format!("non-index value in '{key}'")))
        })
        .collect()
}

fn f64_vec(value: &JsonValue, key: &str) -> Result<Vec<f64>, StoreError> {
    f64_items(field(value, key)?, key)
}

fn f64_items(value: &JsonValue, key: &str) -> Result<Vec<f64>, StoreError> {
    value
        .as_arr()
        .ok_or_else(|| codec_err(format!("'{key}' is not an array")))?
        .iter()
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| codec_err(format!("non-number in '{key}'")))
        })
        .collect()
}

/// GEM's per-attribute tensors: one `Vec<f64>` per attribute per component.
fn tensor3(values: &[Vec<Vec<f64>>]) -> JsonValue {
    JsonValue::Arr(
        values
            .iter()
            .map(|component| {
                JsonValue::Arr(
                    component
                        .iter()
                        .map(|per| JsonValue::num_arr(per))
                        .collect(),
                )
            })
            .collect(),
    )
}

fn tensor3_field(value: &JsonValue, key: &str) -> Result<Vec<Vec<Vec<f64>>>, StoreError> {
    arr_field(value, key)?
        .iter()
        .map(|component| {
            component
                .as_arr()
                .ok_or_else(|| codec_err(format!("'{key}' component is not an array")))?
                .iter()
                .map(|per| f64_items(per, key))
                .collect()
        })
        .collect()
}

fn attr_kind_code(kind: AttrKind) -> &'static str {
    match kind {
        AttrKind::Categorical => "categorical",
        AttrKind::Ordinal => "ordinal",
        AttrKind::Binary => "binary",
    }
}

fn attr_kind_from_code(code: &str) -> Result<AttrKind, StoreError> {
    match code {
        "categorical" => Ok(AttrKind::Categorical),
        "ordinal" => Ok(AttrKind::Ordinal),
        "binary" => Ok(AttrKind::Binary),
        other => Err(codec_err(format!("unknown attribute kind '{other}'"))),
    }
}

impl JsonCodec for Attribute {
    fn to_json(&self) -> JsonValue {
        let categories = JsonValue::Arr(
            self.categories()
                .iter()
                .map(|c| JsonValue::Str(c.clone()))
                .collect(),
        );
        let numeric = match self.numeric_values() {
            None => JsonValue::Null,
            Some(values) => JsonValue::num_arr(values),
        };
        JsonValue::obj(vec![
            ("name", JsonValue::Str(self.name().to_string())),
            (
                "kind",
                JsonValue::Str(attr_kind_code(self.kind()).to_string()),
            ),
            ("categories", categories),
            ("numeric_values", numeric),
        ])
    }

    fn from_json(value: &JsonValue) -> Result<Attribute, StoreError> {
        let categories = arr_field(value, "categories")?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| codec_err("non-string category"))
            })
            .collect::<Result<Vec<_>, StoreError>>()?;
        let numeric_value = field(value, "numeric_values")?;
        let numeric_values = if numeric_value.is_null() {
            None
        } else {
            Some(f64_items(numeric_value, "numeric_values")?)
        };
        Attribute::from_parts(
            str_field(value, "name")?,
            attr_kind_from_code(str_field(value, "kind")?)?,
            categories,
            numeric_values,
        )
        .map_err(|e| codec_err(format!("invalid attribute: {e}")))
    }
}

impl JsonCodec for Domain {
    fn to_json(&self) -> JsonValue {
        JsonValue::Arr(self.attributes().iter().map(JsonCodec::to_json).collect())
    }

    fn from_json(value: &JsonValue) -> Result<Domain, StoreError> {
        let attrs = value
            .as_arr()
            .ok_or_else(|| codec_err("domain is not an array"))?
            .iter()
            .map(Attribute::from_json)
            .collect::<Result<Vec<_>, StoreError>>()?;
        Ok(Domain::new(attrs))
    }
}

impl JsonCodec for Marginal {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("attrs", usize_arr(self.attrs())),
            ("shape", usize_arr(self.shape())),
            ("counts", JsonValue::num_arr(self.counts())),
        ])
    }

    fn from_json(value: &JsonValue) -> Result<Marginal, StoreError> {
        Marginal::from_counts(
            usize_vec(value, "attrs")?,
            usize_vec(value, "shape")?,
            f64_vec(value, "counts")?,
        )
        .map_err(|e| codec_err(format!("invalid marginal: {e}")))
    }
}

impl JsonCodec for BayesNode {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("attr", JsonValue::Uint(self.attr as u64)),
            ("parents", usize_arr(&self.parents)),
            ("table", self.table.to_json()),
        ])
    }

    fn from_json(value: &JsonValue) -> Result<BayesNode, StoreError> {
        Ok(BayesNode {
            attr: usize_field(value, "attr")?,
            parents: usize_vec(value, "parents")?,
            table: Marginal::from_json(field(value, "table")?)?,
        })
    }
}

impl JsonCodec for Factor {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("attrs", usize_arr(self.attrs())),
            ("shape", usize_arr(self.shape())),
            ("log_values", JsonValue::num_arr(self.log_values())),
        ])
    }

    fn from_json(value: &JsonValue) -> Result<Factor, StoreError> {
        Factor::from_log_values(
            usize_vec(value, "attrs")?,
            usize_vec(value, "shape")?,
            f64_vec(value, "log_values")?,
        )
        .map_err(|e| codec_err(format!("invalid factor: {e}")))
    }
}

impl JsonCodec for FittedModel {
    fn to_json(&self) -> JsonValue {
        let tree = self.tree();
        let cliques = JsonValue::Arr(tree.cliques().iter().map(|c| usize_arr(c)).collect());
        let beliefs = JsonValue::Arr(
            self.calibrated()
                .beliefs
                .iter()
                .map(JsonCodec::to_json)
                .collect(),
        );
        JsonValue::obj(vec![
            ("domain_shape", usize_arr(tree.domain_shape())),
            ("cliques", cliques),
            ("beliefs", beliefs),
            ("n_estimate", JsonValue::Num(self.n_estimate())),
            ("final_loss", JsonValue::Num(self.final_loss())),
        ])
    }

    fn from_json(value: &JsonValue) -> Result<FittedModel, StoreError> {
        let domain_shape = usize_vec(value, "domain_shape")?;
        let cliques = arr_field(value, "cliques")?
            .iter()
            .map(|c| {
                c.as_arr()
                    .ok_or_else(|| codec_err("clique is not an array"))?
                    .iter()
                    .map(|v| {
                        v.as_u64()
                            .and_then(|u| usize::try_from(u).ok())
                            .ok_or_else(|| codec_err("non-index value in clique"))
                    })
                    .collect::<Result<Vec<usize>, StoreError>>()
            })
            .collect::<Result<Vec<_>, StoreError>>()?;
        // The stored cliques already passed the fit-time cell limit; rebuild
        // unconditionally and let `from_parts` arbitrate consistency.
        let tree = JunctionTree::build(&domain_shape, &cliques, usize::MAX)
            .map_err(|e| codec_err(format!("invalid junction tree: {e}")))?;
        let beliefs = arr_field(value, "beliefs")?
            .iter()
            .map(Factor::from_json)
            .collect::<Result<Vec<_>, StoreError>>()?;
        FittedModel::from_parts(
            tree,
            CalibratedTree { beliefs },
            f64_field(value, "n_estimate")?,
            f64_field(value, "final_loss")?,
        )
        .map_err(|e| codec_err(format!("beliefs do not match tree: {e}")))
    }
}

impl JsonCodec for GemState {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("logits", tensor3(&self.logits)),
            ("m", tensor3(&self.m)),
            ("v", tensor3(&self.v)),
            ("step", JsonValue::Uint(self.step)),
        ])
    }

    fn from_json(value: &JsonValue) -> Result<GemState, StoreError> {
        Ok(GemState {
            logits: tensor3_field(value, "logits")?,
            m: tensor3_field(value, "m")?,
            v: tensor3_field(value, "v")?,
            step: u64_field(value, "step")?,
        })
    }
}

fn activation_code(a: Activation) -> &'static str {
    match a {
        Activation::Linear => "linear",
        Activation::Sigmoid => "sigmoid",
        Activation::Tanh => "tanh",
    }
}

fn activation_from_code(code: &str) -> Result<Activation, StoreError> {
    match code {
        "linear" => Ok(Activation::Linear),
        "sigmoid" => Ok(Activation::Sigmoid),
        "tanh" => Ok(Activation::Tanh),
        other => Err(codec_err(format!("unknown activation '{other}'"))),
    }
}

impl JsonCodec for DenseState {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("input", JsonValue::Uint(self.input as u64)),
            ("output", JsonValue::Uint(self.output as u64)),
            ("w", JsonValue::num_arr(&self.w)),
            ("b", JsonValue::num_arr(&self.b)),
            ("mw", JsonValue::num_arr(&self.mw)),
            ("vw", JsonValue::num_arr(&self.vw)),
            ("mb", JsonValue::num_arr(&self.mb)),
            ("vb", JsonValue::num_arr(&self.vb)),
        ])
    }

    fn from_json(value: &JsonValue) -> Result<DenseState, StoreError> {
        Ok(DenseState {
            input: usize_field(value, "input")?,
            output: usize_field(value, "output")?,
            w: f64_vec(value, "w")?,
            b: f64_vec(value, "b")?,
            mw: f64_vec(value, "mw")?,
            vw: f64_vec(value, "vw")?,
            mb: f64_vec(value, "mb")?,
            vb: f64_vec(value, "vb")?,
        })
    }
}

impl JsonCodec for MlpState {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            (
                "layers",
                JsonValue::Arr(self.layers.iter().map(JsonCodec::to_json).collect()),
            ),
            (
                "output_activation",
                JsonValue::Str(activation_code(self.output_activation).to_string()),
            ),
            ("step", JsonValue::Uint(self.step)),
            ("learning_rate", JsonValue::Num(self.learning_rate)),
        ])
    }

    fn from_json(value: &JsonValue) -> Result<MlpState, StoreError> {
        Ok(MlpState {
            layers: arr_field(value, "layers")?
                .iter()
                .map(DenseState::from_json)
                .collect::<Result<Vec<_>, StoreError>>()?,
            output_activation: activation_from_code(str_field(value, "output_activation")?)?,
            step: u64_field(value, "step")?,
            learning_rate: f64_field(value, "learning_rate")?,
        })
    }
}

impl JsonCodec for FittedState {
    fn to_json(&self) -> JsonValue {
        match self {
            FittedState::Pgm { domain, model } => JsonValue::obj(vec![
                ("kind", JsonValue::Str("pgm".to_string())),
                ("domain", domain.to_json()),
                ("model", model.to_json()),
            ]),
            FittedState::PrivBayes { domain, nodes } => JsonValue::obj(vec![
                ("kind", JsonValue::Str("privbayes".to_string())),
                ("domain", domain.to_json()),
                (
                    "nodes",
                    JsonValue::Arr(nodes.iter().map(JsonCodec::to_json).collect()),
                ),
            ]),
            FittedState::Gem { domain, model } => JsonValue::obj(vec![
                ("kind", JsonValue::Str("gem".to_string())),
                ("domain", domain.to_json()),
                ("model", model.to_json()),
            ]),
            FittedState::PateCtgan {
                domain,
                generator,
                blocks,
                z_dim,
            } => JsonValue::obj(vec![
                ("kind", JsonValue::Str("patectgan".to_string())),
                ("domain", domain.to_json()),
                ("generator", generator.to_json()),
                (
                    "blocks",
                    JsonValue::Arr(
                        blocks
                            .iter()
                            .map(|&(offset, card)| usize_arr(&[offset, card]))
                            .collect(),
                    ),
                ),
                ("z_dim", JsonValue::Uint(*z_dim as u64)),
            ]),
        }
    }

    fn from_json(value: &JsonValue) -> Result<FittedState, StoreError> {
        let domain = Domain::from_json(field(value, "domain")?)?;
        match str_field(value, "kind")? {
            "pgm" => Ok(FittedState::Pgm {
                domain,
                model: FittedModel::from_json(field(value, "model")?)?,
            }),
            "privbayes" => Ok(FittedState::PrivBayes {
                domain,
                nodes: arr_field(value, "nodes")?
                    .iter()
                    .map(BayesNode::from_json)
                    .collect::<Result<Vec<_>, StoreError>>()?,
            }),
            "gem" => Ok(FittedState::Gem {
                domain,
                model: GemState::from_json(field(value, "model")?)?,
            }),
            "patectgan" => Ok(FittedState::PateCtgan {
                domain,
                generator: MlpState::from_json(field(value, "generator")?)?,
                blocks: arr_field(value, "blocks")?
                    .iter()
                    .map(|pair| {
                        let pair = pair
                            .as_arr()
                            .filter(|a| a.len() == 2)
                            .ok_or_else(|| codec_err("block is not an [offset, card] pair"))?;
                        let idx = |v: &JsonValue| {
                            v.as_u64()
                                .and_then(|u| usize::try_from(u).ok())
                                .ok_or_else(|| codec_err("non-index value in block"))
                        };
                        Ok((idx(&pair[0])?, idx(&pair[1])?))
                    })
                    .collect::<Result<Vec<_>, StoreError>>()?,
                z_dim: usize_field(value, "z_dim")?,
            }),
            other => Err(codec_err(format!("unknown fitted-state kind '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_roundtrips_all_kinds() {
        for attr in [
            Attribute::binary("flag"),
            Attribute::ordinal("level", 5),
            Attribute::ordinal_scored("gpa", vec![1.0, 2.5, f64::NAN]),
            Attribute::from_parts(
                "race",
                AttrKind::Categorical,
                vec!["a".to_string(), "b".to_string()],
                None,
            )
            .unwrap(),
        ] {
            let text = attr.to_json_text();
            let back = Attribute::from_json_text(&text).unwrap();
            assert_eq!(back.to_json_text(), text, "{}", attr.name());
            assert_eq!(back.name(), attr.name());
            assert_eq!(back.kind(), attr.kind());
            assert_eq!(back.categories(), attr.categories());
        }
    }

    #[test]
    fn marginal_roundtrips_with_nonfinite_counts() {
        let m = Marginal::from_counts(
            vec![0, 2],
            vec![2, 3],
            vec![1.0, -0.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0],
        )
        .unwrap();
        let back = Marginal::from_json_text(&m.to_json_text()).unwrap();
        assert_eq!(back.attrs(), m.attrs());
        assert_eq!(back.shape(), m.shape());
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(back.counts()), bits(m.counts()));
    }

    #[test]
    fn inconsistent_documents_fail_to_decode() {
        // Marginal with a counts length that contradicts its shape.
        let bad = r#"{"attrs":[0],"shape":[3],"counts":[1.0]}"#;
        assert!(Marginal::from_json_text(bad).is_err());
        // Factor with unsorted attrs.
        let bad = r#"{"attrs":[1,0],"shape":[2,2],"log_values":[0.0,0.0,0.0,0.0]}"#;
        assert!(Factor::from_json_text(bad).is_err());
        // FittedState with an unknown tag.
        let bad = r#"{"kind":"mystery","domain":[]}"#;
        assert!(FittedState::from_json_text(bad).is_err());
    }
}
