//! Recursive-descent parser for the canonical JSON dialect written by
//! [`crate::json`]: standard JSON plus the bare non-finite tokens `NaN`,
//! `Infinity` and `-Infinity`.
//!
//! Numeric tokens without a fraction or exponent parse as
//! [`JsonValue::Uint`]/[`JsonValue::Int`] (exact, full `u64` range);
//! everything else parses as [`JsonValue::Num`] via Rust's correctly
//! rounded `str::parse::<f64>`, so writer output round-trips bit-for-bit.

use crate::json::JsonValue;
use crate::StoreError;

/// Maximum nesting depth, guarding the recursive descent against stack
/// overflow on adversarial input.
const MAX_DEPTH: usize = 128;

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error).
///
/// # Errors
/// [`StoreError::Parse`] with the byte offset of the first problem.
pub fn parse(text: &str) -> Result<JsonValue, StoreError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> StoreError {
        StoreError::Parse {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), StoreError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    /// Consume `word` if it is next (used for keyword tokens).
    fn eat_word(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, StoreError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') if self.eat_word("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_word("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.eat_word("null") => Ok(JsonValue::Null),
            Some(b'N') if self.eat_word("NaN") => Ok(JsonValue::Num(f64::NAN)),
            Some(b'I') if self.eat_word("Infinity") => Ok(JsonValue::Num(f64::INFINITY)),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-Infinity") => {
                self.pos += "-Infinity".len();
                Ok(JsonValue::Num(f64::NEG_INFINITY))
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, StoreError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key_offset = self.pos;
            let key = self.string()?;
            // Duplicate keys would silently shadow earlier entries on
            // lookup (`get` returns the first match, the writer never emits
            // duplicates) — a hand-edited or merge-damaged store file must
            // fail loudly instead of half-winning.
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(StoreError::Parse {
                    offset: key_offset,
                    message: format!("duplicate object key \"{key}\""),
                });
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, StoreError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn enter(&mut self) -> Result<(), StoreError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        Ok(())
    }

    fn string(&mut self) -> Result<String, StoreError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one go.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The run is valid UTF-8 because the input is a &str and we
                // only stopped on ASCII boundaries.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), StoreError> {
        let c = self.peek().ok_or_else(|| self.err("dangling escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xd800..0xdc00).contains(&hi) {
                    // Surrogate pair: require a low surrogate escape next.
                    if !self.eat_word("\\u") {
                        return Err(self.err("high surrogate without low surrogate"));
                    }
                    let lo = self.hex4()?;
                    if !(0xdc00..0xe000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid \\u escape"))?);
            }
            other => return Err(self.err(format!("unknown escape '\\{}'", other as char))),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, StoreError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, StoreError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number tokens are pure ASCII");
        // Out-of-range integral tokens fall through to the float path (the
        // writer never produces such a token).
        if integral {
            if token.starts_with('-') {
                if let Ok(i) = token.parse::<i64>() {
                    return Ok(JsonValue::Int(i));
                }
            } else if let Ok(u) = token.parse::<u64>() {
                return Ok(JsonValue::Uint(u));
            }
        }
        token
            .parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| StoreError::Parse {
                offset: start,
                message: format!("invalid number token '{token}'"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) {
        let v = parse(text).unwrap();
        assert_eq!(v.to_text(), text, "canonical text must be a fixed point");
    }

    #[test]
    fn writer_output_is_a_parser_fixed_point() {
        for text in [
            "null",
            "true",
            "[]",
            "{}",
            "18446744073709551615",
            "-42",
            "0.1",
            "-0.0",
            "1e300",
            "1.5e-9",
            "NaN",
            "Infinity",
            "-Infinity",
            "{\"a\":[1,2.0,\"x\\ny\"],\"b\":{\"c\":null}}",
        ] {
            roundtrip(text);
        }
    }

    #[test]
    fn integers_and_floats_stay_distinct() {
        assert_eq!(parse("7").unwrap(), JsonValue::Uint(7));
        assert_eq!(parse("-7").unwrap(), JsonValue::Int(-7));
        assert_eq!(parse("7.0").unwrap(), JsonValue::Num(7.0));
        assert_eq!(parse("7e0").unwrap(), JsonValue::Num(7.0));
    }

    #[test]
    fn nonfinite_tokens_parse() {
        assert!(parse("NaN").unwrap().as_f64().unwrap().is_nan());
        assert_eq!(parse("Infinity").unwrap(), JsonValue::Num(f64::INFINITY));
        assert_eq!(
            parse("[-Infinity]").unwrap(),
            JsonValue::Arr(vec![JsonValue::Num(f64::NEG_INFINITY)])
        );
    }

    #[test]
    fn escapes_and_surrogate_pairs() {
        assert_eq!(
            parse("\"\\u0041\\u00e9\\ud83d\\ude00\\\"\\\\\"").unwrap(),
            JsonValue::Str("Aé😀\"\\".to_string())
        );
    }

    #[test]
    fn whitespace_is_tolerated_on_input() {
        let v = parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.to_text(), "{\"a\":[1,2]}");
    }

    #[test]
    fn errors_carry_offsets() {
        for bad in [
            "",
            "[1,",
            "{\"a\" 1}",
            "\"unterminated",
            "{\"a\":1}x",
            "01x",
            "\"\\q\"",
        ] {
            let err = parse(bad).expect_err(bad);
            assert!(matches!(err, StoreError::Parse { .. }), "{bad}: {err}");
        }
    }

    #[test]
    fn duplicate_object_keys_are_rejected() {
        for bad in [
            "{\"a\":1,\"a\":2}",
            "{\"a\":1,\"b\":{\"x\":null,\"x\":0}}",
            "{\"\":0,\"\":1}",
        ] {
            let err = parse(bad).expect_err(bad);
            match err {
                StoreError::Parse { message, offset } => {
                    assert!(message.contains("duplicate object key"), "{bad}: {message}");
                    // The offset points at the repeated key, not the document
                    // start.
                    assert!(offset > 0, "{bad}");
                }
                other => panic!("{bad}: unexpected error {other}"),
            }
        }
        // Same key at different nesting levels is fine.
        assert!(parse("{\"a\":{\"a\":1}}").is_ok());
        assert!(parse("[{\"a\":1},{\"a\":2}]").is_ok());
    }

    #[test]
    fn depth_limit_rejects_deep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }
}
