//! `to_json` / `from_json` codecs for the benchmark's report types.
//!
//! Every codec emits a fixed field order and one canonical scalar rendering
//! (see [`crate::json`]), so `encode ∘ decode ∘ encode` is the identity on
//! bytes — the property the round-trip proptests pin down. Floats survive
//! bit-for-bit (finite values via shortest round-trip text, NaN normalized
//! to the quiet NaN every grid path produces), which is what makes a
//! cache-served [`CellOutcome`] `bitwise_eq` to a freshly computed one.

use crate::intern::intern;
use crate::json::JsonValue;
use crate::parse::parse;
use crate::StoreError;
use std::time::Duration;
use synrd::benchmark::{BenchmarkConfig, CellOutcome, CellStatus, PaperReport};
use synrd::finding::FindingType;
use synrd::parity::AggregateSeries;
use synrd_synth::SynthKind;

/// A type with a canonical JSON representation.
pub trait JsonCodec: Sized {
    /// Encode into the canonical document model.
    fn to_json(&self) -> JsonValue;

    /// Decode from a document.
    ///
    /// # Errors
    /// [`StoreError::Codec`] when the document's shape does not match.
    fn from_json(value: &JsonValue) -> Result<Self, StoreError>;

    /// Encode to canonical text.
    fn to_json_text(&self) -> String {
        self.to_json().to_text()
    }

    /// Decode from text.
    ///
    /// # Errors
    /// Parse errors and shape mismatches.
    fn from_json_text(text: &str) -> Result<Self, StoreError> {
        Self::from_json(&parse(text)?)
    }
}

fn codec_err(message: impl Into<String>) -> StoreError {
    StoreError::Codec(message.into())
}

fn field<'a>(value: &'a JsonValue, key: &str) -> Result<&'a JsonValue, StoreError> {
    value
        .get(key)
        .ok_or_else(|| codec_err(format!("missing field '{key}'")))
}

fn f64_field(value: &JsonValue, key: &str) -> Result<f64, StoreError> {
    field(value, key)?
        .as_f64()
        .ok_or_else(|| codec_err(format!("field '{key}' is not a number")))
}

fn u64_field(value: &JsonValue, key: &str) -> Result<u64, StoreError> {
    field(value, key)?
        .as_u64()
        .ok_or_else(|| codec_err(format!("field '{key}' is not an unsigned integer")))
}

fn usize_field(value: &JsonValue, key: &str) -> Result<usize, StoreError> {
    usize::try_from(u64_field(value, key)?)
        .map_err(|_| codec_err(format!("field '{key}' does not fit usize")))
}

fn str_field<'a>(value: &'a JsonValue, key: &str) -> Result<&'a str, StoreError> {
    field(value, key)?
        .as_str()
        .ok_or_else(|| codec_err(format!("field '{key}' is not a string")))
}

fn f64_vec(value: &JsonValue, key: &str) -> Result<Vec<f64>, StoreError> {
    field(value, key)?
        .as_arr()
        .ok_or_else(|| codec_err(format!("field '{key}' is not an array")))?
        .iter()
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| codec_err(format!("non-number in '{key}'")))
        })
        .collect()
}

/// Stable serialization code for a finding type (independent of the
/// human-facing Table 2 label, which is free to change).
fn finding_type_code(t: FindingType) -> &'static str {
    match t {
        FindingType::DescriptiveStatistics => "descriptive_statistics",
        FindingType::RegressionBetweenCoefficients => "regression_between_coefficients",
        FindingType::FixedCoefficientSign => "fixed_coefficient_sign",
        FindingType::CausalPathVariability => "causal_path_variability",
        FindingType::CausalPathInteraction => "causal_path_interaction",
        FindingType::CoefficientDifference => "coefficient_difference",
        FindingType::LogisticPbr => "logistic_pbr",
        FindingType::LogisticFnr => "logistic_fnr",
        FindingType::LogisticFpr => "logistic_fpr",
        FindingType::LogisticAccuracy => "logistic_accuracy",
        FindingType::MeanDifferenceBetweenClass => "mean_difference_between_class",
        FindingType::MeanDifferenceTemporal => "mean_difference_temporal",
        FindingType::CorrelationPearson => "correlation_pearson",
        FindingType::CorrelationSpearman => "correlation_spearman",
    }
}

fn finding_type_from_code(code: &str) -> Result<FindingType, StoreError> {
    FindingType::ALL
        .into_iter()
        .find(|&t| finding_type_code(t) == code)
        .ok_or_else(|| codec_err(format!("unknown finding type code '{code}'")))
}

fn synth_from_name(name: &str) -> Result<SynthKind, StoreError> {
    SynthKind::from_name(name).ok_or_else(|| codec_err(format!("unknown synthesizer '{name}'")))
}

impl JsonCodec for CellOutcome {
    fn to_json(&self) -> JsonValue {
        let status = match &self.status {
            CellStatus::Ok => JsonValue::Str("ok".to_string()),
            CellStatus::TimedOut => JsonValue::Str("timed_out".to_string()),
            CellStatus::Skipped => JsonValue::Str("skipped".to_string()),
            CellStatus::Infeasible(reason) => {
                JsonValue::obj(vec![("infeasible", JsonValue::Str(reason.clone()))])
            }
        };
        JsonValue::obj(vec![
            ("parity", JsonValue::num_arr(&self.parity)),
            ("seed_variance", JsonValue::num_arr(&self.seed_variance)),
            ("status", status),
            ("fit_seconds", JsonValue::Num(self.fit_seconds)),
        ])
    }

    fn from_json(value: &JsonValue) -> Result<CellOutcome, StoreError> {
        let status_value = field(value, "status")?;
        let status = match status_value.as_str() {
            Some("ok") => CellStatus::Ok,
            Some("timed_out") => CellStatus::TimedOut,
            Some("skipped") => CellStatus::Skipped,
            Some(other) => return Err(codec_err(format!("unknown cell status '{other}'"))),
            None => CellStatus::Infeasible(str_field(status_value, "infeasible")?.to_string()),
        };
        Ok(CellOutcome {
            parity: f64_vec(value, "parity")?,
            seed_variance: f64_vec(value, "seed_variance")?,
            status,
            fit_seconds: f64_field(value, "fit_seconds")?,
        })
    }
}

impl JsonCodec for PaperReport {
    fn to_json(&self) -> JsonValue {
        let findings = JsonValue::Arr(
            self.findings
                .iter()
                .map(|&(id, name, kind)| {
                    JsonValue::Arr(vec![
                        JsonValue::Uint(u64::from(id)),
                        JsonValue::Str(name.to_string()),
                        JsonValue::Str(finding_type_code(kind).to_string()),
                    ])
                })
                .collect(),
        );
        let synthesizers = JsonValue::Arr(
            self.synthesizers
                .iter()
                .map(|k| JsonValue::Str(k.name().to_string()))
                .collect(),
        );
        let cells = JsonValue::Arr(
            self.cells
                .iter()
                .map(|row| JsonValue::Arr(row.iter().map(JsonCodec::to_json).collect()))
                .collect(),
        );
        JsonValue::obj(vec![
            ("paper_id", JsonValue::Str(self.paper_id.to_string())),
            ("paper_name", JsonValue::Str(self.paper_name.to_string())),
            ("findings", findings),
            ("epsilons", JsonValue::num_arr(&self.epsilons)),
            ("synthesizers", synthesizers),
            ("cells", cells),
            ("control", JsonValue::num_arr(&self.control)),
            ("n_rows", JsonValue::Uint(self.n_rows as u64)),
        ])
    }

    fn from_json(value: &JsonValue) -> Result<PaperReport, StoreError> {
        let findings = field(value, "findings")?
            .as_arr()
            .ok_or_else(|| codec_err("'findings' is not an array"))?
            .iter()
            .map(|entry| {
                let triple = entry
                    .as_arr()
                    .filter(|a| a.len() == 3)
                    .ok_or_else(|| codec_err("finding entry is not an [id, name, type] triple"))?;
                let id = triple[0]
                    .as_u64()
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(|| codec_err("finding id is not a u32"))?;
                let name = triple[1]
                    .as_str()
                    .ok_or_else(|| codec_err("finding name is not a string"))?;
                let kind = finding_type_from_code(
                    triple[2]
                        .as_str()
                        .ok_or_else(|| codec_err("finding type is not a string"))?,
                )?;
                Ok((id, intern(name), kind))
            })
            .collect::<Result<Vec<_>, StoreError>>()?;
        let synthesizers = field(value, "synthesizers")?
            .as_arr()
            .ok_or_else(|| codec_err("'synthesizers' is not an array"))?
            .iter()
            .map(|v| {
                synth_from_name(
                    v.as_str()
                        .ok_or_else(|| codec_err("synthesizer entry is not a string"))?,
                )
            })
            .collect::<Result<Vec<_>, StoreError>>()?;
        let cells = field(value, "cells")?
            .as_arr()
            .ok_or_else(|| codec_err("'cells' is not an array"))?
            .iter()
            .map(|row| {
                row.as_arr()
                    .ok_or_else(|| codec_err("cell row is not an array"))?
                    .iter()
                    .map(CellOutcome::from_json)
                    .collect::<Result<Vec<_>, StoreError>>()
            })
            .collect::<Result<Vec<_>, StoreError>>()?;
        Ok(PaperReport {
            paper_id: intern(str_field(value, "paper_id")?),
            paper_name: intern(str_field(value, "paper_name")?),
            findings,
            epsilons: f64_vec(value, "epsilons")?,
            synthesizers,
            cells,
            control: f64_vec(value, "control")?,
            n_rows: usize_field(value, "n_rows")?,
        })
    }
}

impl JsonCodec for AggregateSeries {
    fn to_json(&self) -> JsonValue {
        let series = |rows: &[(SynthKind, Vec<f64>)]| {
            JsonValue::Arr(
                rows.iter()
                    .map(|(kind, values)| {
                        JsonValue::Arr(vec![
                            JsonValue::Str(kind.name().to_string()),
                            JsonValue::num_arr(values),
                        ])
                    })
                    .collect(),
            )
        };
        JsonValue::obj(vec![
            ("epsilons", JsonValue::num_arr(&self.epsilons)),
            ("parity", series(&self.parity)),
            ("variance", series(&self.variance)),
        ])
    }

    fn from_json(value: &JsonValue) -> Result<AggregateSeries, StoreError> {
        let series = |key: &str| -> Result<Vec<(SynthKind, Vec<f64>)>, StoreError> {
            field(value, key)?
                .as_arr()
                .ok_or_else(|| codec_err(format!("'{key}' is not an array")))?
                .iter()
                .map(|entry| {
                    let pair = entry
                        .as_arr()
                        .filter(|a| a.len() == 2)
                        .ok_or_else(|| codec_err("series entry is not a [synth, values] pair"))?;
                    let kind = synth_from_name(
                        pair[0]
                            .as_str()
                            .ok_or_else(|| codec_err("series synth is not a string"))?,
                    )?;
                    let values = pair[1]
                        .as_arr()
                        .ok_or_else(|| codec_err("series values are not an array"))?
                        .iter()
                        .map(|v| v.as_f64().ok_or_else(|| codec_err("non-number in series")))
                        .collect::<Result<Vec<_>, StoreError>>()?;
                    Ok((kind, values))
                })
                .collect()
        };
        Ok(AggregateSeries {
            epsilons: f64_vec(value, "epsilons")?,
            parity: series("parity")?,
            variance: series("variance")?,
        })
    }
}

impl JsonCodec for BenchmarkConfig {
    fn to_json(&self) -> JsonValue {
        // Durations serialize as exact (secs, nanos) rather than float
        // seconds so the round trip is lossless for every representable
        // Duration.
        let timeout = match self.fit_timeout {
            None => JsonValue::Null,
            Some(d) => JsonValue::obj(vec![
                ("secs", JsonValue::Uint(d.as_secs())),
                ("nanos", JsonValue::Uint(u64::from(d.subsec_nanos()))),
            ]),
        };
        JsonValue::obj(vec![
            ("epsilons", JsonValue::num_arr(&self.epsilons)),
            ("seeds", JsonValue::Uint(self.seeds as u64)),
            ("bootstraps", JsonValue::Uint(self.bootstraps as u64)),
            ("data_scale", JsonValue::Num(self.data_scale)),
            ("min_rows", JsonValue::Uint(self.min_rows as u64)),
            ("data_seed", JsonValue::Uint(self.data_seed)),
            // `fit_threads` is deliberately absent: like the ML backend it
            // is a throughput-only knob (fits are bit-identical at any
            // thread count), so serialized configs stay byte-identical
            // across intra-fit thread settings.
            ("threads", JsonValue::Uint(self.threads as u64)),
            ("fit_timeout", timeout),
            ("restrict_privmrf", JsonValue::Bool(self.restrict_privmrf)),
            (
                "synthesizers",
                JsonValue::Arr(
                    self.synthesizers
                        .iter()
                        .map(|k| JsonValue::Str(k.name().to_string()))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(value: &JsonValue) -> Result<BenchmarkConfig, StoreError> {
        let timeout_value = field(value, "fit_timeout")?;
        let fit_timeout = if timeout_value.is_null() {
            None
        } else {
            let secs = u64_field(timeout_value, "secs")?;
            let nanos = u32::try_from(u64_field(timeout_value, "nanos")?)
                .map_err(|_| codec_err("'nanos' does not fit u32"))?;
            Some(Duration::new(secs, nanos))
        };
        let synthesizers = field(value, "synthesizers")?
            .as_arr()
            .ok_or_else(|| codec_err("'synthesizers' is not an array"))?
            .iter()
            .map(|v| {
                synth_from_name(
                    v.as_str()
                        .ok_or_else(|| codec_err("synthesizer entry is not a string"))?,
                )
            })
            .collect::<Result<Vec<_>, StoreError>>()?;
        Ok(BenchmarkConfig {
            epsilons: f64_vec(value, "epsilons")?,
            seeds: usize_field(value, "seeds")?,
            bootstraps: usize_field(value, "bootstraps")?,
            data_scale: f64_field(value, "data_scale")?,
            min_rows: usize_field(value, "min_rows")?,
            data_seed: u64_field(value, "data_seed")?,
            threads: usize_field(value, "threads")?,
            fit_threads: None,
            fit_timeout,
            restrict_privmrf: field(value, "restrict_privmrf")?
                .as_bool()
                .ok_or_else(|| codec_err("'restrict_privmrf' is not a bool"))?,
            synthesizers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cell() -> CellOutcome {
        CellOutcome {
            parity: vec![1.0, 0.0, f64::NAN, 0.25],
            seed_variance: vec![0.0, 0.01, f64::NAN, f64::INFINITY],
            status: CellStatus::Infeasible("domain too large: 1e12 cells".to_string()),
            fit_seconds: 0.125,
        }
    }

    #[test]
    fn cell_roundtrips_bitwise_through_text() {
        let cell = sample_cell();
        let text = cell.to_json_text();
        let back = CellOutcome::from_json_text(&text).unwrap();
        assert!(cell.bitwise_eq(&back));
        assert_eq!(back.to_json_text(), text, "canonical text is a fixed point");
        assert_eq!(back.fit_seconds.to_bits(), cell.fit_seconds.to_bits());
    }

    #[test]
    fn every_status_roundtrips() {
        for status in [
            CellStatus::Ok,
            CellStatus::TimedOut,
            CellStatus::Skipped,
            CellStatus::Infeasible(String::new()),
        ] {
            let cell = CellOutcome {
                parity: vec![],
                seed_variance: vec![],
                status: status.clone(),
                fit_seconds: 0.0,
            };
            let back = CellOutcome::from_json_text(&cell.to_json_text()).unwrap();
            assert_eq!(back.status, status);
        }
    }

    #[test]
    fn every_finding_type_code_roundtrips() {
        for t in FindingType::ALL {
            assert_eq!(finding_type_from_code(finding_type_code(t)).unwrap(), t);
        }
        assert!(finding_type_from_code("no_such_type").is_err());
    }

    #[test]
    fn config_roundtrips_including_timeout_precision() {
        let mut config = BenchmarkConfig::quick();
        config.fit_timeout = Some(Duration::new(3, 141_592_653));
        config.data_seed = u64::MAX;
        let text = config.to_json_text();
        let back = BenchmarkConfig::from_json_text(&text).unwrap();
        assert_eq!(back.to_json_text(), text);
        assert_eq!(back.fit_timeout, config.fit_timeout);
        assert_eq!(back.data_seed, u64::MAX);

        config.fit_timeout = None;
        let back = BenchmarkConfig::from_json_text(&config.to_json_text()).unwrap();
        assert_eq!(back.fit_timeout, None);
    }

    #[test]
    fn shape_errors_are_reported_not_panicked() {
        for bad in [
            "{}",
            "{\"parity\":[],\"seed_variance\":[],\"status\":\"nope\",\"fit_seconds\":0.0}",
            "{\"parity\":[\"x\"],\"seed_variance\":[],\"status\":\"ok\",\"fit_seconds\":0.0}",
        ] {
            assert!(CellOutcome::from_json_text(bad).is_err(), "{bad}");
        }
    }
}
