//! A tiny global string interner.
//!
//! [`synrd::PaperReport`] carries `&'static str` names (paper ids, finding
//! names) because in-process they come from the compiled-in registry.
//! Deserializing a report from disk has no registry entry to point at, so
//! the codec interns the parsed strings: each distinct string is leaked
//! exactly once and every later request returns the same `&'static str`.
//! The set of distinct names in any store is small and fixed (it mirrors
//! the registry), so the leak is bounded.

use std::collections::HashSet;
use std::sync::{Mutex, OnceLock};

static TABLE: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();

/// The canonical `&'static str` for `s`, leaking it on first sight.
pub fn intern(s: &str) -> &'static str {
    let table = TABLE.get_or_init(|| Mutex::new(HashSet::new()));
    let mut guard = table.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(&hit) = guard.get(s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    guard.insert(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_pointer_stable() {
        let a = intern("synrd-intern-test-string");
        let b = intern(&String::from("synrd-intern-test-string"));
        assert_eq!(a, b);
        assert!(std::ptr::eq(a, b), "same allocation for equal strings");
        assert_eq!(intern(""), "");
    }
}
