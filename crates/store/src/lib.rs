//! # synrd-store — the persistent result store
//!
//! PR 1 made every grid cell a pure function of
//! `(master seed, paper, synthesizer, ε)` via [`synrd_dp::grid_seed`]; this
//! crate turns that purity into infrastructure:
//!
//! * [`json`] / [`parse`] — a hand-rolled, dependency-free **canonical
//!   JSON** writer and recursive-descent parser (the build environment has
//!   no crates.io, so no serde). Floats round-trip bit-for-bit, including
//!   the NaN/∞ values of crosshatched cells; equal values always serialize
//!   to equal bytes.
//! * [`codec`] — [`codec::JsonCodec`] implementations for
//!   [`synrd::CellOutcome`], [`synrd::PaperReport`],
//!   [`synrd::AggregateSeries`] and [`synrd::BenchmarkConfig`].
//! * [`cache`] — [`cache::DiskCellCache`], a content-addressed on-disk cell
//!   cache keyed by an FNV-1a digest of
//!   `(config fingerprint, paper, synthesizer, ε)`, implementing
//!   [`synrd::CellStore`] so the grid driver consults it before fitting and
//!   writes back after; plus [`cache::merge_shard_dirs`] for recombining
//!   sharded runs into stores that [`synrd::benchmark::assemble_report`]
//!   can rebuild full reports from, bit-identical to a monolithic run.
//! * [`fitted`] — [`codec::JsonCodec`] implementations for
//!   [`synrd_synth::FittedState`] and its parts (junction-tree models,
//!   PrivBayes networks, GEM logits, the PATECTGAN generator MLP).
//! * [`fit_cache`] — [`fit_cache::DiskFitCache`], the fit-level sibling of
//!   the cell cache: fitted states keyed by
//!   `(master seed, dataset content digest, synthesizer, ε, trial seed)`,
//!   implementing [`synrd::benchmark::FitStore`] so papers sharing a
//!   dataset — or reruns whose cell keys changed but whose fits did not —
//!   never refit what any earlier run already fitted.
//!
//! The intended flow for incremental / distributed evaluation:
//!
//! ```text
//! machine i of n:  fig3 --out-dir shard-i --resume --shard i/n
//! anywhere:        fig3 --out-dir merged --merge-shards shard-0,...,shard-n-1
//! rerun anytime:   fig3 --out-dir merged --resume        # zero fits
//! ```

pub mod cache;
pub mod codec;
pub mod digest;
pub mod fit_cache;
pub mod fitted;
pub mod intern;
pub mod json;
pub mod parse;

pub use cache::{
    cell_digest, config_fingerprint, merge_shard_dirs, CacheStats, DiskCellCache, WriteOnly,
};
pub use codec::JsonCodec;
pub use digest::{fnv1a64, hex16, Fnv1a};
pub use fit_cache::{fit_digest, fit_fingerprint, DiskFitCache, SessionFits, WriteOnlyFits};
pub use intern::intern;
pub use json::JsonValue;
pub use parse::parse;

use std::fmt;

/// Everything that can go wrong reading a store.
#[derive(Debug)]
pub enum StoreError {
    /// The text is not valid (canonical-dialect) JSON.
    Parse {
        /// Byte offset of the first problem.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// The JSON is well-formed but does not have the expected shape.
    Codec(String),
    /// Filesystem failure.
    Io(std::io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Parse { offset, message } => {
                write!(f, "JSON parse error at byte {offset}: {message}")
            }
            StoreError::Codec(message) => write!(f, "JSON shape error: {message}"),
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}
