//! The content-addressed on-disk cell cache and shard-directory merging.
//!
//! Layout of a store directory (`--out-dir`):
//!
//! ```text
//! out-dir/
//!   config.json            last-used BenchmarkConfig + its fingerprint
//!   cells/<digest16>.json  one (paper, synthesizer, ε) cell outcome each
//!   reports/<paper>.json   assembled PaperReports (written by fig3/fig4)
//! ```
//!
//! Each cell file is addressed by the FNV-1a digest of
//! `(config fingerprint, paper id, synthesizer, ε bits)` and embeds that
//! key block verbatim, so a load verifies the key before trusting the
//! payload — a digest collision or a stale file degrades to a cache miss,
//! never to wrong numbers. Changing any fingerprinted config knob (seeds,
//! bootstraps, data scale/floor, master seed, fit timeout, the PrivMRF
//! restriction) changes every digest, so stale cells are simply never
//! consulted again; `threads` and the ε/synthesizer lists are deliberately
//! *not* fingerprinted because they do not affect any single cell's value.
//!
//! One status is deliberately **not** persisted: `TimedOut`. The paper's
//! wall-clock fit budget makes that verdict a property of the machine that
//! ran the cell, not of the cell key, so caching it would freeze one
//! machine's give-up into every future run.

use crate::codec::JsonCodec;
use crate::digest::{hex16, Fnv1a};
use crate::json::JsonValue;
use crate::parse::parse;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use synrd::benchmark::{BenchmarkConfig, CellOutcome, CellStatus, CellStore, PaperReport};
use synrd_synth::SynthKind;

/// Version tag mixed into every fingerprint; bump when cell semantics
/// change so old stores invalidate wholesale.
///
/// v2: fit seeds became a function of the dataset content digest instead
/// of the paper id (the shared-fit fix), which changes every cell's
/// synthetic draws.
///
/// v3: PATECTGAN training moved to batched minibatch rounds (one Adam step
/// per round, retuned rounds/learning rate), changing its fitted states
/// and samples.
const FINGERPRINT_VERSION: u64 = 3;

/// Digest of every config knob that can change a cell's outcome.
///
/// Floats are fingerprinted by bit pattern, so "the same config" means
/// bit-identical knobs, matching the grid's bitwise determinism contract.
pub fn config_fingerprint(config: &BenchmarkConfig) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(FINGERPRINT_VERSION)
        .write_u64(config.seeds as u64)
        .write_u64(config.bootstraps as u64)
        .write_u64(config.data_scale.to_bits())
        .write_u64(config.min_rows as u64)
        .write_u64(config.data_seed);
    match config.fit_timeout {
        None => h.write_u64(0).write_u64(0),
        Some(d) => h.write_u64(1).write_u64(d.as_nanos() as u64),
    };
    h.write_u64(u64::from(config.restrict_privmrf));
    h.finish()
}

/// Content address of one cell: `(fingerprint, paper, synthesizer, ε bits)`.
pub fn cell_digest(fingerprint: u64, paper_id: &str, synth: &str, epsilon: f64) -> u64 {
    Fnv1a::new()
        .write_u64(fingerprint)
        .write_str(paper_id)
        .write_str(synth)
        .write_u64(epsilon.to_bits())
        .finish()
}

/// Load/store/error counters for one cache handle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Loads served from disk.
    pub hits: u64,
    /// Loads that found no usable file (including key-mismatch rejects).
    pub misses: u64,
    /// Cells written.
    pub stores: u64,
    /// I/O or decode failures (each also counts as a miss on the load path).
    pub errors: u64,
}

/// A content-addressed cell cache rooted at one store directory.
///
/// Cheap to open, safe to share across rayon workers (`&self` everywhere,
/// atomic counters), and safe against concurrent writers of the *same*
/// cell: writes go to a unique temp file and are `rename`d into place.
#[derive(Debug)]
pub struct DiskCellCache {
    root: PathBuf,
    fingerprint: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    errors: AtomicU64,
}

impl DiskCellCache {
    /// Open (creating if needed) the store at `root` for `config`.
    ///
    /// Records the config (and its fingerprint) in `config.json` for humans
    /// and tooling; cells from other fingerprints may coexist in the same
    /// directory and are simply never matched.
    ///
    /// # Errors
    /// Directory creation or the config write failing.
    pub fn open(root: impl Into<PathBuf>, config: &BenchmarkConfig) -> io::Result<DiskCellCache> {
        let root = root.into();
        fs::create_dir_all(root.join("cells"))?;
        fs::create_dir_all(root.join("reports"))?;
        let fingerprint = config_fingerprint(config);
        let doc = JsonValue::obj(vec![
            ("fingerprint", JsonValue::Str(hex16(fingerprint))),
            ("config", config.to_json()),
        ]);
        write_atomic(&root.join("config.json"), doc.to_text().as_bytes())?;
        Ok(DiskCellCache {
            root,
            fingerprint,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The fingerprint cells are being keyed under.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Counters since this handle was opened.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }

    fn cell_path(&self, digest: u64) -> PathBuf {
        self.root
            .join("cells")
            .join(format!("{}.json", hex16(digest)))
    }

    fn key_block(&self, paper_id: &str, synth: &str, epsilon: f64) -> JsonValue {
        JsonValue::obj(vec![
            ("fingerprint", JsonValue::Str(hex16(self.fingerprint))),
            ("paper", JsonValue::Str(paper_id.to_string())),
            ("synth", JsonValue::Str(synth.to_string())),
            ("epsilon_bits", JsonValue::Str(hex16(epsilon.to_bits()))),
            ("epsilon", JsonValue::Num(epsilon)),
        ])
    }

    /// Copy every cell file from another store directory that is not
    /// already present here — the shard-merge primitive. Returns how many
    /// files were copied.
    ///
    /// # Errors
    /// I/O failures reading the source or writing the destination.
    pub fn merge_from(&self, other_root: &Path) -> io::Result<usize> {
        let src = other_root.join("cells");
        let mut copied = 0usize;
        for entry in fs::read_dir(&src)? {
            let entry = entry?;
            let name = entry.file_name();
            if entry.path().extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let dest = self.root.join("cells").join(&name);
            if dest.exists() {
                continue;
            }
            let bytes = fs::read(entry.path())?;
            write_atomic(&dest, &bytes)?;
            copied += 1;
        }
        Ok(copied)
    }

    /// Persist an assembled report under `reports/<paper_id>.json`.
    ///
    /// # Errors
    /// I/O failures.
    pub fn write_report(&self, report: &PaperReport) -> io::Result<PathBuf> {
        let path = self
            .root
            .join("reports")
            .join(format!("{}.json", report.paper_id));
        write_atomic(&path, report.to_json_text().as_bytes())?;
        Ok(path)
    }

    /// Read back a previously written report, if present and decodable.
    pub fn read_report(&self, paper_id: &str) -> Option<PaperReport> {
        let path = self.root.join("reports").join(format!("{paper_id}.json"));
        let text = fs::read_to_string(path).ok()?;
        PaperReport::from_json_text(&text).ok()
    }
}

impl CellStore for DiskCellCache {
    fn load(&self, paper_id: &str, kind: SynthKind, epsilon: f64) -> Option<CellOutcome> {
        let digest = cell_digest(self.fingerprint, paper_id, kind.name(), epsilon);
        let path = self.cell_path(digest);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        let decoded = parse(&text).ok().and_then(|doc| {
            // Verify the embedded key before trusting the payload: a digest
            // collision or hand-edited file degrades to a miss.
            let expected = self.key_block(paper_id, kind.name(), epsilon);
            if doc.get("key") != Some(&expected) {
                return None;
            }
            CellOutcome::from_json(doc.get("cell")?).ok()
        });
        match decoded {
            Some(cell) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(cell)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn save(&self, paper_id: &str, kind: SynthKind, epsilon: f64, cell: &CellOutcome) {
        // A TimedOut crosshatch is a wall-clock observation of *this*
        // machine, not a pure function of the cache key — persisting it
        // would serve a slow machine's give-up verdict to every future
        // (possibly faster) run under the same fingerprint. Leave it
        // uncached so reruns re-attempt the fit.
        if cell.status == CellStatus::TimedOut {
            return;
        }
        let digest = cell_digest(self.fingerprint, paper_id, kind.name(), epsilon);
        let doc = JsonValue::obj(vec![
            ("key", self.key_block(paper_id, kind.name(), epsilon)),
            ("cell", cell.to_json()),
        ]);
        match write_atomic(&self.cell_path(digest), doc.to_text().as_bytes()) {
            Ok(()) => {
                self.stores.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                // Best-effort by contract: a failed save must not fail the
                // run, the cell just will not be cached.
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// A store adapter that never serves loads — used by the binaries when
/// `--out-dir` is given without `--resume`: cells are recomputed and
/// (re)written, but never read back.
pub struct WriteOnly<'a>(pub &'a DiskCellCache);

impl CellStore for WriteOnly<'_> {
    fn load(&self, _paper_id: &str, _kind: SynthKind, _epsilon: f64) -> Option<CellOutcome> {
        None
    }

    fn save(&self, paper_id: &str, kind: SynthKind, epsilon: f64, cell: &CellOutcome) {
        self.0.save(paper_id, kind, epsilon, cell);
    }
}

/// Merge several shard store directories into `dest` (opened for `config`)
/// and return the merged store, ready for
/// [`synrd::benchmark::assemble_report`].
///
/// # Errors
/// I/O failures; a shard directory without a `cells/` subdirectory is an
/// error (it was not produced by a sharded run).
pub fn merge_shard_dirs(
    shards: &[PathBuf],
    dest: &Path,
    config: &BenchmarkConfig,
) -> io::Result<DiskCellCache> {
    let merged = DiskCellCache::open(dest, config)?;
    for shard in shards {
        merged.merge_from(shard)?;
    }
    Ok(merged)
}

/// Write `bytes` to `path` atomically-with-respect-to-readers: a unique
/// temp file in the same directory, then `rename` into place.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut tmp_name = path
        .file_name()
        .map(|f| f.to_string_lossy().into_owned())
        .unwrap_or_else(|| "file".to_string());
    tmp_name.push_str(&format!(".tmp.{}.{n}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    fs::write(&tmp, bytes)?;
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synrd::benchmark::CellStatus;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("synrd-store-unit-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn cell(parity: Vec<f64>) -> CellOutcome {
        CellOutcome {
            seed_variance: vec![0.0; parity.len()],
            parity,
            status: CellStatus::Ok,
            fit_seconds: 0.5,
        }
    }

    #[test]
    fn save_then_load_roundtrips_bitwise() {
        let dir = tmp_dir("roundtrip");
        let config = BenchmarkConfig::quick();
        let cache = DiskCellCache::open(&dir, &config).unwrap();
        let c = cell(vec![1.0, f64::NAN, 0.25]);

        assert!(cache.load("saw2018", SynthKind::Mst, 1.0).is_none());
        cache.save("saw2018", SynthKind::Mst, 1.0, &c);
        let back = cache.load("saw2018", SynthKind::Mst, 1.0).unwrap();
        assert!(back.bitwise_eq(&c));

        // Other coordinates do not alias.
        assert!(cache.load("saw2018", SynthKind::Gem, 1.0).is_none());
        assert!(cache.load("saw2018", SynthKind::Mst, 2.0).is_none());
        assert!(cache.load("lee2021", SynthKind::Mst, 1.0).is_none());

        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.stores, 1);
        assert_eq!(stats.misses, 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn config_change_invalidates_cells() {
        let dir = tmp_dir("invalidate");
        let config = BenchmarkConfig::quick();
        let cache = DiskCellCache::open(&dir, &config).unwrap();
        cache.save("saw2018", SynthKind::Mst, 1.0, &cell(vec![1.0]));

        let mut changed = BenchmarkConfig::quick();
        changed.seeds += 1;
        let cache2 = DiskCellCache::open(&dir, &changed).unwrap();
        assert_ne!(cache.fingerprint(), cache2.fingerprint());
        assert!(
            cache2.load("saw2018", SynthKind::Mst, 1.0).is_none(),
            "a changed config must not see old cells"
        );
        // threads is scheduling-only and must NOT invalidate.
        let mut threads_only = BenchmarkConfig::quick();
        threads_only.threads = 1;
        let cache3 = DiskCellCache::open(&dir, &threads_only).unwrap();
        assert_eq!(cache.fingerprint(), cache3.fingerprint());
        assert!(cache3.load("saw2018", SynthKind::Mst, 1.0).is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_or_mismatched_files_degrade_to_misses() {
        let dir = tmp_dir("corrupt");
        let config = BenchmarkConfig::quick();
        let cache = DiskCellCache::open(&dir, &config).unwrap();
        cache.save("saw2018", SynthKind::Mst, 1.0, &cell(vec![1.0]));
        let digest = cell_digest(cache.fingerprint(), "saw2018", "MST", 1.0);
        let path = cache.cell_path(digest);

        fs::write(&path, b"{not json").unwrap();
        assert!(cache.load("saw2018", SynthKind::Mst, 1.0).is_none());

        // Valid JSON, wrong key block (as if a digest collision happened).
        let foreign = JsonValue::obj(vec![
            ("key", cache.key_block("other-paper", "MST", 1.0)),
            ("cell", cell(vec![0.0]).to_json()),
        ]);
        fs::write(&path, foreign.to_text()).unwrap();
        assert!(cache.load("saw2018", SynthKind::Mst, 1.0).is_none());
        assert!(cache.stats().errors >= 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_unions_shard_directories() {
        let config = BenchmarkConfig::quick();
        let d1 = tmp_dir("merge-1");
        let d2 = tmp_dir("merge-2");
        let dm = tmp_dir("merge-dest");
        let s1 = DiskCellCache::open(&d1, &config).unwrap();
        let s2 = DiskCellCache::open(&d2, &config).unwrap();
        s1.save("saw2018", SynthKind::Mst, 1.0, &cell(vec![1.0]));
        s1.save("saw2018", SynthKind::Mst, 2.0, &cell(vec![0.5]));
        s2.save("saw2018", SynthKind::Gem, 1.0, &cell(vec![0.0]));
        // Overlap: both shards have this cell; merge keeps the first copy.
        s2.save("saw2018", SynthKind::Mst, 1.0, &cell(vec![1.0]));

        let merged = merge_shard_dirs(&[d1.clone(), d2.clone()], &dm, &config).unwrap();
        assert!(merged.load("saw2018", SynthKind::Mst, 1.0).is_some());
        assert!(merged.load("saw2018", SynthKind::Mst, 2.0).is_some());
        assert!(merged.load("saw2018", SynthKind::Gem, 1.0).is_some());
        for d in [d1, d2, dm] {
            fs::remove_dir_all(&d).unwrap();
        }
    }

    #[test]
    fn timed_out_cells_are_never_persisted() {
        let dir = tmp_dir("timeout");
        let config = BenchmarkConfig::quick();
        let cache = DiskCellCache::open(&dir, &config).unwrap();
        let timed_out = CellOutcome {
            parity: vec![f64::NAN],
            seed_variance: vec![f64::NAN],
            status: CellStatus::TimedOut,
            fit_seconds: 301.0,
        };
        cache.save("saw2018", SynthKind::Mst, 1.0, &timed_out);
        assert_eq!(cache.stats().stores, 0);
        assert!(
            cache.load("saw2018", SynthKind::Mst, 1.0).is_none(),
            "a wall-clock give-up must not be served to future runs"
        );
        // Every other unavailable status IS deterministic and is cached.
        let skipped = CellOutcome {
            parity: vec![f64::NAN],
            seed_variance: vec![f64::NAN],
            status: CellStatus::Skipped,
            fit_seconds: 0.0,
        };
        cache.save("saw2018", SynthKind::PrivMrf, 2.0, &skipped);
        assert!(cache.load("saw2018", SynthKind::PrivMrf, 2.0).is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_only_never_serves_loads() {
        let dir = tmp_dir("write-only");
        let config = BenchmarkConfig::quick();
        let cache = DiskCellCache::open(&dir, &config).unwrap();
        let wo = WriteOnly(&cache);
        wo.save("saw2018", SynthKind::Mst, 1.0, &cell(vec![1.0]));
        assert!(wo.load("saw2018", SynthKind::Mst, 1.0).is_none());
        assert!(cache.load("saw2018", SynthKind::Mst, 1.0).is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn report_persistence_roundtrips() {
        let dir = tmp_dir("reports");
        let config = BenchmarkConfig::quick();
        let cache = DiskCellCache::open(&dir, &config).unwrap();
        let report = PaperReport {
            paper_id: "toy",
            paper_name: "Toy et al.",
            findings: vec![(1, "f1", synrd::finding::FindingType::DescriptiveStatistics)],
            epsilons: vec![1.0],
            synthesizers: vec![SynthKind::Mst],
            cells: vec![vec![cell(vec![0.75])]],
            control: vec![1.0],
            n_rows: 100,
        };
        cache.write_report(&report).unwrap();
        let back = cache.read_report("toy").unwrap();
        assert!(back.bitwise_eq(&report));
        assert!(cache.read_report("missing").is_none());
        fs::remove_dir_all(&dir).unwrap();
    }
}
