//! End-to-end determinism of the persistent store:
//!
//! 1. a sharded run (n = 3) whose shard stores are merged via
//!    `merge_shard_dirs` assembles reports **bit-identical** to a
//!    monolithic `run_paper`, and
//! 2. a cache-warm rerun reproduces the cold run exactly while performing
//!    **zero** synthesizer fits (asserted via the grid's fit counter).
//!
//! The two tests share the process-wide fit counter, so they serialize on
//! a mutex rather than racing each other's deltas.

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;
use synrd::benchmark::{
    assemble_report, fits_performed, run_grid_sharded, run_paper_with, BenchmarkConfig, Shard,
};
use synrd::publication::{publication_by_id, Publication};
use synrd_store::{merge_shard_dirs, DiskCellCache};
use synrd_synth::SynthKind;

static FIT_COUNTER_LOCK: Mutex<()> = Mutex::new(());

/// A tiny-but-real grid: 2 papers × 2 synthesizers × 3 ε = 12 cells.
fn mini_config() -> BenchmarkConfig {
    BenchmarkConfig {
        epsilons: vec![0.5, 1.0, std::f64::consts::E],
        seeds: 1,
        bootstraps: 2,
        data_scale: 0.05,
        min_rows: 800,
        data_seed: 99,
        threads: 4,
        fit_threads: None,
        fit_timeout: Some(Duration::from_secs(300)),
        restrict_privmrf: true,
        synthesizers: vec![SynthKind::Mst, SynthKind::Gem],
    }
}

fn papers() -> Vec<Box<dyn Publication>> {
    ["fruiht2018", "pierce2019"]
        .iter()
        .map(|id| publication_by_id(id).expect("registered paper"))
        .collect()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("synrd-determinism-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sharded_run_merges_bitwise_identical_to_monolithic() {
    let _guard = FIT_COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let config = mini_config();
    let papers = papers();

    // Monolithic reference run, no store involved.
    let monolithic: Vec<_> = papers
        .iter()
        .map(|p| run_paper_with(p.as_ref(), &config, None).expect("monolithic run"))
        .collect();

    // Three shards into three independent store directories.
    const N: usize = 3;
    let shard_dirs: Vec<PathBuf> = (0..N).map(|i| scratch_dir(&format!("shard{i}"))).collect();
    let mut owned_total = 0;
    let mut computed_total = 0;
    for (i, dir) in shard_dirs.iter().enumerate() {
        let cache = DiskCellCache::open(dir, &config).expect("open shard store");
        let summary = run_grid_sharded(
            &papers,
            &config,
            &cache,
            Shard::new(i, N).expect("valid shard"),
        )
        .expect("shard run");
        assert_eq!(summary.cells_total, 12);
        assert_eq!(summary.cells_cached, 0, "fresh stores cannot have hits");
        assert_eq!(summary.cells_owned, summary.cells_computed);
        owned_total += summary.cells_owned;
        computed_total += summary.cells_computed;
    }
    // The shards partition the global cell list exactly.
    assert_eq!(owned_total, 12);
    assert_eq!(computed_total, 12);

    // Merge the shard stores and assemble reports purely from cached
    // cells: no fits may happen during assembly.
    let merged_dir = scratch_dir("merged");
    let merged = merge_shard_dirs(&shard_dirs, &merged_dir, &config).expect("merge");
    let fits_before_assembly = fits_performed();
    for (paper, reference) in papers.iter().zip(&monolithic) {
        let assembled = assemble_report(paper.as_ref(), &config, &merged)
            .expect("every cell must be present after merging all shards");
        assert!(
            assembled.bitwise_eq(reference),
            "merged {} differs from monolithic run",
            reference.paper_id
        );
    }
    assert_eq!(
        fits_performed(),
        fits_before_assembly,
        "assembly must be fit-free"
    );

    // Dropping any one shard must leave a hole that assembly reports.
    let partial_dir = scratch_dir("partial");
    let partial = merge_shard_dirs(&shard_dirs[..N - 1], &partial_dir, &config).expect("merge");
    let err = papers
        .iter()
        .find_map(|p| assemble_report(p.as_ref(), &config, &partial).err())
        .expect("a missing shard must surface as a missing cell");
    assert!(err.to_string().contains("missing"), "{err}");

    for dir in shard_dirs.iter().chain([&merged_dir, &partial_dir]) {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn warm_cache_rerun_is_exact_and_fit_free() {
    let _guard = FIT_COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let config = mini_config();
    let paper = publication_by_id("fruiht2018").expect("registered paper");
    let dir = scratch_dir("warm");

    // Cold run: populates the store and must actually fit synthesizers.
    let cache = DiskCellCache::open(&dir, &config).expect("open store");
    let fits_before_cold = fits_performed();
    let cold = run_paper_with(paper.as_ref(), &config, Some(&cache)).expect("cold run");
    let cold_fits = fits_performed() - fits_before_cold;
    assert!(cold_fits > 0, "cold run must fit synthesizers");
    assert_eq!(cache.stats().hits, 0);
    assert_eq!(cache.stats().stores, 6, "2 synths × 3 eps cells stored");

    // Warm rerun through a fresh handle: zero fits, bit-identical report.
    let warm_cache = DiskCellCache::open(&dir, &config).expect("reopen store");
    let fits_before_warm = fits_performed();
    let warm = run_paper_with(paper.as_ref(), &config, Some(&warm_cache)).expect("warm run");
    assert_eq!(
        fits_performed() - fits_before_warm,
        0,
        "warm-cache rerun must perform zero synthesizer fits"
    );
    assert!(
        warm.bitwise_eq(&cold),
        "cache-served report differs from computed report"
    );
    assert_eq!(warm_cache.stats().hits, 6);
    assert_eq!(warm_cache.stats().misses, 0);

    // A changed config must miss and recompute (fits again).
    let mut changed = mini_config();
    changed.data_seed += 1;
    let changed_cache = DiskCellCache::open(&dir, &changed).expect("reopen for new config");
    let fits_before_changed = fits_performed();
    let _ = run_paper_with(paper.as_ref(), &changed, Some(&changed_cache)).expect("changed run");
    assert!(
        fits_performed() > fits_before_changed,
        "a changed config fingerprint must invalidate the cache"
    );
    assert_eq!(changed_cache.stats().hits, 0);

    let _ = std::fs::remove_dir_all(&dir);
}
