//! Property tests for the fitted-state codecs: arbitrary junction-tree
//! models, PrivBayes networks, GEM tensors, and generator MLPs survive
//! `to_json → parse → to_json` **byte-identically**, including NaN/±∞
//! weights and log-probabilities.
//!
//! Same generation idiom as `proptests.rs`: the vendored proptest drives a
//! single `u64` seed per case, and a seeded `StdRng` builds the structured
//! value — deterministic and replayable via `PROPTEST_SEED`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use synrd_data::{AttrKind, Attribute, Domain, Marginal};
use synrd_ml::{Activation, DenseState, MlpState};
use synrd_pgm::{CalibratedTree, Factor, FittedModel, JunctionTree};
use synrd_store::JsonCodec;
use synrd_synth::{BayesNode, FittedState, GemState};

fn arb_f64(rng: &mut StdRng) -> f64 {
    match rng.gen_range(0..10u32) {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        4 => -0.0,
        5 => f64::MIN_POSITIVE,
        6 => 5e-324, // subnormal
        7 => f64::MAX,
        _ => (rng.gen::<f64>() - 0.5) * 10f64.powi(rng.gen_range(-300..300)),
    }
}

fn arb_f64_vec(rng: &mut StdRng, len: usize) -> Vec<f64> {
    (0..len).map(|_| arb_f64(rng)).collect()
}

const NAME_POOL: &[&str] = &["x", "with space", "quote\"inside", "ünïcodé-名前", ""];

fn arb_attribute(rng: &mut StdRng) -> Attribute {
    let cards = rng.gen_range(2..5usize);
    let kind = match rng.gen_range(0..3u32) {
        0 => AttrKind::Categorical,
        1 => AttrKind::Ordinal,
        _ => AttrKind::Binary,
    };
    let categories = (0..cards)
        .map(|c| format!("{}-{c}", NAME_POOL[rng.gen_range(0..NAME_POOL.len())]))
        .collect::<Vec<_>>();
    let numeric_values = if rng.gen::<bool>() {
        Some(arb_f64_vec(rng, cards))
    } else {
        None
    };
    Attribute::from_parts(
        NAME_POOL[rng.gen_range(0..NAME_POOL.len())],
        kind,
        categories,
        numeric_values,
    )
    .expect("generated attribute is structurally valid")
}

fn arb_domain(rng: &mut StdRng) -> Domain {
    let n = rng.gen_range(1..5usize);
    Domain::new((0..n).map(|_| arb_attribute(rng)).collect())
}

fn arb_marginal(rng: &mut StdRng) -> Marginal {
    let d = rng.gen_range(1..4usize);
    let attrs: Vec<usize> = (0..d).map(|_| rng.gen_range(0..8)).collect();
    let shape: Vec<usize> = (0..d).map(|_| rng.gen_range(1..4)).collect();
    let cells = shape.iter().product();
    Marginal::from_counts(attrs, shape, arb_f64_vec(rng, cells))
        .expect("generated marginal is structurally valid")
}

/// A random model the way the synthesizers make one: random measurement
/// sets over a random domain shape, a tree built from them, and one belief
/// per clique with arbitrary (possibly non-finite) log-probabilities.
fn arb_fitted_model(rng: &mut StdRng) -> FittedModel {
    let n = rng.gen_range(2..5usize);
    let domain_shape: Vec<usize> = (0..n).map(|_| rng.gen_range(2..4)).collect();
    let sets = rng.gen_range(1..4usize);
    let attr_sets: Vec<Vec<usize>> = (0..sets)
        .map(|_| {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            let mut set = vec![a, b];
            set.sort_unstable();
            set.dedup();
            set
        })
        .collect();
    let tree = JunctionTree::build(&domain_shape, &attr_sets, usize::MAX)
        .expect("generated measurement sets fit a tree");
    let beliefs = (0..tree.cliques().len())
        .map(|c| {
            let shape = tree.clique_shape(c).to_vec();
            let cells = shape.iter().product();
            Factor::from_log_values(tree.cliques()[c].clone(), shape, arb_f64_vec(rng, cells))
                .expect("belief matches its clique shape")
        })
        .collect();
    FittedModel::from_parts(tree, CalibratedTree { beliefs }, arb_f64(rng), arb_f64(rng))
        .expect("beliefs were built from the tree")
}

fn arb_gem_state(rng: &mut StdRng) -> GemState {
    let k = rng.gen_range(1..4usize);
    let attrs = rng.gen_range(1..4usize);
    let cards: Vec<usize> = (0..attrs).map(|_| rng.gen_range(1..4)).collect();
    let tensor = |rng: &mut StdRng| -> Vec<Vec<Vec<f64>>> {
        (0..k)
            .map(|_| cards.iter().map(|&c| arb_f64_vec(rng, c)).collect())
            .collect()
    };
    GemState {
        logits: tensor(rng),
        m: tensor(rng),
        v: tensor(rng),
        step: rng.gen(),
    }
}

fn arb_mlp_state(rng: &mut StdRng) -> MlpState {
    let layers = rng.gen_range(1..4usize);
    let mut input = rng.gen_range(1..5usize);
    let layers = (0..layers)
        .map(|_| {
            let output = rng.gen_range(1..5usize);
            let layer = DenseState {
                input,
                output,
                w: arb_f64_vec(rng, input * output),
                b: arb_f64_vec(rng, output),
                mw: arb_f64_vec(rng, input * output),
                vw: arb_f64_vec(rng, input * output),
                mb: arb_f64_vec(rng, output),
                vb: arb_f64_vec(rng, output),
            };
            input = output;
            layer
        })
        .collect();
    MlpState {
        layers,
        output_activation: match rng.gen_range(0..3u32) {
            0 => Activation::Linear,
            1 => Activation::Sigmoid,
            _ => Activation::Tanh,
        },
        step: rng.gen(),
        learning_rate: arb_f64(rng).abs(),
    }
}

fn arb_bayes_nodes(rng: &mut StdRng) -> Vec<BayesNode> {
    // Codec-level round trip only: network-consistency is `restore_state`'s
    // job, so tables and parent sets are free-form here.
    let n = rng.gen_range(1..4usize);
    (0..n)
        .map(|i| BayesNode {
            attr: i,
            parents: (0..i).filter(|_| rng.gen::<bool>()).collect(),
            table: arb_marginal(rng),
        })
        .collect()
}

fn arb_fitted_state(rng: &mut StdRng) -> FittedState {
    let domain = arb_domain(rng);
    match rng.gen_range(0..4u32) {
        0 => FittedState::Pgm {
            domain,
            model: arb_fitted_model(rng),
        },
        1 => FittedState::PrivBayes {
            domain,
            nodes: arb_bayes_nodes(rng),
        },
        2 => FittedState::Gem {
            domain,
            model: arb_gem_state(rng),
        },
        _ => {
            let z_dim = rng.gen_range(1..5usize);
            FittedState::PateCtgan {
                domain,
                generator: arb_mlp_state(rng),
                blocks: (0..rng.gen_range(1..4usize))
                    .map(|_| (rng.gen_range(0..10), rng.gen_range(1..4)))
                    .collect(),
                z_dim,
            }
        }
    }
}

/// `encode ∘ decode ∘ encode` is the identity on bytes.
fn assert_text_fixed_point<T: JsonCodec>(value: &T, what: &str) {
    let text = value.to_json_text();
    let back = T::from_json_text(&text)
        .unwrap_or_else(|e| panic!("{what}: decode of own encoding failed: {e}"));
    assert_eq!(back.to_json_text(), text, "{what}: canonical text drifted");
}

proptest! {
    #[test]
    fn attribute_codec_is_a_text_fixed_point(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        assert_text_fixed_point(&arb_attribute(&mut rng), "attribute");
    }

    #[test]
    fn domain_codec_is_a_text_fixed_point(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        assert_text_fixed_point(&arb_domain(&mut rng), "domain");
    }

    #[test]
    fn marginal_codec_is_a_text_fixed_point(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = arb_marginal(&mut rng);
        assert_text_fixed_point(&m, "marginal");
        // Counts survive bit-for-bit, NaN and ±∞ included.
        let back = Marginal::from_json_text(&m.to_json_text()).unwrap();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(back.counts()), bits(m.counts()));
    }

    #[test]
    fn fitted_model_codec_rebuilds_the_same_tree(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = arb_fitted_model(&mut rng);
        assert_text_fixed_point(&model, "fitted model");
        let back = FittedModel::from_json_text(&model.to_json_text()).unwrap();
        // The tree is rebuilt from its cliques; rebuild must be exact.
        prop_assert_eq!(back.tree().domain_shape(), model.tree().domain_shape());
        prop_assert_eq!(back.tree().cliques(), model.tree().cliques());
        prop_assert_eq!(back.tree().edges(), model.tree().edges());
        // Belief tables survive bit-for-bit (== would reject NaN == NaN).
        prop_assert_eq!(back.calibrated().beliefs.len(), model.calibrated().beliefs.len());
        for (b, m) in back.calibrated().beliefs.iter().zip(&model.calibrated().beliefs) {
            prop_assert_eq!(b.attrs(), m.attrs());
            prop_assert_eq!(b.shape(), m.shape());
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            prop_assert_eq!(bits(b.log_values()), bits(m.log_values()));
        }
        prop_assert_eq!(back.n_estimate().to_bits(), model.n_estimate().to_bits());
        prop_assert_eq!(back.final_loss().to_bits(), model.final_loss().to_bits());
    }

    #[test]
    fn gem_state_codec_is_a_text_fixed_point(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let state = arb_gem_state(&mut rng);
        assert_text_fixed_point(&state, "gem state");
        let back = GemState::from_json_text(&state.to_json_text()).unwrap();
        prop_assert_eq!(back.step, state.step);
        prop_assert_eq!(back.logits.len(), state.logits.len());
    }

    #[test]
    fn mlp_state_codec_is_a_text_fixed_point(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let state = arb_mlp_state(&mut rng);
        assert_text_fixed_point(&state, "mlp state");
        let back = MlpState::from_json_text(&state.to_json_text()).unwrap();
        prop_assert_eq!(back.layers.len(), state.layers.len());
        prop_assert_eq!(back.output_activation, state.output_activation);
    }

    #[test]
    fn bayes_nodes_codec_is_a_text_fixed_point(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        for node in arb_bayes_nodes(&mut rng) {
            assert_text_fixed_point(&node, "bayes node");
        }
    }

    #[test]
    fn fitted_state_codec_is_a_text_fixed_point(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        assert_text_fixed_point(&arb_fitted_state(&mut rng), "fitted state");
    }
}
