//! Property tests for the canonical JSON codecs: arbitrary report values
//! survive `to_json → parse → to_json` **byte-identically**, including
//! NaN/∞ parity cells, empty grids, and crosshatched/skipped statuses.
//!
//! The vendored proptest's strategy combinators are deliberately minimal,
//! so structured values are generated from a seeded `StdRng` drawn through
//! a single `u64` strategy — every case is still fully deterministic and
//! replayable via `PROPTEST_SEED`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use synrd::benchmark::{BenchmarkConfig, CellOutcome, CellStatus, PaperReport};
use synrd::finding::FindingType;
use synrd::parity::AggregateSeries;
use synrd_store::JsonCodec;
use synrd_synth::SynthKind;

/// Names exercising escaping (quotes, backslashes, control chars, unicode)
/// without unbounded interner growth across proptest cases.
const NAME_POOL: &[&str] = &[
    "",
    "plain",
    "with space",
    "quote\"inside",
    "back\\slash",
    "new\nline",
    "tab\tand\rcr",
    "control\u{1}char",
    "ünïcodé-名前-😀",
    "a-very-long-finding-name-that-keeps-going-and-going",
];

/// Finite-or-not f64 with the *standard* quiet NaN (bit patterns compare
/// equal under `bitwise_eq` after a round trip).
fn arb_f64(rng: &mut StdRng) -> f64 {
    match rng.gen_range(0..10u32) {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        4 => -0.0,
        5 => f64::MIN_POSITIVE, // smallest normal
        6 => 5e-324,            // subnormal
        7 => f64::MAX,
        _ => (rng.gen::<f64>() - 0.5) * 10f64.powi(rng.gen_range(-300..300)),
    }
}

fn arb_f64_vec(rng: &mut StdRng, max_len: usize) -> Vec<f64> {
    let len = rng.gen_range(0..=max_len);
    (0..len).map(|_| arb_f64(rng)).collect()
}

fn arb_status(rng: &mut StdRng) -> CellStatus {
    match rng.gen_range(0..4u32) {
        0 => CellStatus::Ok,
        1 => CellStatus::TimedOut,
        2 => CellStatus::Skipped,
        _ => {
            let reason = NAME_POOL[rng.gen_range(0..NAME_POOL.len())].to_string();
            CellStatus::Infeasible(reason)
        }
    }
}

fn arb_cell(rng: &mut StdRng) -> CellOutcome {
    let findings = rng.gen_range(0..5usize);
    CellOutcome {
        parity: (0..findings).map(|_| arb_f64(rng)).collect(),
        seed_variance: (0..findings).map(|_| arb_f64(rng)).collect(),
        status: arb_status(rng),
        fit_seconds: arb_f64(rng).abs(),
    }
}

fn arb_synths(rng: &mut StdRng, max: usize) -> Vec<SynthKind> {
    let len = rng.gen_range(0..=max);
    (0..len)
        .map(|_| SynthKind::ALL[rng.gen_range(0..SynthKind::ALL.len())])
        .collect()
}

fn arb_report(rng: &mut StdRng) -> PaperReport {
    let n_findings = rng.gen_range(0..4usize);
    let synthesizers = arb_synths(rng, 3);
    let n_eps = rng.gen_range(0..4usize);
    let findings: Vec<(u32, &'static str, FindingType)> = (0..n_findings)
        .map(|_| {
            (
                rng.gen::<u32>(),
                // Already-static names: no interner involvement on encode.
                NAME_POOL[rng.gen_range(0..NAME_POOL.len())],
                FindingType::ALL[rng.gen_range(0..FindingType::ALL.len())],
            )
        })
        .collect();
    let cells = (0..synthesizers.len())
        .map(|_| (0..n_eps).map(|_| arb_cell(rng)).collect())
        .collect();
    PaperReport {
        paper_id: NAME_POOL[rng.gen_range(0..NAME_POOL.len())],
        paper_name: NAME_POOL[rng.gen_range(0..NAME_POOL.len())],
        findings,
        epsilons: (0..n_eps).map(|_| arb_f64(rng)).collect(),
        synthesizers,
        cells,
        control: arb_f64_vec(rng, 4),
        n_rows: rng.gen::<u32>() as usize,
    }
}

fn arb_config(rng: &mut StdRng) -> BenchmarkConfig {
    BenchmarkConfig {
        epsilons: arb_f64_vec(rng, 6),
        seeds: rng.gen_range(0..100),
        bootstraps: rng.gen_range(0..100),
        data_scale: arb_f64(rng),
        min_rows: rng.gen::<u32>() as usize,
        data_seed: rng.gen::<u64>(),
        threads: rng.gen_range(1..32),
        fit_threads: None,
        fit_timeout: if rng.gen::<bool>() {
            Some(std::time::Duration::new(
                rng.gen_range(0..10_000),
                rng.gen_range(0..1_000_000_000),
            ))
        } else {
            None
        },
        restrict_privmrf: rng.gen::<bool>(),
        synthesizers: arb_synths(rng, 6),
    }
}

fn arb_series(rng: &mut StdRng) -> AggregateSeries {
    let n_eps = rng.gen_range(0..5usize);
    let series = |rng: &mut StdRng| -> Vec<(SynthKind, Vec<f64>)> {
        let n = rng.gen_range(0..4usize);
        (0..n)
            .map(|_| {
                (
                    SynthKind::ALL[rng.gen_range(0..SynthKind::ALL.len())],
                    (0..n_eps).map(|_| arb_f64(rng)).collect(),
                )
            })
            .collect()
    };
    AggregateSeries {
        epsilons: (0..n_eps).map(|_| arb_f64(rng)).collect(),
        parity: series(rng),
        variance: series(rng),
    }
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    /// CellOutcome: canonical text is a fixed point and the decoded value
    /// is bit-identical (including fit_seconds, which bitwise_eq excludes).
    #[test]
    fn cell_roundtrip_is_byte_identical(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cell = arb_cell(&mut rng);
        let text = cell.to_json_text();
        let back = CellOutcome::from_json_text(&text)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(back.to_json_text(), text);
        prop_assert!(back.bitwise_eq(&cell), "payload drifted: {:?}", cell);
        prop_assert_eq!(back.fit_seconds.to_bits(), cell.fit_seconds.to_bits());
    }

    /// Even NaNs with nonstandard payloads round-trip byte-identically at
    /// the *text* level (the writer normalizes every NaN to one token).
    #[test]
    fn cell_text_is_fixed_point_for_any_bit_pattern(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let parity: Vec<f64> = (0..rng.gen_range(0..6usize))
            .map(|_| f64::from_bits(rng.gen::<u64>()))
            .collect();
        let cell = CellOutcome {
            seed_variance: parity.clone(),
            parity,
            status: arb_status(&mut rng),
            fit_seconds: f64::from_bits(rng.gen::<u64>()),
        };
        let text = cell.to_json_text();
        let back = CellOutcome::from_json_text(&text)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(back.to_json_text(), text);
    }

    /// PaperReport: byte-identical text round trip and bitwise-equal
    /// payload, across empty grids, NaN cells and every status.
    #[test]
    fn report_roundtrip_is_byte_identical(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let report = arb_report(&mut rng);
        let text = report.to_json_text();
        let back = PaperReport::from_json_text(&text)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(back.to_json_text(), text);
        prop_assert!(back.bitwise_eq(&report));
    }

    /// BenchmarkConfig round trip: byte-identical text and equal knobs
    /// (floats by bit pattern).
    #[test]
    fn config_roundtrip_is_byte_identical(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = arb_config(&mut rng);
        let text = config.to_json_text();
        let back = BenchmarkConfig::from_json_text(&text)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(back.to_json_text(), text);
        prop_assert_eq!(bits(&back.epsilons), bits(&config.epsilons));
        prop_assert_eq!(back.data_scale.to_bits(), config.data_scale.to_bits());
        prop_assert_eq!(back.data_seed, config.data_seed);
        prop_assert_eq!(back.fit_timeout, config.fit_timeout);
        prop_assert_eq!(back.synthesizers, config.synthesizers);
    }

    /// AggregateSeries round trip: byte-identical text, bit-equal series.
    #[test]
    fn series_roundtrip_is_byte_identical(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let series = arb_series(&mut rng);
        let text = series.to_json_text();
        let back = AggregateSeries::from_json_text(&text)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(back.to_json_text(), text);
        prop_assert_eq!(bits(&back.epsilons), bits(&series.epsilons));
        for (a, b) in back.parity.iter().zip(&series.parity) {
            prop_assert_eq!(a.0, b.0);
            prop_assert_eq!(bits(&a.1), bits(&b.1));
        }
        for (a, b) in back.variance.iter().zip(&series.variance) {
            prop_assert_eq!(a.0, b.0);
            prop_assert_eq!(bits(&a.1), bits(&b.1));
        }
    }

    /// The JSON parser is total over canonical-writer output embedded in
    /// larger documents (stress on deep-ish nesting and odd strings).
    #[test]
    fn parser_accepts_writer_output_of_nested_values(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cell = arb_cell(&mut rng);
        let doc = synrd_store::JsonValue::obj(vec![
            ("wrapped", synrd_store::JsonValue::Arr(vec![cell.to_json()])),
            ("name", synrd_store::JsonValue::Str(
                NAME_POOL[rng.gen_range(0..NAME_POOL.len())].to_string(),
            )),
        ]);
        let text = doc.to_text();
        let parsed = synrd_store::parse(&text)
            .map_err(|e| TestCaseError::fail(format!("parse failed: {e}")))?;
        prop_assert_eq!(parsed.to_text(), text);
    }
}
