//! Differential proptests pinning the batched MLP kernels bit-identical to
//! the per-example oracle across random shapes, batch sizes (including 0
//! and 1), output activations, and non-finite inputs — on **every
//! registered backend** (`synrd_ml::backend::registered_backends()`), so a
//! new backend is covered by the full differential suite for free.
//!
//! Requires the `naive-reference` feature (CI runs this at
//! `PROPTEST_CASES=1024`).

#![cfg(feature = "naive-reference")]

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use synrd_ml::backend::registered_backends;
use synrd_ml::{Activation, BatchWorkspace, Mlp};

fn activation() -> impl Strategy<Value = Activation> {
    (0usize..3).prop_map(|i| match i {
        0 => Activation::Linear,
        1 => Activation::Sigmoid,
        _ => Activation::Tanh,
    })
}

/// Mostly-finite values with a deliberate tail of ±∞ and NaN: the kernels
/// must propagate non-finite arithmetic exactly the way the per-example
/// loops do (e.g. ReLU's `max(0.0)` quashes NaN on both paths).
fn values(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec((0u8..16, -3.0f64..3.0), len..=len).prop_map(|v| {
        v.into_iter()
            .map(|(sel, x)| match sel {
                13 => f64::INFINITY,
                14 => f64::NEG_INFINITY,
                15 => f64::NAN,
                _ => x,
            })
            .collect()
    })
}

type Case = (Vec<usize>, usize, Activation, u64, Vec<f64>, Vec<f64>);

/// Random layer sizes, batch (0..=5), activation, net seed, and an input /
/// output-gradient block sized to match. Layer sizes reach 12 so the SIMD
/// backend's 8-wide and 4-wide lane blocks are exercised as well as its
/// scalar ragged edges.
fn case() -> impl Strategy<Value = Case> {
    (
        proptest::collection::vec(1usize..=12, 2..=4),
        0usize..=5,
        activation(),
        0u64..u64::MAX,
    )
        .prop_flat_map(|(sizes, batch, act, seed)| {
            let n_in = batch * sizes[0];
            let n_out = batch * *sizes.last().expect("at least two sizes");
            (
                (Just(sizes), Just(batch), Just(act), Just(seed)),
                values(n_in),
                values(n_out),
            )
        })
        .prop_map(|((sizes, batch, act, seed), xs, grads)| (sizes, batch, act, seed, xs, grads))
}

/// Bitwise view of one value, with NaNs canonicalized: IEEE 754 leaves the
/// sign/payload of a *generated* NaN unspecified, and LLVM is free to
/// commute the operands of a float add between two compilations of the same
/// reduction, flipping which operand's NaN is propagated. NaN *positions*
/// and every non-NaN bit pattern (±∞ included) still compare exactly.
fn canon(x: f64) -> u64 {
    if x.is_nan() {
        f64::NAN.to_bits()
    } else {
        x.to_bits()
    }
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|&x| canon(x)).collect()
}

/// Bitwise view of the full trainable state: step counter, weights, biases,
/// and all four Adam moment buffers.
fn state_bits(net: &Mlp) -> Vec<u64> {
    let s = net.export_state();
    let mut out = vec![s.step];
    for l in &s.layers {
        for buf in [&l.w, &l.b, &l.mw, &l.vw, &l.mb, &l.vb] {
            out.extend(buf.iter().map(|&x| canon(x)));
        }
    }
    out
}

proptest! {
    #[test]
    fn forward_batch_is_bit_identical((sizes, batch, act, seed, xs, _g) in case()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let net = Mlp::new(&sizes, act, &mut rng);
        let naive: Vec<f64> = net
            .forward_batch_naive(&xs, batch)
            .iter()
            .flat_map(|c| c.output().to_vec())
            .collect();
        for backend in registered_backends() {
            let mut ws = BatchWorkspace::with_backend(backend);
            net.forward_batch(&xs, batch, &mut ws);
            prop_assert_eq!((backend.name(), bits(ws.output())), (backend.name(), bits(&naive)));
        }
    }

    #[test]
    fn input_gradient_batch_is_bit_identical((sizes, batch, act, seed, xs, grads) in case()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let net = Mlp::new(&sizes, act, &mut rng);
        let caches = net.forward_batch_naive(&xs, batch);
        let naive = net.input_gradient_batch_naive(&caches, &grads);
        for backend in registered_backends() {
            let mut ws = BatchWorkspace::with_backend(backend);
            net.forward_batch(&xs, batch, &mut ws);
            let mut dx = Vec::new();
            net.input_gradient_batch(&mut ws, &grads, &mut dx);
            prop_assert_eq!((backend.name(), bits(&dx)), (backend.name(), bits(&naive)));
        }
    }

    #[test]
    fn backward_apply_batch_is_bit_identical((sizes, batch, act, seed, xs, grads) in case()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let net = Mlp::new(&sizes, act, &mut rng);
        for backend in registered_backends() {
            let mut batched = net.clone();
            let mut naive = net.clone();
            let mut ws = BatchWorkspace::with_backend(backend);
            // Two consecutive steps so the comparison exercises the Adam
            // state (moments + step counter) past the first bias correction,
            // and the workspace arenas get reused.
            for _round in 0..2 {
                batched.forward_batch(&xs, batch, &mut ws);
                batched.backward_apply_batch(&mut ws, &grads);
                let caches = naive.forward_batch_naive(&xs, batch);
                naive.backward_apply_batch_naive(&caches, &grads);
                prop_assert_eq!(
                    (backend.name(), state_bits(&batched)),
                    (backend.name(), state_bits(&naive))
                );
            }
        }
    }
}
