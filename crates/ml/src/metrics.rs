//! Classification and fairness metrics.
//!
//! Jeong et al. compare accuracy, false-positive rate, false-negative rate,
//! and predicted base rate between the privileged and disadvantaged racial
//! groups; these are the paper's *Logistic Regression* finding types.

use crate::error::{MlError, Result};

/// Confusion-derived metrics at a 0.5 threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Fraction of correct predictions.
    pub accuracy: f64,
    /// FP / (FP + TN): P(predict 1 | truth 0).
    pub fpr: f64,
    /// FN / (FN + TP): P(predict 0 | truth 1).
    pub fnr: f64,
    /// Fraction predicted positive (predicted base rate).
    pub pbr: f64,
    /// Observations.
    pub n: usize,
}

/// Metrics from probability scores and 0/1 truth at a 0.5 threshold.
///
/// # Errors
/// Length mismatch or empty input.
pub fn metrics(scores: &[f64], truth: &[f64]) -> Result<Metrics> {
    if scores.len() != truth.len() {
        return Err(MlError::LengthMismatch {
            left: scores.len(),
            right: truth.len(),
        });
    }
    if scores.is_empty() {
        return Err(MlError::TooFewRows { needed: 1, got: 0 });
    }
    let mut tp = 0.0;
    let mut fp = 0.0;
    let mut tn = 0.0;
    let mut fne = 0.0;
    for (&s, &t) in scores.iter().zip(truth) {
        let pred = s > 0.5;
        match (pred, t == 1.0) {
            (true, true) => tp += 1.0,
            (true, false) => fp += 1.0,
            (false, false) => tn += 1.0,
            (false, true) => fne += 1.0,
        }
    }
    let n = scores.len() as f64;
    Ok(Metrics {
        accuracy: (tp + tn) / n,
        fpr: if fp + tn > 0.0 { fp / (fp + tn) } else { 0.0 },
        fnr: if fne + tp > 0.0 {
            fne / (fne + tp)
        } else {
            0.0
        },
        pbr: (tp + fp) / n,
        n: scores.len(),
    })
}

/// Per-group metrics: `groups[i]` is the group id of row i; returns metrics
/// for each group id 0..n_groups.
pub fn group_metrics(
    scores: &[f64],
    truth: &[f64],
    groups: &[u32],
    n_groups: usize,
) -> Result<Vec<Metrics>> {
    if groups.len() != scores.len() {
        return Err(MlError::LengthMismatch {
            left: groups.len(),
            right: scores.len(),
        });
    }
    let mut out = Vec::with_capacity(n_groups);
    for g in 0..n_groups {
        let (s, t): (Vec<f64>, Vec<f64>) = scores
            .iter()
            .zip(truth)
            .zip(groups)
            .filter(|(_, &gg)| gg as usize == g)
            .map(|((s, t), _)| (*s, *t))
            .unzip();
        out.push(metrics(&s, &t)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let truth = [1.0, 0.0, 1.0, 0.0];
        let scores = [0.9, 0.1, 0.8, 0.2];
        let m = metrics(&scores, &truth).unwrap();
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.fpr, 0.0);
        assert_eq!(m.fnr, 0.0);
        assert_eq!(m.pbr, 0.5);
    }

    #[test]
    fn biased_classifier_shows_in_rates() {
        // Always predicts positive: FPR = 1, FNR = 0, PBR = 1.
        let truth = [1.0, 0.0, 0.0, 1.0];
        let scores = [0.9, 0.9, 0.9, 0.9];
        let m = metrics(&scores, &truth).unwrap();
        assert_eq!(m.fpr, 1.0);
        assert_eq!(m.fnr, 0.0);
        assert_eq!(m.pbr, 1.0);
        assert_eq!(m.accuracy, 0.5);
    }

    #[test]
    fn group_split_works() {
        let truth = [1.0, 0.0, 1.0, 0.0];
        let scores = [0.9, 0.9, 0.1, 0.1];
        let groups = [0u32, 0, 1, 1];
        let gm = group_metrics(&scores, &truth, &groups, 2).unwrap();
        assert_eq!(gm[0].fpr, 1.0); // group 0's negative got predicted positive
        assert_eq!(gm[1].fnr, 1.0); // group 1's positive got predicted negative
    }

    #[test]
    fn validation() {
        assert!(metrics(&[0.5], &[]).is_err());
        assert!(metrics(&[], &[]).is_err());
    }
}
