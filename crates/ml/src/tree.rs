//! CART-style binary decision tree with Gini impurity.
//!
//! One of Jeong et al.'s three model families (via [`crate::forest`]). The
//! implementation supports per-node feature subsampling so the forest gets
//! decorrelated trees.

use crate::error::{validate_xy, MlError, Result};
use rand::seq::SliceRandom;
use rand::Rng;

/// Hyperparameters for tree induction.
#[derive(Debug, Clone, Copy)]
pub struct TreeOptions {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Features tried per node; `None` = all.
    pub max_features: Option<usize>,
}

impl Default for TreeOptions {
    fn default() -> Self {
        TreeOptions {
            max_depth: 8,
            min_samples_split: 10,
            max_features: None,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        prob: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A fitted decision tree predicting P(y = 1 | x).
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Node,
    n_features: usize,
}

impl DecisionTree {
    /// Fit on row-major features and 0/1 labels.
    pub fn fit<R: Rng + ?Sized>(
        x: &[Vec<f64>],
        y: &[f64],
        options: TreeOptions,
        rng: &mut R,
    ) -> Result<DecisionTree> {
        let d = validate_xy(x, y)?;
        if options.max_depth == 0 {
            return Err(MlError::InvalidParameter {
                name: "max_depth",
                value: 0.0,
            });
        }
        let idx: Vec<usize> = (0..x.len()).collect();
        let root = grow(x, y, &idx, 0, &options, rng);
        Ok(DecisionTree {
            root,
            n_features: d,
        })
    }

    /// Predicted probability for one row.
    pub fn predict_proba_row(&self, row: &[f64]) -> f64 {
        debug_assert_eq!(row.len(), self.n_features);
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { prob } => return *prob,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Predicted probabilities for many rows.
    pub fn predict_proba(&self, x: &[Vec<f64>]) -> Vec<f64> {
        x.iter().map(|r| self.predict_proba_row(r)).collect()
    }
}

fn gini(pos: f64, total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    let p = pos / total;
    2.0 * p * (1.0 - p)
}

fn grow<R: Rng + ?Sized>(
    x: &[Vec<f64>],
    y: &[f64],
    idx: &[usize],
    depth: usize,
    options: &TreeOptions,
    rng: &mut R,
) -> Node {
    let total = idx.len() as f64;
    let pos: f64 = idx.iter().map(|&i| y[i]).sum();
    let prob = if total > 0.0 { pos / total } else { 0.5 };
    let pure = pos == 0.0 || pos == total;
    if depth >= options.max_depth || idx.len() < options.min_samples_split || pure {
        return Node::Leaf { prob };
    }

    // Candidate features (subsampled for forests).
    let d = x[0].len();
    let mut features: Vec<usize> = (0..d).collect();
    if let Some(k) = options.max_features {
        features.shuffle(rng);
        features.truncate(k.max(1).min(d));
    }

    let parent_gini = gini(pos, total);
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
    let mut values: Vec<(f64, f64)> = Vec::with_capacity(idx.len());
    for &f in &features {
        values.clear();
        values.extend(idx.iter().map(|&i| (x[i][f], y[i])));
        values.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite features"));
        // Sweep split points between distinct values.
        let mut left_pos = 0.0;
        let mut left_n = 0.0;
        for w in 0..values.len().saturating_sub(1) {
            left_pos += values[w].1;
            left_n += 1.0;
            if values[w].0 == values[w + 1].0 {
                continue;
            }
            let right_pos = pos - left_pos;
            let right_n = total - left_n;
            let weighted = (left_n / total) * gini(left_pos, left_n)
                + (right_n / total) * gini(right_pos, right_n);
            let gain = parent_gini - weighted;
            // Zero-gain splits are allowed (XOR-style problems have no
            // first-level gain); depth and the purity check bound the tree.
            if best.map_or(gain >= -1e-12, |(_, _, g)| gain > g) {
                let threshold = 0.5 * (values[w].0 + values[w + 1].0);
                best = Some((f, threshold, gain));
            }
        }
    }

    match best {
        None => Node::Leaf { prob },
        Some((feature, threshold, _)) => {
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                idx.iter().partition(|&&i| x[i][feature] <= threshold);
            if left_idx.is_empty() || right_idx.is_empty() {
                return Node::Leaf { prob };
            }
            Node::Split {
                feature,
                threshold,
                left: Box::new(grow(x, y, &left_idx, depth + 1, options, rng)),
                right: Box::new(grow(x, y, &right_idx, depth + 1, options, rng)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn learns_a_threshold_rule() {
        let x: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..200).map(|i| f64::from(i >= 100)).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let tree = DecisionTree::fit(&x, &y, TreeOptions::default(), &mut rng).unwrap();
        assert!(tree.predict_proba_row(&[5.0]) < 0.1);
        assert!(tree.predict_proba_row(&[150.0]) > 0.9);
    }

    #[test]
    fn learns_xor_with_depth() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..400 {
            let a = f64::from(i % 2 == 0);
            let b = f64::from((i / 2) % 2 == 0);
            x.push(vec![a, b]);
            y.push(f64::from((a != b) as u8));
        }
        let mut rng = StdRng::seed_from_u64(2);
        let tree = DecisionTree::fit(&x, &y, TreeOptions::default(), &mut rng).unwrap();
        assert!(tree.predict_proba_row(&[0.0, 1.0]) > 0.9);
        assert!(tree.predict_proba_row(&[1.0, 1.0]) < 0.1);
    }

    #[test]
    fn respects_max_depth_one() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..100).map(|i| f64::from(i >= 50)).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let opts = TreeOptions {
            max_depth: 1,
            ..TreeOptions::default()
        };
        let tree = DecisionTree::fit(&x, &y, opts, &mut rng).unwrap();
        // A stump still separates this data.
        assert!(tree.predict_proba_row(&[0.0]) < 0.2);
        assert!(tree.predict_proba_row(&[99.0]) > 0.8);
    }

    #[test]
    fn validation_errors() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(DecisionTree::fit(&[], &[], TreeOptions::default(), &mut rng).is_err());
        assert!(DecisionTree::fit(&[vec![1.0]], &[2.0], TreeOptions::default(), &mut rng).is_err());
    }
}
