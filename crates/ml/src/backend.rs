//! Execution backends for the batched MLP kernels.
//!
//! [`Backend`] is the seam between the batched [`Mlp`](crate::Mlp) passes
//! and the hardware that executes their GEMM-shaped inner loops. The
//! synthesizer code only ever talks to `forward_batch` /
//! `backward_apply_batch` / `input_gradient_batch`; those route every
//! matrix-matrix product through a `Backend`, so a SIMD or GPU
//! implementation can slot in without touching a single training loop.
//! [`CpuBackend`] is the only implementation today.
//!
//! # Reduction-order contract
//!
//! Every implementation must produce **bit-identical** results to
//! [`CpuBackend`]: each output cell sums its dot product in ascending index
//! order starting from `0.0` (the bias, where present, is added last), and
//! batch-gradient cells accumulate example-major (row `0` first). This is
//! the same pinned-order discipline the stride factor kernels and the
//! marginal engine follow, and it is what lets the differential proptests
//! (`tests/batch_equivalence.rs`) hold for any backend.

/// The GEMM-shaped primitives behind the batched MLP passes.
///
/// All matrices are row-major `f64` slices: activations are
/// `[batch × dim]`, weights are `[output × input]` (one row per output
/// neuron, matching [`Mlp`](crate::Mlp)'s storage).
pub trait Backend {
    /// Dense forward: `y[r][o] = (Σ_i w[o][i] · x[r][i]) + bias[o]`, with
    /// the sum accumulated in ascending `i` and the bias added last —
    /// bit-identical to the per-example forward pass.
    #[allow(clippy::too_many_arguments)]
    fn forward_gemm(
        &self,
        batch: usize,
        input: usize,
        output: usize,
        w: &[f64],
        bias: &[f64],
        x: &[f64],
        y: &mut [f64],
    );

    /// Gradient with respect to the layer input:
    /// `dx[r][i] = Σ_o delta[r][o] · w[o][i]`, accumulated in ascending `o`
    /// from `0.0` — the order the per-example backward pass uses.
    fn input_grad_gemm(
        &self,
        batch: usize,
        input: usize,
        output: usize,
        w: &[f64],
        delta: &[f64],
        dx: &mut [f64],
    );

    /// Batch gradients of the weights and biases, overwriting `gw`/`gb`:
    /// `gw[o][i] = Σ_r delta[r][o] · x[r][i]` and `gb[o] = Σ_r delta[r][o]`,
    /// both accumulated example-major (ascending `r`) from `0.0` — the order
    /// a per-example gradient-accumulation loop produces.
    #[allow(clippy::too_many_arguments)]
    fn weight_grad_gemm(
        &self,
        batch: usize,
        input: usize,
        output: usize,
        x: &[f64],
        delta: &[f64],
        gw: &mut [f64],
        gb: &mut [f64],
    );
}

/// Single-threaded CPU backend: straightforward register-blocked loops with
/// the reduction orders of the per-example code, one matrix-matrix pass per
/// layer. The reference every other backend must match bit-for-bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuBackend;

impl Backend for CpuBackend {
    #[allow(clippy::too_many_arguments)]
    fn forward_gemm(
        &self,
        batch: usize,
        input: usize,
        output: usize,
        w: &[f64],
        bias: &[f64],
        x: &[f64],
        y: &mut [f64],
    ) {
        debug_assert_eq!(w.len(), input * output);
        debug_assert_eq!(bias.len(), output);
        debug_assert_eq!(x.len(), batch * input);
        debug_assert_eq!(y.len(), batch * output);
        // Weight-row stationary: each output neuron's row stays hot while
        // the batch streams past it.
        for o in 0..output {
            let row = &w[o * input..(o + 1) * input];
            let b = bias[o];
            for r in 0..batch {
                let xr = &x[r * input..(r + 1) * input];
                let mut acc = 0.0f64;
                for (wv, xv) in row.iter().zip(xr) {
                    acc += wv * xv;
                }
                y[r * output + o] = acc + b;
            }
        }
    }

    fn input_grad_gemm(
        &self,
        batch: usize,
        input: usize,
        output: usize,
        w: &[f64],
        delta: &[f64],
        dx: &mut [f64],
    ) {
        debug_assert_eq!(w.len(), input * output);
        debug_assert_eq!(delta.len(), batch * output);
        debug_assert_eq!(dx.len(), batch * input);
        for r in 0..batch {
            let dxr = &mut dx[r * input..(r + 1) * input];
            dxr.iter_mut().for_each(|v| *v = 0.0);
            for o in 0..output {
                let d = delta[r * output + o];
                let row = &w[o * input..(o + 1) * input];
                for (dst, wv) in dxr.iter_mut().zip(row) {
                    *dst += d * wv;
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn weight_grad_gemm(
        &self,
        batch: usize,
        input: usize,
        output: usize,
        x: &[f64],
        delta: &[f64],
        gw: &mut [f64],
        gb: &mut [f64],
    ) {
        debug_assert_eq!(x.len(), batch * input);
        debug_assert_eq!(delta.len(), batch * output);
        debug_assert_eq!(gw.len(), input * output);
        debug_assert_eq!(gb.len(), output);
        // Gradient-row stationary; the inner accumulation stays ascending
        // in `r` for every (o, i) cell, i.e. example-major.
        for o in 0..output {
            let grow = &mut gw[o * input..(o + 1) * input];
            grow.iter_mut().for_each(|v| *v = 0.0);
            let mut bacc = 0.0f64;
            for r in 0..batch {
                let d = delta[r * output + o];
                let xr = &x[r * input..(r + 1) * input];
                for (g, xv) in grow.iter_mut().zip(xr) {
                    *g += d * xv;
                }
                bacc += d;
            }
            gb[o] = bacc;
        }
    }
}
