//! Execution backends for the batched MLP kernels.
//!
//! [`Backend`] is the seam between the batched [`Mlp`](crate::Mlp) passes
//! and the hardware that executes their inner loops: the three GEMM-shaped
//! primitives plus the element-wise Adam update. The synthesizer code only
//! ever talks to `forward_batch` / `backward_apply_batch` /
//! `input_gradient_batch`; those route every matrix-matrix product and
//! optimizer step through a `Backend`. Two implementations exist:
//! the scalar reference [`CpuBackend`] and the lane-blocked [`SimdBackend`]
//! (AVX on x86-64, scalar elsewhere), selected at runtime through
//! [`select`] / [`AnyBackend`] or the process-global [`global`] dispatch.
//!
//! # Reduction-order contract
//!
//! Every implementation must produce **bit-identical** results to
//! [`CpuBackend`]: each output cell sums its dot product in ascending index
//! order starting from `0.0` (the bias, where present, is added last), and
//! batch-gradient cells accumulate example-major (row `0` first). This is
//! the same pinned-order discipline the stride factor kernels and the
//! marginal engine follow, and it is what lets the differential proptests
//! (`tests/batch_equivalence.rs`) hold for any backend.
//!
//! [`SimdBackend`] honors the contract *by construction*: it vectorizes
//! across **independent output cells** — blocks of output neurons in the
//! forward pass, blocks of weight/input columns in the gradient passes — so
//! every SIMD lane replays exactly the scalar ascending-index mul-then-add
//! sequence of one cell. The kernels use explicit `vmulpd`/`vaddpd`
//! intrinsics (never FMA, whose single rounding would diverge from the
//! scalar two-rounding sequence), and ragged edges fall back to the literal
//! `CpuBackend` loops. The Adam update needs no ordering argument at all:
//! it is element-wise, and `vdivpd`/`vsqrtpd` are IEEE correctly rounded
//! exactly like their scalar counterparts.
//!
//! # Runtime dispatch
//!
//! [`select`] maps `auto | cpu | simd` to an [`AnyBackend`]; `auto` picks
//! SIMD when the CPU supports it. A process-global selection — initialized
//! lazily from the `SYNRD_ML_BACKEND` environment variable, overridable via
//! [`set_global`] (the `--ml-backend` CLI flags) — feeds
//! [`BatchWorkspace::new`](crate::BatchWorkspace::new), so synthesizer code
//! picks the selected backend up without plumbing. Because every backend is
//! bit-identical, the selection affects throughput only: fitted states,
//! cache fingerprints and golden digests are the same under any backend.

use crate::error::{MlError, Result};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU8, Ordering};

/// The compute primitives behind the batched MLP passes: three GEMM-shaped
/// kernels plus the element-wise Adam update.
///
/// All matrices are row-major `f64` slices: activations are
/// `[batch × dim]`, weights are `[output × input]` (one row per output
/// neuron, matching [`Mlp`](crate::Mlp)'s storage).
pub trait Backend {
    /// Dense forward: `y[r][o] = (Σ_i w[o][i] · x[r][i]) + bias[o]`, with
    /// the sum accumulated in ascending `i` and the bias added last —
    /// bit-identical to the per-example forward pass.
    #[allow(clippy::too_many_arguments)]
    fn forward_gemm(
        &self,
        batch: usize,
        input: usize,
        output: usize,
        w: &[f64],
        bias: &[f64],
        x: &[f64],
        y: &mut [f64],
    );

    /// Gradient with respect to the layer input:
    /// `dx[r][i] = Σ_o delta[r][o] · w[o][i]`, accumulated in ascending `o`
    /// from `0.0` — the order the per-example backward pass uses.
    fn input_grad_gemm(
        &self,
        batch: usize,
        input: usize,
        output: usize,
        w: &[f64],
        delta: &[f64],
        dx: &mut [f64],
    );

    /// Batch gradients of the weights and biases, overwriting `gw`/`gb`:
    /// `gw[o][i] = Σ_r delta[r][o] · x[r][i]` and `gb[o] = Σ_r delta[r][o]`,
    /// both accumulated example-major (ascending `r`) from `0.0` — the order
    /// a per-example gradient-accumulation loop produces.
    #[allow(clippy::too_many_arguments)]
    fn weight_grad_gemm(
        &self,
        batch: usize,
        input: usize,
        output: usize,
        x: &[f64],
        delta: &[f64],
        gw: &mut [f64],
        gb: &mut [f64],
    );

    /// [`Backend::weight_grad_gemm`] restricted to the output-neuron span
    /// `o0 .. o0 + gb_span.len()`: writes that span's gradient rows into
    /// `gw_span` / `gb_span` (span-relative indexing) while reading the full
    /// `[batch × output]` delta block. Every `(o, i)` cell keeps its complete
    /// ascending-`r` example-major reduction, so a span decomposition
    /// reassembles **bit-identically** to one full-width call — the seam
    /// [`weight_grad_gemm_mt`] splits on. (The batch axis cannot be split
    /// here: merging per-chunk partial sums would reassociate the floating
    /// point reduction.)
    #[allow(clippy::too_many_arguments)]
    fn weight_grad_gemm_span(
        &self,
        batch: usize,
        input: usize,
        output: usize,
        o0: usize,
        x: &[f64],
        delta: &[f64],
        gw_span: &mut [f64],
        gb_span: &mut [f64],
    ) {
        let span = gb_span.len();
        debug_assert!(o0 + span <= output);
        debug_assert_eq!(x.len(), batch * input);
        debug_assert_eq!(delta.len(), batch * output);
        debug_assert_eq!(gw_span.len(), span * input);
        // The literal CpuBackend weight-grad loop, shifted to the span.
        for so in 0..span {
            let o = o0 + so;
            let grow = &mut gw_span[so * input..(so + 1) * input];
            grow.iter_mut().for_each(|v| *v = 0.0);
            let mut bacc = 0.0f64;
            for r in 0..batch {
                let d = delta[r * output + o];
                let xr = &x[r * input..(r + 1) * input];
                for (g, xv) in grow.iter_mut().zip(xr) {
                    *g += d * xv;
                }
                bacc += d;
            }
            gb_span[so] = bacc;
        }
    }

    /// One Adam update over a parameter block, element `i` of `p` stepped
    /// from gradient `g[i]` with first/second moments `m[i]`/`v[i]` updated
    /// in place (`bc1`/`bc2` are the hoisted `1 - β^t` bias corrections).
    ///
    /// Unlike the GEMMs this is purely **element-wise** — there is no
    /// reduction to order — so the bit-identity contract reduces to
    /// replaying the scalar per-element operation sequence exactly:
    /// `m = β₁·m + (1−β₁)·g`, `v = β₂·v + ((1−β₂)·g)·g`,
    /// `p −= lr·(m/bc1) / (√(v/bc2) + ε)`, each multiply/add/divide/sqrt
    /// its own IEEE-754 rounding (division and square root are correctly
    /// rounded, so vector lanes match scalar exactly; FMA contraction is
    /// again forbidden).
    #[allow(clippy::too_many_arguments)]
    fn adam_update(
        &self,
        lr: f64,
        b1: f64,
        b2: f64,
        eps: f64,
        bc1: f64,
        bc2: f64,
        g: &[f64],
        m: &mut [f64],
        v: &mut [f64],
        p: &mut [f64],
    );
}

/// Single-threaded CPU backend: straightforward register-blocked loops with
/// the reduction orders of the per-example code, one matrix-matrix pass per
/// layer. The reference every other backend must match bit-for-bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuBackend;

impl Backend for CpuBackend {
    #[allow(clippy::too_many_arguments)]
    fn forward_gemm(
        &self,
        batch: usize,
        input: usize,
        output: usize,
        w: &[f64],
        bias: &[f64],
        x: &[f64],
        y: &mut [f64],
    ) {
        debug_assert_eq!(w.len(), input * output);
        debug_assert_eq!(bias.len(), output);
        debug_assert_eq!(x.len(), batch * input);
        debug_assert_eq!(y.len(), batch * output);
        // Weight-row stationary: each output neuron's row stays hot while
        // the batch streams past it.
        for o in 0..output {
            let row = &w[o * input..(o + 1) * input];
            let b = bias[o];
            for r in 0..batch {
                let xr = &x[r * input..(r + 1) * input];
                let mut acc = 0.0f64;
                for (wv, xv) in row.iter().zip(xr) {
                    acc += wv * xv;
                }
                y[r * output + o] = acc + b;
            }
        }
    }

    fn input_grad_gemm(
        &self,
        batch: usize,
        input: usize,
        output: usize,
        w: &[f64],
        delta: &[f64],
        dx: &mut [f64],
    ) {
        debug_assert_eq!(w.len(), input * output);
        debug_assert_eq!(delta.len(), batch * output);
        debug_assert_eq!(dx.len(), batch * input);
        for r in 0..batch {
            let dxr = &mut dx[r * input..(r + 1) * input];
            dxr.iter_mut().for_each(|v| *v = 0.0);
            for o in 0..output {
                let d = delta[r * output + o];
                let row = &w[o * input..(o + 1) * input];
                for (dst, wv) in dxr.iter_mut().zip(row) {
                    *dst += d * wv;
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn weight_grad_gemm(
        &self,
        batch: usize,
        input: usize,
        output: usize,
        x: &[f64],
        delta: &[f64],
        gw: &mut [f64],
        gb: &mut [f64],
    ) {
        debug_assert_eq!(x.len(), batch * input);
        debug_assert_eq!(delta.len(), batch * output);
        debug_assert_eq!(gw.len(), input * output);
        debug_assert_eq!(gb.len(), output);
        // Gradient-row stationary; the inner accumulation stays ascending
        // in `r` for every (o, i) cell, i.e. example-major.
        for o in 0..output {
            let grow = &mut gw[o * input..(o + 1) * input];
            grow.iter_mut().for_each(|v| *v = 0.0);
            let mut bacc = 0.0f64;
            for r in 0..batch {
                let d = delta[r * output + o];
                let xr = &x[r * input..(r + 1) * input];
                for (g, xv) in grow.iter_mut().zip(xr) {
                    *g += d * xv;
                }
                bacc += d;
            }
            gb[o] = bacc;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn adam_update(
        &self,
        lr: f64,
        b1: f64,
        b2: f64,
        eps: f64,
        bc1: f64,
        bc2: f64,
        g: &[f64],
        m: &mut [f64],
        v: &mut [f64],
        p: &mut [f64],
    ) {
        debug_assert_eq!(g.len(), p.len());
        debug_assert_eq!(m.len(), p.len());
        debug_assert_eq!(v.len(), p.len());
        for idx in 0..p.len() {
            let g = g[idx];
            let m = &mut m[idx];
            let v = &mut v[idx];
            *m = b1 * *m + (1.0 - b1) * g;
            *v = b2 * *v + (1.0 - b2) * g * g;
            let mhat = *m / bc1;
            let vhat = *v / bc2;
            p[idx] -= lr * mhat / (vhat.sqrt() + eps);
        }
    }
}

/// Lane-blocked SIMD backend: AVX `f64` kernels that vectorize across
/// independent output cells so each lane accumulates its dot product in the
/// pinned ascending-index order — bit-identical to [`CpuBackend`] by
/// construction (see the module docs). On CPUs without AVX (or non-x86-64
/// targets) every call falls through to [`CpuBackend`], so constructing one
/// is always safe; use [`SimdBackend::supported`] to ask whether the vector
/// path is actually live.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimdBackend;

impl SimdBackend {
    /// Whether the vector kernels can run on this CPU (x86-64 with AVX).
    pub fn supported() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }
}

impl Backend for SimdBackend {
    #[allow(clippy::too_many_arguments)]
    fn forward_gemm(
        &self,
        batch: usize,
        input: usize,
        output: usize,
        w: &[f64],
        bias: &[f64],
        x: &[f64],
        y: &mut [f64],
    ) {
        debug_assert_eq!(w.len(), input * output);
        debug_assert_eq!(bias.len(), output);
        debug_assert_eq!(x.len(), batch * input);
        debug_assert_eq!(y.len(), batch * output);
        #[cfg(target_arch = "x86_64")]
        if SimdBackend::supported() {
            // SAFETY: AVX availability checked above; slice lengths checked
            // against the kernel's indexing contract by the debug asserts
            // and re-asserted inside.
            unsafe { avx::forward_gemm(batch, input, output, w, bias, x, y) };
            return;
        }
        CpuBackend.forward_gemm(batch, input, output, w, bias, x, y);
    }

    fn input_grad_gemm(
        &self,
        batch: usize,
        input: usize,
        output: usize,
        w: &[f64],
        delta: &[f64],
        dx: &mut [f64],
    ) {
        debug_assert_eq!(w.len(), input * output);
        debug_assert_eq!(delta.len(), batch * output);
        debug_assert_eq!(dx.len(), batch * input);
        #[cfg(target_arch = "x86_64")]
        if SimdBackend::supported() {
            // SAFETY: AVX availability checked above; lengths as above.
            unsafe { avx::input_grad_gemm(batch, input, output, w, delta, dx) };
            return;
        }
        CpuBackend.input_grad_gemm(batch, input, output, w, delta, dx);
    }

    #[allow(clippy::too_many_arguments)]
    fn weight_grad_gemm(
        &self,
        batch: usize,
        input: usize,
        output: usize,
        x: &[f64],
        delta: &[f64],
        gw: &mut [f64],
        gb: &mut [f64],
    ) {
        debug_assert_eq!(x.len(), batch * input);
        debug_assert_eq!(delta.len(), batch * output);
        debug_assert_eq!(gw.len(), input * output);
        debug_assert_eq!(gb.len(), output);
        #[cfg(target_arch = "x86_64")]
        if SimdBackend::supported() {
            // SAFETY: AVX availability checked above; lengths as above.
            unsafe { avx::weight_grad_gemm(batch, input, output, x, delta, gw, gb) };
            return;
        }
        CpuBackend.weight_grad_gemm(batch, input, output, x, delta, gw, gb);
    }

    #[allow(clippy::too_many_arguments)]
    fn weight_grad_gemm_span(
        &self,
        batch: usize,
        input: usize,
        output: usize,
        o0: usize,
        x: &[f64],
        delta: &[f64],
        gw_span: &mut [f64],
        gb_span: &mut [f64],
    ) {
        debug_assert_eq!(x.len(), batch * input);
        debug_assert_eq!(delta.len(), batch * output);
        debug_assert_eq!(gw_span.len(), gb_span.len() * input);
        #[cfg(target_arch = "x86_64")]
        if SimdBackend::supported() {
            // SAFETY: AVX availability checked above; lengths as above.
            unsafe {
                avx::weight_grad_gemm_span(batch, input, output, o0, x, delta, gw_span, gb_span)
            };
            return;
        }
        CpuBackend.weight_grad_gemm_span(batch, input, output, o0, x, delta, gw_span, gb_span);
    }

    #[allow(clippy::too_many_arguments)]
    fn adam_update(
        &self,
        lr: f64,
        b1: f64,
        b2: f64,
        eps: f64,
        bc1: f64,
        bc2: f64,
        g: &[f64],
        m: &mut [f64],
        v: &mut [f64],
        p: &mut [f64],
    ) {
        debug_assert_eq!(g.len(), p.len());
        debug_assert_eq!(m.len(), p.len());
        debug_assert_eq!(v.len(), p.len());
        #[cfg(target_arch = "x86_64")]
        if SimdBackend::supported() {
            // SAFETY: AVX availability checked above; lengths as above.
            unsafe { avx::adam_update(lr, b1, b2, eps, bc1, bc2, g, m, v, p) };
            return;
        }
        CpuBackend.adam_update(lr, b1, b2, eps, bc1, bc2, g, m, v, p);
    }
}

/// The AVX kernels behind [`SimdBackend`]. Each vector lane owns one output
/// cell and performs exactly the scalar cell's operation sequence:
/// `acc = 0.0`, then one `vmulpd` + `vaddpd` per ascending reduction index
/// (two roundings, matching the scalar `acc += a * b`; FMA would fuse them
/// into one and diverge), with the bias applied last by a final `vaddpd`.
/// Cells the 4/8-wide blocks cannot cover run the literal `CpuBackend`
/// remainder loops.
#[cfg(target_arch = "x86_64")]
mod avx {
    use core::arch::x86_64::{
        _mm256_add_pd, _mm256_div_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd,
        _mm256_setzero_pd, _mm256_sqrt_pd, _mm256_storeu_pd, _mm256_sub_pd,
    };
    use std::cell::RefCell;

    thread_local! {
        /// Scratch for the `[input × output]` transpose of the forward
        /// weights (so the vector loop reads 4/8 consecutive output columns
        /// per load). Reused across calls: zero-alloc once warm.
        static WT: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
    }

    /// `y[r][o] = (Σ_i w[o][i]·x[r][i]) + bias[o]`, lanes = output neurons.
    ///
    /// # Safety
    /// Caller must ensure AVX is available and the slice lengths match the
    /// [`Backend`](super::Backend) contract for `(batch, input, output)`.
    pub unsafe fn forward_gemm(
        batch: usize,
        input: usize,
        output: usize,
        w: &[f64],
        bias: &[f64],
        x: &[f64],
        y: &mut [f64],
    ) {
        WT.with(|cell| {
            let mut wt = cell.borrow_mut();
            wt.clear();
            wt.resize(input * output, 0.0);
            for o in 0..output {
                for i in 0..input {
                    wt[i * output + o] = w[o * input + i];
                }
            }
            // SAFETY: forwarded caller contract; `wt` is `input × output`.
            unsafe { forward_kernel(batch, input, output, w, bias, x, y, &wt) }
        });
    }

    /// # Safety
    /// AVX required; `wt` is the `[input × output]` transpose of `w`; slice
    /// lengths per the `Backend` contract.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx")]
    unsafe fn forward_kernel(
        batch: usize,
        input: usize,
        output: usize,
        w: &[f64],
        bias: &[f64],
        x: &[f64],
        y: &mut [f64],
        wt: &[f64],
    ) {
        assert_eq!(wt.len(), input * output);
        assert_eq!(bias.len(), output);
        assert!(x.len() >= batch * input && y.len() >= batch * output);
        let wtp = wt.as_ptr();
        let bp = bias.as_ptr();
        let mut ob = 0;
        // Eight output cells per iteration: two independent 4-lane
        // accumulator chains, each replaying the scalar ascending-`i`
        // sequence of its cell. The `ob` column block of `wt` (one or two
        // cache lines per `i`) stays hot across the whole batch.
        while ob + 8 <= output {
            for r in 0..batch {
                let xr = x.as_ptr().add(r * input);
                let mut acc0 = _mm256_setzero_pd();
                let mut acc1 = _mm256_setzero_pd();
                for i in 0..input {
                    let xv = _mm256_set1_pd(*xr.add(i));
                    let col = wtp.add(i * output + ob);
                    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(_mm256_loadu_pd(col), xv));
                    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(_mm256_loadu_pd(col.add(4)), xv));
                }
                let yr = y.as_mut_ptr().add(r * output + ob);
                _mm256_storeu_pd(yr, _mm256_add_pd(acc0, _mm256_loadu_pd(bp.add(ob))));
                _mm256_storeu_pd(
                    yr.add(4),
                    _mm256_add_pd(acc1, _mm256_loadu_pd(bp.add(ob + 4))),
                );
            }
            ob += 8;
        }
        if ob + 4 <= output {
            for r in 0..batch {
                let xr = x.as_ptr().add(r * input);
                let mut acc = _mm256_setzero_pd();
                for i in 0..input {
                    let xv = _mm256_set1_pd(*xr.add(i));
                    acc = _mm256_add_pd(
                        acc,
                        _mm256_mul_pd(_mm256_loadu_pd(wtp.add(i * output + ob)), xv),
                    );
                }
                _mm256_storeu_pd(
                    y.as_mut_ptr().add(r * output + ob),
                    _mm256_add_pd(acc, _mm256_loadu_pd(bp.add(ob))),
                );
            }
            ob += 4;
        }
        // Ragged edge: the literal CpuBackend loop for the remaining cells.
        for o in ob..output {
            let row = &w[o * input..(o + 1) * input];
            let b = bias[o];
            for r in 0..batch {
                let xr = &x[r * input..(r + 1) * input];
                let mut acc = 0.0f64;
                for (wv, xv) in row.iter().zip(xr) {
                    acc += wv * xv;
                }
                y[r * output + o] = acc + b;
            }
        }
    }

    /// `dx[r][i] = Σ_o delta[r][o]·w[o][i]`, lanes = input columns.
    ///
    /// # Safety
    /// AVX required; slice lengths per the `Backend` contract.
    #[target_feature(enable = "avx")]
    pub unsafe fn input_grad_gemm(
        batch: usize,
        input: usize,
        output: usize,
        w: &[f64],
        delta: &[f64],
        dx: &mut [f64],
    ) {
        assert_eq!(w.len(), input * output);
        assert!(delta.len() >= batch * output && dx.len() >= batch * input);
        let wp = w.as_ptr();
        let mut ib = 0;
        // Eight input cells per iteration; the `ib` column block of `w`
        // stays hot across the batch while `delta` rows stream past.
        while ib + 8 <= input {
            for r in 0..batch {
                let dr = delta.as_ptr().add(r * output);
                let mut acc0 = _mm256_setzero_pd();
                let mut acc1 = _mm256_setzero_pd();
                for o in 0..output {
                    let d = _mm256_set1_pd(*dr.add(o));
                    let row = wp.add(o * input + ib);
                    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(d, _mm256_loadu_pd(row)));
                    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(d, _mm256_loadu_pd(row.add(4))));
                }
                let dst = dx.as_mut_ptr().add(r * input + ib);
                _mm256_storeu_pd(dst, acc0);
                _mm256_storeu_pd(dst.add(4), acc1);
            }
            ib += 8;
        }
        if ib + 4 <= input {
            for r in 0..batch {
                let dr = delta.as_ptr().add(r * output);
                let mut acc = _mm256_setzero_pd();
                for o in 0..output {
                    let d = _mm256_set1_pd(*dr.add(o));
                    acc = _mm256_add_pd(
                        acc,
                        _mm256_mul_pd(d, _mm256_loadu_pd(wp.add(o * input + ib))),
                    );
                }
                _mm256_storeu_pd(dx.as_mut_ptr().add(r * input + ib), acc);
            }
            ib += 4;
        }
        // Ragged edge: per-cell ascending-`o` accumulation, exactly the
        // scalar order (CpuBackend zeroes then `+=`; same sequence).
        for r in 0..batch {
            for i in ib..input {
                let mut acc = 0.0f64;
                for o in 0..output {
                    acc += delta[r * output + o] * w[o * input + i];
                }
                dx[r * input + i] = acc;
            }
        }
    }

    /// `gw[o][i] = Σ_r delta[r][o]·x[r][i]`, `gb[o] = Σ_r delta[r][o]`,
    /// lanes = weight columns; both sums example-major.
    ///
    /// # Safety
    /// AVX required; slice lengths per the `Backend` contract.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx")]
    pub unsafe fn weight_grad_gemm(
        batch: usize,
        input: usize,
        output: usize,
        x: &[f64],
        delta: &[f64],
        gw: &mut [f64],
        gb: &mut [f64],
    ) {
        assert!(x.len() >= batch * input && delta.len() >= batch * output);
        assert!(gw.len() >= input * output && gb.len() >= output);
        let xp = x.as_ptr();
        let mut ib = 0;
        while ib + 8 <= input {
            for o in 0..output {
                let mut acc0 = _mm256_setzero_pd();
                let mut acc1 = _mm256_setzero_pd();
                for r in 0..batch {
                    let d = _mm256_set1_pd(delta[r * output + o]);
                    let xr = xp.add(r * input + ib);
                    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(d, _mm256_loadu_pd(xr)));
                    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(d, _mm256_loadu_pd(xr.add(4))));
                }
                let dst = gw.as_mut_ptr().add(o * input + ib);
                _mm256_storeu_pd(dst, acc0);
                _mm256_storeu_pd(dst.add(4), acc1);
            }
            ib += 8;
        }
        if ib + 4 <= input {
            for o in 0..output {
                let mut acc = _mm256_setzero_pd();
                for r in 0..batch {
                    let d = _mm256_set1_pd(delta[r * output + o]);
                    acc = _mm256_add_pd(
                        acc,
                        _mm256_mul_pd(d, _mm256_loadu_pd(xp.add(r * input + ib))),
                    );
                }
                _mm256_storeu_pd(gw.as_mut_ptr().add(o * input + ib), acc);
            }
            ib += 4;
        }
        // Ragged edge: per-cell ascending-`r` accumulation.
        for o in 0..output {
            for i in ib..input {
                let mut acc = 0.0f64;
                for r in 0..batch {
                    acc += delta[r * output + o] * x[r * input + i];
                }
                gw[o * input + i] = acc;
            }
        }
        // Bias gradients are a plain scalar example-major sweep (no dot
        // product to vectorize): identical to the CpuBackend loop.
        for o in 0..output {
            let mut bacc = 0.0f64;
            for r in 0..batch {
                bacc += delta[r * output + o];
            }
            gb[o] = bacc;
        }
    }

    /// [`weight_grad_gemm`] over the output span `o0 .. o0 + gb_span.len()`
    /// only, span-relative destinations. Lane layout and per-cell reduction
    /// order are identical to the full kernel — each `(o, i)` cell still
    /// accumulates ascending-`r` — so span results match a full-width call
    /// bit for bit.
    ///
    /// # Safety
    /// AVX required; `x`/`delta` sized per the `Backend` contract for
    /// `(batch, input, output)`; `gw_span.len() == gb_span.len() * input`
    /// and `o0 + gb_span.len() <= output`.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx")]
    pub unsafe fn weight_grad_gemm_span(
        batch: usize,
        input: usize,
        output: usize,
        o0: usize,
        x: &[f64],
        delta: &[f64],
        gw_span: &mut [f64],
        gb_span: &mut [f64],
    ) {
        let span = gb_span.len();
        assert!(o0 + span <= output);
        assert!(x.len() >= batch * input && delta.len() >= batch * output);
        assert!(gw_span.len() >= span * input);
        let xp = x.as_ptr();
        let mut ib = 0;
        while ib + 8 <= input {
            for so in 0..span {
                let o = o0 + so;
                let mut acc0 = _mm256_setzero_pd();
                let mut acc1 = _mm256_setzero_pd();
                for r in 0..batch {
                    let d = _mm256_set1_pd(delta[r * output + o]);
                    let xr = xp.add(r * input + ib);
                    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(d, _mm256_loadu_pd(xr)));
                    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(d, _mm256_loadu_pd(xr.add(4))));
                }
                let dst = gw_span.as_mut_ptr().add(so * input + ib);
                _mm256_storeu_pd(dst, acc0);
                _mm256_storeu_pd(dst.add(4), acc1);
            }
            ib += 8;
        }
        if ib + 4 <= input {
            for so in 0..span {
                let o = o0 + so;
                let mut acc = _mm256_setzero_pd();
                for r in 0..batch {
                    let d = _mm256_set1_pd(delta[r * output + o]);
                    acc = _mm256_add_pd(
                        acc,
                        _mm256_mul_pd(d, _mm256_loadu_pd(xp.add(r * input + ib))),
                    );
                }
                _mm256_storeu_pd(gw_span.as_mut_ptr().add(so * input + ib), acc);
            }
            ib += 4;
        }
        // Ragged edge: per-cell ascending-`r` accumulation.
        for so in 0..span {
            let o = o0 + so;
            for i in ib..input {
                let mut acc = 0.0f64;
                for r in 0..batch {
                    acc += delta[r * output + o] * x[r * input + i];
                }
                gw_span[so * input + i] = acc;
            }
        }
        // Bias gradients: scalar example-major sweep over the span.
        for so in 0..span {
            let o = o0 + so;
            let mut bacc = 0.0f64;
            for r in 0..batch {
                bacc += delta[r * output + o];
            }
            gb_span[so] = bacc;
        }
    }

    /// Element-wise Adam step, four parameters per vector. Every lane runs
    /// the scalar operation sequence verbatim — `vdivpd` / `vsqrtpd` are
    /// IEEE correctly rounded like their scalar forms, and mul/add stay
    /// unfused — so this is bit-identical to the `CpuBackend` loop with no
    /// ordering argument needed (there is no reduction).
    ///
    /// # Safety
    /// AVX required; `g`, `m`, `v` must be at least `p.len()` long.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx")]
    pub unsafe fn adam_update(
        lr: f64,
        b1: f64,
        b2: f64,
        eps: f64,
        bc1: f64,
        bc2: f64,
        g: &[f64],
        m: &mut [f64],
        v: &mut [f64],
        p: &mut [f64],
    ) {
        let n = p.len();
        assert!(g.len() >= n && m.len() >= n && v.len() >= n);
        let b1v = _mm256_set1_pd(b1);
        let c1v = _mm256_set1_pd(1.0 - b1);
        let b2v = _mm256_set1_pd(b2);
        let c2v = _mm256_set1_pd(1.0 - b2);
        let bc1v = _mm256_set1_pd(bc1);
        let bc2v = _mm256_set1_pd(bc2);
        let lrv = _mm256_set1_pd(lr);
        let epsv = _mm256_set1_pd(eps);
        let mut i = 0;
        while i + 4 <= n {
            let gv = _mm256_loadu_pd(g.as_ptr().add(i));
            let mv = _mm256_add_pd(
                _mm256_mul_pd(b1v, _mm256_loadu_pd(m.as_ptr().add(i))),
                _mm256_mul_pd(c1v, gv),
            );
            let vv = _mm256_add_pd(
                _mm256_mul_pd(b2v, _mm256_loadu_pd(v.as_ptr().add(i))),
                _mm256_mul_pd(_mm256_mul_pd(c2v, gv), gv),
            );
            _mm256_storeu_pd(m.as_mut_ptr().add(i), mv);
            _mm256_storeu_pd(v.as_mut_ptr().add(i), vv);
            let step = _mm256_div_pd(
                _mm256_mul_pd(lrv, _mm256_div_pd(mv, bc1v)),
                _mm256_add_pd(_mm256_sqrt_pd(_mm256_div_pd(vv, bc2v)), epsv),
            );
            _mm256_storeu_pd(
                p.as_mut_ptr().add(i),
                _mm256_sub_pd(_mm256_loadu_pd(p.as_ptr().add(i)), step),
            );
            i += 4;
        }
        // Ragged edge: the literal CpuBackend per-element sequence.
        for idx in i..n {
            let g = g[idx];
            let m = &mut m[idx];
            let v = &mut v[idx];
            *m = b1 * *m + (1.0 - b1) * g;
            *v = b2 * *v + (1.0 - b2) * g * g;
            let mhat = *m / bc1;
            let vhat = *v / bc2;
            p[idx] -= lr * mhat / (vhat.sqrt() + eps);
        }
    }
}

// ---------------------------------------------------------------------------
// Multi-threaded GEMM drivers: fan a kernel call out over worker threads
// along an axis whose output cells are disjoint, so every cell's reduction
// chain is untouched and any thread count is bit-identical to one.
// ---------------------------------------------------------------------------

/// Multiply-add count below which fanning a GEMM out is a loss: a parallel
/// region costs tens of microseconds of thread handoff, which the small
/// PATE-CTGAN shapes (≈ 48×16×96) never amortize.
const PARALLEL_GEMM_FLOPS: usize = 1 << 18;

/// The worker count a GEMM of `flops` multiply-adds should actually use:
/// `threads` when the work clears [`PARALLEL_GEMM_FLOPS`], else `1`. The
/// batched MLP passes route their per-layer shapes through this so tiny
/// layers stay sequential even under a generous fit-thread allowance.
pub fn gemm_threads(threads: usize, flops: usize) -> usize {
    if threads > 1 && flops >= PARALLEL_GEMM_FLOPS {
        threads
    } else {
        1
    }
}

/// [`Backend::forward_gemm`] fanned out over `threads` workers by chunking
/// the batch (row) axis: each worker runs the plain kernel on a contiguous
/// row block writing a disjoint `y` slice, so every output cell's
/// ascending-`i` chain is exactly the sequential one — bit-identical at any
/// thread count.
#[allow(clippy::too_many_arguments)]
pub fn forward_gemm_mt<B: Backend + Sync>(
    backend: &B,
    threads: usize,
    batch: usize,
    input: usize,
    output: usize,
    w: &[f64],
    bias: &[f64],
    x: &[f64],
    y: &mut [f64],
) {
    let threads = threads.clamp(1, batch.max(1));
    if threads <= 1 || output == 0 {
        backend.forward_gemm(batch, input, output, w, bias, x, y);
        return;
    }
    let rows = batch.div_ceil(threads);
    let jobs: Vec<(usize, &mut [f64])> = y.chunks_mut(rows * output).enumerate().collect();
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("gemm thread pool");
    pool.install(|| {
        jobs.into_par_iter().for_each(|(ci, yc)| {
            let r0 = ci * rows;
            let nb = yc.len() / output;
            backend.forward_gemm(
                nb,
                input,
                output,
                w,
                bias,
                &x[r0 * input..(r0 + nb) * input],
                yc,
            );
        });
    });
}

/// [`Backend::input_grad_gemm`] fanned out over the batch (row) axis, same
/// disjoint-rows argument as [`forward_gemm_mt`].
#[allow(clippy::too_many_arguments)]
pub fn input_grad_gemm_mt<B: Backend + Sync>(
    backend: &B,
    threads: usize,
    batch: usize,
    input: usize,
    output: usize,
    w: &[f64],
    delta: &[f64],
    dx: &mut [f64],
) {
    let threads = threads.clamp(1, batch.max(1));
    if threads <= 1 || input == 0 {
        backend.input_grad_gemm(batch, input, output, w, delta, dx);
        return;
    }
    let rows = batch.div_ceil(threads);
    let jobs: Vec<(usize, &mut [f64])> = dx.chunks_mut(rows * input).enumerate().collect();
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("gemm thread pool");
    pool.install(|| {
        jobs.into_par_iter().for_each(|(ci, dc)| {
            let r0 = ci * rows;
            let nb = dc.len() / input;
            backend.input_grad_gemm(
                nb,
                input,
                output,
                w,
                &delta[r0 * output..(r0 + nb) * output],
                dc,
            );
        });
    });
}

/// [`Backend::weight_grad_gemm`] fanned out over the **output-neuron** axis
/// via [`Backend::weight_grad_gemm_span`]: each worker owns a contiguous
/// span of gradient rows and runs that span's complete example-major
/// reduction. Splitting the batch axis instead would need a cross-chunk
/// merge that reassociates the sums — this split keeps every chain whole,
/// so the result is bit-identical at any thread count.
#[allow(clippy::too_many_arguments)]
pub fn weight_grad_gemm_mt<B: Backend + Sync>(
    backend: &B,
    threads: usize,
    batch: usize,
    input: usize,
    output: usize,
    x: &[f64],
    delta: &[f64],
    gw: &mut [f64],
    gb: &mut [f64],
) {
    let threads = threads.clamp(1, output.max(1));
    if threads <= 1 || input == 0 {
        backend.weight_grad_gemm(batch, input, output, x, delta, gw, gb);
        return;
    }
    let span = output.div_ceil(threads);
    #[allow(clippy::type_complexity)]
    let jobs: Vec<(usize, (&mut [f64], &mut [f64]))> = gw
        .chunks_mut(span * input)
        .zip(gb.chunks_mut(span))
        .enumerate()
        .collect();
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("gemm thread pool");
    pool.install(|| {
        jobs.into_par_iter().for_each(|(ci, (gwc, gbc))| {
            backend.weight_grad_gemm_span(batch, input, output, ci * span, x, delta, gwc, gbc);
        });
    });
}

// ---------------------------------------------------------------------------
// Runtime dispatch: `auto | cpu | simd` selection and the process-global
// active backend.
// ---------------------------------------------------------------------------

/// A runtime-selected backend: the closed set of registered [`Backend`]
/// implementations behind one `Copy` value, so call sites stay
/// monomorphized-free of `dyn` and workspaces can carry their backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnyBackend {
    /// The scalar reference backend.
    Cpu,
    /// The lane-blocked AVX backend.
    Simd,
}

impl AnyBackend {
    /// Stable lowercase name, round-trippable through [`select`]; reported
    /// by the serve `stats` response and the perf record.
    pub fn name(self) -> &'static str {
        match self {
            AnyBackend::Cpu => "cpu",
            AnyBackend::Simd => "simd",
        }
    }
}

impl Backend for AnyBackend {
    #[allow(clippy::too_many_arguments)]
    fn forward_gemm(
        &self,
        batch: usize,
        input: usize,
        output: usize,
        w: &[f64],
        bias: &[f64],
        x: &[f64],
        y: &mut [f64],
    ) {
        match self {
            AnyBackend::Cpu => CpuBackend.forward_gemm(batch, input, output, w, bias, x, y),
            AnyBackend::Simd => SimdBackend.forward_gemm(batch, input, output, w, bias, x, y),
        }
    }

    fn input_grad_gemm(
        &self,
        batch: usize,
        input: usize,
        output: usize,
        w: &[f64],
        delta: &[f64],
        dx: &mut [f64],
    ) {
        match self {
            AnyBackend::Cpu => CpuBackend.input_grad_gemm(batch, input, output, w, delta, dx),
            AnyBackend::Simd => SimdBackend.input_grad_gemm(batch, input, output, w, delta, dx),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn weight_grad_gemm(
        &self,
        batch: usize,
        input: usize,
        output: usize,
        x: &[f64],
        delta: &[f64],
        gw: &mut [f64],
        gb: &mut [f64],
    ) {
        match self {
            AnyBackend::Cpu => CpuBackend.weight_grad_gemm(batch, input, output, x, delta, gw, gb),
            AnyBackend::Simd => {
                SimdBackend.weight_grad_gemm(batch, input, output, x, delta, gw, gb)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn weight_grad_gemm_span(
        &self,
        batch: usize,
        input: usize,
        output: usize,
        o0: usize,
        x: &[f64],
        delta: &[f64],
        gw_span: &mut [f64],
        gb_span: &mut [f64],
    ) {
        match self {
            AnyBackend::Cpu => CpuBackend
                .weight_grad_gemm_span(batch, input, output, o0, x, delta, gw_span, gb_span),
            AnyBackend::Simd => SimdBackend
                .weight_grad_gemm_span(batch, input, output, o0, x, delta, gw_span, gb_span),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn adam_update(
        &self,
        lr: f64,
        b1: f64,
        b2: f64,
        eps: f64,
        bc1: f64,
        bc2: f64,
        g: &[f64],
        m: &mut [f64],
        v: &mut [f64],
        p: &mut [f64],
    ) {
        match self {
            AnyBackend::Cpu => CpuBackend.adam_update(lr, b1, b2, eps, bc1, bc2, g, m, v, p),
            AnyBackend::Simd => SimdBackend.adam_update(lr, b1, b2, eps, bc1, bc2, g, m, v, p),
        }
    }
}

/// Resolve a backend name: `None` or `"auto"` picks [`SimdBackend`] when
/// the CPU supports it and [`CpuBackend`] otherwise; `"cpu"` / `"simd"`
/// force a backend (`"simd"` errors on unsupported CPUs rather than
/// silently degrading).
///
/// # Errors
/// [`MlError::UnknownBackend`] for unrecognized names,
/// [`MlError::BackendUnsupported`] when `"simd"` is forced without AVX.
pub fn select(name: Option<&str>) -> Result<AnyBackend> {
    match name.unwrap_or("auto") {
        "auto" => Ok(if SimdBackend::supported() {
            AnyBackend::Simd
        } else {
            AnyBackend::Cpu
        }),
        "cpu" => Ok(AnyBackend::Cpu),
        "simd" => {
            if SimdBackend::supported() {
                Ok(AnyBackend::Simd)
            } else {
                Err(MlError::BackendUnsupported("simd"))
            }
        }
        other => Err(MlError::UnknownBackend(other.to_string())),
    }
}

/// Every registered backend the current CPU can execute: [`CpuBackend`]
/// always, [`SimdBackend`] when supported. Differential tests and benches
/// iterate this list so future backends are covered for free.
pub fn registered_backends() -> Vec<AnyBackend> {
    let mut all = vec![AnyBackend::Cpu];
    if SimdBackend::supported() {
        all.push(AnyBackend::Simd);
    }
    all
}

// Process-global selection, encoded for the atomic: 0 = not yet
// initialized, otherwise `encode(backend)`.
static GLOBAL_BACKEND: AtomicU8 = AtomicU8::new(0);

fn encode(backend: AnyBackend) -> u8 {
    match backend {
        AnyBackend::Cpu => 1,
        AnyBackend::Simd => 2,
    }
}

fn decode(v: u8) -> Option<AnyBackend> {
    match v {
        1 => Some(AnyBackend::Cpu),
        2 => Some(AnyBackend::Simd),
        _ => None,
    }
}

fn init_from_env() -> AnyBackend {
    let chosen = match std::env::var("SYNRD_ML_BACKEND") {
        Ok(v) => select(Some(&v)).unwrap_or_else(|e| {
            // A bad env value must not abort a fit; degrade loudly to auto.
            eprintln!("[synrd-ml] SYNRD_ML_BACKEND ignored: {e}");
            select(None).expect("auto selection cannot fail")
        }),
        Err(_) => select(None).expect("auto selection cannot fail"),
    };
    GLOBAL_BACKEND.store(encode(chosen), Ordering::Relaxed);
    chosen
}

/// The process-global active backend, used by
/// [`BatchWorkspace::new`](crate::BatchWorkspace::new). Initialized lazily
/// from `SYNRD_ML_BACKEND` (`auto` when unset or invalid, with a warning on
/// invalid values); changeable at any time via [`set_global`]. Workspaces
/// capture the selection at construction time.
pub fn global() -> AnyBackend {
    match decode(GLOBAL_BACKEND.load(Ordering::Relaxed)) {
        Some(b) => b,
        // Benign race: concurrent initializers compute the same value.
        None => init_from_env(),
    }
}

/// Name of the process-global active backend (`"cpu"` or `"simd"`).
pub fn global_name() -> &'static str {
    global().name()
}

/// Set the process-global backend from a CLI-style name (see [`select`]).
/// Returns the resolved backend. Only workspaces constructed *after* this
/// call pick up the change.
///
/// # Errors
/// Propagates [`select`]'s errors; the global selection is unchanged on
/// error.
pub fn set_global(name: Option<&str>) -> Result<AnyBackend> {
    let backend = select(name)?;
    GLOBAL_BACKEND.store(encode(backend), Ordering::Relaxed);
    Ok(backend)
}

/// The x86-64 feature probes behind [`SimdBackend::supported`], for
/// diagnostics (`perfgrid` and the CI bench-smoke job print them). Empty on
/// non-x86-64 targets.
pub fn detected_cpu_features() -> Vec<(&'static str, bool)> {
    #[cfg(target_arch = "x86_64")]
    {
        vec![
            ("avx", std::arch::is_x86_feature_detected!("avx")),
            ("avx2", std::arch::is_x86_feature_detected!("avx2")),
            ("avx512f", std::arch::is_x86_feature_detected!("avx512f")),
            ("fma", std::arch::is_x86_feature_detected!("fma")),
        ]
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic, sign-varied fill so reduction-order bugs cannot cancel.
    fn fill(len: usize, phase: f64) -> Vec<f64> {
        (0..len)
            .map(|i| (i as f64 * 0.7310 + phase).sin() * 1.9)
            .collect()
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    /// The three kernels agree bitwise between CpuBackend and SimdBackend
    /// across shapes exercising the 8-wide, 4-wide and scalar remainder
    /// paths (on CPUs without AVX, SimdBackend falls back to CpuBackend and
    /// this holds trivially).
    #[test]
    fn simd_kernels_match_cpu_bitwise() {
        let shapes: [(usize, usize, usize); 8] = [
            (0, 3, 5),
            (1, 1, 1),
            (3, 2, 4),
            (5, 7, 9),
            (4, 8, 8),
            (2, 13, 17),
            (48, 16, 96),
            (6, 5, 21),
        ];
        for (batch, input, output) in shapes {
            let w = fill(input * output, 0.1);
            let bias = fill(output, 0.2);
            let x = fill(batch * input, 0.3);
            let delta = fill(batch * output, 0.4);

            let mut y_cpu = vec![0.0; batch * output];
            let mut y_simd = vec![0.0; batch * output];
            CpuBackend.forward_gemm(batch, input, output, &w, &bias, &x, &mut y_cpu);
            SimdBackend.forward_gemm(batch, input, output, &w, &bias, &x, &mut y_simd);
            assert_eq!(
                bits(&y_cpu),
                bits(&y_simd),
                "forward {batch}x{input}x{output}"
            );

            let mut dx_cpu = vec![0.0; batch * input];
            let mut dx_simd = vec![0.0; batch * input];
            CpuBackend.input_grad_gemm(batch, input, output, &w, &delta, &mut dx_cpu);
            SimdBackend.input_grad_gemm(batch, input, output, &w, &delta, &mut dx_simd);
            assert_eq!(
                bits(&dx_cpu),
                bits(&dx_simd),
                "input_grad {batch}x{input}x{output}"
            );

            let mut gw_cpu = vec![0.0; input * output];
            let mut gb_cpu = vec![0.0; output];
            let mut gw_simd = vec![0.0; input * output];
            let mut gb_simd = vec![0.0; output];
            CpuBackend.weight_grad_gemm(batch, input, output, &x, &delta, &mut gw_cpu, &mut gb_cpu);
            SimdBackend.weight_grad_gemm(
                batch,
                input,
                output,
                &x,
                &delta,
                &mut gw_simd,
                &mut gb_simd,
            );
            assert_eq!(
                bits(&gw_cpu),
                bits(&gw_simd),
                "weight_grad {batch}x{input}x{output}"
            );
            assert_eq!(
                bits(&gb_cpu),
                bits(&gb_simd),
                "bias_grad {batch}x{input}x{output}"
            );

            // Adam over the weight-sized block, exercising the 4-wide lanes
            // and the scalar remainder (lengths here are rarely multiples
            // of 4). Gradients span tiny to large magnitudes via `fill`.
            let n = input * output;
            let grad = fill(n, 0.5);
            let (mut m_cpu, mut v_cpu, mut p_cpu) = (
                fill(n, 0.6),
                fill(n, 0.7).iter().map(|x| x * x).collect::<Vec<_>>(),
                fill(n, 0.8),
            );
            let (mut m_simd, mut v_simd, mut p_simd) =
                (m_cpu.clone(), v_cpu.clone(), p_cpu.clone());
            let (bc1, bc2) = (1.0 - 0.9f64.powf(3.0), 1.0 - 0.999f64.powf(3.0));
            CpuBackend.adam_update(
                1e-2, 0.9, 0.999, 1e-8, bc1, bc2, &grad, &mut m_cpu, &mut v_cpu, &mut p_cpu,
            );
            SimdBackend.adam_update(
                1e-2,
                0.9,
                0.999,
                1e-8,
                bc1,
                bc2,
                &grad,
                &mut m_simd,
                &mut v_simd,
                &mut p_simd,
            );
            assert_eq!(bits(&m_cpu), bits(&m_simd), "adam m {n}");
            assert_eq!(bits(&v_cpu), bits(&v_simd), "adam v {n}");
            assert_eq!(bits(&p_cpu), bits(&p_simd), "adam p {n}");
        }
    }

    /// Every backend's span decomposition of the weight gradient reassembles
    /// the full-width result bit for bit, at any split point.
    #[test]
    fn weight_grad_span_matches_full_bitwise() {
        for backend in registered_backends() {
            for (batch, input, output) in [(5usize, 7usize, 9usize), (3, 13, 17), (48, 16, 96)] {
                let x = fill(batch * input, 0.3);
                let delta = fill(batch * output, 0.4);
                let mut gw_full = vec![0.0; input * output];
                let mut gb_full = vec![0.0; output];
                backend.weight_grad_gemm(
                    batch,
                    input,
                    output,
                    &x,
                    &delta,
                    &mut gw_full,
                    &mut gb_full,
                );
                for split in [1usize, 2, output / 2, output - 1] {
                    let mut gw = vec![0.0; input * output];
                    let mut gb = vec![0.0; output];
                    let (gw_lo, gw_hi) = gw.split_at_mut(split * input);
                    let (gb_lo, gb_hi) = gb.split_at_mut(split);
                    backend
                        .weight_grad_gemm_span(batch, input, output, 0, &x, &delta, gw_lo, gb_lo);
                    backend.weight_grad_gemm_span(
                        batch, input, output, split, &x, &delta, gw_hi, gb_hi,
                    );
                    assert_eq!(
                        bits(&gw_full),
                        bits(&gw),
                        "{} gw split at {split} ({batch}x{input}x{output})",
                        backend.name()
                    );
                    assert_eq!(
                        bits(&gb_full),
                        bits(&gb),
                        "{} gb split at {split}",
                        backend.name()
                    );
                }
            }
        }
    }

    /// The multi-threaded drivers are bit-identical to the plain kernels on
    /// every backend at thread counts {2, 3, 7} — odd counts exercise ragged
    /// remainder chunks.
    #[test]
    fn mt_drivers_match_sequential_bitwise() {
        let shapes: [(usize, usize, usize); 5] =
            [(1, 1, 1), (5, 7, 9), (2, 13, 17), (48, 16, 96), (6, 5, 21)];
        for backend in registered_backends() {
            for (batch, input, output) in shapes {
                let w = fill(input * output, 0.1);
                let bias = fill(output, 0.2);
                let x = fill(batch * input, 0.3);
                let delta = fill(batch * output, 0.4);

                let mut y_seq = vec![0.0; batch * output];
                backend.forward_gemm(batch, input, output, &w, &bias, &x, &mut y_seq);
                let mut dx_seq = vec![0.0; batch * input];
                backend.input_grad_gemm(batch, input, output, &w, &delta, &mut dx_seq);
                let mut gw_seq = vec![0.0; input * output];
                let mut gb_seq = vec![0.0; output];
                backend.weight_grad_gemm(
                    batch,
                    input,
                    output,
                    &x,
                    &delta,
                    &mut gw_seq,
                    &mut gb_seq,
                );

                for threads in [2usize, 3, 7] {
                    let tag = format!("{} t={threads} {batch}x{input}x{output}", backend.name());
                    let mut y = vec![0.0; batch * output];
                    forward_gemm_mt(
                        &backend, threads, batch, input, output, &w, &bias, &x, &mut y,
                    );
                    assert_eq!(bits(&y_seq), bits(&y), "forward {tag}");

                    let mut dx = vec![0.0; batch * input];
                    input_grad_gemm_mt(
                        &backend, threads, batch, input, output, &w, &delta, &mut dx,
                    );
                    assert_eq!(bits(&dx_seq), bits(&dx), "input_grad {tag}");

                    let mut gw = vec![0.0; input * output];
                    let mut gb = vec![0.0; output];
                    weight_grad_gemm_mt(
                        &backend, threads, batch, input, output, &x, &delta, &mut gw, &mut gb,
                    );
                    assert_eq!(bits(&gw_seq), bits(&gw), "weight_grad {tag}");
                    assert_eq!(bits(&gb_seq), bits(&gb), "bias_grad {tag}");
                }
            }
        }
    }

    #[test]
    fn gemm_threads_gates_small_work() {
        assert_eq!(
            gemm_threads(8, 48 * 16 * 96),
            1,
            "tiny GEMMs stay sequential"
        );
        assert_eq!(gemm_threads(8, 1 << 19), 8);
        assert_eq!(gemm_threads(1, 1 << 19), 1);
    }

    #[test]
    fn select_resolves_names() {
        assert!(matches!(select(Some("cpu")), Ok(AnyBackend::Cpu)));
        let auto = select(None).expect("auto");
        assert_eq!(auto, select(Some("auto")).expect("auto"));
        if SimdBackend::supported() {
            assert_eq!(auto, AnyBackend::Simd);
            assert!(matches!(select(Some("simd")), Ok(AnyBackend::Simd)));
        } else {
            assert_eq!(auto, AnyBackend::Cpu);
            assert!(matches!(
                select(Some("simd")),
                Err(MlError::BackendUnsupported("simd"))
            ));
        }
        assert!(matches!(
            select(Some("gpu")),
            Err(MlError::UnknownBackend(_))
        ));
    }

    #[test]
    fn global_selection_is_switchable() {
        // Whatever the ambient env says, an explicit set wins; restore auto
        // afterwards so parallel tests in this binary see a sane global.
        assert_eq!(set_global(Some("cpu")).expect("cpu"), AnyBackend::Cpu);
        assert_eq!(global_name(), "cpu");
        assert!(set_global(Some("nope")).is_err());
        assert_eq!(global_name(), "cpu", "failed set leaves global unchanged");
        let auto = set_global(None).expect("auto");
        assert_eq!(global(), auto);
    }

    #[test]
    fn registered_backends_starts_with_cpu() {
        let all = registered_backends();
        assert_eq!(all[0], AnyBackend::Cpu);
        assert_eq!(all.len() > 1, SimdBackend::supported());
        for b in all {
            assert!(matches!(select(Some(b.name())), Ok(got) if got == b));
        }
    }
}
