//! A compact multilayer perceptron with manual backpropagation and Adam.
//!
//! This is the neural substrate for the PATECTGAN synthesizer (generator and
//! student discriminator). It supports ReLU hidden layers, configurable
//! output activation, and mini-batch training against either squared error
//! or binary cross-entropy.

use crate::error::{MlError, Result};
use rand::Rng;

/// Output-layer activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity output (regression / logits).
    Linear,
    /// Elementwise logistic (probabilities).
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

/// One dense layer.
#[derive(Debug, Clone)]
struct Dense {
    input: usize,
    output: usize,
    // Row-major weights [output x input].
    w: Vec<f64>,
    b: Vec<f64>,
    // Adam state.
    mw: Vec<f64>,
    vw: Vec<f64>,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Dense {
    fn new<R: Rng + ?Sized>(input: usize, output: usize, rng: &mut R) -> Dense {
        // He initialization for ReLU nets.
        let scale = (2.0 / input.max(1) as f64).sqrt();
        let w = (0..input * output)
            .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
            .collect();
        Dense {
            input,
            output,
            w,
            b: vec![0.0; output],
            mw: vec![0.0; input * output],
            vw: vec![0.0; input * output],
            mb: vec![0.0; output],
            vb: vec![0.0; output],
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.output {
            let row = &self.w[o * self.input..(o + 1) * self.input];
            let v: f64 = row.iter().zip(x).map(|(w, xi)| w * xi).sum::<f64>() + self.b[o];
            out.push(v);
        }
    }
}

/// MLP with ReLU hidden layers.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
    output_activation: Activation,
    step: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
}

/// Serializable snapshot of one dense layer: weights, biases, and the full
/// Adam moment state (so a restored network resumes training exactly where
/// the exported one stopped).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseState {
    /// Input dimension.
    pub input: usize,
    /// Output dimension.
    pub output: usize,
    /// Row-major weights `[output x input]`.
    pub w: Vec<f64>,
    /// Biases, one per output.
    pub b: Vec<f64>,
    /// Adam first moment of the weights.
    pub mw: Vec<f64>,
    /// Adam second moment of the weights.
    pub vw: Vec<f64>,
    /// Adam first moment of the biases.
    pub mb: Vec<f64>,
    /// Adam second moment of the biases.
    pub vb: Vec<f64>,
}

/// Serializable snapshot of a full [`Mlp`] — the unit the fit cache
/// round-trips for the PATECTGAN generator.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpState {
    /// Layer snapshots, input-to-output order.
    pub layers: Vec<DenseState>,
    /// Output-layer activation.
    pub output_activation: Activation,
    /// Adam step counter.
    pub step: u64,
    /// Adam learning rate.
    pub learning_rate: f64,
}

/// Per-example caches captured on the forward pass for backprop.
pub struct ForwardCache {
    /// Pre-activation values per layer.
    pre: Vec<Vec<f64>>,
    /// Post-activation values per layer (index 0 = input).
    post: Vec<Vec<f64>>,
}

impl ForwardCache {
    /// The network output recorded by this forward pass.
    pub fn output(&self) -> &[f64] {
        self.post.last().expect("forward pass recorded layers")
    }
}

impl Mlp {
    /// Build an MLP with the given layer sizes, e.g. `[8, 32, 32, 4]`.
    pub fn new<R: Rng + ?Sized>(
        sizes: &[usize],
        output_activation: Activation,
        rng: &mut R,
    ) -> Mlp {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let layers = sizes
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], rng))
            .collect();
        Mlp {
            layers,
            output_activation,
            step: 0,
            learning_rate: 1e-3,
        }
    }

    /// Input dimension.
    pub fn input_size(&self) -> usize {
        self.layers.first().map_or(0, |l| l.input)
    }

    /// Output dimension.
    pub fn output_size(&self) -> usize {
        self.layers.last().map_or(0, |l| l.output)
    }

    /// Forward pass, returning activations and caches.
    pub fn forward(&self, x: &[f64]) -> ForwardCache {
        debug_assert_eq!(x.len(), self.input_size());
        let mut post = vec![x.to_vec()];
        let mut pre = Vec::with_capacity(self.layers.len());
        let mut buffer = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            layer.forward(post.last().expect("non-empty"), &mut buffer);
            pre.push(buffer.clone());
            let last = li + 1 == self.layers.len();
            let activated: Vec<f64> = if last {
                match self.output_activation {
                    Activation::Linear => buffer.clone(),
                    Activation::Sigmoid => {
                        buffer.iter().map(|v| 1.0 / (1.0 + (-v).exp())).collect()
                    }
                    Activation::Tanh => buffer.iter().map(|v| v.tanh()).collect(),
                }
            } else {
                buffer.iter().map(|v| v.max(0.0)).collect() // ReLU
            };
            post.push(activated);
        }
        ForwardCache { pre, post }
    }

    /// Output of the forward pass.
    pub fn predict(&self, x: &[f64]) -> Vec<f64> {
        self.forward(x).post.last().expect("non-empty").clone()
    }

    /// Backpropagate from an output-space gradient `dl_dout` (∂loss/∂output,
    /// *after* the output activation) and apply one Adam step.
    pub fn backward_apply(&mut self, cache: &ForwardCache, dl_dout: &[f64]) {
        self.step += 1;
        let t = self.step as f64;
        let (b1, b2, eps) = (0.9, 0.999, 1e-8);
        let lr = self.learning_rate;

        // Delta at the output layer (chain through the output activation).
        let last = self.layers.len() - 1;
        let mut delta: Vec<f64> = match self.output_activation {
            Activation::Linear => dl_dout.to_vec(),
            Activation::Sigmoid => cache.post[last + 1]
                .iter()
                .zip(dl_dout)
                .map(|(&y, &g)| g * y * (1.0 - y))
                .collect(),
            Activation::Tanh => cache.post[last + 1]
                .iter()
                .zip(dl_dout)
                .map(|(&y, &g)| g * (1.0 - y * y))
                .collect(),
        };

        for li in (0..self.layers.len()).rev() {
            // Gradient wrt inputs of this layer (before overwriting weights).
            let layer = &self.layers[li];
            let mut dl_dx = vec![0.0f64; layer.input];
            for o in 0..layer.output {
                let row = &layer.w[o * layer.input..(o + 1) * layer.input];
                for (dx, &w) in dl_dx.iter_mut().zip(row) {
                    *dx += delta[o] * w;
                }
            }
            // Adam update of weights and biases.
            let input_act = &cache.post[li];
            let layer = &mut self.layers[li];
            for o in 0..layer.output {
                let base = o * layer.input;
                for i in 0..layer.input {
                    let g = delta[o] * input_act[i];
                    let m = &mut layer.mw[base + i];
                    let v = &mut layer.vw[base + i];
                    *m = b1 * *m + (1.0 - b1) * g;
                    *v = b2 * *v + (1.0 - b2) * g * g;
                    let mhat = *m / (1.0 - b1.powf(t));
                    let vhat = *v / (1.0 - b2.powf(t));
                    layer.w[base + i] -= lr * mhat / (vhat.sqrt() + eps);
                }
                let g = delta[o];
                let m = &mut layer.mb[o];
                let v = &mut layer.vb[o];
                *m = b1 * *m + (1.0 - b1) * g;
                *v = b2 * *v + (1.0 - b2) * g * g;
                let mhat = *m / (1.0 - b1.powf(t));
                let vhat = *v / (1.0 - b2.powf(t));
                layer.b[o] -= lr * mhat / (vhat.sqrt() + eps);
            }
            if li > 0 {
                // Chain through the ReLU of the previous hidden layer.
                delta = dl_dx
                    .iter()
                    .zip(&cache.pre[li - 1])
                    .map(|(&g, &p)| if p > 0.0 { g } else { 0.0 })
                    .collect();
            }
        }
    }

    /// Gradient of the loss with respect to the *input*, given an
    /// output-space gradient. Does not update weights — used to train an
    /// upstream generator against this network (GAN-style).
    pub fn input_gradient(&self, cache: &ForwardCache, dl_dout: &[f64]) -> Vec<f64> {
        let last = self.layers.len() - 1;
        let mut delta: Vec<f64> = match self.output_activation {
            Activation::Linear => dl_dout.to_vec(),
            Activation::Sigmoid => cache.post[last + 1]
                .iter()
                .zip(dl_dout)
                .map(|(&y, &g)| g * y * (1.0 - y))
                .collect(),
            Activation::Tanh => cache.post[last + 1]
                .iter()
                .zip(dl_dout)
                .map(|(&y, &g)| g * (1.0 - y * y))
                .collect(),
        };
        for li in (0..self.layers.len()).rev() {
            let layer = &self.layers[li];
            let mut dl_dx = vec![0.0f64; layer.input];
            for o in 0..layer.output {
                let row = &layer.w[o * layer.input..(o + 1) * layer.input];
                for (dx, &w) in dl_dx.iter_mut().zip(row) {
                    *dx += delta[o] * w;
                }
            }
            if li > 0 {
                delta = dl_dx
                    .iter()
                    .zip(&cache.pre[li - 1])
                    .map(|(&g, &p)| if p > 0.0 { g } else { 0.0 })
                    .collect();
            } else {
                return dl_dx;
            }
        }
        Vec::new()
    }

    /// One squared-error training step on a single example; returns the loss.
    pub fn train_mse(&mut self, x: &[f64], target: &[f64]) -> f64 {
        let cache = self.forward(x);
        let out = cache.post.last().expect("non-empty");
        let mut grad = Vec::with_capacity(out.len());
        let mut loss = 0.0;
        for (o, t) in out.iter().zip(target) {
            let d = o - t;
            loss += 0.5 * d * d;
            grad.push(d);
        }
        self.backward_apply(&cache, &grad);
        loss
    }

    /// Snapshot the full network state (weights + Adam moments) for
    /// serialization.
    pub fn export_state(&self) -> MlpState {
        MlpState {
            layers: self
                .layers
                .iter()
                .map(|l| DenseState {
                    input: l.input,
                    output: l.output,
                    w: l.w.clone(),
                    b: l.b.clone(),
                    mw: l.mw.clone(),
                    vw: l.vw.clone(),
                    mb: l.mb.clone(),
                    vb: l.vb.clone(),
                })
                .collect(),
            output_activation: self.output_activation,
            step: self.step as u64,
            learning_rate: self.learning_rate,
        }
    }

    /// Rebuild a network from an exported snapshot. Inverse of
    /// [`Mlp::export_state`]: `from_state(net.export_state())` predicts
    /// bit-identically to `net`.
    ///
    /// # Errors
    /// [`MlError::LengthMismatch`] when a layer's buffers disagree with its
    /// declared dimensions or adjacent layers do not chain.
    pub fn from_state(state: MlpState) -> Result<Mlp> {
        if state.layers.is_empty() {
            return Err(MlError::LengthMismatch { left: 0, right: 1 });
        }
        let mut prev_output = state.layers[0].input;
        let mut layers = Vec::with_capacity(state.layers.len());
        for s in state.layers {
            let weight_len = s.input * s.output;
            for (len, expected) in [
                (s.w.len(), weight_len),
                (s.mw.len(), weight_len),
                (s.vw.len(), weight_len),
                (s.b.len(), s.output),
                (s.mb.len(), s.output),
                (s.vb.len(), s.output),
                (s.input, prev_output),
            ] {
                if len != expected {
                    return Err(MlError::LengthMismatch {
                        left: len,
                        right: expected,
                    });
                }
            }
            prev_output = s.output;
            layers.push(Dense {
                input: s.input,
                output: s.output,
                w: s.w,
                b: s.b,
                mw: s.mw,
                vw: s.vw,
                mb: s.mb,
                vb: s.vb,
            });
        }
        Ok(Mlp {
            layers,
            output_activation: state.output_activation,
            step: state.step as usize,
            learning_rate: state.learning_rate,
        })
    }

    /// One binary-cross-entropy step for a single sigmoid output; returns the
    /// loss. `target` ∈ {0,1}.
    pub fn train_bce(&mut self, x: &[f64], target: f64) -> f64 {
        debug_assert_eq!(self.output_size(), 1);
        debug_assert_eq!(self.output_activation, Activation::Sigmoid);
        let cache = self.forward(x);
        let y = cache.post.last().expect("non-empty")[0].clamp(1e-9, 1.0 - 1e-9);
        let loss = -(target * y.ln() + (1.0 - target) * (1.0 - y).ln());
        // d(BCE)/dy = (y - t) / (y(1-y)); the sigmoid chain in backward_apply
        // multiplies by y(1-y), so the composite is the familiar (y - t).
        let grad = [(y - target) / (y * (1.0 - y))];
        self.backward_apply(&cache, &grad);
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn learns_xor_with_bce() {
        let mut rng = StdRng::seed_from_u64(20);
        let mut net = Mlp::new(&[2, 16, 1], Activation::Sigmoid, &mut rng);
        net.learning_rate = 5e-3;
        let data = [
            ([0.0, 0.0], 0.0),
            ([0.0, 1.0], 1.0),
            ([1.0, 0.0], 1.0),
            ([1.0, 1.0], 0.0),
        ];
        for _ in 0..4000 {
            for (x, t) in &data {
                net.train_bce(x, *t);
            }
        }
        for (x, t) in &data {
            let p = net.predict(x)[0];
            assert!((p - t).abs() < 0.25, "x = {x:?}, p = {p}");
        }
    }

    #[test]
    fn learns_linear_regression_with_mse() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut net = Mlp::new(&[1, 8, 1], Activation::Linear, &mut rng);
        net.learning_rate = 3e-3;
        for epoch in 0..3000 {
            let x = (epoch % 20) as f64 / 10.0 - 1.0;
            net.train_mse(&[x], &[2.0 * x + 0.5]);
        }
        let p = net.predict(&[0.3])[0];
        assert!((p - 1.1).abs() < 0.15, "p = {p}");
    }

    #[test]
    fn state_roundtrip_is_exact_and_resumes_training() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut net = Mlp::new(&[2, 6, 1], Activation::Sigmoid, &mut rng);
        net.learning_rate = 4e-3;
        for _ in 0..50 {
            net.train_bce(&[0.2, 0.8], 1.0);
        }
        let restored = Mlp::from_state(net.export_state()).unwrap();
        let (a, b) = (net.predict(&[0.3, 0.4]), restored.predict(&[0.3, 0.4]));
        assert_eq!(a[0].to_bits(), b[0].to_bits(), "prediction must be exact");
        // The Adam state round-trips too: one more identical step on both
        // networks lands on identical weights.
        let mut net2 = restored;
        let mut net1 = net;
        net1.train_bce(&[0.2, 0.8], 0.0);
        net2.train_bce(&[0.2, 0.8], 0.0);
        assert_eq!(net1.export_state(), net2.export_state());
    }

    #[test]
    fn malformed_state_is_rejected() {
        let mut rng = StdRng::seed_from_u64(24);
        let net = Mlp::new(&[2, 3, 1], Activation::Linear, &mut rng);
        let mut state = net.export_state();
        state.layers[0].w.pop();
        assert!(Mlp::from_state(state).is_err());
        let mut state = net.export_state();
        state.layers[1].input = 4; // breaks the chain with layer 0
        assert!(Mlp::from_state(state).is_err());
        assert!(Mlp::from_state(MlpState {
            layers: vec![],
            output_activation: Activation::Linear,
            step: 0,
            learning_rate: 1e-3,
        })
        .is_err());
    }

    #[test]
    fn shapes_are_consistent() {
        let mut rng = StdRng::seed_from_u64(22);
        let net = Mlp::new(&[3, 5, 4], Activation::Tanh, &mut rng);
        assert_eq!(net.input_size(), 3);
        assert_eq!(net.output_size(), 4);
        let out = net.predict(&[0.1, 0.2, 0.3]);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|v| (-1.0..=1.0).contains(v)));
    }
}
