//! A compact multilayer perceptron with manual backpropagation and Adam.
//!
//! This is the neural substrate for the PATECTGAN synthesizer (generator and
//! student discriminator). It supports ReLU hidden layers, configurable
//! output activation, and minibatch training against either squared error
//! or binary cross-entropy.
//!
//! # Batched kernels
//!
//! The hot paths are the batched passes — [`Mlp::forward_batch`],
//! [`Mlp::backward_apply_batch`], [`Mlp::input_gradient_batch`] — which
//! execute one matrix-matrix pass per layer over row-major `[batch × dim]`
//! activation arenas held in a reusable [`BatchWorkspace`] (zero-alloc after
//! warm-up) and route every GEMM through a [`Backend`]. Each workspace
//! captures the process-global backend selection
//! ([`backend::global`](crate::backend::global) — the SIMD kernels when the
//! CPU supports them, overridable via `SYNRD_ML_BACKEND` / `--ml-backend`)
//! at construction, so synthesizer code picks up SIMD execution without
//! naming a backend; the `*_with` variants take one explicitly.
//!
//! The reduction order is pinned: each output cell sums its dot product in
//! ascending index order, and batch gradients accumulate example-major. A
//! batched pass is therefore **bit-identical** to the per-example
//! formulation of the same minibatch step — forward/input-gradient per row,
//! gradients accumulated across rows in row order, one Adam update — which
//! is retained behind the `naive-reference` feature (and `cfg(test)`) as
//! the differential oracle (`forward_batch_naive` & co). Note the minibatch
//! semantics: `backward_apply_batch` takes **one** Adam step from the summed
//! batch gradient; it is not a loop of sequential per-example Adam steps.

use crate::backend::{self, AnyBackend, Backend};
use crate::error::{MlError, Result};
use rand::Rng;

/// Output-layer activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity output (regression / logits).
    Linear,
    /// Elementwise logistic (probabilities).
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

/// One dense layer.
#[derive(Debug, Clone)]
struct Dense {
    input: usize,
    output: usize,
    // Row-major weights [output x input].
    w: Vec<f64>,
    b: Vec<f64>,
    // Adam state.
    mw: Vec<f64>,
    vw: Vec<f64>,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Dense {
    fn new<R: Rng + ?Sized>(input: usize, output: usize, rng: &mut R) -> Dense {
        // He initialization for ReLU nets.
        let scale = (2.0 / input.max(1) as f64).sqrt();
        let w = (0..input * output)
            .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
            .collect();
        Dense {
            input,
            output,
            w,
            b: vec![0.0; output],
            mw: vec![0.0; input * output],
            vw: vec![0.0; input * output],
            mb: vec![0.0; output],
            vb: vec![0.0; output],
        }
    }

    #[cfg(any(test, feature = "naive-reference"))]
    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.output {
            let row = &self.w[o * self.input..(o + 1) * self.input];
            let v: f64 = row.iter().zip(x).map(|(w, xi)| w * xi).sum::<f64>() + self.b[o];
            out.push(v);
        }
    }
}

/// MLP with ReLU hidden layers.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
    output_activation: Activation,
    step: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
}

/// Serializable snapshot of one dense layer: weights, biases, and the full
/// Adam moment state (so a restored network resumes training exactly where
/// the exported one stopped).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseState {
    /// Input dimension.
    pub input: usize,
    /// Output dimension.
    pub output: usize,
    /// Row-major weights `[output x input]`.
    pub w: Vec<f64>,
    /// Biases, one per output.
    pub b: Vec<f64>,
    /// Adam first moment of the weights.
    pub mw: Vec<f64>,
    /// Adam second moment of the weights.
    pub vw: Vec<f64>,
    /// Adam first moment of the biases.
    pub mb: Vec<f64>,
    /// Adam second moment of the biases.
    pub vb: Vec<f64>,
}

/// Serializable snapshot of a full [`Mlp`] — the unit the fit cache
/// round-trips for the PATECTGAN generator.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpState {
    /// Layer snapshots, input-to-output order.
    pub layers: Vec<DenseState>,
    /// Output-layer activation.
    pub output_activation: Activation,
    /// Adam step counter.
    pub step: u64,
    /// Adam learning rate.
    pub learning_rate: f64,
}

/// Per-example caches captured on the forward pass for backprop — the
/// retained per-example path, used only by the differential oracle.
#[cfg(any(test, feature = "naive-reference"))]
pub struct ForwardCache {
    /// Pre-activation values per layer.
    pre: Vec<Vec<f64>>,
    /// Post-activation values per layer (index 0 = input).
    post: Vec<Vec<f64>>,
}

#[cfg(any(test, feature = "naive-reference"))]
impl ForwardCache {
    /// The network output recorded by this forward pass.
    pub fn output(&self) -> &[f64] {
        self.post.last().expect("forward pass recorded layers")
    }
}

/// Reusable arenas for the batched passes: row-major `[batch × dim]`
/// activation blocks per layer plus delta and gradient scratch, all
/// recycled across calls so the training hot loop is zero-alloc after the
/// first round. A workspace holds the forward caches
/// [`Mlp::backward_apply_batch`] and [`Mlp::input_gradient_batch`] consume,
/// so each network being trained needs its own workspace. It also carries
/// the [`Backend`] the default batched passes execute on, captured from the
/// process-global selection at construction (see
/// [`BatchWorkspace::with_backend`] to pin one explicitly).
#[derive(Debug)]
pub struct BatchWorkspace {
    /// Backend for the default batched passes.
    backend: AnyBackend,
    /// Worker-thread allowance for the per-layer GEMMs. Layers whose
    /// multiply-add count clears [`backend::gemm_threads`]'s threshold fan
    /// out over this many workers; results are bit-identical at any count,
    /// so the allowance (like the backend) never reaches a fitted state.
    threads: usize,
    batch: usize,
    /// Post-activation arenas: `post[0]` is the input block
    /// `[batch × input]`, `post[l + 1]` holds layer `l`'s activations.
    post: Vec<Vec<f64>>,
    /// Pre-activation arenas, one per layer (for the ReLU backward mask).
    pre: Vec<Vec<f64>>,
    /// Delta arena for the layer currently being backpropagated.
    delta: Vec<f64>,
    /// Delta arena for the next-lower layer (swap partner).
    delta_prev: Vec<f64>,
    /// Weight-gradient accumulator, sized to the largest layer.
    gw: Vec<f64>,
    /// Bias-gradient accumulator, sized to the widest layer.
    gb: Vec<f64>,
}

impl Default for BatchWorkspace {
    fn default() -> BatchWorkspace {
        BatchWorkspace::new()
    }
}

impl BatchWorkspace {
    /// Fresh, empty workspace on the process-global backend
    /// ([`backend::global`](crate::backend::global)); arenas are sized
    /// lazily on first use.
    pub fn new() -> BatchWorkspace {
        BatchWorkspace::with_backend(backend::global())
    }

    /// Fresh, empty workspace pinned to an explicit backend.
    pub fn with_backend(backend: AnyBackend) -> BatchWorkspace {
        BatchWorkspace {
            backend,
            threads: 1,
            batch: 0,
            post: Vec::new(),
            pre: Vec::new(),
            delta: Vec::new(),
            delta_prev: Vec::new(),
            gw: Vec::new(),
            gb: Vec::new(),
        }
    }

    /// The backend this workspace's default batched passes execute on.
    pub fn backend(&self) -> AnyBackend {
        self.backend
    }

    /// Set the worker-thread allowance for the batched passes (`0` and `1`
    /// both mean sequential). Purely a throughput knob: every thread count
    /// produces bit-identical results.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The worker-thread allowance for the batched passes.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The rows recorded by the last [`Mlp::forward_batch`] call.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The `[batch × output]` block produced by the last
    /// [`Mlp::forward_batch`] call.
    pub fn output(&self) -> &[f64] {
        self.post.last().map_or(&[], Vec::as_slice)
    }

    /// Size every arena for `net` at `batch` rows. `Vec::resize` only
    /// reallocates on growth, so repeated rounds at a fixed shape reuse the
    /// same buffers.
    fn ensure(&mut self, net: &Mlp, batch: usize) {
        self.batch = batch;
        let layers = net.layers.len();
        self.post.resize_with(layers + 1, Vec::new);
        self.pre.resize_with(layers, Vec::new);
        self.post[0].resize(batch * net.input_size(), 0.0);
        let mut max_dim = net.input_size();
        for (li, layer) in net.layers.iter().enumerate() {
            self.pre[li].resize(batch * layer.output, 0.0);
            self.post[li + 1].resize(batch * layer.output, 0.0);
            max_dim = max_dim.max(layer.output);
        }
        let max_w = net
            .layers
            .iter()
            .map(|l| l.input * l.output)
            .max()
            .unwrap_or(0);
        self.delta.resize(batch * max_dim, 0.0);
        self.delta_prev.resize(batch * max_dim, 0.0);
        self.gw.resize(max_w, 0.0);
        self.gb.resize(max_dim, 0.0);
    }
}

/// Chain an output-space gradient through the output activation:
/// `delta[c] = g(dl_dout[c], y[c])`, per-cell identical to the per-example
/// backward pass.
fn output_delta(activation: Activation, y: &[f64], dl_dout: &[f64], delta: &mut [f64]) {
    match activation {
        Activation::Linear => delta.copy_from_slice(dl_dout),
        Activation::Sigmoid => {
            for ((d, &y), &g) in delta.iter_mut().zip(y).zip(dl_dout) {
                *d = g * y * (1.0 - y);
            }
        }
        Activation::Tanh => {
            for ((d, &y), &g) in delta.iter_mut().zip(y).zip(dl_dout) {
                *d = g * (1.0 - y * y);
            }
        }
    }
}

impl Mlp {
    /// Build an MLP with the given layer sizes, e.g. `[8, 32, 32, 4]`.
    pub fn new<R: Rng + ?Sized>(
        sizes: &[usize],
        output_activation: Activation,
        rng: &mut R,
    ) -> Mlp {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let layers = sizes
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], rng))
            .collect();
        Mlp {
            layers,
            output_activation,
            step: 0,
            learning_rate: 1e-3,
        }
    }

    /// Input dimension.
    pub fn input_size(&self) -> usize {
        self.layers.first().map_or(0, |l| l.input)
    }

    /// Output dimension.
    pub fn output_size(&self) -> usize {
        self.layers.last().map_or(0, |l| l.output)
    }

    /// Batched forward pass over `batch` row-major examples (`xs` is
    /// `[batch × input]`), leaving activations in `ws` (read the output via
    /// [`BatchWorkspace::output`]). One GEMM per layer on the workspace's
    /// backend; bit-identical to a per-example loop on any backend.
    pub fn forward_batch(&self, xs: &[f64], batch: usize, ws: &mut BatchWorkspace) {
        let backend = ws.backend;
        self.forward_batch_with(&backend, xs, batch, ws);
    }

    /// [`Mlp::forward_batch`] on an explicit [`Backend`].
    pub fn forward_batch_with<B: Backend + Sync>(
        &self,
        backend: &B,
        xs: &[f64],
        batch: usize,
        ws: &mut BatchWorkspace,
    ) {
        debug_assert_eq!(xs.len(), batch * self.input_size());
        ws.ensure(self, batch);
        ws.post[0].copy_from_slice(xs);
        for (li, layer) in self.layers.iter().enumerate() {
            let threads = backend::gemm_threads(ws.threads, batch * layer.input * layer.output);
            backend::forward_gemm_mt(
                backend,
                threads,
                batch,
                layer.input,
                layer.output,
                &layer.w,
                &layer.b,
                &ws.post[li],
                &mut ws.pre[li],
            );
            let last = li + 1 == self.layers.len();
            let pre = &ws.pre[li];
            let post = &mut ws.post[li + 1];
            if last {
                match self.output_activation {
                    Activation::Linear => post.copy_from_slice(pre),
                    Activation::Sigmoid => {
                        for (y, v) in post.iter_mut().zip(pre) {
                            *y = 1.0 / (1.0 + (-v).exp());
                        }
                    }
                    Activation::Tanh => {
                        for (y, v) in post.iter_mut().zip(pre) {
                            *y = v.tanh();
                        }
                    }
                }
            } else {
                for (y, v) in post.iter_mut().zip(pre) {
                    *y = v.max(0.0); // ReLU
                }
            }
        }
    }

    /// One minibatch Adam step from an output-space gradient block
    /// (`dl_dout` is `[batch × output]`, ∂loss/∂output *after* the output
    /// activation) against the forward pass recorded in `ws`: per-example
    /// deltas are chained layer by layer, weight/bias gradients are
    /// accumulated example-major across the batch, and a **single** Adam
    /// update is applied. An empty batch is a no-op (no step). Bit-identical
    /// to the per-example accumulation oracle (`backward_apply_batch_naive`).
    pub fn backward_apply_batch(&mut self, ws: &mut BatchWorkspace, dl_dout: &[f64]) {
        let backend = ws.backend;
        self.backward_apply_batch_with(&backend, ws, dl_dout);
    }

    /// [`Mlp::backward_apply_batch`] on an explicit [`Backend`].
    pub fn backward_apply_batch_with<B: Backend + Sync>(
        &mut self,
        backend: &B,
        ws: &mut BatchWorkspace,
        dl_dout: &[f64],
    ) {
        let batch = ws.batch;
        debug_assert_eq!(dl_dout.len(), batch * self.output_size());
        if batch == 0 || self.layers.is_empty() {
            return;
        }
        self.step += 1;
        let t = self.step as f64;
        let (b1, b2, eps) = (0.9f64, 0.999f64, 1e-8f64);
        // Bias-correction scalars hoisted to once per step: `powf` is
        // deterministic, so this is bit-identical to recomputing them per
        // parameter.
        let bc1 = 1.0 - b1.powf(t);
        let bc2 = 1.0 - b2.powf(t);
        let lr = self.learning_rate;

        let last = self.layers.len() - 1;
        let n_last = batch * self.layers[last].output;
        output_delta(
            self.output_activation,
            &ws.post[last + 1],
            dl_dout,
            &mut ws.delta[..n_last],
        );

        for li in (0..self.layers.len()).rev() {
            let layer = &self.layers[li];
            let (n_in, n_out) = (batch * layer.input, batch * layer.output);
            let wlen = layer.input * layer.output;
            let threads = backend::gemm_threads(ws.threads, batch * layer.input * layer.output);
            // Gradient wrt this layer's inputs (for the layer below), from
            // the pre-update weights.
            if li > 0 {
                backend::input_grad_gemm_mt(
                    backend,
                    threads,
                    batch,
                    layer.input,
                    layer.output,
                    &layer.w,
                    &ws.delta[..n_out],
                    &mut ws.delta_prev[..n_in],
                );
            }
            // Example-major batch gradients, then one Adam update.
            backend::weight_grad_gemm_mt(
                backend,
                threads,
                batch,
                layer.input,
                layer.output,
                &ws.post[li],
                &ws.delta[..n_out],
                &mut ws.gw[..wlen],
                &mut ws.gb[..layer.output],
            );
            let layer = &mut self.layers[li];
            // Element-wise Adam on the backend too: same per-element
            // operation sequence on every backend, so still bit-identical.
            backend.adam_update(
                lr,
                b1,
                b2,
                eps,
                bc1,
                bc2,
                &ws.gw[..wlen],
                &mut layer.mw,
                &mut layer.vw,
                &mut layer.w,
            );
            backend.adam_update(
                lr,
                b1,
                b2,
                eps,
                bc1,
                bc2,
                &ws.gb[..layer.output],
                &mut layer.mb,
                &mut layer.vb,
                &mut layer.b,
            );
            if li > 0 {
                // Chain through the ReLU of the hidden layer below.
                let pre = &ws.pre[li - 1];
                for (d, p) in ws.delta_prev[..n_in].iter_mut().zip(&pre[..n_in]) {
                    *d = if *p > 0.0 { *d } else { 0.0 };
                }
                std::mem::swap(&mut ws.delta, &mut ws.delta_prev);
            }
        }
    }

    /// Batched gradient of the loss with respect to the *inputs*, given an
    /// output-space gradient block. Does not update weights — used to train
    /// an upstream generator against this network (GAN-style). Writes the
    /// `[batch × input]` block into `dx` (resized); bit-identical to a
    /// per-example loop.
    pub fn input_gradient_batch(
        &self,
        ws: &mut BatchWorkspace,
        dl_dout: &[f64],
        dx: &mut Vec<f64>,
    ) {
        let backend = ws.backend;
        self.input_gradient_batch_with(&backend, ws, dl_dout, dx);
    }

    /// [`Mlp::input_gradient_batch`] on an explicit [`Backend`].
    pub fn input_gradient_batch_with<B: Backend + Sync>(
        &self,
        backend: &B,
        ws: &mut BatchWorkspace,
        dl_dout: &[f64],
        dx: &mut Vec<f64>,
    ) {
        let batch = ws.batch;
        debug_assert_eq!(dl_dout.len(), batch * self.output_size());
        dx.clear();
        dx.resize(batch * self.input_size(), 0.0);
        if batch == 0 || self.layers.is_empty() {
            return;
        }
        let last = self.layers.len() - 1;
        let n_last = batch * self.layers[last].output;
        output_delta(
            self.output_activation,
            &ws.post[last + 1],
            dl_dout,
            &mut ws.delta[..n_last],
        );
        for li in (0..self.layers.len()).rev() {
            let layer = &self.layers[li];
            let (n_in, n_out) = (batch * layer.input, batch * layer.output);
            let threads = backend::gemm_threads(ws.threads, batch * layer.input * layer.output);
            backend::input_grad_gemm_mt(
                backend,
                threads,
                batch,
                layer.input,
                layer.output,
                &layer.w,
                &ws.delta[..n_out],
                &mut ws.delta_prev[..n_in],
            );
            if li == 0 {
                dx.copy_from_slice(&ws.delta_prev[..n_in]);
            } else {
                let pre = &ws.pre[li - 1];
                for (d, p) in ws.delta_prev[..n_in].iter_mut().zip(&pre[..n_in]) {
                    *d = if *p > 0.0 { *d } else { 0.0 };
                }
                std::mem::swap(&mut ws.delta, &mut ws.delta_prev);
            }
        }
    }

    /// Snapshot the full network state (weights + Adam moments) for
    /// serialization.
    pub fn export_state(&self) -> MlpState {
        MlpState {
            layers: self
                .layers
                .iter()
                .map(|l| DenseState {
                    input: l.input,
                    output: l.output,
                    w: l.w.clone(),
                    b: l.b.clone(),
                    mw: l.mw.clone(),
                    vw: l.vw.clone(),
                    mb: l.mb.clone(),
                    vb: l.vb.clone(),
                })
                .collect(),
            output_activation: self.output_activation,
            step: self.step as u64,
            learning_rate: self.learning_rate,
        }
    }

    /// Rebuild a network from an exported snapshot. Inverse of
    /// [`Mlp::export_state`]: `from_state(net.export_state())` predicts
    /// bit-identically to `net`.
    ///
    /// # Errors
    /// [`MlError::EmptyNetwork`] when the snapshot has no layers;
    /// [`MlError::LengthMismatch`] when a layer's buffers disagree with its
    /// declared dimensions or adjacent layers do not chain.
    pub fn from_state(state: MlpState) -> Result<Mlp> {
        if state.layers.is_empty() {
            return Err(MlError::EmptyNetwork);
        }
        let mut prev_output = state.layers[0].input;
        let mut layers = Vec::with_capacity(state.layers.len());
        for s in state.layers {
            let weight_len = s.input * s.output;
            for (len, expected) in [
                (s.w.len(), weight_len),
                (s.mw.len(), weight_len),
                (s.vw.len(), weight_len),
                (s.b.len(), s.output),
                (s.mb.len(), s.output),
                (s.vb.len(), s.output),
                (s.input, prev_output),
            ] {
                if len != expected {
                    return Err(MlError::LengthMismatch {
                        left: len,
                        right: expected,
                    });
                }
            }
            prev_output = s.output;
            layers.push(Dense {
                input: s.input,
                output: s.output,
                w: s.w,
                b: s.b,
                mw: s.mw,
                vw: s.vw,
                mb: s.mb,
                vb: s.vb,
            });
        }
        Ok(Mlp {
            layers,
            output_activation: state.output_activation,
            step: state.step as usize,
            learning_rate: state.learning_rate,
        })
    }
}

// ---------------------------------------------------------------------------
// The retained per-example path: the differential oracle for the batched
// kernels, compiled only for tests and under `naive-reference`.
// ---------------------------------------------------------------------------

#[cfg(any(test, feature = "naive-reference"))]
impl Mlp {
    /// Forward pass on one example, returning activations and caches.
    pub fn forward(&self, x: &[f64]) -> ForwardCache {
        debug_assert_eq!(x.len(), self.input_size());
        let mut post = vec![x.to_vec()];
        let mut pre = Vec::with_capacity(self.layers.len());
        let mut buffer = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            layer.forward(post.last().expect("non-empty"), &mut buffer);
            pre.push(buffer.clone());
            let last = li + 1 == self.layers.len();
            let activated: Vec<f64> = if last {
                match self.output_activation {
                    Activation::Linear => buffer.clone(),
                    Activation::Sigmoid => {
                        buffer.iter().map(|v| 1.0 / (1.0 + (-v).exp())).collect()
                    }
                    Activation::Tanh => buffer.iter().map(|v| v.tanh()).collect(),
                }
            } else {
                buffer.iter().map(|v| v.max(0.0)).collect() // ReLU
            };
            post.push(activated);
        }
        ForwardCache { pre, post }
    }

    /// Output of the per-example forward pass.
    pub fn predict(&self, x: &[f64]) -> Vec<f64> {
        self.forward(x).post.last().expect("non-empty").clone()
    }

    /// Backpropagate one example from an output-space gradient `dl_dout`
    /// (∂loss/∂output, *after* the output activation) and apply one Adam
    /// step.
    pub fn backward_apply(&mut self, cache: &ForwardCache, dl_dout: &[f64]) {
        self.step += 1;
        let t = self.step as f64;
        let (b1, b2, eps) = (0.9f64, 0.999f64, 1e-8f64);
        // Hoisted bias-correction scalars (once per step, not per
        // parameter); `powf` is deterministic so this is bit-identical.
        let bc1 = 1.0 - b1.powf(t);
        let bc2 = 1.0 - b2.powf(t);
        let lr = self.learning_rate;

        // Delta at the output layer (chain through the output activation).
        let last = self.layers.len() - 1;
        let mut delta = vec![0.0f64; self.layers[last].output];
        output_delta(
            self.output_activation,
            &cache.post[last + 1],
            dl_dout,
            &mut delta,
        );

        for li in (0..self.layers.len()).rev() {
            // Gradient wrt inputs of this layer (before overwriting weights).
            let layer = &self.layers[li];
            let mut dl_dx = vec![0.0f64; layer.input];
            for o in 0..layer.output {
                let row = &layer.w[o * layer.input..(o + 1) * layer.input];
                for (dx, &w) in dl_dx.iter_mut().zip(row) {
                    *dx += delta[o] * w;
                }
            }
            // Adam update of weights and biases.
            let input_act = &cache.post[li];
            let layer = &mut self.layers[li];
            for o in 0..layer.output {
                let base = o * layer.input;
                for i in 0..layer.input {
                    let g = delta[o] * input_act[i];
                    let m = &mut layer.mw[base + i];
                    let v = &mut layer.vw[base + i];
                    *m = b1 * *m + (1.0 - b1) * g;
                    *v = b2 * *v + (1.0 - b2) * g * g;
                    let mhat = *m / bc1;
                    let vhat = *v / bc2;
                    layer.w[base + i] -= lr * mhat / (vhat.sqrt() + eps);
                }
                let g = delta[o];
                let m = &mut layer.mb[o];
                let v = &mut layer.vb[o];
                *m = b1 * *m + (1.0 - b1) * g;
                *v = b2 * *v + (1.0 - b2) * g * g;
                let mhat = *m / bc1;
                let vhat = *v / bc2;
                layer.b[o] -= lr * mhat / (vhat.sqrt() + eps);
            }
            if li > 0 {
                // Chain through the ReLU of the previous hidden layer.
                delta = dl_dx
                    .iter()
                    .zip(&cache.pre[li - 1])
                    .map(|(&g, &p)| if p > 0.0 { g } else { 0.0 })
                    .collect();
            }
        }
    }

    /// Per-example gradient of the loss with respect to the *input*, given
    /// an output-space gradient. Does not update weights.
    pub fn input_gradient(&self, cache: &ForwardCache, dl_dout: &[f64]) -> Vec<f64> {
        let last = self.layers.len() - 1;
        let mut delta = vec![0.0f64; self.layers[last].output];
        output_delta(
            self.output_activation,
            &cache.post[last + 1],
            dl_dout,
            &mut delta,
        );
        for li in (0..self.layers.len()).rev() {
            let layer = &self.layers[li];
            let mut dl_dx = vec![0.0f64; layer.input];
            for o in 0..layer.output {
                let row = &layer.w[o * layer.input..(o + 1) * layer.input];
                for (dx, &w) in dl_dx.iter_mut().zip(row) {
                    *dx += delta[o] * w;
                }
            }
            if li > 0 {
                delta = dl_dx
                    .iter()
                    .zip(&cache.pre[li - 1])
                    .map(|(&g, &p)| if p > 0.0 { g } else { 0.0 })
                    .collect();
            } else {
                return dl_dx;
            }
        }
        Vec::new()
    }

    /// One squared-error training step on a single example; returns the loss.
    pub fn train_mse(&mut self, x: &[f64], target: &[f64]) -> f64 {
        let cache = self.forward(x);
        let out = cache.post.last().expect("non-empty");
        let mut grad = Vec::with_capacity(out.len());
        let mut loss = 0.0;
        for (o, t) in out.iter().zip(target) {
            let d = o - t;
            loss += 0.5 * d * d;
            grad.push(d);
        }
        self.backward_apply(&cache, &grad);
        loss
    }

    /// One binary-cross-entropy step for a single sigmoid output; returns the
    /// loss. `target` ∈ {0,1}.
    pub fn train_bce(&mut self, x: &[f64], target: f64) -> f64 {
        debug_assert_eq!(self.output_size(), 1);
        debug_assert_eq!(self.output_activation, Activation::Sigmoid);
        let cache = self.forward(x);
        let y = cache.post.last().expect("non-empty")[0].clamp(1e-9, 1.0 - 1e-9);
        let loss = -(target * y.ln() + (1.0 - target) * (1.0 - y).ln());
        // d(BCE)/dy = (y - t) / (y(1-y)); the sigmoid chain in backward_apply
        // multiplies by y(1-y), so the composite is the familiar (y - t).
        let grad = [(y - target) / (y * (1.0 - y))];
        self.backward_apply(&cache, &grad);
        loss
    }

    /// Per-example formulation of [`Mlp::forward_batch`]: one
    /// [`Mlp::forward`] call per row. Differential oracle only.
    pub fn forward_batch_naive(&self, xs: &[f64], batch: usize) -> Vec<ForwardCache> {
        let input = self.input_size();
        debug_assert_eq!(xs.len(), batch * input);
        (0..batch)
            .map(|r| self.forward(&xs[r * input..(r + 1) * input]))
            .collect()
    }

    /// Per-example formulation of [`Mlp::backward_apply_batch`]: the delta
    /// chain of every example is computed against the *same* pre-update
    /// weights, weight/bias gradients are accumulated example-major, then
    /// one Adam step is applied. The batched path must match this
    /// bit-for-bit. An empty batch is a no-op.
    pub fn backward_apply_batch_naive(&mut self, caches: &[ForwardCache], dl_dout: &[f64]) {
        let out = self.output_size();
        debug_assert_eq!(dl_dout.len(), caches.len() * out);
        if caches.is_empty() || self.layers.is_empty() {
            return;
        }
        self.step += 1;
        let t = self.step as f64;
        let (b1, b2, eps) = (0.9f64, 0.999f64, 1e-8f64);
        let bc1 = 1.0 - b1.powf(t);
        let bc2 = 1.0 - b2.powf(t);
        let lr = self.learning_rate;

        let mut gws: Vec<Vec<f64>> = self
            .layers
            .iter()
            .map(|l| vec![0.0; l.input * l.output])
            .collect();
        let mut gbs: Vec<Vec<f64>> = self.layers.iter().map(|l| vec![0.0; l.output]).collect();
        let last = self.layers.len() - 1;
        for (e, cache) in caches.iter().enumerate() {
            let grad = &dl_dout[e * out..(e + 1) * out];
            let mut delta = vec![0.0f64; self.layers[last].output];
            output_delta(
                self.output_activation,
                &cache.post[last + 1],
                grad,
                &mut delta,
            );
            for li in (0..self.layers.len()).rev() {
                let layer = &self.layers[li];
                let mut dl_dx = vec![0.0f64; layer.input];
                for o in 0..layer.output {
                    let row = &layer.w[o * layer.input..(o + 1) * layer.input];
                    for (dx, &w) in dl_dx.iter_mut().zip(row) {
                        *dx += delta[o] * w;
                    }
                }
                let input_act = &cache.post[li];
                for o in 0..layer.output {
                    let base = o * layer.input;
                    for i in 0..layer.input {
                        gws[li][base + i] += delta[o] * input_act[i];
                    }
                    gbs[li][o] += delta[o];
                }
                if li > 0 {
                    delta = dl_dx
                        .iter()
                        .zip(&cache.pre[li - 1])
                        .map(|(&g, &p)| if p > 0.0 { g } else { 0.0 })
                        .collect();
                }
            }
        }
        for (li, layer) in self.layers.iter_mut().enumerate() {
            for (idx, &g) in gws[li].iter().enumerate() {
                let m = &mut layer.mw[idx];
                let v = &mut layer.vw[idx];
                *m = b1 * *m + (1.0 - b1) * g;
                *v = b2 * *v + (1.0 - b2) * g * g;
                let mhat = *m / bc1;
                let vhat = *v / bc2;
                layer.w[idx] -= lr * mhat / (vhat.sqrt() + eps);
            }
            for (o, &g) in gbs[li].iter().enumerate() {
                let m = &mut layer.mb[o];
                let v = &mut layer.vb[o];
                *m = b1 * *m + (1.0 - b1) * g;
                *v = b2 * *v + (1.0 - b2) * g * g;
                let mhat = *m / bc1;
                let vhat = *v / bc2;
                layer.b[o] -= lr * mhat / (vhat.sqrt() + eps);
            }
        }
    }

    /// Per-example formulation of [`Mlp::input_gradient_batch`]: one
    /// [`Mlp::input_gradient`] call per row, concatenated. Differential
    /// oracle only.
    pub fn input_gradient_batch_naive(&self, caches: &[ForwardCache], dl_dout: &[f64]) -> Vec<f64> {
        let out = self.output_size();
        debug_assert_eq!(dl_dout.len(), caches.len() * out);
        caches
            .iter()
            .enumerate()
            .flat_map(|(e, cache)| self.input_gradient(cache, &dl_dout[e * out..(e + 1) * out]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn learns_xor_with_bce() {
        let mut rng = StdRng::seed_from_u64(20);
        let mut net = Mlp::new(&[2, 16, 1], Activation::Sigmoid, &mut rng);
        net.learning_rate = 5e-3;
        let data = [
            ([0.0, 0.0], 0.0),
            ([0.0, 1.0], 1.0),
            ([1.0, 0.0], 1.0),
            ([1.0, 1.0], 0.0),
        ];
        for _ in 0..4000 {
            for (x, t) in &data {
                net.train_bce(x, *t);
            }
        }
        for (x, t) in &data {
            let p = net.predict(x)[0];
            assert!((p - t).abs() < 0.25, "x = {x:?}, p = {p}");
        }
    }

    #[test]
    fn learns_linear_regression_with_mse() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut net = Mlp::new(&[1, 8, 1], Activation::Linear, &mut rng);
        net.learning_rate = 3e-3;
        for epoch in 0..3000 {
            let x = (epoch % 20) as f64 / 10.0 - 1.0;
            net.train_mse(&[x], &[2.0 * x + 0.5]);
        }
        let p = net.predict(&[0.3])[0];
        assert!((p - 1.1).abs() < 0.15, "p = {p}");
    }

    #[test]
    fn state_roundtrip_is_exact_and_resumes_training() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut net = Mlp::new(&[2, 6, 1], Activation::Sigmoid, &mut rng);
        net.learning_rate = 4e-3;
        for _ in 0..50 {
            net.train_bce(&[0.2, 0.8], 1.0);
        }
        let restored = Mlp::from_state(net.export_state()).unwrap();
        let (a, b) = (net.predict(&[0.3, 0.4]), restored.predict(&[0.3, 0.4]));
        assert_eq!(a[0].to_bits(), b[0].to_bits(), "prediction must be exact");
        // The Adam state round-trips too: one more identical step on both
        // networks lands on identical weights.
        let mut net2 = restored;
        let mut net1 = net;
        net1.train_bce(&[0.2, 0.8], 0.0);
        net2.train_bce(&[0.2, 0.8], 0.0);
        assert_eq!(net1.export_state(), net2.export_state());
    }

    #[test]
    fn malformed_state_is_rejected() {
        let mut rng = StdRng::seed_from_u64(24);
        let net = Mlp::new(&[2, 3, 1], Activation::Linear, &mut rng);
        let mut state = net.export_state();
        state.layers[0].w.pop();
        assert!(matches!(
            Mlp::from_state(state),
            Err(MlError::LengthMismatch { .. })
        ));
        let mut state = net.export_state();
        state.layers[1].input = 4; // breaks the chain with layer 0
        assert!(matches!(
            Mlp::from_state(state),
            Err(MlError::LengthMismatch { .. })
        ));
        // A layerless snapshot is its own error, not a bogus length report.
        assert!(matches!(
            Mlp::from_state(MlpState {
                layers: vec![],
                output_activation: Activation::Linear,
                step: 0,
                learning_rate: 1e-3,
            }),
            Err(MlError::EmptyNetwork)
        ));
    }

    #[test]
    fn shapes_are_consistent() {
        let mut rng = StdRng::seed_from_u64(22);
        let net = Mlp::new(&[3, 5, 4], Activation::Tanh, &mut rng);
        assert_eq!(net.input_size(), 3);
        assert_eq!(net.output_size(), 4);
        let out = net.predict(&[0.1, 0.2, 0.3]);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn batched_forward_matches_per_example() {
        let mut rng = StdRng::seed_from_u64(30);
        let net = Mlp::new(&[3, 7, 5, 2], Activation::Tanh, &mut rng);
        let xs: Vec<f64> = (0..12).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut ws = BatchWorkspace::new();
        net.forward_batch(&xs, 4, &mut ws);
        for (r, cache) in net.forward_batch_naive(&xs, 4).iter().enumerate() {
            for (b, n) in ws.output()[r * 2..(r + 1) * 2].iter().zip(cache.output()) {
                assert_eq!(b.to_bits(), n.to_bits(), "row {r}");
            }
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut net = Mlp::new(&[2, 4, 1], Activation::Sigmoid, &mut rng);
        let before = net.export_state();
        let mut ws = BatchWorkspace::new();
        net.forward_batch(&[], 0, &mut ws);
        assert!(ws.output().is_empty());
        net.backward_apply_batch(&mut ws, &[]);
        let mut dx = vec![1.0; 3];
        net.input_gradient_batch(&mut ws, &[], &mut dx);
        assert!(dx.is_empty());
        assert_eq!(net.export_state(), before, "no step on an empty batch");
    }

    /// Whole training rounds under a multi-thread allowance are bit-identical
    /// to the sequential workspace — layers sized past the
    /// [`backend::gemm_threads`] gate so the fan-out path actually runs.
    #[test]
    fn batched_training_is_bit_identical_across_thread_counts() {
        let mut rng = StdRng::seed_from_u64(33);
        let net0 = Mlp::new(&[48, 64, 48], Activation::Tanh, &mut rng);
        let batch = 128usize;
        let xs: Vec<f64> = (0..batch * 48).map(|i| (i as f64 * 0.173).sin()).collect();
        let g: Vec<f64> = (0..batch * 48).map(|i| (i as f64 * 0.311).cos()).collect();

        let run = |threads: usize| {
            let mut net = net0.clone();
            let mut ws = BatchWorkspace::new();
            ws.set_threads(threads);
            let mut dx = Vec::new();
            for _ in 0..3 {
                net.forward_batch(&xs, batch, &mut ws);
                net.input_gradient_batch(&mut ws, &g, &mut dx);
                net.backward_apply_batch(&mut ws, &g);
            }
            net.forward_batch(&xs, batch, &mut ws);
            (net.export_state(), ws.output().to_vec(), dx)
        };

        let (state1, out1, dx1) = run(1);
        for threads in [2usize, 3, 7] {
            let (state, out, dx) = run(threads);
            assert_eq!(state, state1, "threads={threads} diverged in weights");
            let same =
                |a: &[f64], b: &[f64]| a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same(&out, &out1), "threads={threads} diverged in output");
            assert!(same(&dx, &dx1), "threads={threads} diverged in input grads");
        }
    }

    #[test]
    fn batch_of_one_equals_single_example_step() {
        let mut rng = StdRng::seed_from_u64(32);
        let net = Mlp::new(&[3, 6, 2], Activation::Linear, &mut rng);
        let mut batched = net.clone();
        let mut naive = net;
        let x = [0.4, -1.2, 0.9];
        let g = [0.3, -0.7];
        let mut ws = BatchWorkspace::new();
        batched.forward_batch(&x, 1, &mut ws);
        batched.backward_apply_batch(&mut ws, &g);
        let caches = naive.forward_batch_naive(&x, 1);
        naive.backward_apply_batch_naive(&caches, &g);
        assert_eq!(batched.export_state(), naive.export_state());
    }
}
