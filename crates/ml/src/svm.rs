//! Linear support vector classifier trained with SGD on the hinge loss
//! (Pegasos-style schedule) — Jeong et al.'s SVC model family.

use crate::error::{validate_xy, Result};
use rand::Rng;

/// Hyperparameters for the linear SVC.
#[derive(Debug, Clone, Copy)]
pub struct SvcOptions {
    /// L2 regularization strength λ.
    pub lambda: f64,
    /// Number of SGD epochs.
    pub epochs: usize,
}

impl Default for SvcOptions {
    fn default() -> Self {
        SvcOptions {
            lambda: 1e-4,
            epochs: 12,
        }
    }
}

/// A fitted linear SVC.
#[derive(Debug, Clone)]
pub struct LinearSvc {
    weights: Vec<f64>,
    bias: f64,
}

impl LinearSvc {
    /// Fit with Pegasos SGD: step 1/(λ·t) on hinge-violating rows.
    pub fn fit<R: Rng + ?Sized>(
        x: &[Vec<f64>],
        y: &[f64],
        options: SvcOptions,
        rng: &mut R,
    ) -> Result<LinearSvc> {
        let d = validate_xy(x, y)?;
        let n = x.len();
        let mut w = vec![0.0f64; d];
        let mut b = 0.0f64;
        let mut t = 0usize;
        for _ in 0..options.epochs {
            for _ in 0..n {
                t += 1;
                let i = rng.gen_range(0..n);
                let target = 2.0 * y[i] - 1.0; // {0,1} -> {-1,+1}
                let margin = target * (dot(&w, &x[i]) + b);
                let eta = 1.0 / (options.lambda * t as f64);
                // L2 shrinkage.
                let shrink = 1.0 - eta * options.lambda;
                w.iter_mut().for_each(|wi| *wi *= shrink.max(0.0));
                if margin < 1.0 {
                    for (wi, &xi) in w.iter_mut().zip(&x[i]) {
                        *wi += eta * target * xi;
                    }
                    b += eta * target * 0.1; // slow bias updates stabilize
                }
            }
        }
        Ok(LinearSvc {
            weights: w,
            bias: b,
        })
    }

    /// Signed decision value.
    pub fn decision_row(&self, row: &[f64]) -> f64 {
        dot(&self.weights, row) + self.bias
    }

    /// "Probability" via a logistic squash of the margin (Platt-style with
    /// unit scale) — enough for thresholding and base-rate metrics.
    pub fn predict_proba_row(&self, row: &[f64]) -> f64 {
        1.0 / (1.0 + (-self.decision_row(row)).exp())
    }

    /// Probabilities for many rows.
    pub fn predict_proba(&self, x: &[Vec<f64>]) -> Vec<f64> {
        x.iter().map(|r| self.predict_proba_row(r)).collect()
    }

    /// Learned weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn separates_linear_data() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 1000;
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen::<f64>() * 4.0 - 2.0, rng.gen::<f64>() * 4.0 - 2.0])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| f64::from(r[0] - r[1] > 0.0)).collect();
        let svc = LinearSvc::fit(&x, &y, SvcOptions::default(), &mut rng).unwrap();
        let acc = x
            .iter()
            .zip(&y)
            .filter(|(r, &t)| (svc.predict_proba_row(r) > 0.5) == (t == 1.0))
            .count() as f64
            / n as f64;
        assert!(acc > 0.95, "accuracy = {acc}");
        // The learned direction must align with (1, -1).
        assert!(svc.weights()[0] > 0.0 && svc.weights()[1] < 0.0);
    }

    #[test]
    fn probabilities_bounded() {
        let mut rng = StdRng::seed_from_u64(8);
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..50).map(|i| f64::from(i > 25)).collect();
        let svc = LinearSvc::fit(&x, &y, SvcOptions::default(), &mut rng).unwrap();
        for p in svc.predict_proba(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
