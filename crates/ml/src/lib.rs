//! # synrd-ml — ML substrate for classifier-based findings
//!
//! Jeong et al. train three model families (logistic regression — provided
//! by `synrd-stats` — random forest, and a linear SVC) and compare fairness
//! metrics across racial groups. This crate supplies:
//!
//! * [`tree`] / [`forest`] — CART decision trees and bagged random forests;
//! * [`svm`] — linear SVC (Pegasos SGD on the hinge loss);
//! * [`metrics`](mod@metrics) — accuracy / FPR / FNR / predicted-base-rate, per group;
//! * [`split`] — train/test splitting;
//! * [`nn`] — a compact MLP with manual backprop and Adam, the neural
//!   substrate of the PATECTGAN synthesizer.

#![allow(clippy::needless_range_loop)] // indexed loops are the clearer idiom in numeric kernels
pub mod backend;
pub mod error;
pub mod forest;
pub mod metrics;
pub mod nn;
pub mod split;
pub mod svm;
pub mod tree;

pub use backend::{AnyBackend, Backend, CpuBackend, SimdBackend};
pub use error::{MlError, Result};
pub use forest::{ForestOptions, RandomForest};
pub use metrics::{group_metrics, metrics, Metrics};
#[cfg(any(test, feature = "naive-reference"))]
pub use nn::ForwardCache;
pub use nn::{Activation, BatchWorkspace, DenseState, Mlp, MlpState};
pub use split::train_test_split;
pub use svm::{LinearSvc, SvcOptions};
pub use tree::{DecisionTree, TreeOptions};
