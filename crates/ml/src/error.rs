//! Error taxonomy for the ML substrate.

use std::fmt;

/// Errors from model training and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// Features and labels disagree in length.
    LengthMismatch { left: usize, right: usize },
    /// Not enough rows to train or split.
    TooFewRows { needed: usize, got: usize },
    /// Labels must be 0/1.
    NonBinaryLabel(f64),
    /// Rows have inconsistent feature counts.
    RaggedFeatures,
    /// A hyperparameter is out of range.
    InvalidParameter { name: &'static str, value: f64 },
    /// A serialized network snapshot contains no layers.
    EmptyNetwork,
    /// A backend name (CLI flag or `SYNRD_ML_BACKEND`) is not recognized.
    UnknownBackend(String),
    /// A recognized backend cannot run on this CPU.
    BackendUnsupported(&'static str),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            MlError::TooFewRows { needed, got } => {
                write!(f, "too few rows: needed {needed}, got {got}")
            }
            MlError::NonBinaryLabel(v) => write!(f, "labels must be 0/1, got {v}"),
            MlError::RaggedFeatures => write!(f, "rows have inconsistent feature counts"),
            MlError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name} = {value}")
            }
            MlError::EmptyNetwork => write!(f, "network snapshot has no layers"),
            MlError::UnknownBackend(name) => {
                write!(
                    f,
                    "unknown ml backend {name:?} (expected auto, cpu or simd)"
                )
            }
            MlError::BackendUnsupported(name) => {
                write!(f, "ml backend {name} is not supported on this cpu")
            }
        }
    }
}

impl std::error::Error for MlError {}

/// Convenience alias used throughout the ML crate.
pub type Result<T> = std::result::Result<T, MlError>;

/// Validate a supervised dataset: consistent feature arity, binary labels.
pub(crate) fn validate_xy(x: &[Vec<f64>], y: &[f64]) -> Result<usize> {
    if x.len() != y.len() {
        return Err(MlError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if x.is_empty() {
        return Err(MlError::TooFewRows { needed: 1, got: 0 });
    }
    let d = x[0].len();
    if x.iter().any(|r| r.len() != d) {
        return Err(MlError::RaggedFeatures);
    }
    if let Some(&bad) = y.iter().find(|&&v| v != 0.0 && v != 1.0) {
        return Err(MlError::NonBinaryLabel(bad));
    }
    Ok(d)
}
