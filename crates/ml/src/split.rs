//! Train/test splitting.

use crate::error::{MlError, Result};
use rand::seq::SliceRandom;
use rand::Rng;

/// Shuffle row indices and split off a test fraction.
///
/// # Errors
/// [`MlError::InvalidParameter`] for fractions outside (0,1);
/// [`MlError::TooFewRows`] when a side would be empty.
pub fn train_test_split<R: Rng + ?Sized>(
    n: usize,
    test_fraction: f64,
    rng: &mut R,
) -> Result<(Vec<usize>, Vec<usize>)> {
    if !(0.0 < test_fraction && test_fraction < 1.0) {
        return Err(MlError::InvalidParameter {
            name: "test_fraction",
            value: test_fraction,
        });
    }
    let n_test = ((n as f64) * test_fraction).round() as usize;
    if n_test == 0 || n_test >= n {
        return Err(MlError::TooFewRows { needed: 2, got: n });
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let test = idx.split_off(n - n_test);
    Ok((idx, test))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn split_covers_everything_once() {
        let mut rng = StdRng::seed_from_u64(9);
        let (train, test) = train_test_split(100, 0.3, &mut rng).unwrap();
        assert_eq!(train.len(), 70);
        assert_eq!(test.len(), 30);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn validation() {
        let mut rng = StdRng::seed_from_u64(10);
        assert!(train_test_split(10, 0.0, &mut rng).is_err());
        assert!(train_test_split(10, 1.0, &mut rng).is_err());
        assert!(train_test_split(1, 0.5, &mut rng).is_err());
    }
}
