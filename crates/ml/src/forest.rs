//! Random forest: bagged Gini trees with √d feature subsampling.

use crate::error::{validate_xy, Result};
use crate::tree::{DecisionTree, TreeOptions};
use rand::Rng;

/// Hyperparameters for the forest.
#[derive(Debug, Clone, Copy)]
pub struct ForestOptions {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree options; `max_features = None` here means √d.
    pub tree: TreeOptions,
}

impl Default for ForestOptions {
    fn default() -> Self {
        ForestOptions {
            n_trees: 30,
            tree: TreeOptions {
                max_depth: 10,
                min_samples_split: 8,
                max_features: None,
            },
        }
    }
}

/// A fitted random forest predicting P(y = 1 | x) as the mean of its trees.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Fit with bootstrap rows per tree and √d features per node.
    pub fn fit<R: Rng + ?Sized>(
        x: &[Vec<f64>],
        y: &[f64],
        options: ForestOptions,
        rng: &mut R,
    ) -> Result<RandomForest> {
        let d = validate_xy(x, y)?;
        let max_features = options
            .tree
            .max_features
            .unwrap_or_else(|| (d as f64).sqrt().ceil() as usize)
            .max(1);
        let tree_options = TreeOptions {
            max_features: Some(max_features),
            ..options.tree
        };
        let n = x.len();
        let mut trees = Vec::with_capacity(options.n_trees);
        let mut bx: Vec<Vec<f64>> = Vec::with_capacity(n);
        let mut by: Vec<f64> = Vec::with_capacity(n);
        for _ in 0..options.n_trees {
            bx.clear();
            by.clear();
            for _ in 0..n {
                let i = rng.gen_range(0..n);
                bx.push(x[i].clone());
                by.push(y[i]);
            }
            trees.push(DecisionTree::fit(&bx, &by, tree_options, rng)?);
        }
        Ok(RandomForest { trees })
    }

    /// Mean tree probability for one row.
    pub fn predict_proba_row(&self, row: &[f64]) -> f64 {
        self.trees
            .iter()
            .map(|t| t.predict_proba_row(row))
            .sum::<f64>()
            / self.trees.len() as f64
    }

    /// Mean tree probabilities for many rows.
    pub fn predict_proba(&self, x: &[Vec<f64>]) -> Vec<f64> {
        x.iter().map(|r| self.predict_proba_row(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn beats_chance_on_noisy_linear_data() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 600;
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()])
            .collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| f64::from(r[0] + 0.5 * r[1] + 0.1 * (rng.gen::<f64>() - 0.5) > 0.75))
            .collect();
        let forest = RandomForest::fit(&x, &y, ForestOptions::default(), &mut rng).unwrap();
        let preds = forest.predict_proba(&x);
        let acc = preds
            .iter()
            .zip(&y)
            .filter(|(p, &t)| (**p > 0.5) == (t == 1.0))
            .count() as f64
            / n as f64;
        assert!(acc > 0.9, "train accuracy = {acc}");
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(6);
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![(i % 7) as f64]).collect();
        let y: Vec<f64> = (0..100).map(|i| f64::from(i % 3 == 0)).collect();
        let forest = RandomForest::fit(&x, &y, ForestOptions::default(), &mut rng).unwrap();
        for p in forest.predict_proba(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
