//! # synrd-synth — six differentially private data synthesizers
//!
//! The evaluation subjects of the epistemic-parity benchmark, all behind the
//! [`Synthesizer`] trait:
//!
//! | Kind | Family | Native guarantee |
//! |---|---|---|
//! | [`Mst`] | marginals + Private-PGM | (ε,δ)-DP |
//! | [`PrivBayes`] | Bayesian network | (ε,0)-DP |
//! | [`Aim`] | workload-aware marginals + Private-PGM | ρ-zCDP |
//! | [`PrivMrf`] | selected marginals + Private-PGM | (ε,δ)-DP |
//! | [`PateCtgan`] | conditional GAN with PATE | (ε,δ)-DP |
//! | [`Gem`] | generative network, adaptive measurements | ρ-zCDP |
//!
//! All synthesizers are deterministic functions of `(data, privacy, seed)`.
//! PGM-based methods refuse domains past their tractable limit with
//! [`SynthError::Infeasible`], modeling Figure 3's crosshatch cells.

#![allow(clippy::needless_range_loop)] // indexed loops are the clearer idiom in numeric kernels
pub mod aim;
mod common;
pub mod error;
pub mod gem;
pub mod mst;
pub mod patectgan;
pub mod privbayes;
pub mod privmrf;
pub mod scoring;
pub mod workload;

pub use aim::{Aim, AimOptions};
pub use error::{Result, SynthError};
pub use gem::{Gem, GemOptions, GemState};
pub use mst::{Mst, MstOptions};
pub use patectgan::{PateCtgan, PateCtganOptions};
pub use privbayes::{BayesNode, PrivBayes, PrivBayesOptions};
pub use privmrf::{PrivMrf, PrivMrfOptions};
pub use scoring::{aim_candidate_score, map_scores, mst_edge_score};
pub use workload::{all_pairs, all_pairs_under, WorkloadQuery};
// Sampling-side process counters (mirrors of the grid fit counter and the
// marginal counting counter), re-exported so the grid driver and tests can
// read them without a direct synrd-pgm dependency.
pub use synrd_pgm::{rows_sampled, sampling_passes};
// The ML backend dispatch (`auto | cpu | simd`), re-exported so the grid
// driver and the serve binary can apply `--ml-backend` / report the active
// backend without a direct synrd-ml dependency. Backend selection changes
// throughput only — every backend is bit-identical, so fitted states and
// cache fingerprints do not depend on it.
pub use synrd_ml::backend as ml_backend;

use std::sync::atomic::{AtomicUsize, Ordering};
use synrd_data::{Dataset, Domain};
use synrd_dp::{delta_for_n, Privacy};
use synrd_ml::MlpState;
use synrd_pgm::FittedModel;

// Process-global default fit-thread allowance, encoded for the atomic:
// 0 = not yet initialized, otherwise the allowance itself.
static FIT_THREADS: AtomicUsize = AtomicUsize::new(0);

fn init_fit_threads_from_env() -> usize {
    let chosen = match std::env::var("SYNRD_FIT_THREADS") {
        Ok(v) => v
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&t| t > 0)
            .unwrap_or_else(|| {
                // A bad env value must not abort a fit; degrade loudly.
                eprintln!(
                    "[synrd-synth] SYNRD_FIT_THREADS ignored: {v:?} is not a positive integer"
                );
                1
            }),
        Err(_) => 1,
    };
    FIT_THREADS.store(chosen, Ordering::Relaxed);
    chosen
}

/// The process-global default fit-thread allowance, used by
/// [`Synthesizer::fit`] (the no-context convenience). Initialized lazily
/// from `SYNRD_FIT_THREADS` (`1` — fully sequential — when unset or
/// invalid, with a warning on invalid values); changeable at any time via
/// [`set_default_fit_threads`]. Like the ML backend selection this is a
/// throughput knob only: fits are bit-identical at every thread count, so
/// it never reaches fitted states or cache fingerprints.
pub fn default_fit_threads() -> usize {
    match FIT_THREADS.load(Ordering::Relaxed) {
        0 => init_fit_threads_from_env(),
        t => t,
    }
}

/// Set the process-global default fit-thread allowance (the `--fit-threads`
/// CLI flags); clamped to at least 1. Only [`Synthesizer::fit`] calls made
/// *after* this pick up the change.
pub fn set_default_fit_threads(threads: usize) {
    FIT_THREADS.store(threads.max(1), Ordering::Relaxed);
}

/// Execution context for one fit: resource knobs that change throughput but
/// never results. Every synthesizer's internal parallelism pins its
/// reduction orders, so a fit is **bit-identical at any thread count** —
/// which is why this context never appears in [`FittedState`] or any cache
/// fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FitContext {
    /// Worker threads the fit may use internally (mirror-descent loss
    /// passes, batched GEMMs, GEM's per-component updates). `1` runs fully
    /// sequential.
    pub threads: usize,
}

impl Default for FitContext {
    /// The process-global default allowance ([`default_fit_threads`]).
    fn default() -> FitContext {
        FitContext {
            threads: default_fit_threads(),
        }
    }
}

impl FitContext {
    /// A fully sequential context (the historical behavior).
    pub fn sequential() -> FitContext {
        FitContext { threads: 1 }
    }

    /// A context with an explicit thread allowance (clamped to at least 1).
    pub fn with_threads(threads: usize) -> FitContext {
        FitContext {
            threads: threads.max(1),
        }
    }
}

/// A serializable snapshot of a fitted synthesizer — everything `sample`
/// needs, as plain data, with none of the training-time machinery.
///
/// The fit cache persists these between runs and the serve mode answers
/// sampling requests from them; round-tripping a state through
/// [`Synthesizer::fitted_state`] / [`Synthesizer::restore_state`] must
/// reproduce every subsequent draw bit-for-bit.
#[derive(Debug, Clone)]
pub enum FittedState {
    /// The Private-PGM methods (AIM, MST, PrivMRF): a calibrated
    /// junction-tree model over the fitted domain.
    Pgm {
        /// Domain the model was fitted on.
        domain: Domain,
        /// Calibrated junction-tree potentials and the private row count.
        model: FittedModel,
    },
    /// PrivBayes: the ancestral network of noisy CPTs, in sampling order.
    PrivBayes {
        /// Domain the network was fitted on.
        domain: Domain,
        /// Network nodes in ancestral (topological) order.
        nodes: Vec<BayesNode>,
    },
    /// GEM: mixture-of-products logits plus Adam moments.
    Gem {
        /// Domain the mixture was fitted on.
        domain: Domain,
        /// Generator parameters and optimizer state.
        model: GemState,
    },
    /// PATECTGAN: the generator network and its one-hot output layout.
    PateCtgan {
        /// Domain the generator was fitted on.
        domain: Domain,
        /// Generator MLP weights and Adam moments.
        generator: MlpState,
        /// `(offset, cardinality)` of each attribute's softmax block.
        blocks: Vec<(usize, usize)>,
        /// Latent input dimension.
        z_dim: usize,
    },
}

impl FittedState {
    /// The domain this state was fitted on.
    pub fn domain(&self) -> &Domain {
        match self {
            FittedState::Pgm { domain, .. }
            | FittedState::PrivBayes { domain, .. }
            | FittedState::Gem { domain, .. }
            | FittedState::PateCtgan { domain, .. } => domain,
        }
    }

    /// Short variant tag (used in error messages and serialized keys).
    pub fn variant(&self) -> &'static str {
        match self {
            FittedState::Pgm { .. } => "pgm",
            FittedState::PrivBayes { .. } => "privbayes",
            FittedState::Gem { .. } => "gem",
            FittedState::PateCtgan { .. } => "patectgan",
        }
    }
}

/// A DP data synthesizer: fit a private model, then sample synthetic rows.
pub trait Synthesizer: Send + Sync {
    /// Display name (as used in the paper's figures).
    fn name(&self) -> &'static str;

    /// Fit the model on `data` under `privacy`, deterministically in `seed`,
    /// with an explicit execution context. The context is a throughput knob
    /// only — the fitted model is bit-identical at any `ctx.threads`.
    ///
    /// # Errors
    /// [`SynthError::Infeasible`] when the dataset is outside the method's
    /// tractable regime (Figure 3 crosshatch), or an underlying error.
    fn fit_with(
        &mut self,
        data: &Dataset,
        privacy: Privacy,
        seed: u64,
        ctx: FitContext,
    ) -> Result<()>;

    /// [`fit_with`] under the process-global default context
    /// ([`FitContext::default`], i.e. `SYNRD_FIT_THREADS` or sequential).
    ///
    /// # Errors
    /// Same contract as [`fit_with`].
    ///
    /// [`fit_with`]: Synthesizer::fit_with
    fn fit(&mut self, data: &Dataset, privacy: Privacy, seed: u64) -> Result<()> {
        self.fit_with(data, privacy, seed, FitContext::default())
    }

    /// Sample `n` synthetic rows. Requires a prior successful [`fit`].
    ///
    /// [`fit`]: Synthesizer::fit
    fn sample(&self, n: usize, seed: u64) -> Result<Dataset>;

    /// Export the fitted model as plain serializable state. `None` when not
    /// fitted, or when the implementation does not support state export.
    fn fitted_state(&self) -> Option<FittedState> {
        None
    }

    /// Replace any prior fit with a previously exported state, so that
    /// subsequent [`sample`] calls replay exactly as on the fitting process.
    ///
    /// # Errors
    /// [`SynthError::StateMismatch`] when `state` is another synthesizer's
    /// variant or internally inconsistent.
    ///
    /// [`sample`]: Synthesizer::sample
    fn restore_state(&mut self, state: FittedState) -> Result<()> {
        Err(SynthError::StateMismatch {
            reason: format!(
                "{}: state restore unsupported (got {} state)",
                self.name(),
                state.variant()
            ),
        })
    }
}

/// Identifier for the six synthesizers (Figure 3/4 row order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SynthKind {
    Aim,
    PrivMrf,
    Mst,
    PrivBayes,
    PateCtgan,
    Gem,
}

impl SynthKind {
    /// All six, in the paper's figure order.
    pub const ALL: [SynthKind; 6] = [
        SynthKind::Aim,
        SynthKind::PrivMrf,
        SynthKind::Mst,
        SynthKind::PrivBayes,
        SynthKind::PateCtgan,
        SynthKind::Gem,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SynthKind::Aim => "AIM",
            SynthKind::PrivMrf => "PrivMRF",
            SynthKind::Mst => "MST",
            SynthKind::PrivBayes => "PrivBayes",
            SynthKind::PateCtgan => "PATECTGAN",
            SynthKind::Gem => "GEM",
        }
    }

    /// Inverse of [`SynthKind::name`]: resolve a display name (as it appears
    /// in figures and in serialized reports) back to the kind.
    pub fn from_name(name: &str) -> Option<SynthKind> {
        SynthKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Build a fresh synthesizer with recommended settings (the paper runs
    /// every method at its author-recommended defaults).
    pub fn build(self) -> Box<dyn Synthesizer> {
        match self {
            SynthKind::Aim => Box::new(Aim::default()),
            SynthKind::PrivMrf => Box::new(PrivMrf::default()),
            SynthKind::Mst => Box::new(Mst::default()),
            SynthKind::PrivBayes => Box::new(PrivBayes::default()),
            SynthKind::PateCtgan => Box::new(PateCtgan::default()),
            SynthKind::Gem => Box::new(Gem::default()),
        }
    }

    /// The privacy statement this synthesizer natively provides when the
    /// benchmark dials in a nominal ε (the paper's common ε axis, §3):
    /// zCDP methods get the ρ whose (ε,δ) conversion matches, pure-DP
    /// methods get (ε,0), the rest get (ε,δ) with δ cryptographically small
    /// in `n`.
    pub fn native_privacy(self, epsilon: f64, n: usize) -> Privacy {
        let delta = delta_for_n(n);
        match self {
            SynthKind::PrivBayes => Privacy::Pure { epsilon },
            SynthKind::Aim | SynthKind::Gem => Privacy::Zcdp {
                rho: Privacy::Approx { epsilon, delta }.to_zcdp_rho(),
            },
            _ => Privacy::Approx { epsilon, delta },
        }
    }

    /// Whether this method parameterizes through Private-PGM (and therefore
    /// inherits its domain-size ceiling).
    pub fn is_pgm_based(self) -> bool {
        matches!(
            self,
            SynthKind::Aim | SynthKind::PrivMrf | SynthKind::Mst | SynthKind::PrivBayes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synrd_data::{Attribute, Domain, Marginal};

    /// A small correlated dataset every synthesizer should roughly capture.
    fn correlated_data(n: usize, seed: u64) -> Dataset {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let domain = Domain::new(vec![
            Attribute::binary("x"),
            Attribute::binary("y"),
            Attribute::ordinal("z", 4),
        ]);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::with_capacity(domain, n);
        for _ in 0..n {
            let x = u32::from(rng.gen::<f64>() < 0.3);
            // y strongly tracks x.
            let y = if rng.gen::<f64>() < 0.85 { x } else { 1 - x };
            let z = if x == 1 {
                rng.gen_range(2..4)
            } else {
                rng.gen_range(0..2)
            };
            ds.push_row(&[x, y, z]).unwrap();
        }
        ds
    }

    #[test]
    fn all_synthesizers_fit_and_sample() {
        let data = correlated_data(3000, 1);
        for kind in SynthKind::ALL {
            let mut synth = kind.build();
            let privacy = kind.native_privacy(std::f64::consts::E, data.n_rows());
            synth
                .fit(&data, privacy, 7)
                .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
            let sample = synth.sample(2000, 3).unwrap();
            assert_eq!(sample.n_rows(), 2000, "{}", kind.name());
            assert_eq!(sample.domain(), data.domain(), "{}", kind.name());
        }
    }

    #[test]
    fn sampling_before_fit_errors() {
        for kind in SynthKind::ALL {
            let synth = kind.build();
            assert!(matches!(synth.sample(10, 1), Err(SynthError::NotFitted)));
        }
    }

    #[test]
    fn marginal_methods_preserve_one_way_marginals() {
        let data = correlated_data(5000, 2);
        let real_x = data.mean_of(0).unwrap();
        for kind in [
            SynthKind::Mst,
            SynthKind::Aim,
            SynthKind::PrivMrf,
            SynthKind::PrivBayes,
        ] {
            let mut synth = kind.build();
            synth
                .fit(&data, kind.native_privacy(std::f64::consts::E, 5000), 11)
                .unwrap();
            let sample = synth.sample(5000, 5).unwrap();
            let synth_x = sample.mean_of(0).unwrap();
            assert!(
                (synth_x - real_x).abs() < 0.06,
                "{}: {synth_x:.3} vs {real_x:.3}",
                kind.name()
            );
        }
    }

    #[test]
    fn mst_preserves_pair_correlation() {
        let data = correlated_data(8000, 3);
        let mut synth = Mst::default();
        synth
            .fit(
                &data,
                SynthKind::Mst.native_privacy(std::f64::consts::E, 8000),
                13,
            )
            .unwrap();
        let sample = synth.sample(8000, 17).unwrap();
        let real = Marginal::count(&data, &[0, 1]).unwrap();
        let fake = Marginal::count(&sample, &[0, 1]).unwrap();
        let l1 = real.l1_distance(&fake).unwrap();
        assert!(l1 < 0.12, "pair L1 = {l1:.4}");
    }

    #[test]
    fn pgm_methods_refuse_huge_domains() {
        // 57 attributes of cardinality 6 => domain ~ 6^57 >> 1e25.
        let attrs: Vec<Attribute> = (0..57)
            .map(|i| Attribute::ordinal(format!("a{i}"), 6))
            .collect();
        let domain = Domain::new(attrs);
        let mut ds = Dataset::with_capacity(domain, 64);
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        let mut row = vec![0u32; 57];
        for _ in 0..64 {
            for c in row.iter_mut() {
                *c = rng.gen_range(0..6);
            }
            ds.push_row(&row).unwrap();
        }
        for kind in [
            SynthKind::Mst,
            SynthKind::Aim,
            SynthKind::PrivMrf,
            SynthKind::PrivBayes,
        ] {
            let mut synth = kind.build();
            let err = synth.fit(&ds, kind.native_privacy(1.0, 64), 1).unwrap_err();
            assert!(
                matches!(err, SynthError::Infeasible { .. }),
                "{}: {err}",
                kind.name()
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data = correlated_data(2000, 5);
        for kind in [SynthKind::Mst, SynthKind::Gem] {
            let privacy = kind.native_privacy(1.0, 2000);
            let mut s1 = kind.build();
            s1.fit(&data, privacy, 42).unwrap();
            let a = s1.sample(500, 9).unwrap();
            let mut s2 = kind.build();
            s2.fit(&data, privacy, 42).unwrap();
            let b = s2.sample(500, 9).unwrap();
            assert_eq!(a, b, "{}", kind.name());
        }
    }
}
