//! Parallel exponential-mechanism candidate scoring with a pinned
//! deterministic reduction order.
//!
//! AIM re-scores its whole workload every round and MST scores all O(d²)
//! pairwise edges once; after PR 4 both loops are served from the
//! [`MarginalEngine`](synrd_data::MarginalEngine) cache, so each score is a
//! pure read of a cached marginal plus some per-candidate arithmetic —
//! embarrassingly parallel. [`map_scores`] fans the candidates out with
//! rayon and collects the results *in candidate order* (the reduction order
//! the exponential mechanism consumes), so the parallel pass is
//! bit-identical to the sequential one: each candidate's arithmetic is
//! untouched and independent, and order-preserving collection leaves
//! nothing for the schedule to perturb (pinned by
//! `tests/parallel_scoring.rs`).

use crate::error::Result;
use rayon::prelude::*;
use synrd_data::Marginal;

/// Map `score` over `items` into a score vector in item order — in
/// parallel when `parallel` is set. Either way the output is collected in
/// the pinned item order, so both paths produce bit-identical vectors.
pub fn map_scores<T, F>(items: &[T], parallel: bool, score: F) -> Result<Vec<f64>>
where
    T: Sync,
    F: Fn(&T) -> Result<f64> + Sync,
{
    if parallel {
        let results: Vec<Result<f64>> = items.par_iter().map(score).collect();
        results.into_iter().collect()
    } else {
        items.iter().map(score).collect()
    }
}

/// Whether a scoring pass over `candidates` items should fan out across
/// threads (tiny pools lose more to thread spawn than they gain).
pub(crate) fn parallel_scoring(candidates: usize) -> bool {
    candidates >= 16 && rayon::current_num_threads() > 1
}

/// AIM's candidate utility: `weight × (L1 model error − expected noise
/// cost)` for one workload marginal, exactly as the round loop computed it
/// inline (same op order, so scores are bit-identical wherever computed).
pub fn aim_candidate_score(
    true_counts: &Marginal,
    model_probs: &[f64],
    sigma_next: f64,
    weight: f64,
) -> f64 {
    let n = true_counts.total();
    let l1: f64 = true_counts
        .counts()
        .iter()
        .zip(model_probs)
        .map(|(&c, &p)| (c - n * p).abs())
        .sum();
    let noise_cost =
        (2.0 / std::f64::consts::PI).sqrt() * sigma_next * true_counts.n_cells() as f64;
    weight * (l1 - noise_cost)
}

/// MST's edge score: L1 gap between the true pair joint and the
/// independent approximation implied by the (noisy, already-paid-for)
/// one-way marginals `pa` ⊗ `pb`.
pub fn mst_edge_score(joint: &Marginal, pa: &[f64], pb: &[f64], n: f64) -> f64 {
    let card_b = joint.shape()[1];
    let mut score = 0.0;
    for (idx, &c) in joint.counts().iter().enumerate() {
        score += (c - n * pa[idx / card_b] * pb[idx % card_b]).abs();
    }
    score
}
