//! Shared helpers for the synthesizers.

use crate::error::{Result, SynthError};
use crate::FittedState;
use rand::rngs::StdRng;
use synrd_data::{Dataset, Domain, MarginalEngine};
use synrd_dp::{gaussian_mechanism, gaussian_sigma};
use synrd_pgm::{FittedModel, NoisyMeasurement};

/// Count the marginal of `attrs` through the fit's [`MarginalEngine`] (a
/// cache hit when a selection loop already scored the set), add ρ-zCDP
/// Gaussian noise (L2 sensitivity 1 for a disjoint histogram) to a copy of
/// the true counts, and package it for PGM estimation.
pub(crate) fn measure_gaussian(
    engine: &mut MarginalEngine<'_>,
    attrs: &[usize],
    rho: f64,
    rng: &mut StdRng,
) -> Result<NoisyMeasurement> {
    let marginal = engine.count(attrs)?;
    let mut values = marginal.counts().to_vec();
    let sigma = gaussian_mechanism(&mut values, 1.0, rho, rng)?;
    Ok(NoisyMeasurement {
        attrs: attrs.to_vec(),
        values,
        sigma,
    })
}

/// The σ a Gaussian measurement at budget ρ would carry (for planning).
pub(crate) fn planned_sigma(rho: f64) -> f64 {
    gaussian_sigma(1.0, rho).unwrap_or(f64::INFINITY)
}

/// Assemble a dataset from sampled columns over a cloned domain.
pub(crate) fn dataset_from_columns(domain: &Domain, columns: Vec<Vec<u32>>) -> Result<Dataset> {
    Ok(Dataset::new(domain.clone(), columns)?)
}

/// Export helper shared by the three PGM-backed synthesizers.
pub(crate) fn pgm_state(fitted: &Option<(Domain, FittedModel)>) -> Option<FittedState> {
    fitted.as_ref().map(|(domain, model)| FittedState::Pgm {
        domain: domain.clone(),
        model: model.clone(),
    })
}

/// Restore helper shared by the three PGM-backed synthesizers: accept only
/// the [`FittedState::Pgm`] variant and require the model's junction tree
/// to live over exactly the declared domain.
pub(crate) fn restore_pgm(name: &'static str, state: FittedState) -> Result<(Domain, FittedModel)> {
    match state {
        FittedState::Pgm { domain, model } => {
            if model.tree().domain_shape() != domain.shape().as_slice() {
                return Err(SynthError::StateMismatch {
                    reason: format!(
                        "{name}: junction tree over shape {:?} does not match domain shape {:?}",
                        model.tree().domain_shape(),
                        domain.shape()
                    ),
                });
            }
            Ok((domain, model))
        }
        other => Err(SynthError::StateMismatch {
            reason: format!("{name}: expected pgm state, got {}", other.variant()),
        }),
    }
}

/// Guard on the total domain size, modeling the scalability ceiling of the
/// reference implementations (the paper's 6-hour crosshatch cells).
pub(crate) fn check_domain_limit(domain: &Domain, limit: f64, name: &str) -> Result<()> {
    let size = domain.size();
    if size > limit {
        return Err(crate::error::SynthError::Infeasible {
            reason: format!(
                "{name}: domain size {size:.2e} exceeds the tractable limit {limit:.0e}"
            ),
        });
    }
    Ok(())
}
