//! MST (McKenna, Miklau & Sheldon 2021): the NIST-winning marginal-based
//! synthesizer.
//!
//! Three phases, each receiving ⅓ of the zCDP budget:
//!
//! 1. measure all 1-way marginals with the Gaussian mechanism;
//! 2. privately select a maximum spanning tree over attributes, where each
//!    Kruskal acceptance is an exponential-mechanism draw over the remaining
//!    cross-component edges, scored by the L1 gap between the true pair
//!    counts and the independent approximation implied by phase 1;
//! 3. measure the 2-way marginals on the selected tree edges, then fit a
//!    Private-PGM model and sample.

use crate::common::{
    check_domain_limit, dataset_from_columns, measure_gaussian, pgm_state, restore_pgm,
};
use crate::error::{Result, SynthError};
use crate::scoring::{map_scores, mst_edge_score, parallel_scoring};
use crate::workload::all_pairs;
use crate::{FitContext, FittedState, Synthesizer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use synrd_data::{Dataset, Domain, Marginal, MarginalEngine};
use synrd_dp::{derive_seed, exponential_epsilon, exponential_mechanism, Accountant, Privacy};
use synrd_pgm::{estimate_with, CalibrationWorkspace, EstimationOptions, FittedModel, UnionFind};

/// Configuration for [`Mst`].
#[derive(Debug, Clone, Copy)]
pub struct MstOptions {
    /// Mirror-descent iterations for the final PGM fit.
    pub estimation_iterations: usize,
    /// Maximum clique cells in the junction tree.
    pub cell_limit: usize,
    /// Largest domain size the fit will attempt (Figure 3 feasibility model).
    pub domain_limit: f64,
}

impl Default for MstOptions {
    fn default() -> Self {
        MstOptions {
            estimation_iterations: 150,
            cell_limit: 1 << 21,
            domain_limit: 1e25,
        }
    }
}

/// The MST synthesizer.
#[derive(Debug, Clone, Default)]
pub struct Mst {
    options: MstOptions,
    fitted: Option<(Domain, FittedModel)>,
}

impl Mst {
    /// MST with custom options.
    pub fn with_options(options: MstOptions) -> Mst {
        Mst {
            options,
            fitted: None,
        }
    }

    /// The selected tree edges (available after fit, for diagnostics).
    pub fn model(&self) -> Option<&FittedModel> {
        self.fitted.as_ref().map(|(_, m)| m)
    }
}

impl Synthesizer for Mst {
    fn name(&self) -> &'static str {
        "MST"
    }

    fn fit_with(
        &mut self,
        data: &Dataset,
        privacy: Privacy,
        seed: u64,
        ctx: FitContext,
    ) -> Result<()> {
        check_domain_limit(data.domain(), self.options.domain_limit, "MST")?;
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, "mst-fit"));
        let mut accountant = Accountant::new(privacy);
        let total = accountant.total();
        let d = data.n_attrs();

        // One marginal engine per fit: phase 2 counts all O(d²) pairwise
        // joints in fused sweeps, and phase 3's tree-edge measurements are
        // then pure cache hits.
        let mut engine = MarginalEngine::new(data);

        // Phase 1: all 1-way marginals at rho/3.
        let rho_one = total / 3.0 / d as f64;
        let mut measurements = Vec::with_capacity(2 * d);
        let mut one_way_probs: Vec<Vec<f64>> = Vec::with_capacity(d);
        for a in 0..d {
            accountant.spend(rho_one)?;
            let m = measure_gaussian(&mut engine, &[a], rho_one, &mut rng)?;
            let marg = Marginal::from_counts(
                vec![a],
                vec![data.domain().cardinality(a)?],
                m.values.clone(),
            )?;
            one_way_probs.push(marg.normalized());
            measurements.push(m);
        }

        // Phase 2: private maximum spanning tree (rho/3 across d-1 picks).
        // All pairwise joints are counted in one fused sweep over the data.
        let n = data.n_rows() as f64;
        let pair_sets: Vec<Vec<usize>> = all_pairs(data.domain())
            .into_iter()
            .map(|q| q.attrs)
            .collect();
        engine.prefetch(&pair_sets)?;
        // L1 gap between true pair counts and the independent approximation
        // from the (noisy, already-paid-for) 1-ways — pure reads of the
        // prefetched joints, scored in parallel with the reduction order
        // pinned to edge order (bit-identical to the sequential loop).
        let edges: Vec<(usize, usize)> = (0..d)
            .flat_map(|a| ((a + 1)..d).map(move |b| (a, b)))
            .collect();
        let engine_ref = &engine;
        let one_way_ref = &one_way_probs;
        let scores = map_scores(&edges, parallel_scoring(edges.len()), |&(a, b)| {
            let recounted;
            let joint = match engine_ref.peek(&[a, b]) {
                Some(m) => m,
                None => {
                    // Evicted under a tight cache budget: recount outside
                    // the engine (same kernel, same counts).
                    recounted = Marginal::count(engine_ref.dataset(), &[a, b])?;
                    &recounted
                }
            };
            Ok(mst_edge_score(joint, &one_way_ref[a], &one_way_ref[b], n))
        })?;
        let edge_scores: Vec<(usize, usize, f64)> = edges
            .iter()
            .zip(scores)
            .map(|(&(a, b), s)| (a, b, s))
            .collect();
        let picks = d.saturating_sub(1).max(1);
        let rho_select = total / 3.0 / picks as f64;
        let eps_edge = exponential_epsilon(rho_select)?;
        let mut uf = UnionFind::new(d);
        let mut tree_edges: Vec<(usize, usize)> = Vec::with_capacity(picks);
        for _ in 0..picks {
            let candidates: Vec<usize> = (0..edge_scores.len())
                .filter(|&i| {
                    let (a, b, _) = edge_scores[i];
                    uf.find(a) != uf.find(b)
                })
                .collect();
            if candidates.is_empty() {
                break;
            }
            accountant.spend(rho_select)?;
            let scores: Vec<f64> = candidates.iter().map(|&i| edge_scores[i].2).collect();
            // Sensitivity 2: one record moves at most 2 units of L1 count gap.
            let chosen = exponential_mechanism(&scores, 2.0, eps_edge, &mut rng)?;
            let (a, b, _) = edge_scores[candidates[chosen]];
            uf.union(a, b);
            tree_edges.push((a, b));
        }

        // Phase 3: 2-way marginals on the tree edges with the remainder.
        let rho_pair = accountant.remaining() / tree_edges.len().max(1) as f64;
        for &(a, b) in &tree_edges {
            accountant.spend(rho_pair)?;
            measurements.push(measure_gaussian(&mut engine, &[a, b], rho_pair, &mut rng)?);
        }

        let mut ws = CalibrationWorkspace::new();
        let model = estimate_with(
            &data.domain().shape(),
            &measurements,
            EstimationOptions {
                iterations: self.options.estimation_iterations,
                initial_step: 1.0,
                cell_limit: self.options.cell_limit,
                fit_threads: ctx.threads.max(1),
            },
            &mut ws,
        )?;
        self.fitted = Some((data.domain().clone(), model));
        Ok(())
    }

    fn sample(&self, n: usize, seed: u64) -> Result<Dataset> {
        let (domain, model) = self.fitted.as_ref().ok_or(SynthError::NotFitted)?;
        // Built once per fitted model, reused across bootstrap draws.
        let sampler = model.sampler()?;
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, "mst-sample"));
        let columns = sampler.sample_columns(n, &mut rng);
        dataset_from_columns(domain, columns)
    }

    fn fitted_state(&self) -> Option<FittedState> {
        pgm_state(&self.fitted)
    }

    fn restore_state(&mut self, state: FittedState) -> Result<()> {
        self.fitted = Some(restore_pgm("MST", state)?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use synrd_data::Attribute;

    fn chain_data(n: usize) -> Dataset {
        // 0 -> 1 -> 2 chain with strong links; MST should recover the chain.
        let domain = Domain::new(vec![
            Attribute::binary("a"),
            Attribute::binary("b"),
            Attribute::binary("c"),
        ]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut ds = Dataset::with_capacity(domain, n);
        for _ in 0..n {
            let a = u32::from(rng.gen::<f64>() < 0.5);
            let b = if rng.gen::<f64>() < 0.9 { a } else { 1 - a };
            let c = if rng.gen::<f64>() < 0.9 { b } else { 1 - b };
            ds.push_row(&[a, b, c]).unwrap();
        }
        ds
    }

    #[test]
    fn preserves_chain_correlations_at_moderate_eps() {
        let data = chain_data(6_000);
        let mut synth = Mst::default();
        synth
            .fit(&data, Privacy::approx(2.0, 1e-9).unwrap(), 5)
            .unwrap();
        let sample = synth.sample(6_000, 7).unwrap();
        let agree = |ds: &Dataset, x: usize, y: usize| {
            let cx = ds.decode_column(x).unwrap();
            let cy = ds.decode_column(y).unwrap();
            cx.iter().zip(&cy).filter(|(a, b)| a == b).count() as f64 / cx.len() as f64
        };
        // Direct edges near 0.9 agreement; transitive pair near 0.82.
        assert!(agree(&sample, 0, 1) > 0.8, "ab = {}", agree(&sample, 0, 1));
        assert!(agree(&sample, 1, 2) > 0.8, "bc = {}", agree(&sample, 1, 2));
        assert!(agree(&sample, 0, 2) > 0.72, "ac = {}", agree(&sample, 0, 2));
    }

    #[test]
    fn budget_overdraft_is_impossible() {
        // Even with a tiny budget the three-way split must never overdraft.
        let data = chain_data(500);
        let mut synth = Mst::default();
        synth
            .fit(&data, Privacy::approx(0.01, 1e-9).unwrap(), 5)
            .unwrap();
        assert!(synth.model().is_some());
    }

    #[test]
    fn domain_limit_respected() {
        let data = chain_data(100);
        let mut synth = Mst::with_options(MstOptions {
            domain_limit: 4.0, // below the 8-cell domain
            ..MstOptions::default()
        });
        assert!(matches!(
            synth.fit(&data, Privacy::approx(1.0, 1e-9).unwrap(), 5),
            Err(SynthError::Infeasible { .. })
        ));
    }
}
