//! PrivMRF (Cai, Lei, Wei & Xiao 2021): Markov-random-field synthesis with
//! principled marginal selection.
//!
//! PrivMRF's contribution is *which* marginals to measure: they must be
//! low-dimensional, keep the graph of marginals small, and keep the junction
//! tree's domain from blowing up. We implement that selection as a greedy
//! loop over candidate 2- and 3-way marginals ranked by mutual-information
//! scores, accepting a candidate only if the resulting junction tree stays
//! under the cell limit — then measure everything with the Gaussian
//! mechanism and fit Private-PGM.

use crate::common::{
    check_domain_limit, dataset_from_columns, measure_gaussian, pgm_state, restore_pgm,
};
use crate::error::{Result, SynthError};
use crate::{FitContext, FittedState, Synthesizer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use synrd_data::{Dataset, Domain, MarginalEngine};
use synrd_dp::{derive_seed, exponential_epsilon, exponential_mechanism, Accountant, Privacy};
use synrd_pgm::{
    estimate_with, CalibrationWorkspace, EstimationOptions, FittedModel, JunctionTree,
};

/// Configuration for [`PrivMrf`].
#[derive(Debug, Clone, Copy)]
pub struct PrivMrfOptions {
    /// Maximum number of selected marginals (beyond the 1-ways).
    pub max_marginals: usize,
    /// Maximum cells per candidate marginal ("low-dimensional" criterion).
    pub marginal_cell_limit: usize,
    /// Maximum clique cells in the junction tree ("no domain blowup").
    pub cell_limit: usize,
    /// Mirror-descent iterations for the final fit.
    pub estimation_iterations: usize,
    /// Largest domain size the fit will attempt.
    pub domain_limit: f64,
}

impl Default for PrivMrfOptions {
    fn default() -> Self {
        PrivMrfOptions {
            max_marginals: 24,
            marginal_cell_limit: 1 << 16,
            cell_limit: 1 << 21,
            estimation_iterations: 150,
            domain_limit: 1e25,
        }
    }
}

/// The PrivMRF synthesizer.
#[derive(Debug, Clone, Default)]
pub struct PrivMrf {
    options: PrivMrfOptions,
    fitted: Option<(Domain, FittedModel)>,
}

impl PrivMrf {
    /// PrivMRF with custom options.
    pub fn with_options(options: PrivMrfOptions) -> PrivMrf {
        PrivMrf {
            options,
            fitted: None,
        }
    }
}

impl Synthesizer for PrivMrf {
    fn name(&self) -> &'static str {
        "PrivMRF"
    }

    fn fit_with(
        &mut self,
        data: &Dataset,
        privacy: Privacy,
        seed: u64,
        ctx: FitContext,
    ) -> Result<()> {
        check_domain_limit(data.domain(), self.options.domain_limit, "PrivMRF")?;
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, "privmrf-fit"));
        let mut accountant = Accountant::new(privacy);
        let total = accountant.total();
        let d = data.n_attrs();
        let shape = data.domain().shape();
        let n = data.n_rows() as f64;

        // One marginal engine per fit: the MI scoring below reuses every
        // pair joint it counts (the triple scores revisit pairs the pair
        // loop already counted).
        let mut engine = MarginalEngine::new(data);

        // 1-way marginals with 15% of the budget.
        let rho_one = 0.15 * total / d as f64;
        let mut measurements = Vec::with_capacity(d + self.options.max_marginals);
        for a in 0..d {
            accountant.spend(rho_one)?;
            measurements.push(measure_gaussian(&mut engine, &[a], rho_one, &mut rng)?);
        }

        // Candidate pool: all pairs under the marginal cell limit, plus the
        // triples formed by the strongest pair and a third attribute. All
        // eligible pair joints are counted in one fused sweep.
        let mut eligible_pairs: Vec<Vec<usize>> = Vec::new();
        for a in 0..d {
            for b in (a + 1)..d {
                if data.domain().cells(&[a, b])? > self.options.marginal_cell_limit as u128 {
                    continue;
                }
                eligible_pairs.push(vec![a, b]);
            }
        }
        engine.prefetch(&eligible_pairs)?;
        let mut candidates: Vec<(Vec<usize>, f64)> = Vec::new();
        let mut best_pair: Option<(usize, usize, f64)> = None;
        for pair in &eligible_pairs {
            let (a, b) = (pair[0], pair[1]);
            let mi = engine.mutual_information(a, b)?;
            candidates.push((vec![a, b], n * mi));
            if best_pair.is_none_or(|(_, _, m)| mi > m) {
                best_pair = Some((a, b, mi));
            }
        }
        if let Some((a, b, _)) = best_pair {
            // The triple scores look up joints keyed `[a, c]` / `[b, c]` in
            // call order; the cache key is order-sensitive, so prefetch
            // exactly those keys in one fused sweep (where `c < a` these are
            // new tables, not the `[min, max]` pairs counted above).
            let mut thirds: Vec<usize> = Vec::new();
            let mut mi_pairs: Vec<Vec<usize>> = Vec::new();
            for c in 0..d {
                if c == a || c == b {
                    continue;
                }
                let mut attrs = vec![a, b, c];
                attrs.sort_unstable();
                if data.domain().cells(&attrs)? > self.options.marginal_cell_limit as u128 {
                    continue;
                }
                thirds.push(c);
                mi_pairs.push(vec![a, c]);
                mi_pairs.push(vec![b, c]);
            }
            engine.prefetch(&mi_pairs)?;
            for &c in &thirds {
                let mut attrs = vec![a, b, c];
                attrs.sort_unstable();
                let score =
                    n * (engine.mutual_information(a, c)? + engine.mutual_information(b, c)?);
                candidates.push((attrs, score));
            }
        }
        if candidates.is_empty() {
            return Err(SynthError::Infeasible {
                reason: "PrivMRF: no marginal fits the low-dimensionality criterion".to_string(),
            });
        }

        // Greedy private selection: 15% of the budget over the picks,
        // 70% over the measurements.
        let picks = self.options.max_marginals.min(candidates.len());
        let rho_pick = 0.15 * total / picks as f64;
        let rho_measure = 0.70 * total / picks as f64;
        let eps_pick = exponential_epsilon(rho_pick)?;
        let sensitivity = n.max(2.0).ln() + 1.0; // MI-score sensitivity proxy
        let mut chosen: Vec<Vec<usize>> = Vec::with_capacity(picks);
        for _ in 0..picks {
            // Filter: distinct from chosen, junction tree stays tractable.
            let viable: Vec<usize> = (0..candidates.len())
                .filter(|&i| {
                    let attrs = &candidates[i].0;
                    if chosen.iter().any(|c| c == attrs) {
                        return false;
                    }
                    let mut sets = chosen.clone();
                    sets.push(attrs.clone());
                    JunctionTree::build(&shape, &sets, self.options.cell_limit).is_ok()
                })
                .collect();
            if viable.is_empty() {
                break;
            }
            accountant.spend(rho_pick)?;
            let scores: Vec<f64> = viable.iter().map(|&i| candidates[i].1).collect();
            let pick = exponential_mechanism(&scores, sensitivity, eps_pick, &mut rng)?;
            let attrs = candidates[viable[pick]].0.clone();
            accountant.spend(rho_measure)?;
            measurements.push(measure_gaussian(
                &mut engine,
                &attrs,
                rho_measure,
                &mut rng,
            )?);
            chosen.push(attrs);
        }

        let mut ws = CalibrationWorkspace::new();
        let model = estimate_with(
            &shape,
            &measurements,
            EstimationOptions {
                iterations: self.options.estimation_iterations,
                initial_step: 1.0,
                cell_limit: self.options.cell_limit,
                fit_threads: ctx.threads.max(1),
            },
            &mut ws,
        )?;
        self.fitted = Some((data.domain().clone(), model));
        Ok(())
    }

    fn sample(&self, n: usize, seed: u64) -> Result<Dataset> {
        let (domain, model) = self.fitted.as_ref().ok_or(SynthError::NotFitted)?;
        // Built once per fitted model, reused across bootstrap draws.
        let sampler = model.sampler()?;
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, "privmrf-sample"));
        let columns = sampler.sample_columns(n, &mut rng);
        dataset_from_columns(domain, columns)
    }

    fn fitted_state(&self) -> Option<FittedState> {
        pgm_state(&self.fitted)
    }

    fn restore_state(&mut self, state: FittedState) -> Result<()> {
        self.fitted = Some(restore_pgm("PrivMRF", state)?);
        Ok(())
    }
}
