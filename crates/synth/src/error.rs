//! Error taxonomy for the synthesizer crate.

use std::fmt;
use synrd_data::DataError;
use synrd_dp::DpError;
use synrd_pgm::PgmError;

/// Errors surfaced by synthesizer fitting and sampling.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthError {
    /// `sample` called before a successful `fit`.
    NotFitted,
    /// The synthesizer declined the dataset (domain too large / fit budget
    /// exceeded) — this models the paper's "unable to fit within 6 hours"
    /// crosshatch cells in Figure 3.
    Infeasible { reason: String },
    /// A restored fitted state did not fit the synthesizer: wrong variant,
    /// a domain/shape inconsistency, or an internally corrupt payload.
    StateMismatch { reason: String },
    /// Underlying data error.
    Data(DataError),
    /// Underlying privacy-accounting error.
    Dp(DpError),
    /// Underlying graphical-model error.
    Pgm(PgmError),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::NotFitted => write!(f, "synthesizer not fitted"),
            SynthError::Infeasible { reason } => write!(f, "fit infeasible: {reason}"),
            SynthError::StateMismatch { reason } => {
                write!(f, "fitted state mismatch: {reason}")
            }
            SynthError::Data(e) => write!(f, "data error: {e}"),
            SynthError::Dp(e) => write!(f, "dp error: {e}"),
            SynthError::Pgm(e) => write!(f, "pgm error: {e}"),
        }
    }
}

impl std::error::Error for SynthError {}

impl From<DataError> for SynthError {
    fn from(e: DataError) -> Self {
        SynthError::Data(e)
    }
}

impl From<DpError> for SynthError {
    fn from(e: DpError) -> Self {
        SynthError::Dp(e)
    }
}

impl From<PgmError> for SynthError {
    fn from(e: PgmError) -> Self {
        // An oversized clique is a feasibility condition, not a bug: it is
        // exactly how the PGM-based methods fail on large-domain datasets.
        match e {
            PgmError::CliqueTooLarge { cells, limit } => SynthError::Infeasible {
                reason: format!("junction-tree clique with {cells} cells exceeds limit {limit}"),
            },
            other => SynthError::Pgm(other),
        }
    }
}

/// Convenience alias used throughout the synth crate.
pub type Result<T> = std::result::Result<T, SynthError>;
