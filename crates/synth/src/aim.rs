//! AIM (McKenna, Mullins, Sheldon & Miklau 2022): adaptive, iterative,
//! workload-aware synthesis under ρ-zCDP.
//!
//! Each round spends a slice of the budget to (a) select — via the
//! exponential mechanism — the workload marginal whose measurement is
//! expected to improve the model the most, net of the noise it would add,
//! and (b) measure it with the Gaussian mechanism, then refit the
//! Private-PGM model. Candidates that would blow up the junction tree are
//! excluded, which is what limits AIM on wide-domain data.

use crate::common::{
    check_domain_limit, dataset_from_columns, measure_gaussian, pgm_state, planned_sigma,
    restore_pgm,
};
use crate::error::{Result, SynthError};
use crate::scoring::{aim_candidate_score, map_scores, parallel_scoring};
use crate::workload::{all_pairs_under, WorkloadQuery};
use crate::{FitContext, FittedState, Synthesizer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use synrd_data::{Dataset, Domain, Marginal, MarginalEngine};
use synrd_dp::{derive_seed, exponential_epsilon, exponential_mechanism, Accountant, Privacy};
use synrd_pgm::{
    estimate_with, CalibrationWorkspace, EstimationOptions, FittedModel, JunctionTree,
};

/// Configuration for [`Aim`].
#[derive(Debug, Clone, Copy)]
pub struct AimOptions {
    /// Number of select-measure rounds.
    pub rounds: usize,
    /// Mirror-descent iterations per intermediate refit.
    pub refit_iterations: usize,
    /// Mirror-descent iterations for the final fit.
    pub final_iterations: usize,
    /// Maximum clique cells in the junction tree.
    pub cell_limit: usize,
    /// Largest domain size the fit will attempt.
    pub domain_limit: f64,
}

impl Default for AimOptions {
    fn default() -> Self {
        AimOptions {
            rounds: 12,
            refit_iterations: 40,
            final_iterations: 150,
            cell_limit: 1 << 21,
            domain_limit: 1e25,
        }
    }
}

/// The AIM synthesizer.
#[derive(Debug, Clone, Default)]
pub struct Aim {
    options: AimOptions,
    fitted: Option<(Domain, FittedModel)>,
}

impl Aim {
    /// AIM with custom options.
    pub fn with_options(options: AimOptions) -> Aim {
        Aim {
            options,
            fitted: None,
        }
    }
}

impl Synthesizer for Aim {
    fn name(&self) -> &'static str {
        "AIM"
    }

    fn fit_with(
        &mut self,
        data: &Dataset,
        privacy: Privacy,
        seed: u64,
        ctx: FitContext,
    ) -> Result<()> {
        check_domain_limit(data.domain(), self.options.domain_limit, "AIM")?;
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, "aim-fit"));
        let mut accountant = Accountant::new(privacy);
        let total = accountant.total();
        let d = data.n_attrs();
        let shape = data.domain().shape();

        // One marginal engine per fit: the true data never changes during a
        // fit, so every candidate the round loop scores is counted at most
        // once and served from the cache thereafter.
        let mut engine = MarginalEngine::new(data);

        // Initialization: all 1-way marginals with 10% of the budget.
        let rho_init = 0.10 * total / d as f64;
        let mut measurements = Vec::with_capacity(d + self.options.rounds);
        for a in 0..d {
            accountant.spend(rho_init)?;
            measurements.push(measure_gaussian(&mut engine, &[a], rho_init, &mut rng)?);
        }
        let fit_threads = ctx.threads.max(1);
        let est_opts = move |iters: usize, cell_limit: usize| EstimationOptions {
            iterations: iters,
            initial_step: 1.0,
            cell_limit,
            fit_threads,
        };
        // One scratch arena across every refit: AIM re-estimates after each
        // round, and the workspace re-plans only when the tree topology
        // actually changes (the final fit reuses the last round's plans).
        let mut ws = CalibrationWorkspace::new();
        let mut model = estimate_with(
            &shape,
            &measurements,
            est_opts(self.options.refit_iterations, self.options.cell_limit),
            &mut ws,
        )?;

        // Workload: all pairs that fit the cell limit.
        let workload: Vec<WorkloadQuery> = all_pairs_under(data.domain(), self.options.cell_limit);
        if workload.is_empty() {
            return Err(SynthError::Infeasible {
                reason: "AIM: no workload query fits the clique cell limit".to_string(),
            });
        }

        // Rounds: half of each round's slice selects, half measures.
        let rounds = self.options.rounds.min(workload.len());
        // Round 0 scores every workload query, so warm the cache for the
        // whole pool in one fused sweep over the data; later rounds are pure
        // cache hits.
        if rounds > 0 {
            let sets: Vec<Vec<usize>> = workload.iter().map(|q| q.attrs.clone()).collect();
            engine.prefetch(&sets)?;
        }
        let mut chosen_sets: Vec<Vec<usize>> = Vec::with_capacity(rounds + 1);
        // Candidates proven intractable are never re-probed: adding a chosen
        // set only adds edges to the moral graph, so the minimum-size
        // triangulation only grows as the fit proceeds. (The min-fill
        // *heuristic* is not strictly monotone, so in principle a doomed
        // candidate could luck into a smaller tree after more sets are
        // chosen; we accept that cliff-edge case to avoid rebuilding the
        // tree for every doomed candidate every round.)
        let mut infeasible = vec![false; workload.len()];
        for round in 0..rounds {
            let remaining = accountant.remaining();
            if remaining <= 1e-12 {
                break;
            }
            let rho_round = remaining / (rounds - round) as f64;
            let rho_select = rho_round / 2.0;
            let rho_measure = rho_round / 2.0;
            let sigma_next = planned_sigma(rho_measure);

            // Candidate gathering (sequential: the junction-tree probe
            // mutates the `chosen_sets` scratch). The round-0 prefetch
            // already counted every workload marginal, so no per-candidate
            // count is needed here — under a cache budget too small for
            // the workload, the scoring fallback recounts exactly once per
            // round instead of twice.
            let mut cand: Vec<&WorkloadQuery> = Vec::new();
            for (qi, q) in workload.iter().enumerate() {
                if infeasible[qi] || chosen_sets.iter().any(|s| s == &q.attrs) {
                    continue;
                }
                // Junction-tree guard: adding this set must stay tractable.
                // `chosen_sets` doubles as the scratch — push the candidate,
                // probe, pop — instead of cloning the whole set list per
                // candidate per round.
                chosen_sets.push(q.attrs.clone());
                let feasible =
                    JunctionTree::build(&shape, &chosen_sets, self.options.cell_limit).is_ok();
                chosen_sets.pop();
                if !feasible {
                    infeasible[qi] = true;
                    continue;
                }
                cand.push(q);
            }
            if cand.is_empty() {
                break;
            }
            // Candidate scores: workload error of the current model minus
            // the expected noise cost of measuring (AIM's utility
            // function). Pure reads of the cached marginals and the fitted
            // model, fanned out with a pinned reduction order — parallel
            // scores are bit-identical to sequential ones.
            let engine_ref = &engine;
            let scores = map_scores(&cand, parallel_scoring(cand.len()), |q| {
                let recounted;
                let true_counts = match engine_ref.peek(&q.attrs) {
                    Some(m) => m,
                    None => {
                        // Evicted under a tight cache budget: recount
                        // outside the engine (same kernel, same counts).
                        recounted = Marginal::count(engine_ref.dataset(), &q.attrs)?;
                        &recounted
                    }
                };
                let model_probs = model.marginal_or_independent(&q.attrs)?;
                Ok(aim_candidate_score(
                    true_counts,
                    &model_probs,
                    sigma_next,
                    q.weight,
                ))
            })?;
            accountant.spend(rho_select)?;
            let eps_select = exponential_epsilon(rho_select)?;
            // Sensitivity: one record shifts a pair's L1 error by ≤ 2.
            let pick = exponential_mechanism(&scores, 2.0, eps_select, &mut rng)?;
            let attrs = cand[pick].attrs.clone();

            accountant.spend(rho_measure)?;
            measurements.push(measure_gaussian(
                &mut engine,
                &attrs,
                rho_measure,
                &mut rng,
            )?);
            chosen_sets.push(attrs);
            model = estimate_with(
                &shape,
                &measurements,
                est_opts(self.options.refit_iterations, self.options.cell_limit),
                &mut ws,
            )?;
        }

        // Final, longer fit.
        let model = estimate_with(
            &shape,
            &measurements,
            est_opts(self.options.final_iterations, self.options.cell_limit),
            &mut ws,
        )?;
        self.fitted = Some((data.domain().clone(), model));
        Ok(())
    }

    fn sample(&self, n: usize, seed: u64) -> Result<Dataset> {
        let (domain, model) = self.fitted.as_ref().ok_or(SynthError::NotFitted)?;
        // The flattened sampling tables are built once per fitted model and
        // cached; every bootstrap draw after the first reuses them.
        let sampler = model.sampler()?;
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, "aim-sample"));
        let columns = sampler.sample_columns(n, &mut rng);
        dataset_from_columns(domain, columns)
    }

    fn fitted_state(&self) -> Option<FittedState> {
        pgm_state(&self.fitted)
    }

    fn restore_state(&mut self, state: FittedState) -> Result<()> {
        self.fitted = Some(restore_pgm("AIM", state)?);
        Ok(())
    }
}
