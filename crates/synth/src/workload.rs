//! Workload generation for the workload-aware synthesizers (AIM, GEM).
//!
//! The paper's setting: scientists pre-select ~10–60 variables of interest
//! and "relationships between any of the selected variables of interest are
//! permitted", so the workload is all attribute pairs, uniformly weighted
//! (§2, *Workload-aware synthesizers*).

use synrd_data::Domain;

/// One workload query: a marginal over an attribute set with a weight.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadQuery {
    /// Sorted attribute indices.
    pub attrs: Vec<usize>,
    /// Relative importance.
    pub weight: f64,
}

/// All pairs of attributes, uniformly weighted.
pub fn all_pairs(domain: &Domain) -> Vec<WorkloadQuery> {
    let d = domain.len();
    let mut out = Vec::with_capacity(d * d.saturating_sub(1) / 2);
    for a in 0..d {
        for b in (a + 1)..d {
            out.push(WorkloadQuery {
                attrs: vec![a, b],
                weight: 1.0,
            });
        }
    }
    out
}

/// All pairs, but only those whose marginal table fits under `cell_limit` —
/// the candidate filter the PGM-based methods need on wide-domain data.
pub fn all_pairs_under(domain: &Domain, cell_limit: usize) -> Vec<WorkloadQuery> {
    all_pairs(domain)
        .into_iter()
        .filter(|q| {
            domain
                .cells(&q.attrs)
                .map(|c| c <= cell_limit as u128)
                .unwrap_or(false)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use synrd_data::Attribute;

    #[test]
    fn pair_count_is_binomial() {
        let domain = Domain::new(vec![
            Attribute::binary("a"),
            Attribute::binary("b"),
            Attribute::binary("c"),
            Attribute::ordinal("d", 5),
        ]);
        let w = all_pairs(&domain);
        assert_eq!(w.len(), 6);
        assert!(w.iter().all(|q| q.attrs.len() == 2 && q.weight == 1.0));
    }

    #[test]
    fn cell_limit_filters() {
        let domain = Domain::new(vec![
            Attribute::ordinal("big1", 1000),
            Attribute::ordinal("big2", 1000),
            Attribute::binary("small"),
        ]);
        let w = all_pairs_under(&domain, 5000);
        // big1×big2 = 1e6 cells excluded; the two big×small pairs stay.
        assert_eq!(w.len(), 2);
    }
}
