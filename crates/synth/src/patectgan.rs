//! PATECTGAN (Rosenblatt et al. 2020): a conditional tabular GAN whose
//! discriminator is privatized with PATE.
//!
//! **Simulation note** (DESIGN.md §3): the reference implementation is a
//! full CTGAN on GPU with data-dependent PATE accounting. We reproduce its
//! architecture class at laptop scale: an MLP generator emitting one softmax
//! block per attribute, an ensemble of logistic *teacher* discriminators on
//! disjoint data partitions, and an MLP *student* discriminator trained only
//! on generator samples labeled by Laplace-noised teacher votes. A share of
//! the budget additionally buys noisy 1-way histograms used as a
//! moment-matching loss (the role CTGAN's conditional sampling plays in the
//! original). The properties the benchmark depends on survive the
//! simulation: deep-learning based, ε-insensitive, weaker than PGM methods
//! on low-dimensional data, able to fit arbitrarily large domains.

use crate::common::{dataset_from_columns, measure_gaussian};
use crate::error::{Result, SynthError};
use crate::{FittedState, Synthesizer};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use synrd_data::{Dataset, Domain, MarginalEngine};
use synrd_dp::{derive_seed, standard_laplace, standard_normal, Accountant, Privacy};
use synrd_ml::{Activation, Mlp};
use synrd_pgm::{assemble_chunks, parallel_rows, record_sampling_pass};

/// Configuration for [`PateCtgan`].
#[derive(Debug, Clone, Copy)]
pub struct PateCtganOptions {
    /// Number of PATE teachers.
    pub teachers: usize,
    /// Adversarial training rounds.
    pub rounds: usize,
    /// Generator/student updates per round.
    pub batch: usize,
    /// Latent dimension.
    pub z_dim: usize,
    /// Hidden width for generator and student.
    pub hidden: usize,
}

impl Default for PateCtganOptions {
    fn default() -> Self {
        PateCtganOptions {
            teachers: 8,
            rounds: 15,
            batch: 48,
            z_dim: 16,
            hidden: 64,
        }
    }
}

/// The PATECTGAN synthesizer.
#[derive(Default)]
pub struct PateCtgan {
    options: PateCtganOptions,
    fitted: Option<Fitted>,
}

struct Fitted {
    domain: Domain,
    generator: Mlp,
    blocks: Vec<(usize, usize)>, // (offset, cardinality) per attribute
    z_dim: usize,
}

impl PateCtgan {
    /// PATECTGAN with custom options.
    pub fn with_options(options: PateCtganOptions) -> PateCtgan {
        PateCtgan {
            options,
            fitted: None,
        }
    }
}

/// One-hot encode a row of codes into `out` given attribute blocks.
fn one_hot(codes: &[u32], blocks: &[(usize, usize)], out: &mut [f64]) {
    out.iter_mut().for_each(|v| *v = 0.0);
    for (a, &(offset, _)) in blocks.iter().enumerate() {
        out[offset + codes[a] as usize] = 1.0;
    }
}

/// Per-block softmax of generator logits (in place, returning probabilities).
fn block_softmax(logits: &[f64], blocks: &[(usize, usize)]) -> Vec<f64> {
    let mut out = vec![0.0f64; logits.len()];
    for &(offset, card) in blocks {
        let slice = &logits[offset..offset + card];
        let max = slice.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut total = 0.0;
        for (i, &l) in slice.iter().enumerate() {
            let e = (l - max).exp();
            out[offset + i] = e;
            total += e;
        }
        for v in &mut out[offset..offset + card] {
            *v /= total;
        }
    }
    out
}

impl Synthesizer for PateCtgan {
    fn name(&self) -> &'static str {
        "PATECTGAN"
    }

    fn fit(&mut self, data: &Dataset, privacy: Privacy, seed: u64) -> Result<()> {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, "patectgan-fit"));
        let mut accountant = Accountant::new(privacy);
        let total = accountant.total();
        let d = data.n_attrs();
        let n = data.n_rows();
        if n < self.options.teachers * 2 {
            return Err(SynthError::Infeasible {
                reason: "PATECTGAN: too few rows to partition across teachers".to_string(),
            });
        }

        // Attribute one-hot layout.
        let mut blocks = Vec::with_capacity(d);
        let mut offset = 0usize;
        for a in 0..d {
            let card = data.domain().cardinality(a)?;
            blocks.push((offset, card));
            offset += card;
        }
        let onehot_dim = offset;

        // 30% of budget: noisy 1-way histograms for the moment loss.
        let mut engine = MarginalEngine::new(data);
        let rho_one = 0.30 * total / d as f64;
        let mut moment_targets: Vec<Vec<f64>> = Vec::with_capacity(d);
        for a in 0..d {
            accountant.spend(rho_one)?;
            let m = measure_gaussian(&mut engine, &[a], rho_one, &mut rng)?;
            let clamped: Vec<f64> = m.values.iter().map(|&v| v.max(0.0)).collect();
            let total_mass: f64 = clamped.iter().sum::<f64>().max(1e-9);
            moment_targets.push(clamped.into_iter().map(|v| v / total_mass).collect());
        }

        // Remaining 70%: the PATE adversarial phase. Laplace vote noise at
        // scale 2/ε_round per aggregated round query (basic composition).
        let rho_pate = accountant.spend_all();
        let eps_pate = (2.0 * rho_pate).sqrt(); // zCDP -> pure-DP lower bound scale
        let eps_round = eps_pate / self.options.rounds as f64;
        let vote_scale = 2.0 / eps_round.max(1e-6);

        // Teacher partitions (disjoint).
        let mut perm: Vec<usize> = (0..n).collect();
        use rand::seq::SliceRandom;
        perm.shuffle(&mut rng);
        let per_teacher = n / self.options.teachers;

        // Teacher logistic weights over one-hot features.
        let mut teacher_w = vec![vec![0.0f64; onehot_dim + 1]; self.options.teachers];

        let mut generator = Mlp::new(
            &[self.options.z_dim, self.options.hidden, onehot_dim],
            Activation::Linear,
            &mut rng,
        );
        generator.learning_rate = 2e-3;
        let mut student = Mlp::new(
            &[onehot_dim, self.options.hidden, 1],
            Activation::Sigmoid,
            &mut rng,
        );
        student.learning_rate = 2e-3;

        // One-hot encodings of teacher rows, cached across epochs: teachers
        // redraw rows from their (fixed) partitions every round, so the
        // per-draw zero-fill + re-encode of the full one-hot buffer was
        // pure churn. Filled lazily, so memory is bounded by the rows
        // actually drawn (≤ rounds × batch × teachers), not by n.
        let mut onehot_cache: Vec<Option<Box<[f64]>>> = vec![None; n];
        let mut codes = vec![0u32; d];
        for _ in 0..self.options.rounds {
            for _ in 0..self.options.batch {
                // --- Generator sample (soft probabilities). ---
                let z: Vec<f64> = (0..self.options.z_dim)
                    .map(|_| standard_normal(&mut rng))
                    .collect();
                let gen_cache = generator.forward(&z);
                let logits = gen_cache.output().to_vec();
                let soft = block_softmax(&logits, &blocks);

                // --- Teachers: SGD step on (their real row = 1, fake = 0). ---
                for (t, w) in teacher_w.iter_mut().enumerate() {
                    let row_idx = perm[t * per_teacher + rng.gen_range(0..per_teacher)];
                    if onehot_cache[row_idx].is_none() {
                        let row = data.row(row_idx);
                        for (a, c) in codes.iter_mut().enumerate() {
                            *c = row.get(a);
                        }
                        let mut enc = vec![0.0f64; onehot_dim];
                        one_hot(&codes, &blocks, &mut enc);
                        onehot_cache[row_idx] = Some(enc.into_boxed_slice());
                    }
                    let real_onehot = onehot_cache[row_idx].as_deref().expect("just filled");
                    logistic_sgd_step(w, real_onehot, 1.0, 0.05);
                    logistic_sgd_step(w, &soft, 0.0, 0.05);
                }

                // --- PATE vote on the fake sample with Laplace noise. ---
                let votes_fake: f64 = teacher_w
                    .iter()
                    .map(|w| f64::from(logistic_score(w, &soft) < 0.5))
                    .sum();
                let noisy = votes_fake + vote_scale * standard_laplace(&mut rng);
                let label_fake = if noisy > self.options.teachers as f64 / 2.0 {
                    0.0 // majority says fake
                } else {
                    1.0
                };

                // --- Student learns the noisy label on the fake sample. ---
                student.train_bce(&soft, label_fake);

                // --- Generator: fool the student + match noisy moments. ---
                let student_cache = student.forward(&soft);
                let y = student_cache.output()[0].clamp(1e-6, 1.0 - 1e-6);
                // d(-ln y)/dy = -1/y.
                let dl_dy = [(-1.0 / y)];
                let mut dl_dsoft = student.input_gradient(&student_cache, &dl_dy);
                // Moment-matching loss: ||soft_block - target||² per attr.
                for (a, &(off, card)) in blocks.iter().enumerate() {
                    for v in 0..card {
                        dl_dsoft[off + v] += 2.0 * (soft[off + v] - moment_targets[a][v]);
                    }
                }
                // Chain through each block softmax into generator logits.
                let mut dl_dlogits = vec![0.0f64; onehot_dim];
                for &(off, card) in &blocks {
                    let p = &soft[off..off + card];
                    let g = &dl_dsoft[off..off + card];
                    let dot: f64 = p.iter().zip(g).map(|(x, y)| x * y).sum();
                    for v in 0..card {
                        dl_dlogits[off + v] = p[v] * (g[v] - dot);
                    }
                }
                generator.backward_apply(&gen_cache, &dl_dlogits);
            }
        }

        self.fitted = Some(Fitted {
            domain: data.domain().clone(),
            generator,
            blocks,
            z_dim: self.options.z_dim,
        });
        Ok(())
    }

    fn sample(&self, n: usize, seed: u64) -> Result<Dataset> {
        let fitted = self.fitted.as_ref().ok_or(SynthError::NotFitted)?;
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, "patectgan-sample"));
        let d = fitted.domain.len();
        let zd = fitted.z_dim;
        // Pre-draw each row's latent vector and per-attribute uniforms in
        // the exact row-major order the per-row sampler consumed them
        // (`standard_normal`'s rare rejection retries stay inside the
        // sequential pre-draw, so the stream cannot desynchronize).
        let mut latents: Vec<f64> = Vec::with_capacity(n * zd);
        let mut uniforms: Vec<f64> = Vec::with_capacity(n * d);
        for _ in 0..n {
            for _ in 0..zd {
                latents.push(standard_normal(&mut rng));
            }
            for _ in 0..d {
                uniforms.push(rng.gen());
            }
        }
        record_sampling_pass(n as u64);
        // Batched generator forward passes: chunked over rows and
        // rayon-parallel — per-row math is untouched and each row reads
        // only its own pre-drawn randomness, so the parallel pass is
        // bit-identical to the sequential one.
        let sample_chunk = |lo: usize, hi: usize| -> Vec<Vec<u32>> {
            let mut cols = vec![Vec::with_capacity(hi - lo); d];
            for r in lo..hi {
                let logits = fitted.generator.predict(&latents[r * zd..(r + 1) * zd]);
                let soft = block_softmax(&logits, &fitted.blocks);
                for (a, &(off, card)) in fitted.blocks.iter().enumerate() {
                    let mut t = uniforms[r * d + a];
                    let mut code = card - 1;
                    for v in 0..card {
                        t -= soft[off + v];
                        if t < 0.0 {
                            code = v;
                            break;
                        }
                    }
                    cols[a].push(code as u32);
                }
            }
            cols
        };
        let columns = assemble_chunks(n, d, parallel_rows(n), sample_chunk);
        dataset_from_columns(&fitted.domain, columns)
    }

    fn fitted_state(&self) -> Option<FittedState> {
        self.fitted.as_ref().map(|f| FittedState::PateCtgan {
            domain: f.domain.clone(),
            generator: f.generator.export_state(),
            blocks: f.blocks.clone(),
            z_dim: f.z_dim,
        })
    }

    fn restore_state(&mut self, state: FittedState) -> Result<()> {
        let mismatch = |reason: String| SynthError::StateMismatch {
            reason: format!("PATECTGAN: {reason}"),
        };
        match state {
            FittedState::PateCtgan {
                domain,
                generator,
                blocks,
                z_dim,
            } => {
                // Blocks must tile the one-hot vector in domain order.
                if blocks.len() != domain.len() {
                    return Err(mismatch(format!(
                        "{} blocks for {} attributes",
                        blocks.len(),
                        domain.len()
                    )));
                }
                let mut expected_offset = 0usize;
                for (a, &(offset, card)) in blocks.iter().enumerate() {
                    let domain_card = domain.cardinality(a)?;
                    if offset != expected_offset || card != domain_card {
                        return Err(mismatch(format!(
                            "block {a} is ({offset}, {card}), expected ({expected_offset}, {domain_card})"
                        )));
                    }
                    expected_offset += card;
                }
                let onehot_dim = expected_offset;
                let input = generator.layers.first().map(|l| l.input);
                let output = generator.layers.last().map(|l| l.output);
                if input != Some(z_dim) || output != Some(onehot_dim) {
                    return Err(mismatch(format!(
                        "generator maps {input:?} -> {output:?}, expected Some({z_dim}) -> Some({onehot_dim})"
                    )));
                }
                let generator = Mlp::from_state(generator)
                    .map_err(|e| mismatch(format!("generator state: {e}")))?;
                self.fitted = Some(Fitted {
                    domain,
                    generator,
                    blocks,
                    z_dim,
                });
                Ok(())
            }
            other => Err(mismatch(format!(
                "expected patectgan state, got {}",
                other.variant()
            ))),
        }
    }
}

#[cfg(test)]
impl PateCtgan {
    /// The original per-row sampler, retained as the differential oracle
    /// for the batched forward-pass path.
    fn sample_naive(&self, n: usize, seed: u64) -> Result<Dataset> {
        let fitted = self.fitted.as_ref().ok_or(SynthError::NotFitted)?;
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, "patectgan-sample"));
        let d = fitted.domain.len();
        let mut columns = vec![Vec::with_capacity(n); d];
        for _ in 0..n {
            let z: Vec<f64> = (0..fitted.z_dim)
                .map(|_| standard_normal(&mut rng))
                .collect();
            let logits = fitted.generator.predict(&z);
            let soft = block_softmax(&logits, &fitted.blocks);
            for (a, &(off, card)) in fitted.blocks.iter().enumerate() {
                let mut t = rng.gen::<f64>();
                let mut code = card - 1;
                for v in 0..card {
                    t -= soft[off + v];
                    if t < 0.0 {
                        code = v;
                        break;
                    }
                }
                columns[a].push(code as u32);
            }
        }
        dataset_from_columns(&fitted.domain, columns)
    }
}

/// One SGD step of logistic regression with L2 on bias-augmented weights.
fn logistic_sgd_step(w: &mut [f64], x: &[f64], target: f64, lr: f64) {
    let y = logistic_score(w, x);
    let err = y - target;
    let bias_idx = w.len() - 1;
    for (wi, &xi) in w[..bias_idx].iter_mut().zip(x) {
        *wi -= lr * (err * xi + 1e-4 * *wi);
    }
    w[bias_idx] -= lr * err;
}

/// Logistic score with trailing bias weight.
fn logistic_score(w: &[f64], x: &[f64]) -> f64 {
    let bias_idx = w.len() - 1;
    let z: f64 = w[..bias_idx].iter().zip(x).map(|(a, b)| a * b).sum::<f64>() + w[bias_idx];
    1.0 / (1.0 + (-z).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use synrd_data::Attribute;

    fn toy_data(n: usize) -> Dataset {
        let domain = Domain::new(vec![Attribute::binary("x"), Attribute::ordinal("y", 3)]);
        let mut rng = StdRng::seed_from_u64(2);
        let mut ds = Dataset::with_capacity(domain, n);
        for _ in 0..n {
            let x = u32::from(rng.gen::<f64>() < 0.4);
            let y = if x == 1 { 2 } else { rng.gen_range(0..2) };
            ds.push_row(&[x, y]).unwrap();
        }
        ds
    }

    #[test]
    fn batched_sample_matches_naive() {
        let data = toy_data(1_200);
        let mut synth = PateCtgan::with_options(PateCtganOptions {
            teachers: 4,
            rounds: 4,
            batch: 16,
            z_dim: 8,
            hidden: 16,
        });
        synth
            .fit(&data, Privacy::approx(1.0, 1e-9).unwrap(), 3)
            .unwrap();
        for (n, seed) in [(0usize, 1u64), (1, 2), (311, 3), (20_000, 4)] {
            let batched = synth.sample(n, seed).unwrap();
            let naive = synth.sample_naive(n, seed).unwrap();
            assert_eq!(batched, naive, "n = {n}");
        }
    }
}
