//! PATECTGAN (Rosenblatt et al. 2020): a conditional tabular GAN whose
//! discriminator is privatized with PATE.
//!
//! **Simulation note** (DESIGN.md §3): the reference implementation is a
//! full CTGAN on GPU with data-dependent PATE accounting. We reproduce its
//! architecture class at laptop scale: an MLP generator emitting one softmax
//! block per attribute, an ensemble of logistic *teacher* discriminators on
//! disjoint data partitions, and an MLP *student* discriminator trained only
//! on generator samples labeled by Laplace-noised teacher votes. A share of
//! the budget additionally buys noisy 1-way histograms used as a
//! moment-matching loss (the role CTGAN's conditional sampling plays in the
//! original). The properties the benchmark depends on survive the
//! simulation: deep-learning based, ε-insensitive, weaker than PGM methods
//! on low-dimensional data, able to fit arbitrarily large domains.
//!
//! **Training is minibatch-batched**: each round draws all `batch` latents
//! up front, runs one batched generator forward, one batched student
//! BCE step, and one batched generator update — one matrix-matrix pass per
//! layer via `synrd-ml`'s [`BatchWorkspace`] kernels instead of `batch`
//! per-example passes (gradients are summed over the round's samples and
//! applied as a single Adam step per network per round). The workspaces
//! capture the process-global ML backend (`synrd_ml::backend::global`) at
//! construction, so `--ml-backend simd` accelerates both networks' GEMMs
//! without touching this file; every backend is bit-identical, so the
//! fitted state is the same regardless. The per-example formulation of the
//! same semantics is retained under `cfg(test)` (`fit_naive`) as a
//! differential oracle; `fit` must reproduce its fitted state bit-for-bit.

use crate::common::{dataset_from_columns, measure_gaussian};
use crate::error::{Result, SynthError};
use crate::{FitContext, FittedState, Synthesizer};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use synrd_data::{Dataset, Domain, MarginalEngine};
use synrd_dp::{derive_seed, standard_laplace, standard_normal, Accountant, Privacy};
use synrd_ml::{Activation, BatchWorkspace, Mlp};
use synrd_pgm::{assemble_chunks, parallel_rows, record_sampling_pass};

/// Configuration for [`PateCtgan`].
#[derive(Debug, Clone, Copy)]
pub struct PateCtganOptions {
    /// Number of PATE teachers (clamped to the row count at fit time so
    /// every teacher owns at least one row).
    pub teachers: usize,
    /// Adversarial training rounds; each round is one minibatch Adam step
    /// for the generator and the student.
    pub rounds: usize,
    /// Fake samples per round (the minibatch size).
    pub batch: usize,
    /// Latent dimension.
    pub z_dim: usize,
    /// Hidden width for generator and student.
    pub hidden: usize,
}

impl Default for PateCtganOptions {
    fn default() -> Self {
        PateCtganOptions {
            teachers: 8,
            rounds: 120,
            batch: 48,
            z_dim: 16,
            hidden: 64,
        }
    }
}

/// The PATECTGAN synthesizer.
#[derive(Default)]
pub struct PateCtgan {
    options: PateCtganOptions,
    fitted: Option<Fitted>,
}

struct Fitted {
    domain: Domain,
    generator: Mlp,
    blocks: Vec<(usize, usize)>, // (offset, cardinality) per attribute
    z_dim: usize,
}

impl PateCtgan {
    /// PATECTGAN with custom options.
    pub fn with_options(options: PateCtganOptions) -> PateCtgan {
        PateCtgan {
            options,
            fitted: None,
        }
    }
}

/// One-hot encode a row of codes into `out` given attribute blocks.
fn one_hot(codes: &[u32], blocks: &[(usize, usize)], out: &mut [f64]) {
    out.iter_mut().for_each(|v| *v = 0.0);
    for (a, &(offset, _)) in blocks.iter().enumerate() {
        out[offset + codes[a] as usize] = 1.0;
    }
}

/// Per-block softmax of generator logits into `out` (same length).
fn block_softmax_into(logits: &[f64], blocks: &[(usize, usize)], out: &mut [f64]) {
    for &(offset, card) in blocks {
        let slice = &logits[offset..offset + card];
        let max = slice.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut total = 0.0;
        for (i, &l) in slice.iter().enumerate() {
            let e = (l - max).exp();
            out[offset + i] = e;
            total += e;
        }
        for v in &mut out[offset..offset + card] {
            *v /= total;
        }
    }
}

/// Allocating wrapper around [`block_softmax_into`], used by the retained
/// per-row sampling oracle.
#[cfg(test)]
fn block_softmax(logits: &[f64], blocks: &[(usize, usize)]) -> Vec<f64> {
    let mut out = vec![0.0f64; logits.len()];
    block_softmax_into(logits, blocks, &mut out);
    out
}

/// Chain a gradient wrt softmax probabilities back through each block
/// softmax into logit space: `dl_dlogit[v] = p[v] * (g[v] - <p, g>)`.
fn block_softmax_chain(soft: &[f64], g: &[f64], blocks: &[(usize, usize)], out: &mut [f64]) {
    for &(off, card) in blocks {
        let p = &soft[off..off + card];
        let gb = &g[off..off + card];
        let dot: f64 = p.iter().zip(gb).map(|(x, y)| x * y).sum();
        for v in 0..card {
            out[off + v] = p[v] * (gb[v] - dot);
        }
    }
}

/// Everything `fit` builds before the round loop: budget split, one-hot
/// layout, moment targets, teacher ensemble, and the two MLPs. Shared
/// between the batched round loop and the per-example oracle so both
/// consume the RNG identically and differ only in their MLP calls.
struct FitState {
    blocks: Vec<(usize, usize)>,
    onehot_dim: usize,
    moment_targets: Vec<Vec<f64>>,
    vote_scale: f64,
    n: usize,
    per_teacher: usize,
    perm: Vec<usize>,
    /// Teacher logistic weights over one-hot features (bias-augmented).
    teacher_w: Vec<Vec<f64>>,
    /// One-hot encodings of teacher rows, cached across rounds: teachers
    /// redraw rows from their (fixed) partitions every round, so the
    /// per-draw zero-fill + re-encode of the full one-hot buffer was pure
    /// churn. Filled lazily, so memory is bounded by the rows actually
    /// drawn, not by n.
    onehot_cache: Vec<Option<Box<[f64]>>>,
    codes: Vec<u32>,
    generator: Mlp,
    student: Mlp,
}

impl FitState {
    /// One SGD step per teacher on (its real row = 1, the fake sample = 0),
    /// then the Laplace-noised PATE vote on the fake sample; returns the
    /// noisy label the student trains on.
    fn teacher_step_and_vote(&mut self, data: &Dataset, soft: &[f64], rng: &mut StdRng) -> f64 {
        let teachers = self.teacher_w.len();
        for (t, w) in self.teacher_w.iter_mut().enumerate() {
            // Partition t owns perm[lo..hi]; the last partition absorbs the
            // n % teachers leftover rows instead of silently dropping them.
            let lo = t * self.per_teacher;
            let hi = if t + 1 == teachers {
                self.n
            } else {
                lo + self.per_teacher
            };
            let row_idx = self.perm[lo + rng.gen_range(0..hi - lo)];
            if self.onehot_cache[row_idx].is_none() {
                let row = data.row(row_idx);
                for (a, c) in self.codes.iter_mut().enumerate() {
                    *c = row.get(a);
                }
                let mut enc = vec![0.0f64; self.onehot_dim];
                one_hot(&self.codes, &self.blocks, &mut enc);
                self.onehot_cache[row_idx] = Some(enc.into_boxed_slice());
            }
            let real_onehot = self.onehot_cache[row_idx].as_deref().expect("just filled");
            logistic_sgd_step(w, real_onehot, 1.0, 0.05);
            logistic_sgd_step(w, soft, 0.0, 0.05);
        }
        let votes_fake: f64 = self
            .teacher_w
            .iter()
            .map(|w| f64::from(logistic_score(w, soft) < 0.5))
            .sum();
        let noisy = votes_fake + self.vote_scale * standard_laplace(rng);
        if noisy > teachers as f64 / 2.0 {
            0.0 // majority says fake
        } else {
            1.0
        }
    }
}

impl PateCtgan {
    /// Adam learning rate for generator and student. The round loop takes
    /// one minibatch step per round, so this is tuned for `rounds` total
    /// steps (not `rounds × batch` as the per-example loop once was).
    const LEARNING_RATE: f64 = 1e-2;

    fn fit_setup(&self, data: &Dataset, privacy: Privacy, rng: &mut StdRng) -> Result<FitState> {
        let mut accountant = Accountant::new(privacy);
        let total = accountant.total();
        let d = data.n_attrs();
        let n = data.n_rows();
        if n == 0 {
            return Err(SynthError::Infeasible {
                reason: "PATECTGAN: cannot fit an empty dataset".to_string(),
            });
        }

        // Attribute one-hot layout.
        let mut blocks = Vec::with_capacity(d);
        let mut offset = 0usize;
        for a in 0..d {
            let card = data.domain().cardinality(a)?;
            blocks.push((offset, card));
            offset += card;
        }
        let onehot_dim = offset;

        // 30% of budget: noisy 1-way histograms for the moment loss.
        let mut engine = MarginalEngine::new(data);
        let rho_one = 0.30 * total / d as f64;
        let mut moment_targets: Vec<Vec<f64>> = Vec::with_capacity(d);
        for a in 0..d {
            accountant.spend(rho_one)?;
            let m = measure_gaussian(&mut engine, &[a], rho_one, rng)?;
            let clamped: Vec<f64> = m.values.iter().map(|&v| v.max(0.0)).collect();
            let total_mass: f64 = clamped.iter().sum::<f64>().max(1e-9);
            moment_targets.push(clamped.into_iter().map(|v| v / total_mass).collect());
        }

        // Remaining 70%: the PATE adversarial phase. Laplace vote noise at
        // scale 2/ε_round per aggregated round query (basic composition).
        let rho_pate = accountant.spend_all();
        let eps_pate = (2.0 * rho_pate).sqrt(); // zCDP -> pure-DP lower bound scale
        let eps_round = eps_pate / self.options.rounds as f64;
        let vote_scale = 2.0 / eps_round.max(1e-6);

        // Disjoint teacher partitions. Clamp the ensemble to the row count
        // so every teacher owns at least one row — a 3-row dataset must fit
        // cleanly rather than panic on an empty partition.
        let teachers = self.options.teachers.min(n).max(1);
        let mut perm: Vec<usize> = (0..n).collect();
        use rand::seq::SliceRandom;
        perm.shuffle(rng);
        let per_teacher = n / teachers;

        let teacher_w = vec![vec![0.0f64; onehot_dim + 1]; teachers];

        let mut generator = Mlp::new(
            &[self.options.z_dim, self.options.hidden, onehot_dim],
            Activation::Linear,
            rng,
        );
        generator.learning_rate = Self::LEARNING_RATE;
        let mut student = Mlp::new(
            &[onehot_dim, self.options.hidden, 1],
            Activation::Sigmoid,
            rng,
        );
        student.learning_rate = Self::LEARNING_RATE;

        Ok(FitState {
            blocks,
            onehot_dim,
            moment_targets,
            vote_scale,
            n,
            per_teacher,
            perm,
            teacher_w,
            onehot_cache: vec![None; n],
            codes: vec![0u32; d],
            generator,
            student,
        })
    }
}

impl Synthesizer for PateCtgan {
    fn name(&self) -> &'static str {
        "PATECTGAN"
    }

    fn fit_with(
        &mut self,
        data: &Dataset,
        privacy: Privacy,
        seed: u64,
        ctx: FitContext,
    ) -> Result<()> {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, "patectgan-fit"));
        let mut state = self.fit_setup(data, privacy, &mut rng)?;
        let batch = self.options.batch;
        let od = state.onehot_dim;
        // The thread allowance only reaches layers big enough to amortize a
        // parallel region (`gemm_threads`); results are identical either way.
        let mut gen_ws = BatchWorkspace::new();
        gen_ws.set_threads(ctx.threads);
        let mut student_ws = BatchWorkspace::new();
        student_ws.set_threads(ctx.threads);
        let mut zs = vec![0.0f64; batch * self.options.z_dim];
        let mut softs = vec![0.0f64; batch * od];
        let mut labels = vec![0.0f64; batch];
        let mut dl_dy = vec![0.0f64; batch];
        let mut dl_dsoft = Vec::new();
        let mut dl_dlogits = vec![0.0f64; batch * od];
        for _ in 0..self.options.rounds {
            // --- Generator minibatch (soft probabilities per sample). ---
            for z in zs.iter_mut() {
                *z = standard_normal(&mut rng);
            }
            state.generator.forward_batch(&zs, batch, &mut gen_ws);
            for (soft, logits) in softs.chunks_mut(od).zip(gen_ws.output().chunks(od)) {
                block_softmax_into(logits, &state.blocks, soft);
            }

            // --- Teachers: SGD steps + one noisy PATE vote per sample. ---
            for (r, label) in labels.iter_mut().enumerate() {
                *label = state.teacher_step_and_vote(data, &softs[r * od..(r + 1) * od], &mut rng);
            }

            // --- Student: one minibatch BCE step on the noisy labels. ---
            state.student.forward_batch(&softs, batch, &mut student_ws);
            for ((dy, &y), &label) in dl_dy.iter_mut().zip(student_ws.output()).zip(labels.iter()) {
                let y = y.clamp(1e-9, 1.0 - 1e-9);
                // d(BCE)/dy; the sigmoid chain multiplies by y(1-y).
                *dy = (y - label) / (y * (1.0 - y));
            }
            state.student.backward_apply_batch(&mut student_ws, &dl_dy);

            // --- Generator: fool the updated student + match noisy moments. ---
            state.student.forward_batch(&softs, batch, &mut student_ws);
            for (dy, &y) in dl_dy.iter_mut().zip(student_ws.output()) {
                let y = y.clamp(1e-6, 1.0 - 1e-6);
                *dy = -1.0 / y; // d(-ln y)/dy
            }
            state
                .student
                .input_gradient_batch(&mut student_ws, &dl_dy, &mut dl_dsoft);
            for r in 0..batch {
                let soft = &softs[r * od..(r + 1) * od];
                let dls = &mut dl_dsoft[r * od..(r + 1) * od];
                // Moment-matching loss: ||soft_block - target||² per attr.
                for (a, &(off, card)) in state.blocks.iter().enumerate() {
                    for v in 0..card {
                        dls[off + v] += 2.0 * (soft[off + v] - state.moment_targets[a][v]);
                    }
                }
                block_softmax_chain(
                    soft,
                    dls,
                    &state.blocks,
                    &mut dl_dlogits[r * od..(r + 1) * od],
                );
            }
            state
                .generator
                .backward_apply_batch(&mut gen_ws, &dl_dlogits);
        }

        self.fitted = Some(Fitted {
            domain: data.domain().clone(),
            generator: state.generator,
            blocks: state.blocks,
            z_dim: self.options.z_dim,
        });
        Ok(())
    }

    fn sample(&self, n: usize, seed: u64) -> Result<Dataset> {
        let fitted = self.fitted.as_ref().ok_or(SynthError::NotFitted)?;
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, "patectgan-sample"));
        let d = fitted.domain.len();
        let zd = fitted.z_dim;
        // Pre-draw each row's latent vector and per-attribute uniforms in
        // the exact row-major order the per-row sampler consumed them
        // (`standard_normal`'s rare rejection retries stay inside the
        // sequential pre-draw, so the stream cannot desynchronize).
        let mut latents: Vec<f64> = Vec::with_capacity(n * zd);
        let mut uniforms: Vec<f64> = Vec::with_capacity(n * d);
        for _ in 0..n {
            for _ in 0..zd {
                latents.push(standard_normal(&mut rng));
            }
            for _ in 0..d {
                uniforms.push(rng.gen());
            }
        }
        record_sampling_pass(n as u64);
        // Batched generator forward passes: chunked over rows and
        // rayon-parallel — one GEMM per layer per chunk via `forward_batch`,
        // and each row reads only its own pre-drawn randomness and its own
        // rows of the output block, so the parallel batched pass is
        // bit-identical to the sequential per-row one.
        let onehot_dim: usize = fitted.blocks.iter().map(|&(_, card)| card).sum();
        let sample_chunk = |lo: usize, hi: usize| -> Vec<Vec<u32>> {
            let rows = hi - lo;
            let mut cols = vec![Vec::with_capacity(rows); d];
            let mut ws = BatchWorkspace::new();
            fitted
                .generator
                .forward_batch(&latents[lo * zd..hi * zd], rows, &mut ws);
            let mut soft = vec![0.0f64; onehot_dim];
            for (i, logits) in ws.output().chunks(onehot_dim.max(1)).enumerate() {
                let r = lo + i;
                block_softmax_into(logits, &fitted.blocks, &mut soft);
                for (a, &(off, card)) in fitted.blocks.iter().enumerate() {
                    let mut t = uniforms[r * d + a];
                    let mut code = card - 1;
                    for v in 0..card {
                        t -= soft[off + v];
                        if t < 0.0 {
                            code = v;
                            break;
                        }
                    }
                    cols[a].push(code as u32);
                }
            }
            cols
        };
        let columns = assemble_chunks(n, d, parallel_rows(n), sample_chunk);
        dataset_from_columns(&fitted.domain, columns)
    }

    fn fitted_state(&self) -> Option<FittedState> {
        self.fitted.as_ref().map(|f| FittedState::PateCtgan {
            domain: f.domain.clone(),
            generator: f.generator.export_state(),
            blocks: f.blocks.clone(),
            z_dim: f.z_dim,
        })
    }

    fn restore_state(&mut self, state: FittedState) -> Result<()> {
        let mismatch = |reason: String| SynthError::StateMismatch {
            reason: format!("PATECTGAN: {reason}"),
        };
        match state {
            FittedState::PateCtgan {
                domain,
                generator,
                blocks,
                z_dim,
            } => {
                // Blocks must tile the one-hot vector in domain order.
                if blocks.len() != domain.len() {
                    return Err(mismatch(format!(
                        "{} blocks for {} attributes",
                        blocks.len(),
                        domain.len()
                    )));
                }
                let mut expected_offset = 0usize;
                for (a, &(offset, card)) in blocks.iter().enumerate() {
                    let domain_card = domain.cardinality(a)?;
                    if offset != expected_offset || card != domain_card {
                        return Err(mismatch(format!(
                            "block {a} is ({offset}, {card}), expected ({expected_offset}, {domain_card})"
                        )));
                    }
                    expected_offset += card;
                }
                let onehot_dim = expected_offset;
                let input = generator.layers.first().map(|l| l.input);
                let output = generator.layers.last().map(|l| l.output);
                if input != Some(z_dim) || output != Some(onehot_dim) {
                    return Err(mismatch(format!(
                        "generator maps {input:?} -> {output:?}, expected Some({z_dim}) -> Some({onehot_dim})"
                    )));
                }
                let generator = Mlp::from_state(generator)
                    .map_err(|e| mismatch(format!("generator state: {e}")))?;
                self.fitted = Some(Fitted {
                    domain,
                    generator,
                    blocks,
                    z_dim,
                });
                Ok(())
            }
            other => Err(mismatch(format!(
                "expected patectgan state, got {}",
                other.variant()
            ))),
        }
    }
}

#[cfg(test)]
impl PateCtgan {
    /// Per-example formulation of [`PateCtgan::fit`]: the identical round
    /// semantics (one minibatch Adam step per network per round) realized
    /// as loops over the retained per-example MLP calls, consuming the RNG
    /// in the same order. The batched `fit` must reproduce this fitted
    /// state bit-for-bit.
    fn fit_naive(&mut self, data: &Dataset, privacy: Privacy, seed: u64) -> Result<()> {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, "patectgan-fit"));
        let mut state = self.fit_setup(data, privacy, &mut rng)?;
        let batch = self.options.batch;
        let zd = self.options.z_dim;
        let od = state.onehot_dim;
        for _ in 0..self.options.rounds {
            let mut zs = vec![0.0f64; batch * zd];
            for z in zs.iter_mut() {
                *z = standard_normal(&mut rng);
            }
            let gen_caches = state.generator.forward_batch_naive(&zs, batch);
            let mut softs = vec![0.0f64; batch * od];
            for (soft, cache) in softs.chunks_mut(od).zip(&gen_caches) {
                block_softmax_into(cache.output(), &state.blocks, soft);
            }

            let mut labels = vec![0.0f64; batch];
            for (r, label) in labels.iter_mut().enumerate() {
                *label = state.teacher_step_and_vote(data, &softs[r * od..(r + 1) * od], &mut rng);
            }

            let student_caches = state.student.forward_batch_naive(&softs, batch);
            let mut dl_dy = vec![0.0f64; batch];
            for ((dy, cache), &label) in dl_dy.iter_mut().zip(&student_caches).zip(labels.iter()) {
                let y = cache.output()[0].clamp(1e-9, 1.0 - 1e-9);
                *dy = (y - label) / (y * (1.0 - y));
            }
            state
                .student
                .backward_apply_batch_naive(&student_caches, &dl_dy);

            let student_caches = state.student.forward_batch_naive(&softs, batch);
            for (dy, cache) in dl_dy.iter_mut().zip(&student_caches) {
                let y = cache.output()[0].clamp(1e-6, 1.0 - 1e-6);
                *dy = -1.0 / y;
            }
            let mut dl_dsoft = state
                .student
                .input_gradient_batch_naive(&student_caches, &dl_dy);
            let mut dl_dlogits = vec![0.0f64; batch * od];
            for r in 0..batch {
                let soft = &softs[r * od..(r + 1) * od];
                let dls = &mut dl_dsoft[r * od..(r + 1) * od];
                for (a, &(off, card)) in state.blocks.iter().enumerate() {
                    for v in 0..card {
                        dls[off + v] += 2.0 * (soft[off + v] - state.moment_targets[a][v]);
                    }
                }
                block_softmax_chain(
                    soft,
                    dls,
                    &state.blocks,
                    &mut dl_dlogits[r * od..(r + 1) * od],
                );
            }
            state
                .generator
                .backward_apply_batch_naive(&gen_caches, &dl_dlogits);
        }

        self.fitted = Some(Fitted {
            domain: data.domain().clone(),
            generator: state.generator,
            blocks: state.blocks,
            z_dim: zd,
        });
        Ok(())
    }

    /// The original per-row sampler, retained as the differential oracle
    /// for the batched forward-pass path.
    fn sample_naive(&self, n: usize, seed: u64) -> Result<Dataset> {
        let fitted = self.fitted.as_ref().ok_or(SynthError::NotFitted)?;
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, "patectgan-sample"));
        let d = fitted.domain.len();
        let mut columns = vec![Vec::with_capacity(n); d];
        for _ in 0..n {
            let z: Vec<f64> = (0..fitted.z_dim)
                .map(|_| standard_normal(&mut rng))
                .collect();
            let logits = fitted.generator.predict(&z);
            let soft = block_softmax(&logits, &fitted.blocks);
            for (a, &(off, card)) in fitted.blocks.iter().enumerate() {
                let mut t = rng.gen::<f64>();
                let mut code = card - 1;
                for v in 0..card {
                    t -= soft[off + v];
                    if t < 0.0 {
                        code = v;
                        break;
                    }
                }
                columns[a].push(code as u32);
            }
        }
        dataset_from_columns(&fitted.domain, columns)
    }
}

/// One SGD step of logistic regression with L2 on bias-augmented weights.
fn logistic_sgd_step(w: &mut [f64], x: &[f64], target: f64, lr: f64) {
    let y = logistic_score(w, x);
    let err = y - target;
    let bias_idx = w.len() - 1;
    for (wi, &xi) in w[..bias_idx].iter_mut().zip(x) {
        *wi -= lr * (err * xi + 1e-4 * *wi);
    }
    w[bias_idx] -= lr * err;
}

/// Logistic score with trailing bias weight.
fn logistic_score(w: &[f64], x: &[f64]) -> f64 {
    let bias_idx = w.len() - 1;
    let z: f64 = w[..bias_idx].iter().zip(x).map(|(a, b)| a * b).sum::<f64>() + w[bias_idx];
    1.0 / (1.0 + (-z).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use synrd_data::Attribute;

    fn toy_data(n: usize) -> Dataset {
        let domain = Domain::new(vec![Attribute::binary("x"), Attribute::ordinal("y", 3)]);
        let mut rng = StdRng::seed_from_u64(2);
        let mut ds = Dataset::with_capacity(domain, n);
        for _ in 0..n {
            let x = u32::from(rng.gen::<f64>() < 0.4);
            let y = if x == 1 { 2 } else { rng.gen_range(0..2) };
            ds.push_row(&[x, y]).unwrap();
        }
        ds
    }

    fn small_options() -> PateCtganOptions {
        PateCtganOptions {
            teachers: 4,
            rounds: 4,
            batch: 16,
            z_dim: 8,
            hidden: 16,
        }
    }

    #[test]
    fn batched_sample_matches_naive() {
        let data = toy_data(1_200);
        let mut synth = PateCtgan::with_options(small_options());
        synth
            .fit(&data, Privacy::approx(1.0, 1e-9).unwrap(), 3)
            .unwrap();
        for (n, seed) in [(0usize, 1u64), (1, 2), (311, 3), (20_000, 4)] {
            let batched = synth.sample(n, seed).unwrap();
            let naive = synth.sample_naive(n, seed).unwrap();
            assert_eq!(batched, naive, "n = {n}");
        }
    }

    #[test]
    fn batched_fit_matches_per_example_oracle() {
        let data = toy_data(300);
        let privacy = Privacy::approx(1.0, 1e-9).unwrap();
        let mut batched = PateCtgan::with_options(small_options());
        batched.fit(&data, privacy, 7).unwrap();
        let mut naive = PateCtgan::with_options(small_options());
        naive.fit_naive(&data, privacy, 7).unwrap();
        let (b, n) = (batched.fitted.unwrap(), naive.fitted.unwrap());
        assert_eq!(
            b.generator.export_state(),
            n.generator.export_state(),
            "batched round loop must reproduce the per-example oracle bit-for-bit"
        );
        assert_eq!(b.blocks, n.blocks);
    }

    #[test]
    fn three_row_fit_returns_cleanly() {
        // Regression: used to panic with gen_range(0..0) whenever
        // n < teachers (per_teacher = 0). Teachers are clamped to n now.
        let data = toy_data(3);
        let mut synth = PateCtgan::with_options(PateCtganOptions {
            teachers: 8, // > n on purpose
            rounds: 3,
            batch: 8,
            z_dim: 4,
            hidden: 8,
        });
        synth
            .fit(&data, Privacy::approx(1.0, 1e-9).unwrap(), 11)
            .unwrap();
        let sample = synth.sample(50, 12).unwrap();
        assert_eq!(sample.n_rows(), 50);
    }

    #[test]
    fn leftover_rows_fold_into_last_partition() {
        // 10 rows across 4 teachers: partitions of 2,2,2,4 — all rows
        // reachable, nothing dropped. Fit must succeed and stay in bounds.
        let data = toy_data(10);
        let mut synth = PateCtgan::with_options(small_options());
        synth
            .fit(&data, Privacy::approx(1.0, 1e-9).unwrap(), 13)
            .unwrap();
        assert!(synth.fitted.is_some());
    }

    #[test]
    fn empty_dataset_is_infeasible() {
        let data = toy_data(0);
        let mut synth = PateCtgan::with_options(small_options());
        let err = synth
            .fit(&data, Privacy::approx(1.0, 1e-9).unwrap(), 1)
            .unwrap_err();
        assert!(matches!(err, SynthError::Infeasible { .. }), "{err}");
    }
}
